"""Experiment E-OV: MajorCAN's communication overhead (Sections 5-6).

Paper claims: best case 2m-7 bits (3 bits for m=5), worst case 4m-9
bits (11 bits for m=5), both negligible against the >1 extra frame per
message of the higher-level protocols.  The bench validates the
formulas against bus occupancy measured on the bit-level simulator.
"""

from _artifacts import report

from repro.analysis.overhead import (
    best_case_overhead_bits,
    higher_level_protocol_overhead_bits,
    measured_overhead,
    worst_case_overhead_bits,
)
from repro.metrics.report import render_table


def test_bench_overhead_measured(benchmark):
    measured = benchmark(measured_overhead, 5)
    assert measured.best_case == best_case_overhead_bits(5) == 3
    assert measured.worst_case == worst_case_overhead_bits(5) == 11
    rows = []
    for m in (3, 4, 5):
        with_m = measured if m == 5 else measured_overhead(m)
        rows.append(
            {
                "m": m,
                "best formula (2m-7)": best_case_overhead_bits(m),
                "best measured": with_m.best_case,
                "worst formula (4m-9)": worst_case_overhead_bits(m),
                "worst measured": with_m.worst_case,
            }
        )
    report(
        "Overhead — MajorCAN_m vs standard CAN (bits per frame)",
        render_table(
            rows,
            columns=[
                "m",
                "best formula (2m-7)",
                "best measured",
                "worst formula (4m-9)",
                "worst measured",
            ],
        ),
    )


def test_bench_overhead_vs_higher_level(benchmark):
    overheads = benchmark(
        higher_level_protocol_overhead_bits, 110, 31
    )
    worst_majorcan = worst_case_overhead_bits(5)
    for protocol, bits in overheads.items():
        assert bits > worst_majorcan
    rows = [{"protocol": "MajorCAN_5 (worst case)", "bits/message": worst_majorcan}]
    rows += [
        {"protocol": protocol, "bits/message": bits}
        for protocol, bits in sorted(overheads.items())
    ]
    report(
        "Overhead — MajorCAN_5 vs the FTCS'98 protocols (paper profile)",
        render_table(rows, columns=["protocol", "bits/message"]),
    )


def test_bench_overhead_measured_on_bus(benchmark):
    """Section 5's comparison with *measured* traffic: one broadcast
    through every protocol, counting the frames actually transmitted."""
    from repro.protocols.stats import bandwidth_comparison

    reports = benchmark.pedantic(
        bandwidth_comparison, kwargs=dict(n_nodes=4), rounds=1, iterations=1
    )
    assert reports["majorcan"].frames_on_bus == 1
    assert reports["edcan"].frames_on_bus == 4
    rows = [
        {
            "protocol": report.protocol,
            "frames": report.frames_on_bus,
            "frame bits": report.frame_bits_total,
        }
        for report in sorted(reports.values(), key=lambda r: r.frame_bits_total)
    ]
    report(
        "Overhead — measured bus traffic per message (4 nodes)",
        render_table(rows, columns=["protocol", "frames", "frame bits"]),
    )
