"""Experiment E-F4: the behaviour of a MajorCAN_5 node (Fig. 4).

Regenerates the per-bit behaviour table: for a CRC error and for an
error in each of the 2m EOF bits, which flag the node transmits
(6-bit vs extended), whether it samples the agreement window, and the
verdict on the frame.  The paper's figure shows: CRC error -> 6-bit
flag, no sampling, rejected; EOF bits 1..m -> 6-bit flag with
sampling; EOF bits m+1..2m -> extended flag, accepted.
"""

from _artifacts import report

from repro.faults.scenarios import fig4_behaviour


def test_bench_fig4_majorcan5(benchmark):
    rows = benchmark(fig4_behaviour, 5)
    assert len(rows) == 11
    crc_row = rows[0]
    assert crc_row.flag == "6-bit error flag"
    assert not crc_row.sampling
    assert crc_row.verdict == "rejected"
    for row in rows[1:6]:
        assert row.flag == "6-bit error flag"
        assert row.sampling
    for row in rows[6:]:
        assert row.flag == "extended error flag"
        assert row.verdict == "accepted"
    report(
        "Fig. 4 — behaviour of a MajorCAN_5 node",
        "\n".join(row.render() for row in rows),
    )


def test_bench_fig4_majorcan3(benchmark):
    rows = benchmark(fig4_behaviour, 3)
    assert len(rows) == 7
    for row in rows[4:]:
        assert row.flag == "extended error flag"
    report(
        "Fig. 4 variant — behaviour of a MajorCAN_3 node",
        "\n".join(row.render() for row in rows),
    )
