"""Experiments E-F1a/b/c: the Fig. 1 error scenarios under standard CAN.

Paper claims reproduced here:

* Fig. 1a — an error in the last EOF bit is absorbed by the last-bit
  rule: every node delivers once, no retransmission;
* Fig. 1b — an error in the last-but-one EOF bit of the X set causes a
  retransmission that the Y set receives **twice** (double reception);
* Fig. 1c — the same pattern plus a transmitter crash leaves X without
  the frame while Y keeps it: an inconsistent message omission.
"""

from _artifacts import report

from repro.faults.scenarios import fig1a, fig1b, fig1c


def test_bench_fig1a(benchmark):
    outcome = benchmark(fig1a, "can")
    assert outcome.consistent
    assert outcome.all_delivered_once
    assert outcome.attempts == 1
    report("Fig. 1a — last-bit rule keeps consistency (CAN)", outcome.summary())


def test_bench_fig1b(benchmark):
    outcome = benchmark(fig1b, "can")
    assert outcome.double_reception
    assert outcome.deliveries == {"tx": 1, "x": 1, "y": 2}
    assert outcome.attempts == 2
    report("Fig. 1b — double reception (CAN)", outcome.summary())


def test_bench_fig1c(benchmark):
    outcome = benchmark(fig1c, "can")
    assert outcome.inconsistent_omission
    assert outcome.deliveries["x"] == 0
    assert outcome.deliveries["y"] == 1
    assert outcome.crashed == ["tx"]
    report("Fig. 1c — IMO after transmitter crash (CAN)", outcome.summary())
