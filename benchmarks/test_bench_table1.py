"""Experiment E-T1: reproduce Table 1 (probabilities of the scenarios).

Paper reference values (incidents/hour):

    ber    IMOnew/hour  IMO/hour   IMO*/hour
    1e-4   8.80e-3      3.94e-6    3.92e-6
    1e-5   8.91e-5      3.98e-7    3.96e-7
    1e-6   8.92e-7      3.98e-8    3.96e-8

The reproduction recomputes the IMOnew and IMO* columns from equations
4 and 5 under the paper's evaluation profile (1 Mbps, 32 nodes, 90 %
load, 110-bit frames) and checks them against the published values to
within 1 %.
"""

from _artifacts import report

from repro.analysis.table1 import (
    PAPER_TABLE1,
    generate_table1,
    relative_error,
    render_table1,
)


def test_bench_table1(benchmark):
    rows = benchmark(generate_table1)
    for row in rows:
        paper = PAPER_TABLE1[row.ber]
        assert relative_error(row.imo_new_per_hour, paper["imo_new"]) < 0.01
        assert relative_error(row.imo_star_per_hour, paper["imo_star"]) < 0.01
    lines = [render_table1(rows), "", "paper vs reproduced (relative error):"]
    for row in rows:
        paper = PAPER_TABLE1[row.ber]
        lines.append(
            "  ber=%.0e  IMOnew %.2f%%   IMO* %.2f%%"
            % (
                row.ber,
                100 * relative_error(row.imo_new_per_hour, paper["imo_new"]),
                100 * relative_error(row.imo_star_per_hour, paper["imo_star"]),
            )
        )
    report("Table 1 — probabilities of the scenarios", "\n".join(lines))
