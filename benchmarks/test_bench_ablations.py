"""Ablation benches for the design choices DESIGN.md calls out.

* **Choice of m** (the paper proposes m = 5 "because standard CAN uses
  a CRC code that allows the detection of up to 5 randomly distributed
  bit errors"): overhead vs. verified tolerance per m, including
  whether the finding-F1 desynchronisation channel is closed.
* **CAN6 -> CAN6'**: the inconsistent-omission degree with and without
  the new scenarios, per reference interval.
* **Network-size sweep** of the analytical rates (the spatial ber*
  model makes the new-scenario rate *fall* with N while the old one
  rises slightly).
"""

from _artifacts import report

from repro.analysis.sweeps import (
    imo_rate_sweep,
    m_ablation,
    omission_degree_revision,
)
from repro.metrics.report import render_table


def test_bench_m_ablation(benchmark):
    rows = benchmark(m_ablation, (3, 4, 5, 6, 7), 1)
    by_m = {row.m: row for row in rows}
    assert all(row.tail_consistent for row in rows)
    assert by_m[5].f1_channel_closed is False
    assert by_m[6].f1_channel_closed is True
    table = render_table(
        [
            {
                "m": row.m,
                "best bits": row.best_case_bits,
                "worst bits": row.worst_case_bits,
                "tail <=1 err ok": row.tail_consistent,
                "F1 closed": row.f1_channel_closed,
            }
            for row in rows
        ],
        columns=["m", "best bits", "worst bits", "tail <=1 err ok", "F1 closed"],
    )
    report(
        "Ablation — choice of m (paper: m=5; F1 needs m>=6)",
        table,
    )


def test_bench_omission_degree_revision(benchmark):
    revision = benchmark(omission_degree_revision, 1e-4)
    assert revision.inflation > 1000
    lines = []
    for ber in (1e-4, 1e-5, 1e-6):
        rev = omission_degree_revision(ber)
        lines.append(
            "ber=%.0e: j=%.2e  j'=%.2e  inflation=%.0fx"
            % (rev.ber, rev.j_old_scenarios, rev.j_prime_with_new, rev.inflation)
        )
    report("CAN6 -> CAN6' — omission degree per hour of reference interval", "\n".join(lines))


def test_bench_network_size_sweep(benchmark):
    points = benchmark(
        imo_rate_sweep, (1e-4,), (8, 16, 32, 64), (110,)
    )
    rates = [point.imo_new_per_hour for point in points]
    assert rates == sorted(rates, reverse=True)
    table = render_table(
        [
            {
                "N": point.n_nodes,
                "IMOnew/hour": point.imo_new_per_hour,
                "IMO*/hour": point.imo_star_per_hour,
                "ratio": point.ratio,
            }
            for point in points
        ],
        columns=["N", "IMOnew/hour", "IMO*/hour", "ratio"],
    )
    report("Sweep — IMO rates vs network size (ber=1e-4)", table)
