"""Experiment E-DUAL (extension): protocol fix vs media redundancy.

The paper's reference [2] proposes a dual CAN bus; Section 1 argues
for fixing the protocol instead.  This bench runs the Fig. 3a pattern
against three architectures and reports the verdicts side by side.
"""

from _artifacts import report

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import fig3
from repro.metrics.report import render_table
from repro.redundancy import DualBusSystem

FRAME = data_frame(0x123, b"\x55", message_id="cmd")


def _fig3_injector(x_port, tx_port):
    return ScriptedInjector(
        view_faults=[
            ViewFault(x_port, Trigger(field=EOF, index=5), force=DOMINANT),
            ViewFault(tx_port, Trigger(field=EOF, index=6), force=RECESSIVE),
        ]
    )


def _dual_run(injectors):
    system = DualBusSystem(["tx", "x", "y"], injectors=injectors)
    system.node("tx").submit(FRAME)
    system.run_until_idle()
    return system.classify(FRAME)


def test_bench_dual_bus_comparison(benchmark):
    one_channel = benchmark.pedantic(
        _dual_run,
        args=({"A": _fig3_injector("x.A", "tx.A")},),
        rounds=1,
        iterations=1,
    )
    assert one_channel.all_delivered_once
    both_channels = _dual_run(
        {
            "A": _fig3_injector("x.A", "tx.A"),
            "B": _fig3_injector("x.B", "tx.B"),
        }
    )
    assert both_channels.inconsistent_omission
    single_can = fig3("can")
    single_major = fig3("majorcan")
    assert not single_can.consistent
    assert single_major.consistent
    rows = [
        {"architecture": "single CAN", "errors": 2,
         "verdict": "IMO" if single_can.inconsistent_omission else "consistent"},
        {"architecture": "dual CAN, one channel hit", "errors": 2,
         "verdict": "IMO" if one_channel.inconsistent_omission else "consistent"},
        {"architecture": "dual CAN, both channels hit", "errors": 4,
         "verdict": "IMO" if both_channels.inconsistent_omission else "consistent"},
        {"architecture": "single MajorCAN_5", "errors": 2,
         "verdict": "IMO" if single_major.inconsistent_omission else "consistent"},
    ]
    report(
        "Fix comparison — protocol (MajorCAN) vs media redundancy (dual CAN)",
        render_table(rows, columns=["architecture", "errors", "verdict"]),
    )
