"""Experiment E-PROP: the Atomic Broadcast property matrix.

Executable form of the paper's qualitative analysis:

* CAN violates AB3 (Fig. 1b), AB2 (Fig. 1c and the new Fig. 3);
* MinorCAN fixes the Fig. 1 scenarios but not Fig. 3;
* MajorCAN keeps AB1-AB5 everywhere;
* EDCAN keeps Agreement even in Fig. 3 but never had Total Order
  (Reliable Broadcast only); RELCAN and TOTCAN lose Agreement in
  Fig. 3 because their recovery only arms on transmitter failure.
"""

from _artifacts import report

from repro.properties.broadcast import AB2, AB3, AB5
from repro.properties.matrix import core_matrix, hlp_matrix, render_matrix


def test_bench_core_matrix(benchmark):
    cells = benchmark(core_matrix)
    verdicts = {(cell.protocol, cell.scenario): cell for cell in cells}
    assert verdicts[("CAN", "fig1b")].failed_properties() == [AB3]
    assert verdicts[("CAN", "fig1c")].failed_properties() == [AB2]
    assert verdicts[("CAN", "fig3")].failed_properties() == [AB2]
    assert verdicts[("MinorCAN", "fig1b")].atomic_broadcast
    assert verdicts[("MinorCAN", "fig3")].failed_properties() == [AB2]
    for scenario in ("clean", "fig1a", "fig1b", "fig1c", "fig3"):
        assert verdicts[("MajorCAN", scenario)].atomic_broadcast
    report("Property matrix — link-layer protocols", render_matrix(cells))


def test_bench_hlp_matrix(benchmark):
    cells = benchmark(hlp_matrix)
    verdicts = {(cell.protocol, cell.scenario): cell for cell in cells}
    assert AB2 not in verdicts[("EDCAN", "fig3")].failed_properties()
    assert AB5 in verdicts[("EDCAN", "fig3")].failed_properties()
    assert AB2 in verdicts[("RELCAN", "fig3")].failed_properties()
    assert AB2 in verdicts[("TOTCAN", "fig3")].failed_properties()
    report(
        "Property matrix — higher-level protocols (Rufino et al.)",
        render_matrix(cells),
    )
