"""Experiment E-F2: MinorCAN achieves consistency in the Fig. 1
scenarios (the paper's Fig. 2).

* Fig. 1a pattern — the disturbed node detects a primary error and
  accepts: all deliver once, still no retransmission;
* Fig. 1b pattern — the nodes fooled by the last-bit rule in standard
  CAN now see no primary error and reject with everyone else: one
  consistent retransmission, no double reception;
* Fig. 1c pattern — even with the transmitter crashing, the outcome is
  consistent (nobody delivers).
"""

from _artifacts import report

from repro.faults.scenarios import fig1a, fig1b, fig1c


def test_bench_fig2_pattern_a(benchmark):
    outcome = benchmark(fig1a, "minorcan")
    assert outcome.all_delivered_once
    assert outcome.attempts == 1
    report("Fig. 2 (1a pattern) — MinorCAN accepts via primary error", outcome.summary())


def test_bench_fig2_pattern_b(benchmark):
    outcome = benchmark(fig1b, "minorcan")
    assert outcome.all_delivered_once
    assert not outcome.double_reception
    assert outcome.attempts == 2
    report("Fig. 2 (1b pattern) — MinorCAN rejects consistently", outcome.summary())


def test_bench_fig2_pattern_c(benchmark):
    outcome = benchmark(fig1c, "minorcan")
    assert outcome.consistent
    assert not outcome.inconsistent_omission
    report("Fig. 2 (1c pattern) — MinorCAN consistent under crash", outcome.summary())
