"""Experiment E-MC: validating the probability model by exhaustive
enumeration and Monte-Carlo sampling.

The paper evaluates Table 1 analytically; direct simulation at
operational error rates (P ~ 1e-10 per frame) is infeasible for any
simulator, so the reproduction validates the *model*:

* exhaustive enumeration of all 64 tail error patterns for a 3-node
  network matches equation 4 to better than 0.1 %, and identifies the
  Fig. 3a pattern as the only minimal (2-error) IMO pattern;
* Monte-Carlo sampling over the same fault universe brackets the exact
  value;
* MajorCAN shows zero inconsistent patterns in the same universe.
"""

import pytest
from _artifacts import report

from repro.analysis.enumeration import (
    enumerate_tail_patterns,
    equation4_tail_prediction,
)
from repro.analysis.montecarlo import monte_carlo_tail


def test_bench_enumeration_vs_equation4(benchmark):
    result = benchmark(
        enumerate_tail_patterns, "can", 3, 2, 1e-4
    )
    predicted = equation4_tail_prediction(1e-4, 3, 110)
    assert result.p_inconsistent_omission == pytest.approx(predicted, rel=1e-3)
    minimal = [p for p in result.imo_patterns() if len(p) == 2]
    report(
        "Model validation — exhaustive tail enumeration (CAN, N=3)",
        "\n".join(
            [
                "P(IMO) enumerated : %.6e per frame" % result.p_inconsistent_omission,
                "P(IMO) equation 4 : %.6e per frame" % predicted,
                "minimal IMO patterns (node, EOF bit): %s"
                % ", ".join(str(p) for p in minimal),
                "P(double reception): %.6e per frame" % result.p_double_reception,
            ]
        ),
    )


def test_bench_enumeration_majorcan(benchmark):
    result = benchmark(
        enumerate_tail_patterns, "majorcan", 3, 2, 1e-4
    )
    assert result.p_inconsistent == 0.0
    report(
        "Model validation — MajorCAN_5 tail enumeration",
        "all %d patterns consistent; P(inconsistent) = 0" % len(result.outcomes),
    )


def test_bench_monte_carlo_tail(benchmark):
    mc = benchmark(
        monte_carlo_tail, "can", 3, 0.08, 300, 2, 5, 2024
    )
    exact = enumerate_tail_patterns("can", n_nodes=3, window=2, ber_star=0.08, tau_data=2)
    low, high = mc.imo_confidence_interval(z=3.0)
    assert low <= exact.p_inconsistent_omission <= high
    report(
        "Model validation — Monte-Carlo vs exact (ber*=0.08)",
        "MC P(IMO) = %.4f  [%.4f, %.4f]   exact = %.4f   (%d trials, %d flips)"
        % (
            mc.p_imo,
            low,
            high,
            exact.p_inconsistent_omission,
            mc.trials,
            mc.flips_total,
        ),
    )
