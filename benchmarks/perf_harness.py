#!/usr/bin/env python
"""Performance harness for the simulation workloads.

Measures the axes this repo's perf trajectory tracks:

* **simulated bits/sec** of the engine's inner loop — with per-bit
  recording (``record_bits=True``) and on the lean fast path
  (``record_bits=False``), which skips all per-bit dict and
  ``BitRecord`` construction;
* **simulated bits/sec** of the controller hot loop on the
  ``record_bits=False`` engine — the table-driven controller fast path
  (``ControllerConfig(fast_path=True)``, the default) versus the
  branchy reference state machine (``fast_path=False``);
* **trials/sec** of the statistical workloads (Monte-Carlo sampling
  and bounded exhaustive verification) — serial (``jobs=1``) versus
  fanned out over the ``repro.parallel`` worker pool;
* **placements/sec** of the batch-replay backend
  (``backend="batch"``, :mod:`repro.analysis.batchreplay`) versus one
  engine run per placement on the same ``verify_consistency``
  universe — the two backends' verdicts are asserted identical before
  the speedup is reported;
* **engine vs batch wall-clock** on the header-dominated
  ``m_ablation check_f1`` sweep (ablation rows asserted identical) and
  on seeded ``monte_carlo_tail`` runs (counts asserted bit-identical)
  — the PR 5 header-site backend and chunked Monte-Carlo draws;
* **engine vs batch wall-clock** on the PR 6 workloads: the full
  ≤ 2-flip header+tail combo universe (per-combo verdicts asserted
  identical to an engine oracle), ``run_campaign`` rounds (campaign
  rows asserted identical) and the enumerated
  ``reliability_comparison`` rates (rows asserted identical);
* **frames/sec of steady-state traffic** (PR 7,
  :mod:`repro.traffic`): the same multi-window run driven through the
  controller fast path and the reference state machine (ledgers
  asserted identical, the ratio gated), plus — full runs only — the
  paper-profile sustained run (32 nodes at 90% load, ≥ 5,000 frames)
  whose absolute throughput is recorded ungated;
* **engine vs batch sweep cells** (PR 8, :mod:`repro.sweep`): the same
  small design-space grid evaluated through ``run_sweep`` on both
  backends into fresh result stores (stored payloads asserted
  identical, the ratio gated), plus a re-run that must evaluate zero
  cells — the content-addressed store's incrementality;
* **engine vs frame-granular traffic windows** (PR 9,
  :mod:`repro.traffic.batch`): one clean contended profile replayed
  on both traffic backends with cold window caches, the full
  serialized surface plus ledger/stats/properties asserted identical,
  the ratio gated at >= 3x with a zero-window engine share;
* **engine vs vectorised noise** (PR 10,
  :mod:`repro.analysis.noisebatch`): one noisy contended traffic
  profile and one noisy campaign schedule, each run on both backends
  with cold caches — the flip scan classifies zero-flip
  windows/rounds closed-form and resumes the engine from the first
  flip — surfaces asserted identical, both ratios gated at >= 3x.

Writes a JSON report (default ``BENCH_PR10.json`` in the repo root)
recording the raw rates, the speedups, and the host's CPU budget —
parallel speedup is physically bounded by ``cpu_count``, so the file
keeps that context alongside the numbers.

Usage::

    python benchmarks/perf_harness.py [--smoke] [--jobs N] [--out PATH]
        [--section NAME ...]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)


def bench_engine_bits(frames: int, record_bits: bool) -> Dict[str, float]:
    """Simulated bits/sec of one engine pushing ``frames`` frames."""
    from repro.can.controller import CanController
    from repro.can.frame import data_frame
    from repro.simulation.engine import SimulationEngine

    nodes = [CanController(name) for name in ("tx", "r1", "r2")]
    engine = SimulationEngine(nodes, record_bits=record_bits)
    for index in range(frames):
        nodes[0].submit(data_frame(0x100 + (index % 0x200), b"\x55\xaa"))
    started = time.perf_counter()
    engine.run_until_idle(max_bits=10_000_000)
    elapsed = time.perf_counter() - started
    return {
        "frames": frames,
        "bits": engine.time,
        "seconds": elapsed,
        "bits_per_sec": engine.time / elapsed if elapsed else float("inf"),
    }


def _fast_path_engine(frames: int):
    from repro.can.controller import CanController
    from repro.can.frame import data_frame
    from repro.simulation.engine import SimulationEngine

    nodes = [CanController(name) for name in ("tx", "r1", "r2")]
    engine = SimulationEngine(nodes, record_bits=False)
    for index in range(frames):
        nodes[0].submit(data_frame(0x100 + (index % 0x200), b"\x55\xaa"))
    return engine


def bench_fast_path_capture(frames: int) -> Dict[str, float]:
    """Fast-path engine run *plus* a post-run trace-store dump.

    The trace store takes no per-bit hook: capture reads the bus history
    and the controller event streams after the run, so the only cost
    recording adds to a ``record_bits=False`` run is a one-time
    serialization pass that amortises over the run's length.  This
    measures that end-to-end cost against :func:`bench_fast_path_bare`.
    """
    import tempfile

    from repro.tracestore.recorder import TraceRecorder, event_record

    engine = _fast_path_engine(frames)
    started = time.perf_counter()
    engine.run_until_idle(max_bits=10_000_000)
    with tempfile.TemporaryDirectory() as tmp:
        with TraceRecorder(os.path.join(tmp, "bench.jsonl")) as recorder:
            recorder.write_record(
                {
                    "type": "bus",
                    "levels": "".join(
                        level.symbol for level in engine.bus.history
                    ),
                }
            )
            recorder.write_records(
                event_record(event) for event in engine.trace.events
            )
    elapsed = time.perf_counter() - started
    return {
        "frames": frames,
        "bits": engine.time,
        "seconds": elapsed,
        "bits_per_sec": engine.time / elapsed if elapsed else float("inf"),
    }


def bench_fast_path_bare(frames: int) -> Dict[str, float]:
    """The identical fast-path engine workload without the dump."""
    engine = _fast_path_engine(frames)
    started = time.perf_counter()
    engine.run_until_idle(max_bits=10_000_000)
    elapsed = time.perf_counter() - started
    return {
        "frames": frames,
        "bits": engine.time,
        "seconds": elapsed,
        "bits_per_sec": engine.time / elapsed if elapsed else float("inf"),
    }


def bench_controller(frames: int, fast_path: bool) -> Dict[str, float]:
    """Simulated bits/sec of the controller hot loop.

    Runs the same three-node workload as :func:`bench_engine_bits` on
    the ``record_bits=False`` engine — where per-bit cost is dominated
    by ``CanController.drive`` / ``on_bit`` — with the table-driven
    fast path either enabled (the default configuration) or disabled
    (the branchy reference state machine kept for differential
    testing).
    """
    from repro.can.controller import CanController
    from repro.can.controller_config import ControllerConfig
    from repro.can.frame import data_frame
    from repro.simulation.engine import SimulationEngine

    config = ControllerConfig(fast_path=fast_path)
    nodes = [CanController(name, config) for name in ("tx", "r1", "r2")]
    engine = SimulationEngine(nodes, record_bits=False)
    for index in range(frames):
        nodes[0].submit(data_frame(0x100 + (index % 0x200), b"\x55\xaa"))
    started = time.perf_counter()
    engine.run_until_idle(max_bits=10_000_000)
    elapsed = time.perf_counter() - started
    return {
        "frames": frames,
        "fast_path": fast_path,
        "bits": engine.time,
        "seconds": elapsed,
        "bits_per_sec": engine.time / elapsed if elapsed else float("inf"),
    }


def bench_montecarlo(trials: int, jobs: int) -> Dict[str, float]:
    """Trials/sec of the tail-window Monte-Carlo workload (E-MC)."""
    from repro.analysis.montecarlo import monte_carlo_tail

    started = time.perf_counter()
    monte_carlo_tail("can", n_nodes=3, ber_star=0.08, trials=trials, seed=7, jobs=jobs)
    elapsed = time.perf_counter() - started
    return {
        "trials": trials,
        "jobs": jobs,
        "seconds": elapsed,
        "trials_per_sec": trials / elapsed if elapsed else float("inf"),
    }


def bench_verify(max_flips: int, jobs: int) -> Dict[str, float]:
    """Placements/sec of the bounded exhaustive verification (E-VER)."""
    from repro.analysis.verification import verify_consistency

    started = time.perf_counter()
    result = verify_consistency("can", m=5, n_nodes=3, max_flips=max_flips, jobs=jobs)
    elapsed = time.perf_counter() - started
    return {
        "placements": result.runs,
        "jobs": jobs,
        "seconds": elapsed,
        "placements_per_sec": result.runs / elapsed if elapsed else float("inf"),
    }


def bench_batch_enumeration(max_flips: int, protocol: str = "can") -> Dict:
    """Engine vs batch backend on one ``verify_consistency`` universe.

    Runs the identical placement universe through both backends,
    asserts the verdicts match placement for placement, and reports
    the wall-clock speedup (the PR 4 acceptance bar is >= 5x on the
    full-size ``can``/2-flip universe).  Both sides are best-of-3 with
    the batch side timed from cold work caches, like the later batch
    sections — a single engine pass is a noisy denominator for a gated
    ratio.
    """
    from repro.analysis.batchreplay import HAVE_NUMPY, clear_caches
    from repro.analysis.verification import verify_consistency

    engine_elapsed, engine = _timed_best(
        lambda: verify_consistency(
            protocol, m=5, n_nodes=3, max_flips=max_flips, jobs=1
        )
    )

    def batch_run():
        clear_caches()
        return verify_consistency(
            protocol, m=5, n_nodes=3, max_flips=max_flips, jobs=1,
            backend="batch",
        )

    batch_elapsed, batch = _timed_best(batch_run)
    identical = engine.runs == batch.runs and [
        str(c) for c in engine.counterexamples
    ] == [str(c) for c in batch.counterexamples]
    if not identical:
        raise AssertionError(
            "batch backend diverged from the engine on %s flips=%d"
            % (protocol, max_flips)
        )
    return {
        "protocol": protocol,
        "max_flips": max_flips,
        "placements": engine.runs,
        "counterexamples": len(engine.counterexamples),
        "verdicts_identical": identical,
        "vector_backend": "numpy" if HAVE_NUMPY else "python",
        "engine": {
            "seconds": engine_elapsed,
            "placements_per_sec": (
                engine.runs / engine_elapsed if engine_elapsed else float("inf")
            ),
        },
        "batch": {
            "seconds": batch_elapsed,
            "placements_per_sec": (
                batch.runs / batch_elapsed if batch_elapsed else float("inf")
            ),
        },
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def _timed_best(run, repeats: int = 3):
    """Best-of-``repeats`` wall time for ``run()`` plus its last result.

    The batch-side denominators here are a few milliseconds, so a
    single sample makes the gated speedup ratios noisy; the minimum
    over a few repeats is the standard stable estimator.
    """
    best = None
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_header_enumeration() -> Dict:
    """Engine vs batch on the ``m_ablation check_f1`` sweep (PR 5).

    The ``check_f1`` verification is dominated by header placements —
    the universe PR 4's tail model bailed to the engine for.  Runs the
    full sweep through both backends, asserts the ablation rows are
    identical, and reports the wall-clock speedup (the PR 5 acceptance
    bar is >= 5x).

    Both sides get one untimed warm-up row so the infrastructure
    caches (wire programs, tail/header shapes — pre-expanded by the
    worker-pool initializer in production) are hot; the per-sweep
    *work* caches (header class runs, combo verdicts) are cleared
    inside every timed batch sweep so it pays for its own reduced
    engine runs and memoisation.  The universe is identical in smoke
    and full runs — the perf gate compares the ratio across reports.
    """
    from repro.analysis.batchreplay import (
        _HEADER_CLASS_CACHE,
        HAVE_NUMPY,
        clear_caches,
        warm_shapes,
    )
    from repro.analysis.sweeps import m_ablation

    m_values = (3, 4, 5, 6, 7)
    warm_shapes()
    m_ablation(m_values=m_values[:1], check_f1=True, jobs=1)
    m_ablation(m_values=m_values[:1], check_f1=True, jobs=1, backend="batch")
    engine_elapsed, engine_rows = _timed_best(
        lambda: m_ablation(m_values=m_values, check_f1=True, jobs=1)
    )

    def batch_sweep():
        clear_caches()
        return m_ablation(
            m_values=m_values, check_f1=True, jobs=1, backend="batch"
        )

    batch_elapsed, batch_rows = _timed_best(batch_sweep)
    from dataclasses import replace

    # The rows carry backend provenance counters (None on the engine,
    # a dict on the batch backend); equality is over everything else.
    strip = lambda rows: [  # noqa: E731
        replace(row, backend_stats=None) for row in rows
    ]
    if strip(engine_rows) != strip(batch_rows):
        raise AssertionError(
            "batch m_ablation rows diverged from the engine"
        )
    placements = sum(row.tail_errors_verified for row in engine_rows)
    return {
        "m_values": list(m_values),
        "check_f1": True,
        "tail_placements": placements,
        "header_class_runs": len(_HEADER_CLASS_CACHE),
        "rows_identical": True,
        "vector_backend": "numpy" if HAVE_NUMPY else "python",
        "engine": {"seconds": engine_elapsed},
        "batch": {"seconds": batch_elapsed},
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def bench_montecarlo_batch(trials: int) -> Dict:
    """Engine vs batch ``monte_carlo_tail`` at one seed (PR 5).

    Both runs draw their placements from the same seeded chunked
    matrices, so every count must be bit-identical; the speedup (PR 5
    acceptance bar: >= 3x at default trial counts) measures the
    vectorised draw + batch classification against one engine run per
    fault-bearing trial.  As in :func:`bench_header_enumeration`, both
    sides get a small untimed warm-up, every timed batch run starts
    with cold work caches, and timings are best-of-3 over a universe
    identical in smoke and full runs.
    """
    from repro.analysis.batchreplay import clear_caches, warm_shapes
    from repro.analysis.montecarlo import monte_carlo_tail

    warm_shapes()
    monte_carlo_tail("can", n_nodes=3, ber_star=0.08, trials=8, seed=7, jobs=1)
    monte_carlo_tail(
        "can", n_nodes=3, ber_star=0.08, trials=8, seed=7, jobs=1,
        backend="batch",
    )
    engine_elapsed, engine = _timed_best(
        lambda: monte_carlo_tail(
            "can", n_nodes=3, ber_star=0.08, trials=trials, seed=7, jobs=1
        )
    )

    def batch_run():
        clear_caches()
        return monte_carlo_tail(
            "can",
            n_nodes=3,
            ber_star=0.08,
            trials=trials,
            seed=7,
            jobs=1,
            backend="batch",
        )

    batch_elapsed, batch = _timed_best(batch_run)
    counts = lambda r: (  # noqa: E731
        r.imo,
        r.double_reception,
        r.inconsistent,
        r.no_fault_trials,
        r.flips_total,
    )
    if counts(engine) != counts(batch):
        raise AssertionError(
            "batch monte_carlo_tail counts diverged from the engine"
        )
    return {
        "trials": trials,
        "counts_identical": True,
        "flips_total": engine.flips_total,
        "backend_stats": batch.backend_stats,
        "engine": {
            "seconds": engine_elapsed,
            "trials_per_sec": (
                trials / engine_elapsed if engine_elapsed else float("inf")
            ),
        },
        "batch": {
            "seconds": batch_elapsed,
            "trials_per_sec": (
                trials / batch_elapsed if batch_elapsed else float("inf")
            ),
        },
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def bench_multiflip_header(
    protocol: str = "can", m: int = 5, n_nodes: int = 6
) -> Dict:
    """Engine oracle vs batch on the full ≤2-flip combo universe (PR 6).

    The universe mixes every header site with every EOF site — all
    singles, all pairs and the clean combo — over an empty-payload
    frame, the universe shape the tier-1 differential suite checks at
    three nodes.  Six nodes is where the batch design earns its keep:
    receiver symmetry folds the ~2.2k raw combos onto a far smaller
    canonical set, while the engine oracle pays full price per combo.
    Every verdict is asserted identical to the per-combo engine run
    before the speedup is reported (the PR 6 acceptance bar is >= 5x).
    """
    import itertools

    from repro.analysis.batchreplay import (
        HAVE_NUMPY,
        BatchReplayEvaluator,
        clear_caches,
        warm_shapes,
    )
    from repro.analysis.verification import header_sites
    from repro.can.fields import EOF
    from repro.can.frame import data_frame
    from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
    from repro.faults.scenarios import make_controller, run_single_frame_scenario

    node_names = tuple(
        ["tx"] + ["r%d" % index for index in range(1, n_nodes)]
    )
    frame = data_frame(0x123, b"", message_id="bench")
    probe = make_controller(protocol, "probe", m=m)
    sites = list(header_sites(node_names, data_bits=0))
    sites += [
        (name, EOF, index)
        for name in node_names
        for index in range(probe.config.eof_length)
    ]
    combos = (
        [()]
        + [(site,) for site in sites]
        + list(itertools.combinations(sites, 2))
    )

    def engine_pass():
        results = []
        for combo in combos:
            nodes = [
                make_controller(protocol, name, m=m) for name in node_names
            ]
            faults = [
                ViewFault(name, Trigger(field=field, index=index), force=None)
                for name, field, index in combo
            ]
            outcome = run_single_frame_scenario(
                "bench-multiflip",
                nodes,
                ScriptedInjector(view_faults=faults),
                frame=frame,
                record_bits=False,
            )
            results.append(
                (
                    tuple(outcome.deliveries[name] for name in node_names),
                    outcome.attempts,
                )
            )
        return results

    def batch_pass():
        clear_caches()
        evaluator = BatchReplayEvaluator(protocol, m, node_names, frame=frame)
        return (
            [(o.deliveries, o.attempts) for o in evaluator.evaluate(combos)],
            dict(evaluator.stats),
        )

    warm_shapes()
    batch_pass()  # untimed warm-up: pays the shape compile for ``frame``
    engine_elapsed, engine_verdicts = _timed_best(engine_pass)
    batch_elapsed, (batch_verdicts, stats) = _timed_best(batch_pass)
    if engine_verdicts != batch_verdicts:
        raise AssertionError(
            "batch multi-flip verdicts diverged from the engine oracle"
        )
    return {
        "protocol": protocol,
        "m": m,
        "n_nodes": n_nodes,
        "combos": len(combos),
        "verdicts_identical": True,
        "backend_stats": stats,
        "engine_share": stats["engine"] / len(combos),
        "vector_backend": "numpy" if HAVE_NUMPY else "python",
        "engine": {
            "seconds": engine_elapsed,
            "combos_per_sec": (
                len(combos) / engine_elapsed if engine_elapsed else float("inf")
            ),
        },
        "batch": {
            "seconds": batch_elapsed,
            "combos_per_sec": (
                len(combos) / batch_elapsed if batch_elapsed else float("inf")
            ),
        },
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def bench_campaign_batch(rounds: int = 96) -> Dict:
    """Engine vs batch ``run_campaign`` at one seed (PR 6).

    Both backends replay the identical seeded round schedule; the full
    campaign surface (summary row, per-round omission indices, attack
    and injection counters) is asserted identical before the speedup
    is reported (the PR 6 acceptance bar is >= 3x).  The round count is
    the same in smoke and full runs, so the gated ratio is apples to
    apples across reports.
    """
    from repro.analysis.batchreplay import clear_caches, warm_shapes
    from repro.faults.campaigns import CampaignSpec, run_campaign

    spec = CampaignSpec(
        protocol="can",
        n_nodes=4,
        rounds=rounds,
        attack_probability=0.5,
        seed=17,
    )
    warm_up = CampaignSpec(
        protocol="can", n_nodes=4, rounds=2, attack_probability=0.5, seed=17
    )
    warm_shapes()
    run_campaign(warm_up, backend="engine")
    run_campaign(warm_up, backend="batch")  # compiles the campaign frame shape

    def surface(outcome):
        return (
            outcome.as_row(),
            outcome.omission_rounds,
            outcome.attacked_rounds,
            outcome.errors_injected,
        )

    engine_elapsed, engine = _timed_best(
        lambda: run_campaign(spec, backend="engine")
    )

    def batch_run():
        clear_caches()
        return run_campaign(spec, backend="batch")

    batch_elapsed, batch = _timed_best(batch_run)
    if surface(engine) != surface(batch):
        raise AssertionError("batch campaign rows diverged from the engine")
    return {
        "protocol": spec.protocol,
        "rounds": rounds,
        "rows_identical": True,
        "backend_stats": dict(batch.backend_stats),
        "engine_share": batch.backend_stats.get("engine", 0) / rounds,
        "engine": {
            "seconds": engine_elapsed,
            "rounds_per_sec": (
                rounds / engine_elapsed if engine_elapsed else float("inf")
            ),
        },
        "batch": {
            "seconds": batch_elapsed,
            "rounds_per_sec": (
                rounds / batch_elapsed if batch_elapsed else float("inf")
            ),
        },
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def bench_reliability_batch(ber: float = 1e-5) -> Dict:
    """Engine vs batch enumerated ``reliability_comparison`` (PR 6).

    Both backends enumerate the identical tail-window pattern universe
    per protocol and must produce the same measured IMO rates; the
    row surface is asserted identical before the speedup is reported
    (the PR 6 acceptance bar is >= 3x).
    """
    from repro.analysis.batchreplay import clear_caches, warm_shapes
    from repro.analysis.reliability import reliability_comparison

    def surface(rows):
        return [
            (
                row.protocol,
                row.ber,
                row.imo_rate_per_hour,
                row.mttf_hours,
                row.mission_survival,
            )
            for row in rows
        ]

    warm_shapes()
    reliability_comparison(ber, backend="engine")
    reliability_comparison(ber, backend="batch")
    engine_elapsed, engine = _timed_best(
        lambda: reliability_comparison(ber, backend="engine")
    )

    def batch_run():
        clear_caches()
        return reliability_comparison(ber, backend="batch")

    batch_elapsed, batch = _timed_best(batch_run)
    if surface(engine) != surface(batch):
        raise AssertionError(
            "batch reliability rows diverged from the engine"
        )
    stats = {}
    for row in batch:
        for key, value in (row.backend_stats or {}).items():
            stats[key] = stats.get(key, 0) + value
    total = sum(stats.values())
    return {
        "ber": ber,
        "protocols": [row.protocol for row in engine],
        "rows_identical": True,
        "backend_stats": stats,
        "engine_share": (stats.get("engine", 0) / total) if total else 0.0,
        "engine": {"seconds": engine_elapsed},
        "batch": {"seconds": batch_elapsed},
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def bench_traffic_steady_state(smoke: bool) -> Dict:
    """Steady-state traffic throughput (PR 7, :mod:`repro.traffic`).

    The gated part runs one small multi-window contended workload —
    identical in smoke and full runs — through the controller fast
    path and the branchy reference state machine, asserts the two
    produce the identical serialized run (schedule, bus, events,
    per-frame verdicts, aggregate verdict), and reports the wall-clock
    ratio.  Driver overhead (scheduling, ledger bookkeeping, splicing)
    is common to both sides, so a regression there drags the ratio
    toward 1 and trips the gate even though both runs slow down
    together.

    Full runs add the paper-profile acceptance workload — 32 MajorCAN_5
    nodes at 90% bus load, four spliced windows, >= 5,000 frames — and
    record its absolute frames/sec ungated (absolute rates vary with
    the host; the ratio above is the portable signal).
    """
    from repro.metrics.export import json_line
    from repro.traffic import TrafficSpec, run_traffic, traffic_records

    def run(fast_path: bool):
        spec = TrafficSpec(
            name="bench-traffic",
            protocol="majorcan",
            m=5,
            n_nodes=6,
            windows=2,
            window_bits=1200,
            load=0.9,
            seed=13,
            fast_path=fast_path,
        )
        return run_traffic(spec, jobs=1)

    fast_elapsed, fast = _timed_best(lambda: run(True))
    ref_elapsed, ref = _timed_best(lambda: run(False))

    def surface(outcome):
        # Everything but the manifest — the fast_path knob lives there.
        return [json_line(r) for r in traffic_records(outcome)][1:]

    if surface(fast) != surface(ref):
        raise AssertionError(
            "traffic run diverged between the controller fast path and "
            "the reference state machine"
        )
    frames = fast.stats.frames_submitted
    bits = fast.stats.total_bits
    report = {
        "protocol": "majorcan",
        "n_nodes": 6,
        "windows": 2,
        "frames": frames,
        "bits": bits,
        "ledgers_identical": True,
        "atomic": fast.atomic,
        "reference": {
            "seconds": ref_elapsed,
            "frames_per_sec": (
                frames / ref_elapsed if ref_elapsed else float("inf")
            ),
        },
        "fast_path": {
            "seconds": fast_elapsed,
            "frames_per_sec": (
                frames / fast_elapsed if fast_elapsed else float("inf")
            ),
        },
        "speedup": ref_elapsed / fast_elapsed if fast_elapsed else float("inf"),
    }
    if not smoke:
        spec = TrafficSpec(
            name="paper-profile",
            protocol="majorcan",
            m=5,
            n_nodes=32,
            windows=4,
            window_bits=153_000,
            load=0.9,
            seed=2026,
            record_events=False,
            max_window_bits=400_000,
        )
        started = time.perf_counter()
        outcome = run_traffic(spec, jobs=1)
        elapsed = time.perf_counter() - started
        stats = outcome.stats
        report["paper_profile"] = {
            "protocol": spec.protocol,
            "n_nodes": spec.n_nodes,
            "load": spec.load,
            "windows": spec.windows,
            "window_bits": spec.window_bits,
            "frames": stats.frames_submitted,
            "delivered": stats.delivered,
            "bits": stats.total_bits,
            "bus_load": stats.bus_load,
            "atomic": outcome.atomic,
            "seconds": elapsed,
            "frames_per_sec": (
                stats.frames_submitted / elapsed if elapsed else float("inf")
            ),
            "bits_per_sec": (
                stats.total_bits / elapsed if elapsed else float("inf")
            ),
        }
    return report


def bench_sweep() -> Dict:
    """Engine vs batch design-space sweep cells (PR 8, :mod:`repro.sweep`).

    Runs one small sweep grid — two protocols x two BERs x two node
    counts, identical in smoke and full runs — through ``run_sweep``
    on both backends into fresh stores, asserts the stored result
    payloads are identical cell for cell (the backend is part of the
    key, so equality is checked on the physics, not the hashes), and
    reports the wall-clock speedup (the PR 8 acceptance bar is >= 3x).
    Timings are best-of-3 into a fresh store per repeat so every run
    evaluates the full grid; the batch side starts from cold work
    caches like the other batch sections.  A final re-run into the
    populated batch store must evaluate zero cells — the store's
    incrementality, measured where it is claimed.
    """
    import itertools
    import tempfile

    from repro.analysis.batchreplay import HAVE_NUMPY, clear_caches, warm_shapes
    from repro.metrics.export import json_line
    from repro.sweep import ResultStore, SweepSpec, run_sweep

    spec = SweepSpec(
        name="bench-sweep",
        protocols=("can", "majorcan"),
        m_values=(5,),
        bers=(1e-5, 1e-4),
        bit_rates=(500_000.0,),
        bus_lengths_m=(30.0,),
        payloads=(1,),
        node_counts=(3, 4),
        window=2,
        max_flips=2,
    )
    cells = spec.cell_count()
    warm_shapes()
    with tempfile.TemporaryDirectory() as tmp:
        counter = itertools.count()

        def run_with(backend):
            store = ResultStore(
                os.path.join(tmp, "%s-%d" % (backend, next(counter)))
            )
            return store, run_sweep(spec, store, jobs=1, backend=backend)

        run_with("engine")
        run_with("batch")  # untimed warm-up on both backends
        engine_elapsed, (engine_store, _) = _timed_best(
            lambda: run_with("engine")
        )

        def batch_run():
            clear_caches()
            return run_with("batch")

        batch_elapsed, (batch_store, _) = _timed_best(batch_run)

        def physics(store):
            return {
                json_line(record["cell"]): {
                    key: value
                    for key, value in record["result"].items()
                    if key != "backend_stats"
                }
                for record in store.records().values()
            }

        if physics(engine_store) != physics(batch_store):
            raise AssertionError(
                "batch sweep results diverged from the engine backend"
            )
        rerun = run_sweep(spec, batch_store, jobs=1, backend="batch")
        if rerun.evaluated != 0:
            raise AssertionError(
                "completed sweep re-evaluated %d cells" % rerun.evaluated
            )
    return {
        "cells": cells,
        "window": spec.window,
        "max_flips": spec.max_flips,
        "results_identical": True,
        "rerun_evaluated": rerun.evaluated,
        "vector_backend": "numpy" if HAVE_NUMPY else "python",
        "engine": {
            "seconds": engine_elapsed,
            "cells_per_sec": (
                cells / engine_elapsed if engine_elapsed else float("inf")
            ),
        },
        "batch": {
            "seconds": batch_elapsed,
            "cells_per_sec": (
                cells / batch_elapsed if batch_elapsed else float("inf")
            ),
        },
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def bench_traffic_batch() -> Dict:
    """Engine vs frame-granular traffic windows (PR 9, :mod:`repro.traffic.batch`).

    Runs one clean contended profile — six MajorCAN_5 nodes at 90%
    load, identical in smoke and full runs — through ``run_traffic``
    on the per-bit engine and the frame-granular batch backend, then
    asserts the *entire* observable surface identical: every
    serialized schema-v2 record (schedule, spliced bus, events,
    per-frame verdicts, aggregate verdict) plus the ledger,
    ``TrafficStats`` and the AB1–AB5 property booleans compared
    directly.  The spec is fault-free, so the engine-fallback share
    must be exactly zero windows.  The batch timing clears the window
    memo cache inside every repeat — the gated ratio measures the
    evaluator, not the cache — and the PR 9 acceptance bar for
    ``speedup`` is >= 3x.
    """
    from repro.metrics.export import json_line
    from repro.traffic import (
        TrafficSpec,
        clear_window_cache,
        run_traffic,
        traffic_records,
    )

    spec = TrafficSpec(
        name="bench-traffic-batch",
        protocol="majorcan",
        m=5,
        n_nodes=6,
        windows=2,
        window_bits=2400,
        load=0.9,
        seed=13,
    )

    engine_elapsed, engine = _timed_best(lambda: run_traffic(spec, jobs=1))

    def batch_run():
        clear_window_cache()
        return run_traffic(spec, jobs=1, backend="batch")

    batch_elapsed, batch = _timed_best(batch_run)

    def lines(outcome):
        return [json_line(record) for record in traffic_records(outcome)]

    if lines(batch) != lines(engine):
        raise AssertionError(
            "batch traffic run diverged from the per-bit engine"
        )
    if (
        batch.ledger != engine.ledger
        or batch.stats != engine.stats
        or batch.properties != engine.properties
    ):
        raise AssertionError(
            "batch traffic ledger/stats/properties diverged from the engine"
        )
    if batch.backend_stats != {"batch": spec.windows}:
        raise AssertionError(
            "fault-free spec fell back to the engine: %r"
            % (batch.backend_stats,)
        )
    frames = batch.stats.frames_submitted
    return {
        "protocol": spec.protocol,
        "n_nodes": spec.n_nodes,
        "windows": spec.windows,
        "window_bits": spec.window_bits,
        "frames": frames,
        "bits": batch.stats.total_bits,
        "ledgers_identical": True,
        "atomic": batch.atomic,
        "engine_windows": 0,
        "engine": {
            "seconds": engine_elapsed,
            "frames_per_sec": (
                frames / engine_elapsed if engine_elapsed else float("inf")
            ),
        },
        "batch": {
            "seconds": batch_elapsed,
            "frames_per_sec": (
                frames / batch_elapsed if batch_elapsed else float("inf")
            ),
        },
        "speedup": (
            engine_elapsed / batch_elapsed if batch_elapsed else float("inf")
        ),
    }


def bench_noise_batch() -> Dict:
    """Engine vs vectorised noise scans (PR 10, :mod:`repro.analysis.noisebatch`).

    Two halves, both draw-order-preserving and asserted bit-identical
    before any timing is reported:

    * **traffic** — a contended MajorCAN profile with seeded per-bit
      noise at a realistic BER; the batch side scans each window's
      whole noise-draw prefix vectorised, returns the memoised clean
      replay when the scan comes back empty, and resumes the engine
      from the first flip otherwise.  The full serialized schema-v2
      surface must match the per-bit engine and the full-engine share
      must stay under 10% of windows.
    * **campaign** — a noisy seeded campaign; zero-flip rounds classify
      through the combo evaluator, flipped rounds rewind the generator
      and re-run on the engine.  The campaign surface must match.

    Both sides are best-of-3; every timed batch repeat starts from cold
    work caches (the window memo, the batch-replay caches and the
    campaign round-reference cache are cleared inside the repeat), so
    the gated ratios measure the scan + dispatch, not cache reuse.  The
    universes are identical in smoke and full runs; the PR 10
    acceptance bar is >= 3x on each half.
    """
    from repro.analysis.batchreplay import HAVE_NUMPY, clear_caches
    from repro.faults.campaigns import _ROUND_REFERENCE, CampaignSpec, run_campaign
    from repro.metrics.export import json_line
    from repro.traffic import (
        TrafficSpec,
        clear_window_cache,
        run_traffic,
        traffic_records,
    )

    traffic_spec = TrafficSpec(
        name="bench-noise-traffic",
        protocol="majorcan",
        m=3,
        n_nodes=4,
        windows=40,
        window_bits=900,
        load=0.55,
        seed=11,
        noise_ber=2e-5,
    )

    def lines(outcome):
        return [json_line(record) for record in traffic_records(outcome)]

    traffic_engine_elapsed, traffic_engine = _timed_best(
        lambda: run_traffic(traffic_spec, jobs=1)
    )

    def traffic_batch_run():
        clear_window_cache()
        clear_caches()
        return run_traffic(traffic_spec, jobs=1, backend="batch")

    traffic_batch_elapsed, traffic_batch = _timed_best(traffic_batch_run)
    if lines(traffic_batch) != lines(traffic_engine):
        raise AssertionError(
            "noisy batch traffic run diverged from the per-bit engine"
        )
    split = dict(traffic_batch.backend_stats or {})
    engine_share = split.get("engine", 0) / traffic_spec.windows
    if engine_share >= 0.10:
        raise AssertionError(
            "noisy traffic full-engine share %.1f%% breaches the 10%% "
            "bound: %r" % (engine_share * 100.0, split)
        )

    campaign_spec = CampaignSpec(
        protocol="majorcan",
        n_nodes=4,
        rounds=60,
        attack_probability=0.4,
        noise_ber_star=2e-5,
        seed=17,
    )

    def campaign_surface(outcome):
        return (
            outcome.as_row(),
            outcome.omission_rounds,
            outcome.attacked_rounds,
            outcome.errors_injected,
        )

    campaign_engine_elapsed, campaign_engine = _timed_best(
        lambda: run_campaign(campaign_spec, backend="engine")
    )

    def campaign_batch_run():
        clear_caches()
        _ROUND_REFERENCE.clear()
        return run_campaign(campaign_spec, backend="batch")

    campaign_batch_elapsed, campaign_batch = _timed_best(campaign_batch_run)
    if campaign_surface(campaign_batch) != campaign_surface(campaign_engine):
        raise AssertionError(
            "noisy batch campaign rows diverged from the engine"
        )
    campaign_split = dict(campaign_batch.backend_stats or {})
    campaign_share = campaign_split.get("engine", 0) / campaign_spec.rounds
    if campaign_share >= 0.10:
        raise AssertionError(
            "noisy campaign engine share %.1f%% breaches the 10%% bound: %r"
            % (campaign_share * 100.0, campaign_split)
        )

    return {
        "vector_backend": "numpy" if HAVE_NUMPY else "python",
        "traffic": {
            "protocol": traffic_spec.protocol,
            "m": traffic_spec.m,
            "n_nodes": traffic_spec.n_nodes,
            "windows": traffic_spec.windows,
            "noise_ber": traffic_spec.noise_ber,
            "records_identical": True,
            "backend_stats": split,
            "engine_share": engine_share,
            "engine": {"seconds": traffic_engine_elapsed},
            "batch": {"seconds": traffic_batch_elapsed},
            "speedup": (
                traffic_engine_elapsed / traffic_batch_elapsed
                if traffic_batch_elapsed
                else float("inf")
            ),
        },
        "campaign": {
            "protocol": campaign_spec.protocol,
            "rounds": campaign_spec.rounds,
            "noise_ber_star": campaign_spec.noise_ber_star,
            "rows_identical": True,
            "backend_stats": campaign_split,
            "engine_share": campaign_share,
            "engine": {"seconds": campaign_engine_elapsed},
            "batch": {"seconds": campaign_batch_elapsed},
            "speedup": (
                campaign_engine_elapsed / campaign_batch_elapsed
                if campaign_batch_elapsed
                else float("inf")
            ),
        },
    }


def _speedup(base: float, fast: float) -> float:
    return fast / base if base else float("inf")


#: Report sections in run order; ``--section`` picks a subset.
SECTIONS = (
    "engine",
    "controller",
    "capture",
    "montecarlo",
    "verify",
    "batch_enumeration",
    "header_enumeration",
    "montecarlo_batch",
    "multiflip_header",
    "campaign_batch",
    "reliability_batch",
    "traffic_steady_state",
    "traffic_batch",
    "sweep",
    "noise_batch",
)


def run_harness(jobs: int, smoke: bool, sections=None) -> Dict:
    """Run the selected benchmarks and assemble the report dict."""
    from repro.parallel.pool import cpu_count

    wanted = set(sections) if sections else set(SECTIONS)
    frames = 8 if smoke else 60
    trials = 32 if smoke else 256
    flips = 1 if smoke else 2
    # The engine and controller sections feed gated speedup ratios
    # (tools/perf_gate.py), so their workload must match the committed
    # full-run baseline even under --smoke: at 8 frames the fixed
    # per-run setup is not amortised and the ratio reads systematically
    # low.  A 60-frame run costs ~0.1s, so smoke keeps it.
    gated_frames = 60

    report = {
        "bench": "PR10 vectorised noise classification (+ PR9 "
        "frame-granular traffic batch backend, PR8 "
        "resumable design-space sweep service, PR7 "
        "steady-state traffic engine, PR6 multi-flip combo classification "
        "and campaign/reliability batch backends, PR5 header-site backend, "
        "PR4 vectorised enumeration, PR3 controller fast path, PR1 "
        "parallel trials)",
        "smoke": smoke,
        "host": {
            "cpu_count": cpu_count(),
            "python": sys.version.split()[0],
            "note": "parallel speedup is bounded above by cpu_count; "
            "the determinism contract (jobs=1 == jobs=N) holds regardless",
        },
    }
    if "engine" in wanted:
        recorded = bench_engine_bits(gated_frames, record_bits=True)
        fast = bench_engine_bits(gated_frames, record_bits=False)
        report["engine"] = {
            "recorded": recorded,
            "fast_path": fast,
            "fast_path_speedup": _speedup(
                recorded["bits_per_sec"], fast["bits_per_sec"]
            ),
        }
    if "controller" in wanted:
        ctrl_reference = bench_controller(gated_frames, fast_path=False)
        ctrl_fast = bench_controller(gated_frames, fast_path=True)
        report["controller"] = {
            "reference": ctrl_reference,
            "fast_path": ctrl_fast,
            # The PR 3 acceptance bar for this is >= 1.5x on the
            # record_bits=False hot loop.
            "fast_path_speedup": _speedup(
                ctrl_reference["bits_per_sec"], ctrl_fast["bits_per_sec"]
            ),
        }
    if "capture" in wanted:
        capture_base = bench_fast_path_bare(frames)
        capture_rec = bench_fast_path_capture(frames)
        report["capture"] = {
            "fast_path": capture_base,
            "fast_path_with_recording": capture_rec,
            # Relative slowdown of persisting each fast-path run via the
            # trace store; the PR 2 acceptance budget for this is <= 5%.
            "overhead": (
                capture_rec["seconds"] / capture_base["seconds"] - 1.0
                if capture_base["seconds"]
                else 0.0
            ),
        }
    if "montecarlo" in wanted:
        mc_serial = bench_montecarlo(trials, jobs=1)
        mc_parallel = bench_montecarlo(trials, jobs=jobs)
        report["montecarlo"] = {
            "serial": mc_serial,
            "parallel": mc_parallel,
            "speedup": _speedup(
                mc_serial["trials_per_sec"], mc_parallel["trials_per_sec"]
            ),
        }
    if "verify" in wanted:
        ver_serial = bench_verify(flips, jobs=1)
        ver_parallel = bench_verify(flips, jobs=jobs)
        report["verify"] = {
            "serial": ver_serial,
            "parallel": ver_parallel,
            "speedup": _speedup(
                ver_serial["placements_per_sec"],
                ver_parallel["placements_per_sec"],
            ),
        }
    if "batch_enumeration" in wanted:
        report["batch_enumeration"] = bench_batch_enumeration(2)
        report["batch_enumeration_majorcan"] = bench_batch_enumeration(
            1 if smoke else 2, protocol="majorcan"
        )
    if "header_enumeration" in wanted:
        report["header_enumeration"] = bench_header_enumeration()
    if "montecarlo_batch" in wanted:
        report["montecarlo_batch"] = bench_montecarlo_batch(500)
    if "multiflip_header" in wanted:
        report["multiflip_header"] = bench_multiflip_header()
    if "campaign_batch" in wanted:
        report["campaign_batch"] = bench_campaign_batch()
    if "reliability_batch" in wanted:
        report["reliability_batch"] = bench_reliability_batch()
    if "traffic_steady_state" in wanted:
        report["traffic_steady_state"] = bench_traffic_steady_state(smoke)
    if "traffic_batch" in wanted:
        report["traffic_batch"] = bench_traffic_batch()
    if "sweep" in wanted:
        report["sweep"] = bench_sweep()
    if "noise_batch" in wanted:
        report["noise_batch"] = bench_noise_batch()
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=4, help="worker count for the parallel runs"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny counts — exercises every path in seconds (used by CI)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(_REPO_ROOT, "BENCH_PR10.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--section",
        action="append",
        choices=SECTIONS,
        default=None,
        help="run only the named section (repeatable; default: all)",
    )
    args = parser.parse_args(argv)

    report = run_harness(jobs=args.jobs, smoke=args.smoke, sections=args.section)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")

    if "engine" in report:
        print("engine     : %8.0f bits/s recorded, %8.0f bits/s fast path (x%.2f)" % (
            report["engine"]["recorded"]["bits_per_sec"],
            report["engine"]["fast_path"]["bits_per_sec"],
            report["engine"]["fast_path_speedup"],
        ))
    if "controller" in report:
        print("controller : %8.0f bits/s reference, %8.0f bits/s fast path (x%.2f)" % (
            report["controller"]["reference"]["bits_per_sec"],
            report["controller"]["fast_path"]["bits_per_sec"],
            report["controller"]["fast_path_speedup"],
        ))
    if "capture" in report:
        print("capture    : %8.0f bits/s bare, %8.0f bits/s recording (%+.1f%% overhead)" % (
            report["capture"]["fast_path"]["bits_per_sec"],
            report["capture"]["fast_path_with_recording"]["bits_per_sec"],
            report["capture"]["overhead"] * 100.0,
        ))
    if "montecarlo" in report:
        print("montecarlo : %8.1f trials/s serial, %8.1f trials/s at jobs=%d (x%.2f)" % (
            report["montecarlo"]["serial"]["trials_per_sec"],
            report["montecarlo"]["parallel"]["trials_per_sec"],
            args.jobs,
            report["montecarlo"]["speedup"],
        ))
    if "verify" in report:
        print("verify     : %8.1f placements/s serial, %8.1f at jobs=%d (x%.2f)" % (
            report["verify"]["serial"]["placements_per_sec"],
            report["verify"]["parallel"]["placements_per_sec"],
            args.jobs,
            report["verify"]["speedup"],
        ))
    for key in ("batch_enumeration", "batch_enumeration_majorcan"):
        if key in report:
            section = report[key]
            print(
                "batch      : %-8s flips=%d %6d placements, %8.1f/s engine,"
                " %9.1f/s batch [%s] (x%.2f)"
                % (
                    section["protocol"],
                    section["max_flips"],
                    section["placements"],
                    section["engine"]["placements_per_sec"],
                    section["batch"]["placements_per_sec"],
                    section["vector_backend"],
                    section["speedup"],
                )
            )
    if "header_enumeration" in report:
        section = report["header_enumeration"]
        print(
            "header     : m=%s check_f1 sweep, %6.2fs engine, %6.2fs batch"
            " [%s] (x%.2f)"
            % (
                ",".join(str(m) for m in section["m_values"]),
                section["engine"]["seconds"],
                section["batch"]["seconds"],
                section["vector_backend"],
                section["speedup"],
            )
        )
    if "montecarlo_batch" in report:
        section = report["montecarlo_batch"]
        print(
            "mc batch   : %6d trials, %8.1f trials/s engine,"
            " %9.1f trials/s batch (x%.2f)"
            % (
                section["trials"],
                section["engine"]["trials_per_sec"],
                section["batch"]["trials_per_sec"],
                section["speedup"],
            )
        )
    if "multiflip_header" in report:
        section = report["multiflip_header"]
        print(
            "multiflip  : %-8s m=%d n=%d %6d combos, %8.1f/s engine,"
            " %9.1f/s batch [%s] (x%.2f, engine share %.2f%%)"
            % (
                section["protocol"],
                section["m"],
                section["n_nodes"],
                section["combos"],
                section["engine"]["combos_per_sec"],
                section["batch"]["combos_per_sec"],
                section["vector_backend"],
                section["speedup"],
                section["engine_share"] * 100.0,
            )
        )
    if "campaign_batch" in report:
        section = report["campaign_batch"]
        print(
            "campaign   : %6d rounds, %8.1f rounds/s engine,"
            " %9.1f rounds/s batch (x%.2f, engine share %.2f%%)"
            % (
                section["rounds"],
                section["engine"]["rounds_per_sec"],
                section["batch"]["rounds_per_sec"],
                section["speedup"],
                section["engine_share"] * 100.0,
            )
        )
    if "reliability_batch" in report:
        section = report["reliability_batch"]
        print(
            "reliability: ber=%g enumerated rates, %6.2fs engine,"
            " %6.2fs batch (x%.2f, engine share %.2f%%)"
            % (
                section["ber"],
                section["engine"]["seconds"],
                section["batch"]["seconds"],
                section["speedup"],
                section["engine_share"] * 100.0,
            )
        )
    if "traffic_steady_state" in report:
        section = report["traffic_steady_state"]
        print(
            "traffic    : %6d frames/%d bits, %8.1f frames/s reference,"
            " %8.1f frames/s fast path (x%.2f)"
            % (
                section["frames"],
                section["bits"],
                section["reference"]["frames_per_sec"],
                section["fast_path"]["frames_per_sec"],
                section["speedup"],
            )
        )
        if "paper_profile" in section:
            profile = section["paper_profile"]
            print(
                "traffic    : paper profile n=%d load=%.2f: %d frames"
                " (%d delivered) in %.1fs, %8.1f frames/s, atomic=%s"
                % (
                    profile["n_nodes"],
                    profile["load"],
                    profile["frames"],
                    profile["delivered"],
                    profile["seconds"],
                    profile["frames_per_sec"],
                    profile["atomic"],
                )
            )
    if "traffic_batch" in report:
        section = report["traffic_batch"]
        print(
            "trafficbat : %6d frames/%d bits, %8.1f frames/s engine,"
            " %9.1f frames/s batch (x%.2f, engine windows %d)"
            % (
                section["frames"],
                section["bits"],
                section["engine"]["frames_per_sec"],
                section["batch"]["frames_per_sec"],
                section["speedup"],
                section["engine_windows"],
            )
        )
    if "sweep" in report:
        section = report["sweep"]
        print(
            "sweep      : %6d cells, %8.2f cells/s engine,"
            " %9.2f cells/s batch [%s] (x%.2f, re-run evaluated %d)"
            % (
                section["cells"],
                section["engine"]["cells_per_sec"],
                section["batch"]["cells_per_sec"],
                section["vector_backend"],
                section["speedup"],
                section["rerun_evaluated"],
            )
        )
    if "noise_batch" in report:
        section = report["noise_batch"]
        print(
            "noise      : traffic %2d windows %6.2fs engine, %6.2fs batch"
            " (x%.2f, engine share %.1f%%)"
            % (
                section["traffic"]["windows"],
                section["traffic"]["engine"]["seconds"],
                section["traffic"]["batch"]["seconds"],
                section["traffic"]["speedup"],
                section["traffic"]["engine_share"] * 100.0,
            )
        )
        print(
            "noise      : campaign %2d rounds %6.2fs engine, %6.2fs batch"
            " [%s] (x%.2f, engine share %.1f%%)"
            % (
                section["campaign"]["rounds"],
                section["campaign"]["engine"]["seconds"],
                section["campaign"]["batch"]["seconds"],
                section["vector_backend"],
                section["campaign"]["speedup"],
                section["campaign"]["engine_share"] * 100.0,
            )
        )
    print("report     : %s (cpu_count=%d)" % (args.out, report["host"]["cpu_count"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
