"""Benchmark-suite hooks.

Every benchmark regenerates one artefact of the paper and registers the
rendered text via :func:`_artifacts.report`; this terminal summary
prints all artefacts at the end, so ``pytest benchmarks/
--benchmark-only`` both times the harnesses and reproduces the paper's
rows.
"""

from _artifacts import ordered_artifacts


def pytest_terminal_summary(terminalreporter):
    artifacts = ordered_artifacts()
    if not artifacts:
        return
    terminalreporter.section("reproduced paper artefacts")
    for title, text in artifacts:
        terminalreporter.write_line("")
        terminalreporter.write_line("== %s ==" % title)
        for line in text.splitlines():
            terminalreporter.write_line(line)
