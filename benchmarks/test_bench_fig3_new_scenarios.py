"""Experiments E-F3a/b: the paper's new inconsistency scenarios.

The headline of Section 4: with one disturbance on the X set's view of
the last-but-one EOF bit and a *single additional* disturbance masking
the error flag from the transmitter, an inconsistent message omission
occurs although the transmitter remains correct — defeating standard
CAN (Fig. 3a), MinorCAN (Fig. 3b), and (shown in the property-matrix
benchmark) RELCAN and TOTCAN.  MajorCAN handles the same pattern.
"""

from _artifacts import report

from repro.faults.scenarios import fig3


def test_bench_fig3a_standard_can(benchmark):
    outcome = benchmark(fig3, "can")
    assert outcome.inconsistent_omission
    assert outcome.crashed == []
    assert outcome.attempts == 1
    assert outcome.errors_injected == 2
    report("Fig. 3a — new scenario defeats standard CAN", outcome.summary())


def test_bench_fig3b_minorcan(benchmark):
    outcome = benchmark(fig3, "minorcan")
    assert outcome.inconsistent_omission
    assert outcome.crashed == []
    report("Fig. 3b — new scenario defeats MinorCAN", outcome.summary())


def test_bench_fig3_majorcan_resists(benchmark):
    outcome = benchmark(fig3, "majorcan")
    assert outcome.consistent
    assert outcome.all_delivered_once
    report("Fig. 3 pattern — MajorCAN_5 stays consistent", outcome.summary())
