"""Experiment E-F5: MajorCAN_5 consistency under five errors (Fig. 5).

The exact disturbance pattern of the figure: the X set detects a
dominant bit in the 3rd EOF bit; the Y set sees X's flag in the 4th;
two errors delay the transmitter's detection to the 6th bit (second
sub-field), so it accepts and transmits an extended error flag; two
further errors corrupt samples of the Y set.  Every node accepts the
frame — Atomic Broadcast with exactly m = 5 errors.
"""

from _artifacts import report

from repro.can.events import EventKind
from repro.faults.scenarios import fig5


def test_bench_fig5(benchmark):
    outcome = benchmark(fig5)
    assert outcome.errors_injected == 5
    assert outcome.all_delivered_once
    assert outcome.attempts == 1
    transmitter = outcome.engine.node("tx")
    assert any(
        event.kind == EventKind.EXTENDED_FLAG_START for event in transmitter.events
    )
    lines = [outcome.summary()]
    for name in ("tx", "x", "y"):
        node = outcome.engine.node(name)
        kinds = [
            event.kind
            for event in node.events
            if event.kind
            in (
                EventKind.ERROR_DETECTED,
                EventKind.EXTENDED_FLAG_START,
                EventKind.SAMPLING_VERDICT,
                EventKind.DEFERRED_ACCEPT,
            )
        ]
        lines.append("  %-3s: %s" % (name, " -> ".join(kinds)))
    report("Fig. 5 — MajorCAN_5 consistency under five errors", "\n".join(lines))


def test_bench_fig5_timeline(benchmark):
    """Render the d/r timeline of the agreement window, as in the figure."""

    def run_and_render():
        outcome = fig5()
        eof_times = outcome.trace.position_times("tx", "EOF", 0)
        start = eof_times[0] - 2 if eof_times else 0
        return outcome, outcome.trace.render_timeline(
            ["tx", "x", "y"], start=start, end=start + 36
        )

    outcome, timeline = benchmark(run_and_render)
    assert outcome.all_delivered_once
    report("Fig. 5 — observed per-node timeline (d/r notation)", timeline)
