"""Experiment E-VER (extension): bounded exhaustive verification.

The paper's future work plans formal verification of the MajorCAN
design; this bench performs the simulation analogue — exhaustive
exploration of all placements of up to two view errors over the
paper's error universe (frame tail + agreement window) — and reports
the complete counterexample census for standard CAN against the empty
census for MajorCAN_5.
"""

from _artifacts import report

from repro.analysis.verification import header_sites, verify_consistency


def test_bench_verify_majorcan(benchmark):
    result = benchmark(verify_consistency, "majorcan", 5, 3, 2)
    assert result.holds
    report(
        "Bounded verification — MajorCAN_5, <=2 errors over the paper's universe",
        result.summary(),
    )


def test_bench_verify_can_census(benchmark):
    result = benchmark(verify_consistency, "can", 5, 3, 2)
    imos = [c for c in result.counterexamples if c.kind == "imo"]
    doubles = [c for c in result.counterexamples if c.kind == "double"]
    assert len(imos) == 2
    lines = [
        result.summary(),
        "IMO counterexamples (both are the Fig. 3a pattern):",
    ]
    lines += ["  " + str(c) for c in imos]
    lines.append("double-reception counterexamples: %d (the Fig. 1b family)" % len(doubles))
    report("Bounded verification — standard CAN counterexample census", "\n".join(lines))


def test_bench_verify_header_universe(benchmark):
    result = benchmark(
        verify_consistency,
        "majorcan",
        5,
        3,
        1,
        header_sites(["tx", "r1", "r2"]),
    )
    assert not result.holds
    lines = [result.summary(), "counterexamples (finding F1, DLC desynchronisation):"]
    lines += ["  " + str(c) for c in result.counterexamples]
    report(
        "Bounded verification — header universe exposes finding F1",
        "\n".join(lines),
    )
