"""Engineering benchmarks of the simulation substrate itself.

Not a paper artefact: these time the bit-level engine so regressions in
the controller hot path are caught, and report the simulated-bit
throughput that bounds every fault-injection campaign.
"""

from _artifacts import report

from repro.can.controller import CanController
from repro.can.encoding import encode_frame
from repro.can.frame import data_frame
from repro.can.parser import FrameParser
from repro.core.majorcan import MajorCanController
from repro.simulation.engine import SimulationEngine


def _saturated_engine(factory, n_nodes=8):
    controllers = [factory("n%d" % i) for i in range(n_nodes)]
    engine = SimulationEngine(controllers, record_bits=False)
    for index, controller in enumerate(controllers):
        for seq in range(50):
            controller.submit(
                data_frame(0x100 + index, bytes([seq]), message_id="%d#%d" % (index, seq))
            )
    return engine


def test_bench_engine_throughput_can(benchmark):
    def run():
        engine = _saturated_engine(CanController)
        engine.run(4000)
        return engine

    engine = benchmark(run)
    delivered = sum(len(node.deliveries) for node in engine.nodes)
    assert delivered > 100
    report(
        "Engine throughput — 8-node saturated CAN bus",
        "%d deliveries in 4000 simulated bit times" % delivered,
    )


def test_bench_engine_throughput_majorcan(benchmark):
    def run():
        engine = _saturated_engine(lambda name: MajorCanController(name))
        engine.run(4000)
        return engine

    engine = benchmark(run)
    assert sum(len(node.deliveries) for node in engine.nodes) > 100


def test_bench_frame_encoding(benchmark):
    frame = data_frame(0x2AA, bytes(range(8)))
    wire = benchmark(encode_frame, frame)
    assert len(wire.bits) > 100


def test_bench_frame_parsing(benchmark):
    frame = data_frame(0x2AA, bytes(range(8)))
    wire = encode_frame(frame)
    levels = []
    for position, wire_bit in enumerate(wire.bits):
        level = wire_bit.level
        if position == wire.ack_slot_position:
            from repro.can.bits import DOMINANT

            level = DOMINANT
        levels.append(level)

    def parse():
        parser = FrameParser()
        for level in levels:
            parser.feed(level)
        return parser

    parser = benchmark(parse)
    assert parser.crc_ok
