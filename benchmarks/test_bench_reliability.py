"""Experiment E-REL (extension): the operational meaning of Table 1.

Converts the Table 1 incident rates into mission-reliability terms —
mean time to the first inconsistent omission and the probability of
surviving a year of continuous operation — and runs a seeded
attack-campaign comparison across protocols.
"""

from _artifacts import report

from repro.analysis.reliability import reliability_comparison
from repro.faults.campaigns import compare_protocols
from repro.metrics.report import render_table


def test_bench_reliability_rows(benchmark):
    rows = benchmark(reliability_comparison, 1e-4, (1.0, 8760.0))
    by_protocol = {row.protocol: row for row in rows}
    assert by_protocol["CAN"].mttf_hours < 150
    assert by_protocol["MajorCAN"].mission_survival[8760.0] == 1.0
    table = render_table(
        [
            {
                "protocol": row.protocol,
                "IMO rate /h": row.imo_rate_per_hour,
                "MTTF hours": row.mttf_hours,
                "P(1-year mission)": row.mission_survival[8760.0],
            }
            for row in rows
        ],
        columns=["protocol", "IMO rate /h", "MTTF hours", "P(1-year mission)"],
    )
    report(
        "Reliability — Table 1 restated as mission survival (ber=1e-4)",
        table,
    )


def test_bench_attack_campaign(benchmark):
    outcomes = benchmark(
        compare_protocols, ("can", "minorcan", "majorcan"),
        rounds=20, attack_probability=0.5, seed=17,
    )
    by_protocol = {outcome.spec.protocol: outcome for outcome in outcomes}
    assert by_protocol["majorcan"].omissions == 0
    assert by_protocol["can"].omissions == by_protocol["can"].attacked_rounds
    table = render_table(
        [outcome.as_row() for outcome in outcomes],
        columns=["protocol", "rounds", "attacked", "consistent", "imo", "double"],
    )
    report("Campaign — seeded Fig. 3a attacks, 20 rounds", table)


def test_bench_residual_rates(benchmark):
    """The residual of the fix itself: P(> m errors per frame) as an
    incidents/hour bracket, and the smallest m per environment."""
    from repro.analysis.residual import residual_table, smallest_m_meeting_target

    rows = benchmark(residual_table)
    by_key = {(row.ber, row.m): row for row in rows}
    assert by_key[(1e-5, 5)].meets_target_upper
    assert not by_key[(1e-4, 5)].meets_target_upper
    table = render_table(
        [
            {
                "ber": "%.0e" % row.ber,
                "m": row.m,
                "upper bound /h": row.upper_bound_per_hour,
                "tail bound /h": row.tail_bound_per_hour,
                "meets 1e-9": row.meets_target_upper,
            }
            for row in rows
        ],
        columns=["ber", "m", "upper bound /h", "tail bound /h", "meets 1e-9"],
    )
    recommendation = ", ".join(
        "ber=%.0e -> m>=%d" % (ber, smallest_m_meeting_target(ber))
        for ber in (1e-4, 1e-5, 1e-6)
    )
    report(
        "Residual — P(>m errors/frame) and the m design rule",
        table + "\nsmallest m meeting 1e-9/h (upper bound): " + recommendation,
    )
