"""Experiment E-VER-3: deeper bounded verification (three errors).

One exhaustive pass per benchmark run (``pedantic``, a single round):
every placement of up to *three* view errors over MajorCAN_3's full
tail-and-window universe.  The paper's guarantee for m = 3 covers any
three channel errors; this explores the complete <=3-flip census of
that universe by simulation.
"""

from _artifacts import report

from repro.analysis.verification import verify_consistency


def test_bench_verify_majorcan3_three_flips(benchmark):
    result = benchmark.pedantic(
        verify_consistency,
        kwargs=dict(protocol="majorcan", m=3, n_nodes=3, max_flips=3),
        rounds=1,
        iterations=1,
    )
    assert result.holds, [str(c) for c in result.counterexamples[:5]]
    report(
        "Bounded verification — MajorCAN_3, <=3 errors, exhaustive",
        result.summary(),
    )
