"""Artefact registry for the benchmark suite (importable module)."""

from __future__ import annotations

from typing import Dict, List

_ARTIFACTS: Dict[str, str] = {}
_ORDER: List[str] = []


def report(title: str, text: str) -> None:
    """Register a rendered experiment artefact for the final summary."""
    if title not in _ARTIFACTS:
        _ORDER.append(title)
    _ARTIFACTS[title] = text


def ordered_artifacts():
    """(title, text) pairs in registration order."""
    return [(title, _ARTIFACTS[title]) for title in _ORDER]
