"""Batch-vs-engine identity for the campaign and reliability workloads.

PR 6 adds ``backend="batch"`` paths to :mod:`repro.faults.campaigns`
and :mod:`repro.analysis.reliability`.  The contract is the one every
other batch surface honours: *identical rows* for any ``backend`` and
any ``jobs``, with the batch provenance counters reporting (near) zero
engine runs on noise-free workloads.
"""

import pytest

from repro.analysis.reliability import reliability_comparison, reliability_sweep
from repro.errors import AnalysisError, ConfigurationError
from repro.faults.campaigns import CampaignSpec, run_campaign


def campaign_surface(outcome):
    """Everything a campaign backend must reproduce exactly."""
    return (
        outcome.as_row(),
        outcome.omission_rounds,
        outcome.rounds,
        outcome.attacked_rounds,
        outcome.errors_injected,
    )


def reliability_surface(rows):
    return [
        (
            row.protocol,
            row.ber,
            row.imo_rate_per_hour,
            row.mttf_hours,
            row.mission_survival,
        )
        for row in rows
    ]


class TestCampaignBackend:
    @pytest.mark.parametrize(
        "protocol,m", [("can", 5), ("minorcan", 5), ("majorcan", 3), ("majorcan", 5)]
    )
    def test_batch_rows_identical_to_engine(self, protocol, m):
        spec = CampaignSpec(
            protocol=protocol,
            m=m,
            n_nodes=4,
            rounds=32,
            attack_probability=0.5,
            seed=17,
        )
        engine = run_campaign(spec, backend="engine")
        batch = run_campaign(spec, backend="batch")
        assert campaign_surface(batch) == campaign_surface(engine)
        assert engine.backend_stats == {}
        assert batch.backend_stats["engine"] == 0
        assert sum(batch.backend_stats.values()) == 32

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("backend", ["engine", "batch"])
    def test_rows_independent_of_backend_and_jobs(self, backend, jobs):
        spec = CampaignSpec(
            protocol="can", rounds=20, attack_probability=0.4, seed=23
        )
        reference = run_campaign(spec, jobs=1, backend="engine")
        outcome = run_campaign(spec, jobs=jobs, backend=backend)
        assert campaign_surface(outcome) == campaign_surface(reference)

    def test_noisy_campaign_scans_rounds_and_resumes_flipped_ones(self):
        """A noisy round is classified by a vectorised scan of its
        noise-mask prefix: zero-flip rounds resolve through the tail
        replay, flipped rounds rerun on the engine from the rewound
        generator — same rows either way, engine count only for the
        rounds whose mask actually fired."""
        spec = CampaignSpec(
            protocol="can",
            rounds=6,
            attack_probability=0.5,
            noise_ber_star=1e-3,
            seed=5,
        )
        engine = run_campaign(spec, backend="engine")
        batch = run_campaign(spec, backend="batch")
        assert campaign_surface(batch) == campaign_surface(engine)
        classified = sum(
            batch.backend_stats.get(key, 0)
            for key in ("batch", "scalar", "header", "engine")
        )
        assert classified == 6
        assert batch.backend_stats.get("engine", 0) < 6

    def test_noisy_campaign_low_ber_rarely_needs_the_engine(self):
        spec = CampaignSpec(
            protocol="majorcan",
            m=5,
            rounds=20,
            attack_probability=0.4,
            noise_ber_star=1e-5,
            seed=12,
        )
        engine = run_campaign(spec, backend="engine")
        batch = run_campaign(spec, jobs=2, backend="batch")
        assert campaign_surface(batch) == campaign_surface(engine)
        assert batch.backend_stats.get("engine", 0) <= 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            run_campaign(CampaignSpec(rounds=1), backend="gpu")


class TestReliabilityBackend:
    def test_engine_and_batch_rates_identical(self):
        engine = reliability_comparison(1e-5, backend="engine")
        batch = reliability_comparison(1e-5, backend="batch")
        assert reliability_surface(batch) == reliability_surface(engine)
        assert engine[0].backend_stats is None
        for row in batch:
            assert row.backend_stats is not None
            assert row.backend_stats["engine"] == 0

    def test_empirical_rates_order_protocols_like_the_paper(self):
        """The measured tail-window rates keep MajorCAN at zero."""
        rows = reliability_comparison(1e-6, backend="batch")
        by_protocol = {row.protocol: row.imo_rate_per_hour for row in rows}
        assert by_protocol["MajorCAN"] == 0.0
        assert by_protocol["CAN"] > 0.0

    def test_analytic_default_untouched(self):
        rows = reliability_comparison(1e-4, mission_hours=(1.0,))
        assert rows[0].backend_stats is None
        assert rows[0].mttf_hours == pytest.approx(113, rel=0.02)

    @pytest.mark.parametrize("jobs", [1, 2])
    @pytest.mark.parametrize("backend", [None, "engine", "batch"])
    def test_sweep_independent_of_backend_plumbing_and_jobs(self, backend, jobs):
        reference = reliability_sweep([1e-6, 1e-5], jobs=1, backend=backend)
        sweep = reliability_sweep([1e-6, 1e-5], jobs=jobs, backend=backend)
        assert list(sweep) == list(reference)
        for ber in sweep:
            assert reliability_surface(sweep[ber]) == reliability_surface(
                reference[ber]
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(AnalysisError):
            reliability_comparison(1e-5, backend="gpu")
