"""Interoperability tests across protocol variants.

MinorCAN keeps the standard frame format — only the last-EOF-bit
*decision* changes — so MinorCAN and standard CAN nodes can share a
bus.  MajorCAN changes the frame format itself (2m-bit EOF, longer
delimiter), so a mixed CAN/MajorCAN bus cannot interoperate; the paper
proposes it as a controller modification precisely because every node
must be upgraded together.
"""


from repro.can.bits import DOMINANT
from repro.can.controller import CanController
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.core.majorcan import MajorCanController
from repro.core.minorcan import MinorCanController
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.simulation.engine import SimulationEngine

from helpers import run_one_frame


class TestMinorCanInterop:
    def test_clean_mixed_bus_works(self):
        nodes = [CanController("tx"), MinorCanController("minor"), CanController("rx")]
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"))
        assert outcome.all_delivered_once

    def test_minorcan_transmitter_with_can_receivers(self):
        nodes = [MinorCanController("tx"), CanController("x"), CanController("y")]
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"))
        assert outcome.all_delivered_once

    def test_mixed_bus_fig1b_partial_upgrade_still_duplicates(self):
        """Upgrading only part of the bus does not fix Fig. 1b: the
        unmodified CAN node still double-receives."""
        nodes = [CanController("tx"), MinorCanController("x"), CanController("y")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.deliveries["y"] == 2

    def test_fully_upgraded_bus_fixes_fig1b(self):
        nodes = [MinorCanController(n) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once


class TestMajorCanRequiresFullUpgrade:
    def test_single_frame_slips_through_but_traffic_livelocks(self):
        """Curious edge: a lone CAN frame satisfies a MajorCAN_5
        receiver (7 EOF + 3 intermission = 10 recessive bits look like
        its EOF), but the 2m-bit expectation shifts the MajorCAN node's
        intermission: every back-to-back CAN frame's SOF lands in it,
        the MajorCAN node answers with overload flags, and the bus
        livelocks — no further frame is ever delivered."""
        transmitter = CanController("tx")
        legacy = CanController("legacy")
        upgraded = MajorCanController("upgraded")
        engine = SimulationEngine([transmitter, legacy, upgraded])
        for value in range(3):
            transmitter.submit(data_frame(0x123, bytes([value])))
        engine.run(3000)
        assert len(upgraded.deliveries) == 1
        assert len(legacy.deliveries) == 1
        overloads = [
            e for e in upgraded.events if e.kind == "overload_flag_start"
        ]
        assert len(overloads) > 50  # persistent disruption, not one-off

    def test_can_receiver_on_majorcan_bus_misbehaves(self):
        transmitter = MajorCanController("tx")
        legacy = CanController("legacy")
        upgraded = MajorCanController("upgraded")
        engine = SimulationEngine([transmitter, legacy, upgraded])
        transmitter.submit(data_frame(0x123, b"\x55"))
        engine.run(4000)
        # The legacy node delivers early (7-bit EOF satisfied) but its
        # divergent error behaviour disrupts the upgraded consensus:
        # the mixed bus is not a supported configuration.
        legacy_errors = [e for e in legacy.events if e.kind == "error_detected"]
        upgraded_errors = [e for e in upgraded.events if e.kind == "error_detected"]
        assert legacy_errors or upgraded_errors or len(upgraded.deliveries) > 0


class TestPerSourceFifoOrdering:
    def test_deliveries_from_one_source_keep_submission_order(self):
        """CAN guarantees per-source FIFO: retransmissions always win
        over younger frames of the same (lower-priority) source."""
        import numpy

        rng = numpy.random.default_rng(5)
        sources = [CanController("s%d" % i) for i in range(3)]
        observer = CanController("obs")
        engine = SimulationEngine(sources + [observer], record_bits=False)
        from repro.faults.bit_errors import RandomViewErrorInjector

        engine.injector = RandomViewErrorInjector(3e-4, seed=rng)
        for index, source in enumerate(sources):
            for seq in range(6):
                source.submit(data_frame(0x100 + index, bytes([index, seq])))
        engine.run(12000)
        try:
            engine.run_until_idle(40000)
        except Exception:
            pass
        for index in range(3):
            sequence = [
                delivery.frame.data[1]
                for delivery in observer.deliveries
                if delivery.frame.data and delivery.frame.data[0] == index
            ]
            deduplicated = []
            for item in sequence:
                if not deduplicated or deduplicated[-1] != item:
                    deduplicated.append(item)
            assert deduplicated == sorted(deduplicated)
