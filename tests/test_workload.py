"""Tests for workload generation."""

import pytest

from repro.can.controller import CanController
from repro.errors import ConfigurationError
from repro.simulation.engine import SimulationEngine
from repro.workload.generator import (
    PeriodicSource,
    PoissonSource,
    attach_sources,
    measured_bus_load,
    periodic_sources_for_profile,
)
from repro.workload.profiles import PAPER_PROFILE, NetworkProfile


class TestProfileValidation:
    def test_rejects_bad_load(self):
        with pytest.raises(ConfigurationError):
            NetworkProfile(1e6, 4, 0.0, 110)
        with pytest.raises(ConfigurationError):
            NetworkProfile(1e6, 4, 1.5, 110)

    def test_rejects_single_node(self):
        with pytest.raises(ConfigurationError):
            NetworkProfile(1e6, 1, 0.5, 110)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            NetworkProfile(0, 4, 0.5, 110)


class TestPeriodicSource:
    def _setup(self, period=200, max_messages=None):
        controller = CanController("n0")
        engine = SimulationEngine([controller, CanController("sink")])
        source = PeriodicSource(
            controller=controller,
            period_bits=period,
            identifier=0x100,
            max_messages=max_messages,
        )
        engine.add_tick_hook(source.tick)
        return engine, controller, source

    def test_submits_on_period(self):
        engine, controller, source = self._setup(period=100)
        engine.run(301)
        assert source.sent == 4  # t = 0, 100, 200, 300

    def test_max_messages_caps(self):
        engine, controller, source = self._setup(period=50, max_messages=2)
        engine.run(500)
        assert source.sent == 2

    def test_message_ids_are_unique(self):
        engine, controller, source = self._setup(period=100)
        engine.run(301)
        tags = [frame.message_id for frame in controller.submitted]
        assert len(set(tags)) == len(tags)

    def test_period_validated(self):
        with pytest.raises(ConfigurationError):
            PeriodicSource(CanController("x"), period_bits=0, identifier=1)


class TestPoissonSource:
    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            PoissonSource(CanController("x"), rate_per_bit=2.0, identifier=1)

    def test_seeded_rate_approximation(self):
        controller = CanController("n0")
        engine = SimulationEngine([controller, CanController("sink")])
        source = PoissonSource(
            controller=controller, rate_per_bit=0.01, identifier=0x100, rng=42
        )
        engine.add_tick_hook(source.tick)
        engine.run(5000)
        assert 20 <= source.sent <= 80  # ~50 expected


class TestProfileSources:
    def test_sources_for_paper_profile(self):
        controllers = [CanController("n%d" % i) for i in range(4)]
        sources = periodic_sources_for_profile(
            controllers, PAPER_PROFILE, messages_per_node=3
        )
        assert len(sources) == 4
        periods = {source.period_bits for source in sources}
        assert len(periods) == 1
        identifiers = {source.identifier for source in sources}
        assert len(identifiers) == 4

    def test_empty_controllers_rejected(self):
        with pytest.raises(ConfigurationError):
            periodic_sources_for_profile([], PAPER_PROFILE)

    def test_generated_load_is_high(self):
        """Four nodes at the paper's 90% profile keep the bus busy."""
        controllers = [CanController("n%d" % i) for i in range(4)]
        engine = SimulationEngine(controllers, record_bits=False)
        sources = periodic_sources_for_profile(
            controllers, PAPER_PROFILE.scaled(n_nodes=4), messages_per_node=20
        )
        attach_sources(engine, sources)
        engine.run(8000)
        load = measured_bus_load(engine, start=100)
        assert load > 0.5

    def test_all_messages_delivered_under_load(self):
        controllers = [CanController("n%d" % i) for i in range(4)]
        engine = SimulationEngine(controllers, record_bits=False)
        sources = periodic_sources_for_profile(
            controllers, PAPER_PROFILE.scaled(n_nodes=4), messages_per_node=5
        )
        attach_sources(engine, sources)
        engine.run(20000)
        engine.run_until_idle(60000)
        # Every node delivered every other node's 5 messages.
        for controller in controllers:
            foreign = [
                d for d in controller.deliveries if d.frame.message_id is None
            ]
            assert len(foreign) == 15


class TestMeasuredLoad:
    def test_empty_history(self):
        engine = SimulationEngine([CanController("a")])
        assert measured_bus_load(engine) == 0.0

    def test_idle_bus_is_zero_load(self):
        engine = SimulationEngine([CanController("a")])
        engine.run(100)
        assert measured_bus_load(engine, start=20) < 0.2
