"""Tests for the analytical probability model (equations 1-5)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.probability import (
    dominant_term_ratio,
    p_new_scenario_per_frame,
    p_old_scenario_per_frame,
)
from repro.errors import AnalysisError
from repro.faults.crash import crash_probability
from repro.faults.models import ber_star, p_eff


class TestSpatialModel:
    def test_p_eff_is_one_over_n(self):
        assert p_eff(32) == 1 / 32

    def test_ber_star_equation_3(self):
        assert ber_star(1e-4, 32) == pytest.approx(1e-4 / 32)

    def test_ber_star_validates_probability(self):
        with pytest.raises(AnalysisError):
            ber_star(1.5, 4)

    def test_p_eff_needs_nodes(self):
        with pytest.raises(AnalysisError):
            p_eff(0)


class TestCrashProbability:
    def test_matches_exponential(self):
        assert crash_probability(1e-3, 5e-3 / 3600) == pytest.approx(
            1 - math.exp(-1e-3 * 5e-3 / 3600)
        )

    def test_zero_rate(self):
        assert crash_probability(0.0, 1.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(AnalysisError):
            crash_probability(-1.0, 1.0)


class TestEquation4:
    def test_paper_operating_point(self):
        """ber = 1e-4, N = 32, tau = 110: the per-frame probability that
        yields 8.80e-3 incidents/hour at 90% load and 1 Mbps."""
        p = p_new_scenario_per_frame(1e-4, 32, 110)
        per_hour = p * (0.9 * 1e6 * 3600 / 110)
        assert per_hour == pytest.approx(8.80e-3, rel=0.01)

    def test_scales_quadratically_in_ber(self):
        """Two errors are involved, so P ~ ber^2 at small rates."""
        p1 = p_new_scenario_per_frame(1e-6, 32, 110)
        p2 = p_new_scenario_per_frame(1e-5, 32, 110)
        assert p2 / p1 == pytest.approx(100, rel=0.01)

    def test_zero_ber_is_impossible(self):
        assert p_new_scenario_per_frame(0.0, 32, 110) == 0.0

    def test_needs_two_receivers(self):
        with pytest.raises(AnalysisError):
            p_new_scenario_per_frame(1e-4, 2, 110)

    @given(
        ber=st.floats(1e-9, 1e-3),
        n=st.integers(3, 64),
        tau=st.integers(40, 160),
    )
    def test_is_a_probability(self, ber, n, tau):
        p = p_new_scenario_per_frame(ber, n, tau)
        assert 0.0 <= p <= 1.0

    @given(n=st.integers(3, 64))
    def test_monotone_in_ber(self, n):
        values = [
            p_new_scenario_per_frame(ber, n, 110)
            for ber in (1e-7, 1e-6, 1e-5, 1e-4)
        ]
        assert values == sorted(values)

    def test_dominant_term_dominates_at_low_ber(self):
        assert dominant_term_ratio(1e-4, 32, 110) > 0.999


class TestEquation5:
    def test_paper_operating_point(self):
        p = p_old_scenario_per_frame(1e-4, 32, 110)
        per_hour = p * (0.9 * 1e6 * 3600 / 110)
        assert per_hour == pytest.approx(3.92e-6, rel=0.01)

    def test_scales_linearly_in_ber(self):
        """Only one channel error is involved; the other factor is the
        crash probability."""
        p1 = p_old_scenario_per_frame(1e-6, 32, 110)
        p2 = p_old_scenario_per_frame(1e-5, 32, 110)
        assert p2 / p1 == pytest.approx(10, rel=0.01)

    def test_new_scenario_dominates_old(self):
        """The headline comparison of Section 4: the new scenarios are
        orders of magnitude more likely."""
        for ber in (1e-4, 1e-5, 1e-6):
            # The ratio is ~2200x at ber=1e-4 and ~22x at ber=1e-6
            # (eq. 4 is quadratic in ber, eq. 5 linear).
            assert p_new_scenario_per_frame(ber, 32, 110) > 10 * p_old_scenario_per_frame(
                ber, 32, 110
            )

    def test_crash_window_increases_probability(self):
        small = p_old_scenario_per_frame(1e-4, 32, 110, delta_t_hours=1e-9)
        large = p_old_scenario_per_frame(1e-4, 32, 110, delta_t_hours=1e-3)
        assert large > small
