"""Tests for the suspend-transmission rule of error-passive nodes."""

from repro.can.controller import CanController, STATE_SUSPEND
from repro.can.frame import data_frame
from repro.simulation.engine import SimulationEngine


def make_passive_transmitter():
    node = CanController("passive")
    node.counters.tec = 130  # error-passive
    return node


class TestSuspendAfterTransmission:
    def test_passive_transmitter_enters_suspend(self):
        passive = make_passive_transmitter()
        receiver = CanController("rx")
        engine = SimulationEngine([passive, receiver])
        passive.submit(data_frame(0x100, b"\x01"))
        states = set()
        for _ in range(120):
            engine.step()
            states.add(passive.state)
        assert STATE_SUSPEND in states

    def test_active_transmitter_never_suspends(self):
        active = CanController("active")
        receiver = CanController("rx")
        engine = SimulationEngine([active, receiver])
        active.submit(data_frame(0x100, b"\x01"))
        states = set()
        for _ in range(120):
            engine.step()
            states.add(active.state)
        assert STATE_SUSPEND not in states

    def test_suspend_delays_own_next_frame(self):
        """The passive node's second frame starts at least 8 bits later
        than an active node's would."""

        def completion_time(tec):
            node = CanController("tx")
            node.counters.tec = tec
            receiver = CanController("rx")
            engine = SimulationEngine([node, receiver])
            node.submit(data_frame(0x100, b"\x01"))
            node.submit(data_frame(0x100, b"\x02"))
            engine.run_until_idle(20000)
            return node.tx_successes[-1][0]

        assert completion_time(130) >= completion_time(0) + 8

    def test_suspended_node_yields_to_others(self):
        """During the suspend window another node may start; the
        passive node joins as a receiver."""
        passive = make_passive_transmitter()
        other = CanController("other")
        receiver = CanController("rx")
        engine = SimulationEngine([passive, other, receiver])
        passive.submit(data_frame(0x200, b"\x01"))
        passive.submit(data_frame(0x200, b"\x02"))
        while not passive.tx_successes:
            engine.step()
        # The passive node is now heading into intermission + suspend;
        # a frame queued here beats its second transmission.
        other.submit(data_frame(0x100, b"\xbb"))
        engine.run_until_idle(20000)
        payloads = [d.frame.data for d in receiver.deliveries]
        assert b"\xbb" in payloads
        assert payloads.index(b"\xbb") < payloads.index(b"\x02")
        assert b"\xbb" in [d.frame.data for d in passive.deliveries]
