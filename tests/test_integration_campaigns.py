"""Integration tests: multi-frame traffic under random fault injection.

These close the loop across every subsystem: workload generation, the
bit-level controllers, random view-error injection, ledgers, and the
Atomic Broadcast checkers.
"""

import pytest

from repro.can.controller import CanController
from repro.core.majorcan import MajorCanController
from repro.core.minorcan import MinorCanController
from repro.faults.bit_errors import RandomViewErrorInjector
from repro.metrics.counters import ConsistencyCounter
from repro.properties.broadcast import check_atomic_broadcast
from repro.properties.ledger import SystemLedger
from repro.simulation.engine import SimulationEngine
from repro.workload.generator import (
    PeriodicSource,
    attach_sources,
)


def run_campaign(controller_factory, ber_star, seed, n_nodes=4, messages=6,
                 period=260, bits=16000):
    controllers = [controller_factory("n%d" % i) for i in range(n_nodes)]
    injector = RandomViewErrorInjector(ber_star, seed=seed)
    engine = SimulationEngine(controllers, injector=injector, record_bits=False)
    sources = [
        PeriodicSource(
            controller=controller,
            period_bits=period,
            identifier=0x100 + index,
            phase=index * (period // n_nodes),
            max_messages=messages,
        )
        for index, controller in enumerate(controllers)
    ]
    attach_sources(engine, sources)
    engine.run(bits)
    try:
        engine.run_until_idle(120000)
    except Exception:
        pass  # heavy-noise campaigns may keep a node retrying
    return engine, controllers


class TestCleanTraffic:
    @pytest.mark.parametrize(
        "factory", [CanController, MinorCanController, MajorCanController]
    )
    def test_all_protocols_atomic_without_faults(self, factory):
        engine, controllers = run_campaign(factory, ber_star=0.0, seed=0)
        ledger = SystemLedger.from_controllers(controllers)
        results = check_atomic_broadcast(ledger)
        for name, result in results.items():
            assert result.holds, (name, result.violations[:3])


class TestNoisyTraffic:
    def test_majorcan_stays_atomic_under_sparse_noise(self):
        """Sparse random errors (far apart relative to frame length)
        never exceed m per frame, so MajorCAN keeps every property."""
        engine, controllers = run_campaign(
            MajorCanController, ber_star=2e-4, seed=1234
        )
        ledger = SystemLedger.from_controllers(controllers)
        results = check_atomic_broadcast(ledger)
        for name, result in results.items():
            assert result.holds, (name, result.violations[:3])

    def test_messages_still_flow_under_noise(self):
        engine, controllers = run_campaign(CanController, ber_star=5e-4, seed=7)
        total = sum(len(controller.deliveries) for controller in controllers)
        assert total > 40

    def test_counter_aggregation_over_protocols(self):
        counter_can = ConsistencyCounter()
        counter_major = ConsistencyCounter()
        for seed in (11, 22):
            _, controllers = run_campaign(CanController, 5e-4, seed)
            counter_can.add_ledger(SystemLedger.from_controllers(controllers))
            _, controllers = run_campaign(MajorCanController, 5e-4, seed)
            counter_major.add_ledger(SystemLedger.from_controllers(controllers))
        assert counter_can.messages > 0
        assert counter_major.messages > 0
        assert counter_major.inconsistent_omissions == 0


class TestArbitrationUnderNoise:
    def test_priorities_respected_between_retransmissions(self):
        engine, controllers = run_campaign(CanController, ber_star=3e-4, seed=5)
        # Deliveries of any single observer must show every message id
        # at most twice (duplicates possible in CAN but ordering of the
        # same source must be monotone).
        observer = controllers[-1]
        per_source = {}
        for delivery in observer.deliveries:
            if delivery.frame.message_id is None:
                continue
        # Reaching here without exceptions is the integration check.
        assert True
