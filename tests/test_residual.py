"""Tests for the MajorCAN residual-rate model."""

import pytest

from repro.analysis.residual import (
    p_more_than_m_errors,
    residual_rate_tail_bound,
    residual_rate_upper_bound,
    residual_table,
    smallest_m_meeting_target,
)
from repro.errors import AnalysisError


class TestProbability:
    def test_zero_ber_zero_residual(self):
        assert p_more_than_m_errors(0.0, 5, 32, 130) == 0.0

    def test_monotone_decreasing_in_m(self):
        values = [p_more_than_m_errors(1e-4, m, 32, 130) for m in range(3, 9)]
        assert values == sorted(values, reverse=True)

    def test_monotone_increasing_in_ber(self):
        assert p_more_than_m_errors(1e-4, 5, 32, 130) > p_more_than_m_errors(
            1e-5, 5, 32, 130
        )

    def test_validation(self):
        with pytest.raises(AnalysisError):
            p_more_than_m_errors(1e-4, -1, 32, 130)
        with pytest.raises(AnalysisError):
            p_more_than_m_errors(1e-4, 5, 32, 0)


class TestBounds:
    def test_tail_bound_below_upper_bound(self):
        for ber in (1e-4, 1e-5):
            assert residual_rate_tail_bound(ber, 5) < residual_rate_upper_bound(
                ber, 5
            )

    def test_m5_meets_target_at_1e5_but_not_1e4(self):
        """The honest deployment statement: the paper's m = 5 meets the
        1e-9/hour target (even on the pessimistic bound) for
        ber <= 1e-5, but not at the aggressive ber = 1e-4."""
        assert residual_rate_upper_bound(1e-5, 5) < 1e-9
        assert residual_rate_upper_bound(1e-4, 5) > 1e-9

    def test_residual_far_below_unfixed_can(self):
        """Even where m = 5 misses the strict target, its residual is
        four orders below standard CAN's IMO rate."""
        from repro.analysis.probability import p_new_scenario_per_frame
        from repro.analysis.rates import incidents_per_hour
        from repro.workload.profiles import PAPER_PROFILE

        can_rate = incidents_per_hour(
            p_new_scenario_per_frame(1e-4, 32, 110), PAPER_PROFILE
        )
        assert residual_rate_upper_bound(1e-4, 5) < can_rate / 1e4


class TestDesignRule:
    def test_smallest_m_by_environment(self):
        """Section 5's remark made computable: the required m grows
        with the error rate — and the aggressive environment demands
        m = 6, which also closes the finding-F1 channel."""
        assert smallest_m_meeting_target(1e-4) == 6
        assert smallest_m_meeting_target(1e-5) <= 5
        assert smallest_m_meeting_target(1e-6) == 3

    def test_unreachable_target_raises(self):
        with pytest.raises(AnalysisError):
            smallest_m_meeting_target(0.3, target=1e-30, max_m=4)


class TestTable:
    def test_grid_shape_and_flags(self):
        rows = residual_table(ber_values=(1e-5,), m_values=(3, 5))
        assert len(rows) == 2
        by_m = {row.m: row for row in rows}
        assert not by_m[3].meets_target_upper
        assert by_m[5].meets_target_upper
