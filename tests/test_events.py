"""Tests for the event vocabulary and record types."""

from repro.can.events import Delivery, Event, EventKind
from repro.can.frame import data_frame


class TestEvent:
    def test_str_includes_time_node_kind(self):
        event = Event(time=42, node="tx", kind=EventKind.TX_SUCCESS, data={"a": 1})
        text = str(event)
        assert "42" in text
        assert "tx" in text
        assert EventKind.TX_SUCCESS in text
        assert "a=1" in text

    def test_str_sorts_data_keys(self):
        event = Event(time=0, node="n", kind="k", data={"b": 2, "a": 1})
        text = str(event)
        assert text.index("a=1") < text.index("b=2")


class TestDelivery:
    def test_wire_key_fields(self):
        frame = data_frame(0x123, b"\x01\x02")
        delivery = Delivery(frame=frame, time=10, node="rx")
        assert delivery.wire_key() == (0x123, False, False, 2, b"\x01\x02")

    def test_wire_key_ignores_message_tag(self):
        tagged = Delivery(
            frame=data_frame(0x1, b"\x01", message_id="m"), time=0, node="a"
        )
        untagged = Delivery(frame=data_frame(0x1, b"\x01"), time=5, node="b")
        assert tagged.wire_key() == untagged.wire_key()

    def test_attempt_defaults_to_none(self):
        delivery = Delivery(frame=data_frame(0x1, b""), time=0, node="a")
        assert delivery.attempt is None
