"""The paper's scenarios on extended-format (29-bit id) frames.

The EOF machinery is identical for both frame formats, so every
inconsistency and every fix must carry over; these tests pin that.
"""

import pytest

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import CanController
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.core.majorcan import MajorCanController
from repro.core.minorcan import MinorCanController
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault

from helpers import run_one_frame

EXTENDED_FRAME = data_frame(0x1ABCDE42, b"\x55\xaa", extended=True, message_id="x")


def fig3_faults(eof_length):
    last = eof_length - 1
    return ScriptedInjector(
        view_faults=[
            ViewFault("x", Trigger(field=EOF, index=last - 1), force=DOMINANT),
            ViewFault("tx", Trigger(field=EOF, index=last), force=RECESSIVE),
        ]
    )


class TestExtendedFrames:
    def test_clean_transfer(self):
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        outcome = run_one_frame(nodes, EXTENDED_FRAME)
        assert outcome.all_delivered_once
        received = outcome.engine.node("x").deliveries[0].frame
        assert received.can_id.value == 0x1ABCDE42
        assert received.can_id.extended

    def test_fig1b_double_reception(self):
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, EXTENDED_FRAME, injector)
        assert outcome.deliveries["y"] == 2

    def test_fig3a_imo(self):
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        outcome = run_one_frame(nodes, EXTENDED_FRAME, fig3_faults(7))
        assert outcome.inconsistent_omission
        assert outcome.deliveries == {"tx": 1, "x": 0, "y": 1}

    def test_minorcan_still_fooled(self):
        nodes = [MinorCanController(n) for n in ("tx", "x", "y")]
        outcome = run_one_frame(nodes, EXTENDED_FRAME, fig3_faults(7))
        assert outcome.inconsistent_omission

    @pytest.mark.parametrize("m", [3, 5])
    def test_majorcan_fixes_it(self, m):
        nodes = [MajorCanController(n, m=m) for n in ("tx", "x", "y")]
        outcome = run_one_frame(nodes, EXTENDED_FRAME, fig3_faults(2 * m))
        assert outcome.all_delivered_once

    def test_majorcan_fig5_pattern_extended(self):
        from repro.can.fields import SAMPLING

        m = 5
        nodes = [MajorCanController(n, m=m) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("x", Trigger(field=EOF, index=2), force=DOMINANT),
                ViewFault("tx", Trigger(field=EOF, index=3), force=RECESSIVE),
                ViewFault("tx", Trigger(field=EOF, index=4), force=RECESSIVE),
                ViewFault("y", Trigger(field=SAMPLING, index=m + 7), force=RECESSIVE),
                ViewFault("y", Trigger(field=SAMPLING, index=m + 8), force=RECESSIVE),
            ]
        )
        outcome = run_one_frame(nodes, EXTENDED_FRAME, injector)
        assert outcome.all_delivered_once
        assert outcome.errors_injected == 5
