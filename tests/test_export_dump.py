"""Tests for the CSV/JSON exporters and the candump formatter."""

import json

import pytest

from repro.can.controller import CanController
from repro.can.events import Delivery
from repro.can.frame import data_frame, remote_frame
from repro.errors import ReproError
from repro.metrics.dump import (
    dump_node,
    format_delivery,
    format_frame,
    merged_bus_log,
)
from repro.metrics.export import rows_to_csv, rows_to_json, write_rows
from repro.simulation.engine import SimulationEngine


class TestJsonExport:
    def test_roundtrip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        assert json.loads(rows_to_json(rows)) == rows

    def test_dataclass_rows(self):
        from repro.analysis.sweeps import imo_rate_sweep

        rows = imo_rate_sweep(ber_values=(1e-4,))
        decoded = json.loads(rows_to_json(rows))
        assert decoded[0]["n_nodes"] == 32

    def test_infinity_serialised_as_string(self):
        decoded = json.loads(rows_to_json([{"mttf": float("inf")}]))
        assert decoded[0]["mttf"] == "inf"

    def test_bytes_serialised_as_hex(self):
        decoded = json.loads(rows_to_json([{"payload": b"\xbe\xef"}]))
        assert decoded[0]["payload"] == "beef"

    def test_rejects_unknown_row_types(self):
        with pytest.raises(ReproError):
            rows_to_json(["not-a-dict"])


class TestCsvExport:
    def test_header_and_rows(self):
        text = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        lines = text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2"

    def test_column_union_in_first_seen_order(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        assert text.strip().splitlines()[0] == "a,b"

    def test_explicit_columns(self):
        text = rows_to_csv([{"a": 1, "b": 2}], columns=["b"])
        assert text.strip().splitlines() == ["b", "2"]

    def test_nested_values_json_encoded(self):
        text = rows_to_csv([{"a": {"x": 1}}])
        assert '""x"": 1' in text or '{"x": 1}' in text


class TestWriteRows:
    def test_writes_json_and_csv(self, tmp_path):
        rows = [{"a": 1}]
        json_path = str(tmp_path / "out.json")
        csv_path = str(tmp_path / "out.csv")
        write_rows(json_path, rows)
        write_rows(csv_path, rows)
        assert json.load(open(json_path)) == rows
        assert open(csv_path).read().startswith("a")

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(ReproError):
            write_rows(str(tmp_path / "out.txt"), [{"a": 1}])


class TestCandump:
    def test_standard_frame(self):
        text = format_frame(data_frame(0x123, b"\xde\xad"))
        assert "123" in text
        assert "[2]" in text
        assert "DE AD" in text

    def test_extended_frame_eight_hex_digits(self):
        text = format_frame(data_frame(0x1ABCDE42, b"", extended=True))
        assert "1ABCDE42" in text

    def test_remote_frame(self):
        assert "remote request" in format_frame(remote_frame(0x10, dlc=3))

    def test_empty_payload_marker(self):
        assert "--" in format_frame(data_frame(0x10, b""))

    def test_delivery_timestamp(self):
        delivery = Delivery(frame=data_frame(0x1, b"\x01"), time=1234, node="rx")
        assert "(00001234)" in format_delivery(delivery)

    def test_merged_bus_log_dedupes_and_orders(self):
        tx, rx1, rx2 = (CanController(n) for n in ("tx", "rx1", "rx2"))
        engine = SimulationEngine([tx, rx1, rx2])
        tx.submit(data_frame(0x100, b"\x01"))
        tx.submit(data_frame(0x100, b"\x02"))
        engine.run_until_idle(10000)
        log = merged_bus_log([rx1, rx2])
        lines = log.splitlines()
        assert len(lines) == 2  # one line per frame, not per receiver
        assert "01" in lines[0] and "02" in lines[1]

    def test_dump_node(self):
        tx, rx = CanController("tx"), CanController("rx")
        engine = SimulationEngine([tx, rx])
        tx.submit(data_frame(0x42, b"\x07"))
        engine.run_until_idle(5000)
        assert "042" in dump_node(rx)
