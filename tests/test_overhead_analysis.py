"""Tests for the overhead analysis (experiment E-OV)."""

import pytest

from repro.analysis.overhead import (
    best_case_overhead_bits,
    higher_level_protocol_overhead_bits,
    measured_overhead,
    worst_case_extension_bits,
    worst_case_overhead_bits,
)
from repro.errors import AnalysisError


class TestFormulas:
    def test_paper_values_for_m5(self):
        assert best_case_overhead_bits(5) == 3
        assert worst_case_overhead_bits(5) == 11

    def test_worst_case_extension_is_2m_minus_2(self):
        for m in range(3, 12):
            assert worst_case_extension_bits(m) == 2 * m - 2

    def test_m3_has_negative_best_case(self):
        """MajorCAN_3's 6-bit EOF is shorter than standard CAN's 7."""
        assert best_case_overhead_bits(3) == -1

    def test_small_m_rejected(self):
        with pytest.raises(AnalysisError):
            best_case_overhead_bits(2)
        with pytest.raises(AnalysisError):
            worst_case_overhead_bits(1)


class TestMeasured:
    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_simulation_matches_formulas(self, m):
        measured = measured_overhead(m)
        assert measured.best_case == best_case_overhead_bits(m)
        assert measured.worst_case == worst_case_overhead_bits(m)

    def test_out_of_range_m_rejected(self):
        with pytest.raises(AnalysisError):
            measured_overhead(7)

    def test_slot_lengths_are_plausible(self):
        measured = measured_overhead(5)
        assert measured.majorcan_clean_slot > measured.can_clean_slot
        assert measured.majorcan_error_slot > measured.can_error_slot
        assert measured.can_error_slot > measured.can_clean_slot


class TestHigherLevelComparison:
    def test_all_protocols_cost_more_than_majorcan(self):
        """The paper's conclusion: even MajorCAN's worst case (11 bits
        for m=5) is negligible against one extra frame per message."""
        overheads = higher_level_protocol_overhead_bits(frame_bits=110, receivers=31)
        for protocol, bits in overheads.items():
            assert bits > worst_case_overhead_bits(5), protocol

    def test_edcan_scales_with_receivers(self):
        small = higher_level_protocol_overhead_bits(110, receivers=3)["EDCAN"]
        large = higher_level_protocol_overhead_bits(110, receivers=31)["EDCAN"]
        assert large > small
