"""Tests for the executable Section 5 geometry derivation."""

import pytest

from repro.analysis.geometry import (
    derive_geometry,
    geometry_report,
    verify_geometry,
)
from repro.errors import AnalysisError

DESYNC_CHECK = "desync channel closed (flag at ACK+6 in sub-field 1)"


class TestDerivedConstants:
    def test_m5_paper_values(self):
        derived = derive_geometry(5)
        assert derived["eof_bits"] == 10
        assert derived["window_start"] == 12
        assert derived["window_end"] == 20
        assert derived["window_samples"] == 9
        assert derived["delimiter_bits"] == 11

    def test_window_always_2m_minus_1(self):
        for m in range(3, 12):
            derived = derive_geometry(m)
            assert (
                derived["window_end"] - derived["window_start"] + 1
                == derived["window_samples"]
                == 2 * m - 1
            )

    def test_small_m_rejected(self):
        with pytest.raises(AnalysisError):
            derive_geometry(2)


class TestInvariants:
    @pytest.mark.parametrize("m", [3, 4, 5, 6, 8, 12])
    def test_design_invariants_hold_for_all_m(self, m):
        """Every Section 5 invariant holds for every m — only the
        finding-F1 check (which is not part of the paper's argument)
        may fail, and only for m <= 5."""
        for check in verify_geometry(m):
            if check.name == DESYNC_CHECK:
                continue
            assert check.holds, str(check)

    @pytest.mark.parametrize("m,closed", [(3, False), (5, False), (6, True), (9, True)])
    def test_desync_check_boundary(self, m, closed):
        checks = {check.name: check for check in verify_geometry(m)}
        assert checks[DESYNC_CHECK].holds is closed

    def test_geometry_matches_simulated_boundary(self):
        """The arithmetic prediction of the F1 boundary agrees with the
        bit-level simulation (test_consistency_properties)."""
        # m=5 arithmetic says open; the simulation showed the IMO.
        checks = {c.name: c for c in verify_geometry(5)}
        assert not checks[DESYNC_CHECK].holds


class TestReport:
    def test_report_mentions_all_constants(self):
        report = geometry_report(5)
        assert "window_start" in report
        assert "invariants:" in report
        assert "FAIL" in report  # the honest F1 row for m=5

    def test_report_clean_for_m6(self):
        assert "FAIL" not in geometry_report(6)
