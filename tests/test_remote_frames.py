"""Remote frame (RTR) flows, including the auto-response feature."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.controller import CanController
from repro.can.frame import data_frame, remote_frame
from repro.can.identifiers import CanId
from repro.simulation.engine import SimulationEngine


class TestAutoResponse:
    def _bus(self):
        server = CanController("server")
        client = CanController("client")
        observer = CanController("observer")
        engine = SimulationEngine([client, server, observer])
        return engine, server, client, observer

    def test_registered_request_is_answered(self):
        engine, server, client, observer = self._bus()
        server.register_remote_response(CanId(0x123), b"\x42\x43")
        client.submit(remote_frame(0x123, dlc=2))
        engine.run_until_idle(8000)
        answers = [d.frame for d in client.deliveries if not d.frame.remote]
        assert answers and answers[0].data == b"\x42\x43"
        assert answers[0].can_id == CanId(0x123)

    def test_unregistered_request_is_not_answered(self):
        engine, server, client, observer = self._bus()
        server.register_remote_response(CanId(0x124), b"\x42")
        client.submit(remote_frame(0x123, dlc=1))
        engine.run_until_idle(8000)
        assert all(d.frame.remote for d in observer.deliveries)

    def test_server_does_not_answer_its_own_request(self):
        engine, server, client, observer = self._bus()
        server.register_remote_response(CanId(0x123), b"\x42")
        server.submit(remote_frame(0x123, dlc=1))
        engine.run_until_idle(8000)
        own_answers = [f for f in server.submitted if not f.remote]
        assert own_answers == []

    def test_multiple_servers_arbitrate_cleanly(self):
        """Two servers answering the same id collide in the data field
        and recover; at least one response goes through.  (Real designs
        give each responder a distinct id; this checks robustness.)"""
        engine, server, client, observer = self._bus()
        server.register_remote_response(CanId(0x123), b"\x01")
        observer.register_remote_response(CanId(0x123), b"\x01")
        client.submit(remote_frame(0x123, dlc=1))
        engine.run_until_idle(20000)
        answers = [d.frame for d in client.deliveries if not d.frame.remote]
        assert answers

    def test_extended_id_response(self):
        engine, server, client, observer = self._bus()
        identifier = CanId(0x1ABCDE, extended=True)
        server.register_remote_response(identifier, b"\x07")
        client.submit(remote_frame(0x1ABCDE, dlc=1, extended=True))
        engine.run_until_idle(10000)
        answers = [d.frame for d in client.deliveries if not d.frame.remote]
        assert answers and answers[0].can_id == identifier


class TestArbitrationOrderProperty:
    @given(
        ids=st.lists(
            st.integers(0, 0x7FF), min_size=2, max_size=5, unique=True
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_delivery_order_matches_priority(self, ids):
        """For ANY set of distinct identifiers submitted simultaneously,
        the bus delivers them in increasing identifier order."""
        transmitters = [CanController("t%d" % i) for i in range(len(ids))]
        observer = CanController("obs")
        engine = SimulationEngine(transmitters + [observer], record_bits=False)
        for controller, identifier in zip(transmitters, ids):
            controller.submit(data_frame(identifier, b"\x11"))
        engine.run_until_idle(60000)
        seen = [d.frame.can_id.value for d in observer.deliveries]
        assert seen == sorted(ids)
