"""Differential tests: table-driven fast path vs reference controller.

The fast path (``ControllerConfig(fast_path=True)``, the default) must
be *bit-identical* to the branchy reference state machine in everything
observable: the wired-AND bus stream, the per-bit positions and states,
the event log, the deliveries, and the scenario verdicts — for CAN,
MinorCAN and MajorCAN alike.  This module checks that three ways:

* replaying every golden-corpus scenario under both configurations and
  comparing the full recorded surface;
* a seeded random-fault fuzz sweep (``RandomViewErrorInjector``) with
  competing transmitters, which exercises arbitration loss, error
  flags, overload frames and retransmission under both paths;
* feeding :class:`FastFrameParser` and the reference
  :class:`FrameParser` in lockstep over encoded frames.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.can.bits import DOMINANT, Level
from repro.can.controller_config import ControllerConfig
from repro.can.encoding import encode_frame
from repro.can.frame import data_frame, remote_frame
from repro.can.parser import (
    STEP_ACK_DELIM,
    STEP_EOF,
    STEP_OK,
    STEP_STUFF_VIOLATION,
    FastFrameParser,
    FrameParser,
)
from repro.core.majorcan import DEFAULT_M, majorcan_config
from repro.faults.bit_errors import RandomViewErrorInjector
from repro.faults.scenarios import make_controller, run_single_frame_scenario
from repro.simulation.engine import SimulationEngine
from repro.tracestore.replay import load_trace

CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "corpus"
)
def _scenario_version(path):
    with open(path) as handle:
        return json.loads(handle.readline()).get("version")


#: Single-frame (schema v1) entries only — this differential rebuilds
#: the scenario from the manifest; v2 traffic recordings replay via
#: the traffic engine instead (and the perf harness asserts their
#: fast-vs-reference ledger identity).
CORPUS_FILES = sorted(
    path
    for path in glob.glob(os.path.join(CORPUS_DIR, "*.jsonl"))
    if _scenario_version(path) == 1
)


def variant_config(protocol: str, m: int, fast_path: bool) -> ControllerConfig:
    """The protocol variant's config with the fast path toggled."""
    if protocol.lower() == "majorcan":
        return majorcan_config(m, fast_path=fast_path)
    return ControllerConfig(fast_path=fast_path)


def build_nodes(node_specs, fast_path: bool):
    """Fresh controllers for ``(name, protocol, m)`` specs."""
    return [
        make_controller(
            protocol,
            name,
            m=m if m is not None else DEFAULT_M,
            config=variant_config(protocol, m if m is not None else DEFAULT_M, fast_path),
        )
        for name, protocol, m in node_specs
    ]


def event_surface(events):
    """Events as comparable tuples (dict equality is order-insensitive)."""
    return [(event.time, event.node, event.kind, event.data) for event in events]


def delivery_surface(nodes):
    return [
        (delivery.time, delivery.node, delivery.attempt, delivery.wire_key())
        for node in nodes
        for delivery in node.deliveries
    ]


def engine_surface(engine, nodes):
    """Everything observable about a finished engine run."""
    trace = engine.collect_events()
    return {
        "bus": "".join(level.symbol for level in engine.bus.history),
        "events": event_surface(trace.events),
        "deliveries": delivery_surface(nodes),
        "bits": [
            (record.time, record.positions, record.states) for record in trace.bits
        ],
        "offline": [node.name for node in nodes if node.offline],
    }


# ---------------------------------------------------------------------------
# Corpus differential
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[os.path.basename(p) for p in CORPUS_FILES]
)
def test_corpus_scenarios_identical_fast_vs_reference(path):
    """Every golden scenario behaves identically under both paths."""
    spec = load_trace(path).spec()
    surfaces = {}
    for fast_path in (False, True):
        outcome = run_single_frame_scenario(
            spec.name,
            build_nodes(spec.nodes, fast_path),
            spec.build_injector(),
            frame=spec.frame,
            max_bits=spec.max_bits,
            record_bits=True,
        )
        surfaces[fast_path] = {
            "engine": engine_surface(outcome.engine, outcome.engine.nodes),
            "deliveries": outcome.deliveries,
            "attempts": outcome.attempts,
            "crashed": outcome.crashed,
            "consistent": outcome.consistent,
            "inconsistent_omission": outcome.inconsistent_omission,
        }
    assert surfaces[True] == surfaces[False]


def test_corpus_covers_all_three_protocols():
    """The differential above actually exercised CAN, MinorCAN, MajorCAN."""
    protocols = set()
    for path in CORPUS_FILES:
        for _, protocol, _ in load_trace(path).spec().nodes:
            protocols.add(protocol.lower())
    assert {"can", "minorcan", "majorcan"} <= protocols


# ---------------------------------------------------------------------------
# Seeded random-fault fuzz sweep
# ---------------------------------------------------------------------------


def fuzz_surface(protocol: str, fast_path: bool, seed: int, ber_star: float):
    """Fixed-length run with competing transmitters under random faults.

    Three nodes all submit frames at time zero (standard, extended and
    remote identifiers), so the run contains arbitration contests and —
    thanks to the injected view errors — error flags, overload
    conditions and retransmissions.  A fixed bit budget (rather than
    run-until-idle) keeps the comparison exact even mid-frame.
    """
    nodes = build_nodes(
        [("n0", protocol, DEFAULT_M), ("n1", protocol, DEFAULT_M), ("n2", protocol, DEFAULT_M)],
        fast_path,
    )
    nodes[0].submit(data_frame(0x123, b"\x55\xaa", message_id="a"))
    nodes[0].submit(data_frame(0x7FF, b"", message_id="b"))
    nodes[1].submit(data_frame(0x0ABCDEF, b"\x01\x02\x03\x04", extended=True, message_id="c"))
    nodes[2].submit(remote_frame(0x124, dlc=2))
    injector = RandomViewErrorInjector(ber_star, seed=seed)
    engine = SimulationEngine(nodes, injector=injector, record_bits=False)
    engine.run(2500)
    surface = engine_surface(engine, nodes)
    surface["injected"] = injector.injections
    return surface


@pytest.mark.parametrize("protocol", ["can", "minorcan", "majorcan"])
@pytest.mark.parametrize("seed", [11, 29, 47])
@pytest.mark.parametrize("ber_star", [0.004, 0.03])
def test_fuzz_identical_fast_vs_reference(protocol, seed, ber_star):
    reference = fuzz_surface(protocol, fast_path=False, seed=seed, ber_star=ber_star)
    fast = fuzz_surface(protocol, fast_path=True, seed=seed, ber_star=ber_star)
    assert fast == reference


def test_fuzz_clean_arbitration_identical_and_delivers():
    """Without faults, every submitted frame is delivered on both paths.

    This pins the fast path's lazy receive-parser materialisation after
    a lost arbitration: the losers must still decode and deliver the
    winner's frame, then win a later round with their own.
    """
    surfaces = {}
    for fast_path in (False, True):
        nodes = build_nodes(
            [("n0", "can", None), ("n1", "can", None), ("n2", "can", None)],
            fast_path,
        )
        nodes[0].submit(data_frame(0x300, b"\x11"))
        nodes[1].submit(data_frame(0x100, b"\x22"))  # wins round one
        nodes[2].submit(data_frame(0x200, b"\x33"))
        engine = SimulationEngine(nodes, record_bits=False)
        engine.run_until_idle(max_bits=2000)
        surfaces[fast_path] = engine_surface(engine, nodes)
        kinds = [event[2] for event in surfaces[fast_path]["events"]]
        assert kinds.count("arbitration_lost") >= 3
        for node in nodes:
            assert len(node.deliveries) == 3
    assert surfaces[True] == surfaces[False]


# ---------------------------------------------------------------------------
# Parser lockstep differential
# ---------------------------------------------------------------------------

PARSER_FRAMES = [
    data_frame(0x123, b"\x55"),
    data_frame(0x000, b""),
    data_frame(0x7FF, b"\xff" * 8),
    data_frame(0x1ABCDE0F, b"\x00\x80", extended=True),
    remote_frame(0x124, dlc=4),
    remote_frame(0x0000000, extended=True),
]


@pytest.mark.parametrize("eof_length", [7, 2 * DEFAULT_M])
@pytest.mark.parametrize(
    "frame", PARSER_FRAMES, ids=[repr(f.can_id.value) for f in PARSER_FRAMES]
)
def test_parsers_agree_bit_for_bit(frame, eof_length):
    wire = encode_frame(frame, eof_length=eof_length)
    reference = FrameParser(eof_length=eof_length)
    fast = FastFrameParser(eof_length=eof_length)
    for wire_bit in wire.bits:  # both parsers start at SOF
        upcoming_ref = reference.upcoming
        upcoming_fast = (fast.next_field, fast.next_index, fast.next_is_stuff)
        assert upcoming_fast == upcoming_ref
        assert fast.next_position == (upcoming_ref[0], upcoming_ref[1])
        step = reference.feed(wire_bit.level)
        code = fast.feed_code(wire_bit.level)
        assert not step.stuff_violation and not step.form_violation
        assert code in (STEP_OK, STEP_EOF, STEP_ACK_DELIM)
        assert fast.header_complete == reference.header_complete
        assert fast.complete == reference.complete
        assert fast.crc_ok == reference.crc_ok
        if code == STEP_EOF:
            assert fast.last_index == step.index
    assert fast.complete and reference.complete
    assert fast.crc_ok and reference.crc_ok
    assert fast.frame() == reference.frame()


def test_parsers_agree_on_stuff_violation():
    """Six identical bits trip both parsers at the same bit."""
    reference = FrameParser()
    fast = FastFrameParser()
    # SOF plus four dominant ID bits reach the stuff width, so the
    # expected stuff bit is recessive — feeding dominant again is the
    # violation.
    for _ in range(5):
        step = reference.feed(DOMINANT)
        assert not step.stuff_violation
        assert fast.feed_code(DOMINANT) == STEP_OK
    assert reference.upcoming[2] and fast.next_is_stuff
    step = reference.feed(DOMINANT)
    code = fast.feed_code(DOMINANT)
    assert step.stuff_violation and code == STEP_STUFF_VIOLATION
    assert fast.failed


def test_fast_parser_feed_alias():
    """``feed`` mirrors ``feed_code`` for drop-in replay loops."""
    fast = FastFrameParser()
    assert fast.feed(Level.RECESSIVE) == STEP_OK
