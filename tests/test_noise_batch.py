"""The vectorised noise layer: flip scans, noisy differentials, RLE.

Three contracts from the noise-vectorisation work are pinned here:

* :mod:`repro.analysis.noisebatch` preserves the engine's draw order
  exactly — a vector scan consumes the same stream prefix as the
  scalar injector loop, and snapshots rewind it bit-for-bit;
* noisy traffic runs are *bit-identical* across backend, worker count
  and cache temperature, including the degenerate (BER 0) and extreme
  (bus never idles) boundaries;
* RLE-compressed recordings round-trip exactly and replay identically
  to their uncompressed twins.
"""

import random

import pytest

from repro.analysis.noisebatch import (
    advance,
    first_flip,
    generator_state,
    restore_state,
)
from repro.errors import SimulationError, TraceStoreError
from repro.metrics.export import json_line
from repro.traffic import (
    BurstSpec,
    TrafficSpec,
    clear_window_cache,
    run_traffic,
    traffic_records,
    window_backend,
)

np = pytest.importorskip("numpy")


def _lines(outcome):
    return [json_line(record) for record in traffic_records(outcome)]


# ---------------------------------------------------------------------------
# noisebatch primitives
# ---------------------------------------------------------------------------


def _scalar_scan(rng, total, ber):
    """The engine's draw loop, verbatim: one uniform per draw slot."""
    for index in range(total):
        if rng.random() < ber:
            return index
    return None


class TestFirstFlip:
    @pytest.mark.parametrize("seed,total,ber", [
        (99, 5000, 0.01),
        (3, 200_000, 1e-5),
        (7, 131_072, 0.0005),
    ])
    def test_vector_scan_matches_scalar_draw_order(self, seed, total, ber):
        expected = _scalar_scan(np.random.default_rng(seed), total, ber)
        assert first_flip(np.random.default_rng(seed), total, ber) == expected

    def test_scalar_fallback_matches_python_random(self):
        expected = _scalar_scan(random.Random(41), 10_000, 0.002)
        assert first_flip(random.Random(41), 10_000, 0.002) == expected

    def test_clean_scan_leaves_stream_exactly_total_ahead(self):
        scanned = np.random.default_rng(5)
        assert first_flip(scanned, 3000, 0.0) is None
        mirror = np.random.default_rng(5)
        advance(mirror, 3000)
        assert scanned.random() == mirror.random()

    def test_nonpositive_total_is_none_and_draws_nothing(self):
        rng = np.random.default_rng(9)
        state = generator_state(rng)
        assert first_flip(rng, 0, 0.9) is None
        assert first_flip(rng, -4, 0.9) is None
        assert rng.bit_generator.state == state[1]

    def test_restore_state_rewinds_in_place(self):
        rng = np.random.default_rng(11)
        state = generator_state(rng)
        burned = [rng.random() for _ in range(17)]
        restore_state(rng, state)
        assert [rng.random() for _ in range(17)] == burned

    def test_restore_state_round_trips_python_random(self):
        rng = random.Random(13)
        state = generator_state(rng)
        burned = [rng.random() for _ in range(9)]
        restore_state(rng, state)
        assert [rng.random() for _ in range(9)] == burned

    def test_advance_matches_discarded_scalar_draws(self):
        fast = np.random.default_rng(21)
        advance(fast, 70_001, chunk=4096)
        slow = np.random.default_rng(21)
        for _ in range(70_001):
            slow.random()
        assert fast.random() == slow.random()

    def test_unknown_generator_rejected(self):
        with pytest.raises(TypeError):
            generator_state(object())
        with pytest.raises(TypeError):
            restore_state(random.Random(1), ("wat", None))


# ---------------------------------------------------------------------------
# Noisy traffic differentials
# ---------------------------------------------------------------------------

#: The invariance-check noisy spec: per-bit noise plus a deterministic
#: burst, so the scan, the resume cut and the burst shift all fire.
_NOISY_SPEC = TrafficSpec(
    name="noise-batch-noisy",
    protocol="can",
    n_nodes=3,
    windows=3,
    window_bits=700,
    load=0.6,
    seed=29,
    noise_ber=0.002,
    bursts=(BurstSpec(node="n1", window=1, start=200, length=16),),
)


class TestNoisyTrafficDifferential:
    def test_bit_identical_across_backend_jobs_and_cache_temperature(self):
        reference = _lines(run_traffic(_NOISY_SPEC, jobs=1))
        clear_window_cache()
        cold = run_traffic(_NOISY_SPEC, jobs=1, backend="batch")
        assert _lines(cold) == reference
        # Warm cache: the window memo now holds every clean timeline.
        warm = run_traffic(_NOISY_SPEC, jobs=1, backend="batch")
        assert _lines(warm) == reference
        assert _lines(run_traffic(_NOISY_SPEC, jobs=2, backend="batch")) == reference
        assert _lines(run_traffic(_NOISY_SPEC, jobs=2)) == reference

    def test_record_events_off_stays_identical(self):
        spec = TrafficSpec(
            name="noise-batch-fast",
            protocol="majorcan",
            m=3,
            n_nodes=4,
            windows=2,
            window_bits=900,
            load=0.55,
            seed=11,
            noise_ber=2e-5,
            record_events=False,
        )
        clear_window_cache()
        batch = run_traffic(spec, jobs=1, backend="batch")
        assert _lines(batch) == _lines(run_traffic(spec, jobs=1))

    def test_degenerate_ber_zero_routes_to_the_plain_batch(self):
        spec = TrafficSpec(
            name="noise-batch-zero", n_nodes=3, windows=2,
            window_bits=600, load=0.5, seed=2, noise_ber=0.0,
        )
        assert all(
            window_backend(spec, window) == "batch"
            for window in range(spec.windows)
        )
        clear_window_cache()
        outcome = run_traffic(spec, jobs=1, backend="batch")
        assert outcome.backend_stats == {"batch": spec.windows}
        assert _lines(outcome) == _lines(run_traffic(spec, jobs=1))

    def test_extreme_ber_overflow_raises_identically(self):
        # At BER 0.4 error cascades keep the bus busy past the drain
        # budget; both backends must fail with the engine's message.
        spec = TrafficSpec(
            name="noise-batch-extreme", n_nodes=3, windows=1,
            window_bits=900, max_window_bits=3000, load=0.5, seed=8,
            noise_ber=0.4,
        )
        with pytest.raises(SimulationError) as engine_err:
            run_traffic(spec, jobs=1)
        clear_window_cache()
        with pytest.raises(SimulationError) as batch_err:
            run_traffic(spec, jobs=1, backend="batch")
        assert str(batch_err.value) == str(engine_err.value)

    def test_moderate_ber_mixed_split_stays_identical(self):
        spec = TrafficSpec(
            name="noise-batch-moderate", protocol="majorcan", m=3,
            n_nodes=3, windows=6, window_bits=700, load=0.5, seed=19,
            noise_ber=0.01,
        )
        clear_window_cache()
        batch = run_traffic(spec, jobs=1, backend="batch")
        assert sum(batch.backend_stats.values()) == spec.windows
        assert _lines(batch) == _lines(run_traffic(spec, jobs=1))


# ---------------------------------------------------------------------------
# RLE trace compression
# ---------------------------------------------------------------------------


def _bit_recorded_outcome():
    from repro.tracestore.corpus import GOLDEN_BUILDERS

    return GOLDEN_BUILDERS["eof-extended-flag-majorcan"]()


class TestRleRoundTrip:
    def test_compress_expand_is_exact_for_every_golden_builder(self):
        from repro.tracestore import compress_records, expand_records
        from repro.tracestore.corpus import GOLDEN_BUILDERS
        from repro.tracestore.recorder import outcome_records

        for name, builder in sorted(GOLDEN_BUILDERS.items()):
            records = list(outcome_records(builder()))
            compressed = compress_records(records)
            expanded = expand_records(compressed)
            assert [json_line(r) for r in expanded] == [
                json_line(r) for r in records
            ], name

    def test_compressed_recording_is_smaller_and_loads_transparently(self, tmp_path):
        from repro.tracestore.recorder import record_outcome
        from repro.tracestore.replay import load_trace

        outcome = _bit_recorded_outcome()
        plain = record_outcome(str(tmp_path / "plain.jsonl"), outcome)
        packed = record_outcome(
            str(tmp_path / "packed.jsonl"), outcome, compression="rle"
        )
        plain_size = len(open(plain).read())
        packed_size = len(open(packed).read())
        assert packed_size < plain_size
        recorded = load_trace(packed)
        assert recorded.manifest["compression"] == "rle"
        # Expansion happened on load: every bit record is full again.
        assert recorded.bits
        for record in recorded.bits:
            assert set(record) >= {"bus", "drives", "views", "pos", "state"}
        assert [json_line(b) for b in recorded.bits] == [
            json_line(b) for b in load_trace(plain).bits
        ]

    def test_compressed_recording_replays_bit_identical(self, tmp_path):
        from repro.tracestore.recorder import record_outcome
        from repro.tracestore.replay import replay_trace

        outcome = _bit_recorded_outcome()
        path = record_outcome(
            str(tmp_path / "packed.jsonl"), outcome, compression="rle"
        )
        assert replay_trace(path).bit_identical

    def test_unknown_compression_rejected_at_write_and_read(self):
        from repro.tracestore.recorder import outcome_records
        from repro.tracestore.schema import validate_records

        outcome = _bit_recorded_outcome()
        with pytest.raises(TraceStoreError):
            list(outcome_records(outcome, compression="zstd"))
        records = list(outcome_records(outcome))
        manifest = dict(records[0])
        manifest["compression"] = "zstd"
        problems = validate_records([manifest] + records[1:])
        assert any("zstd" in problem for problem in problems)

    def test_expand_rejects_omission_before_any_run(self):
        from repro.tracestore import expand_bit_records

        with pytest.raises(TraceStoreError):
            expand_bit_records([{"type": "bit", "t": 0, "bus": "d"}])
