"""Systematic sweeps over the scenario builders' parameters.

The figure scenarios are defined for arbitrary X/Y set sizes; these
sweeps pin the outcomes across network shapes and protocol variants in
one table-driven pass.
"""

import pytest

from repro.faults.scenarios import fig1a, fig1b, fig1c, fig3, fig5

SHAPES = [(1, 1), (1, 3), (2, 2), (3, 1)]


class TestFig1aSweep:
    @pytest.mark.parametrize("x_count,y_count", SHAPES)
    @pytest.mark.parametrize("protocol", ["can", "minorcan", "majorcan"])
    def test_always_consistent(self, protocol, x_count, y_count):
        outcome = fig1a(protocol, x_count=x_count, y_count=y_count)
        assert outcome.all_delivered_once


class TestFig1bSweep:
    @pytest.mark.parametrize("x_count,y_count", SHAPES)
    def test_can_duplicates_every_y(self, x_count, y_count):
        outcome = fig1b("can", x_count=x_count, y_count=y_count)
        assert outcome.double_reception
        y_names = [name for name in outcome.deliveries if name.startswith("y")]
        for name in y_names:
            assert outcome.deliveries[name] == 2

    @pytest.mark.parametrize("x_count,y_count", SHAPES)
    def test_minorcan_consistent(self, x_count, y_count):
        outcome = fig1b("minorcan", x_count=x_count, y_count=y_count)
        assert outcome.all_delivered_once


class TestFig1cSweep:
    @pytest.mark.parametrize("x_count,y_count", SHAPES)
    def test_can_omits_every_x(self, x_count, y_count):
        outcome = fig1c("can", x_count=x_count, y_count=y_count)
        assert outcome.inconsistent_omission
        for name in outcome.deliveries:
            if name.startswith("x"):
                assert outcome.deliveries[name] == 0


class TestFig3Sweep:
    @pytest.mark.parametrize("x_count,y_count", SHAPES)
    @pytest.mark.parametrize("protocol", ["can", "minorcan"])
    def test_unfixed_protocols_omit(self, protocol, x_count, y_count):
        outcome = fig3(protocol, x_count=x_count, y_count=y_count)
        assert outcome.inconsistent_omission
        assert outcome.crashed == []

    @pytest.mark.parametrize("x_count,y_count", SHAPES)
    def test_majorcan_consistent(self, x_count, y_count):
        outcome = fig3("majorcan", x_count=x_count, y_count=y_count)
        assert outcome.all_delivered_once


class TestFig5MSweep:
    @pytest.mark.parametrize("m", [5, 6, 7, 9])
    def test_consistent_for_m_at_least_five(self, m):
        """The figure's pattern injects five errors, so the guarantee
        applies for m >= 5 (and happens to hold for some smaller m)."""
        outcome = fig5(m=m)
        assert outcome.all_delivered_once
        assert outcome.errors_injected == 5

    def test_pattern_degrades_gracefully_for_small_m(self):
        """For m = 3 the figure's geometry does not fully exist (the
        scripted sampling-window positions are outside MajorCAN_3's
        shorter window), so fewer errors fire — and the outcome is
        still consistent."""
        outcome = fig5(m=3)
        assert outcome.errors_injected < 5
        assert outcome.consistent
