"""Tests for the structured fault-injection campaign module."""

import pytest

from repro.errors import ConfigurationError
from repro.faults.campaigns import CampaignSpec, compare_protocols, run_campaign


class TestSpecValidation:
    def test_minimum_nodes(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(n_nodes=2)

    def test_probability_range(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(attack_probability=1.5)

    def test_round_count(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(rounds=0)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        spec = CampaignSpec(protocol="can", rounds=8, attack_probability=0.5, seed=9)
        first = run_campaign(spec)
        second = run_campaign(spec)
        assert first.as_row() == second.as_row()
        assert first.omission_rounds == second.omission_rounds


class TestAttackSemantics:
    def test_every_attack_breaks_can(self):
        outcome = run_campaign(
            CampaignSpec(protocol="can", rounds=10, attack_probability=1.0, seed=3)
        )
        assert outcome.attacked_rounds == 10
        assert outcome.omissions == 10
        assert outcome.omission_rate == 1.0

    def test_no_attack_no_inconsistency(self):
        outcome = run_campaign(
            CampaignSpec(protocol="can", rounds=6, attack_probability=0.0, seed=3)
        )
        assert outcome.omissions == 0
        assert outcome.consistent == 6

    def test_majorcan_resists_every_attack(self):
        outcome = run_campaign(
            CampaignSpec(
                protocol="majorcan", rounds=10, attack_probability=1.0, seed=3
            )
        )
        assert outcome.omissions == 0
        assert outcome.consistent == 10

    def test_two_errors_injected_per_attack(self):
        outcome = run_campaign(
            CampaignSpec(protocol="can", rounds=5, attack_probability=1.0, seed=1)
        )
        assert outcome.errors_injected == 10


class TestNoiseAndBackground:
    def test_noise_errors_counted(self):
        outcome = run_campaign(
            CampaignSpec(
                protocol="majorcan",
                rounds=3,
                attack_probability=0.0,
                noise_ber_star=1e-3,
                seed=4,
            )
        )
        assert outcome.errors_injected > 0

    def test_background_traffic_volume(self):
        spec = CampaignSpec(
            protocol="can",
            rounds=2,
            attack_probability=0.0,
            background_frames=3,
            seed=2,
        )
        outcome = run_campaign(spec)
        assert outcome.consistent == 2


class TestComparison:
    def test_same_seed_across_protocols(self):
        outcomes = compare_protocols(rounds=6, attack_probability=0.5, seed=11)
        attacked = {outcome.attacked_rounds for outcome in outcomes}
        assert len(attacked) == 1  # identical attack schedule
        by_protocol = {outcome.spec.protocol: outcome for outcome in outcomes}
        assert by_protocol["majorcan"].omissions == 0
        assert by_protocol["can"].omissions == by_protocol["can"].attacked_rounds
