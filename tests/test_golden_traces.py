"""Golden-trace regression tests.

These pin the exact on-the-wire behaviour of canonical situations so
that any future change to the controller timing is surfaced as a
diff against the paper-aligned reference patterns.
"""

import pytest

from repro.can.controller import CanController
from repro.can.encoding import encode_frame
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.can.bits import DOMINANT

from helpers import run_one_frame

FRAME = data_frame(0x123, b"\x55", message_id="m")


class TestCleanFrameOnBus:
    def test_bus_carries_exactly_the_encoded_frame(self):
        """With one transmitter and silent receivers, the bus equals the
        encoded frame with the ACK slot pulled dominant."""
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        outcome = run_one_frame(nodes, FRAME)
        wire = encode_frame(FRAME)
        expected = [int(b.level) for b in wire.bits]
        expected[wire.ack_slot_position] = 0  # receivers acknowledge
        observed = [int(level) for level in outcome.engine.bus.history[: len(expected)]]
        assert observed == expected

    def test_frame_followed_by_recessive_idle(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        outcome = run_one_frame(nodes, FRAME)
        wire_length = len(encode_frame(FRAME).bits)
        tail = outcome.engine.bus.history[wire_length:]
        assert all(int(level) == 1 for level in tail)


class TestFig1bWirePattern:
    """The exact error-frame choreography of Fig. 1b."""

    @pytest.fixture(scope="class")
    def outcome(self):
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)]
        )
        return run_one_frame(nodes, FRAME, injector)

    def test_bus_pattern_after_the_disturbance(self, outcome):
        """From the (clean) last-but-one EOF bit: x's six-bit flag one
        bit later, overlapped by tx/y flags one further bit, then the
        recessive delimiter — 'r d d d d d d d r r r r r r r' on the
        wire."""
        wire = encode_frame(FRAME)
        eof_bit6_time = wire.eof_start + 5
        window = outcome.engine.bus.as_string(eof_bit6_time, eof_bit6_time + 15)
        assert window == "rdddddddrrrrrrr"

    def test_retransmission_starts_after_intermission(self, outcome):
        wire = encode_frame(FRAME)
        # Disturbed bit, then the 7-bit flag superposition (x's flag
        # plus the one-bit-later reaction flags), the 8-bit delimiter
        # (first recessive included) and the 3-bit intermission.
        retransmit_sof = wire.eof_start + 5 + 1 + 7 + 8 + 3
        assert outcome.engine.bus.history[retransmit_sof].value == 0
        times = [
            event.time
            for event in outcome.trace.events
            if event.kind == "tx_start" and event.data.get("attempt") == 2
        ]
        assert times == [retransmit_sof]


def _corpus_path(entry):
    import os

    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "corpus",
        entry + ".jsonl",
    )


class TestMinorCanPrimaryWirePattern:
    """MinorCAN, Fig. 1a pattern: x's error flag is answered by the
    others' overload flags whose tail gives x its primary-error
    indication.

    The scenario now lives in the golden corpus
    (``corpus/overload-primary-minorcan.jsonl``); the wire-pattern
    assertion runs against the checked-in recording, and a replay pins
    the recording to the live controllers.
    """

    def test_lone_last_bit_error_produces_flag_then_overloads(self):
        from repro.tracestore import load_trace

        recorded = load_trace(_corpus_path("overload-primary-minorcan"))
        wire = encode_frame(FRAME)
        flag_start = wire.eof_start + 7  # bit after the last EOF bit
        # x flags 6 bits; tx/y react one bit later; superposition is 7
        # dominant bits; then the 8-bit recessive delimiter.
        assert recorded.bus[flag_start : flag_start + 15] == "dddddddrrrrrrrr"

    def test_recording_replays_bit_identically(self):
        from repro.tracestore import replay_trace

        assert replay_trace(_corpus_path("overload-primary-minorcan")).bit_identical


class TestMajorCanExtendedFlagWirePattern:
    """MajorCAN_5 extended error flag, pinned by the golden corpus
    entry ``corpus/eof-extended-flag-majorcan.jsonl``."""

    def test_second_subfield_error_extends_to_3m_plus_5(self):
        from repro.tracestore import load_trace

        m = 5
        recorded = load_trace(_corpus_path("eof-extended-flag-majorcan"))
        wire = encode_frame(FRAME, eof_length=2 * m)
        eof_start = wire.eof_start
        # x detects at EOF bit m+1, extends through bit 3m+5; the other
        # nodes see x's flag at bit m+2 and extend as well.  On the bus:
        # recessive EOF bits 1..m+1 (x's error was only in its view),
        # then dominant through 3m+5, then the 2m+1-bit delimiter.
        pattern = recorded.bus[eof_start : eof_start + 3 * m + 5 + 2 * m + 1]
        expected = "r" * (m + 1) + "d" * (2 * m + 4) + "r" * (2 * m + 1)
        assert pattern == expected

    def test_recording_replays_bit_identically(self):
        from repro.tracestore import replay_trace

        assert replay_trace(_corpus_path("eof-extended-flag-majorcan")).bit_identical
