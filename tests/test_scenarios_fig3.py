"""Reproduction tests for the paper's new scenarios (Fig. 3).

The headline contribution of Section 4: an inconsistent message
omission with a *correct* transmitter, requiring only one additional
single-bit disturbance over the Fig. 1b pattern.
"""

import pytest

from repro.can.events import EventKind
from repro.faults.scenarios import fig3, fig3a, fig3b


class TestFig3aStandardCan:
    def test_imo_with_correct_transmitter(self):
        outcome = fig3a()
        assert outcome.inconsistent_omission
        assert outcome.crashed == []

    def test_exact_deliveries(self):
        assert fig3a().deliveries == {"tx": 1, "x": 0, "y": 1}

    def test_no_retransmission(self):
        """The transmitter considers the frame correctly transmitted."""
        assert fig3a().attempts == 1

    def test_two_single_bit_errors_suffice(self):
        assert fig3a().errors_injected == 2

    def test_transmitter_saw_no_error_during_frame(self):
        outcome = fig3a()
        tx = outcome.engine.node("tx")
        assert not any(e.kind == EventKind.ERROR_DETECTED for e in tx.events)

    def test_larger_x_set(self):
        outcome = fig3a(x_count=3, y_count=2)
        assert outcome.inconsistent_omission
        for name in ("x1", "x2", "x3"):
            assert outcome.deliveries[name] == 0

    def test_x_rejected_the_frame(self):
        outcome = fig3a()
        x = outcome.engine.node("x")
        assert any(e.kind == EventKind.FRAME_REJECTED for e in x.events)


class TestFig3bMinorCan:
    def test_minorcan_also_defeated(self):
        outcome = fig3b()
        assert outcome.inconsistent_omission
        assert outcome.crashed == []

    def test_same_disturbance_count_as_fig3a(self):
        assert fig3b().errors_injected == fig3a().errors_injected == 2


class TestFig3MajorCanFixes:
    @pytest.mark.parametrize("m", [3, 4, 5, 6, 8])
    def test_majorcan_consistent_for_all_m(self, m):
        outcome = fig3("majorcan", m=m)
        assert outcome.consistent
        assert outcome.all_delivered_once

    def test_majorcan_no_retransmission_needed(self):
        """The EOF carries no data: everyone accepts the frame."""
        outcome = fig3("majorcan")
        assert outcome.attempts == 1
