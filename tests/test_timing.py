"""Tests for the bit-timing configuration module."""

import pytest

from repro.can.timing import (
    BitTiming,
    classic_1mbps,
    timing_for_bit_rate,
)
from repro.errors import ConfigurationError


class TestValidation:
    def test_positive_clock(self):
        with pytest.raises(ConfigurationError):
            BitTiming(0, 1, 7, 5, 3)

    def test_prescaler_bounds(self):
        with pytest.raises(ConfigurationError):
            BitTiming(16e6, 0, 7, 5, 3)

    def test_segment_minimums(self):
        with pytest.raises(ConfigurationError):
            BitTiming(16e6, 1, 0, 5, 3)

    def test_quanta_per_bit_range(self):
        with pytest.raises(ConfigurationError):
            BitTiming(16e6, 1, 2, 2, 2)  # 7 quanta: too few
        with pytest.raises(ConfigurationError):
            BitTiming(16e6, 1, 15, 8, 8)  # 32 quanta: too many

    def test_sjw_bounds(self):
        with pytest.raises(ConfigurationError):
            BitTiming(16e6, 1, 7, 5, 3, sjw=5)
        with pytest.raises(ConfigurationError):
            BitTiming(16e6, 1, 7, 5, 3, sjw=0)

    def test_phase_seg2_information_processing_time(self):
        with pytest.raises(ConfigurationError):
            BitTiming(16e6, 1, 9, 5, 1)


class TestDerivedQuantities:
    def test_classic_1mbps(self):
        timing = classic_1mbps()
        assert timing.quanta_per_bit == 16
        assert timing.bit_rate_bps == pytest.approx(1e6)
        assert timing.sample_point == pytest.approx(0.8125)

    def test_time_quantum(self):
        timing = BitTiming(16e6, 2, 7, 5, 3)
        assert timing.time_quantum_s == pytest.approx(2 / 16e6)
        assert timing.bit_rate_bps == pytest.approx(0.5e6)

    def test_bus_length_shrinks_with_bit_rate(self):
        fast = classic_1mbps()
        slow = timing_for_bit_rate(125_000)
        assert slow.max_bus_length_m() > fast.max_bus_length_m()

    def test_bus_length_never_negative(self):
        timing = classic_1mbps()
        assert timing.max_bus_length_m(node_delay_s=1.0) == 0.0


class TestSearch:
    @pytest.mark.parametrize("rate", [1_000_000, 500_000, 250_000, 125_000])
    def test_exact_rates_found(self, rate):
        timing = timing_for_bit_rate(rate)
        assert timing.bit_rate_bps == pytest.approx(rate)

    def test_sample_point_near_target(self):
        timing = timing_for_bit_rate(500_000, sample_point_target=0.8)
        assert 0.65 <= timing.sample_point <= 0.9

    def test_impossible_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            timing_for_bit_rate(1_234_567)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            timing_for_bit_rate(0)
