"""Unit tests for CAN identifiers and arbitration priority."""

import pytest

from repro.can.identifiers import (
    MAX_EXTENDED_ID,
    MAX_STANDARD_ID,
    CanId,
    arbitration_sort_key,
    highest_priority,
)
from repro.errors import FrameError


class TestCanIdValidation:
    def test_standard_id_bounds(self):
        CanId(0)
        CanId(MAX_STANDARD_ID)
        with pytest.raises(FrameError):
            CanId(MAX_STANDARD_ID + 1)

    def test_extended_id_bounds(self):
        CanId(MAX_EXTENDED_ID, extended=True)
        with pytest.raises(FrameError):
            CanId(MAX_EXTENDED_ID + 1, extended=True)

    def test_negative_rejected(self):
        with pytest.raises(FrameError):
            CanId(-1)

    def test_width(self):
        assert CanId(1).width == 11
        assert CanId(1, extended=True).width == 29


class TestBitDecomposition:
    def test_standard_id_bits(self):
        assert CanId(0b10101010101).id_bits() == [1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]

    def test_base_part_of_standard(self):
        assert CanId(0x7FF).base_part() == [1] * 11

    def test_base_and_extension_of_extended(self):
        identifier = CanId((0x555 << 18) | 0x2AAAA, extended=True)
        assert identifier.base_part() == [1 if c == "1" else 0 for c in format(0x555, "011b")]
        assert identifier.extension_part() == [
            1 if c == "1" else 0 for c in format(0x2AAAA, "018b")
        ]

    def test_standard_has_no_extension(self):
        with pytest.raises(FrameError):
            CanId(1).extension_part()


class TestPriority:
    def test_lower_value_outranks(self):
        assert CanId(0x100).outranks(CanId(0x200))
        assert not CanId(0x200).outranks(CanId(0x100))

    def test_equal_ids_do_not_outrank(self):
        assert not CanId(0x100).outranks(CanId(0x100))

    def test_base_outranks_extended_with_same_prefix(self):
        # The base frame's RTR bit (dominant for data) lines up against
        # the extended frame's recessive SRR bit.
        base = CanId(0x123)
        extended = CanId((0x123 << 18) | 1, extended=True)
        assert base.outranks(extended)

    def test_extended_with_lower_base_part_wins(self):
        extended = CanId(0x100 << 18, extended=True)
        base = CanId(0x200)
        assert extended.outranks(base)

    def test_highest_priority_picks_minimum_key(self):
        ids = [CanId(0x300), CanId(0x001), CanId(0x7FF)]
        assert highest_priority(ids) == CanId(0x001)

    def test_highest_priority_empty_raises(self):
        with pytest.raises(FrameError):
            highest_priority([])

    def test_sort_key_orders_by_wire_bits(self):
        ids = [CanId(v) for v in (5, 3, 4, 0)]
        ordered = sorted(ids, key=arbitration_sort_key)
        assert [identifier.value for identifier in ordered] == [0, 3, 4, 5]
