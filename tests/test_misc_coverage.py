"""Tests for smaller features not covered elsewhere."""

import pytest

from repro.can.bits import DOMINANT
from repro.can.controller import CanController
from repro.can.controller_config import ControllerConfig
from repro.can.encoding import encode_frame
from repro.can.events import EventKind
from repro.can.fields import DATA
from repro.can.frame import data_frame
from repro.analysis.rates import hours_between_incidents, incidents_per_hour
from repro.errors import AnalysisError, ConfigurationError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.simulation.engine import SimulationEngine
from repro.workload.profiles import PAPER_PROFILE

from helpers import run_one_frame


class TestMaxRetransmissions:
    def _run_with_limit(self, limit, failures=5):
        config = ControllerConfig(max_retransmissions=limit)
        nodes = [CanController("tx", config), CanController("x"), CanController("y")]
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("x", Trigger(field=DATA, index=1, occurrence=n))
                for n in range(1, failures + 1)
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        return outcome

    def test_frame_abandoned_after_limit(self):
        outcome = self._run_with_limit(limit=2)
        transmitter = outcome.engine.node("tx")
        abandoned = [
            e for e in transmitter.events if e.kind == EventKind.TX_ABANDONED
        ]
        assert abandoned
        assert transmitter.pending_transmissions == 0
        # Nobody ever delivered the abandoned frame.
        assert outcome.deliveries["x"] == 0

    def test_unlimited_by_default(self):
        outcome = self._run_with_limit(limit=None, failures=4)
        assert outcome.all_delivered_once
        assert outcome.attempts == 5

    def test_limit_validation(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(max_retransmissions=-1)


class TestConfigValidation:
    def test_eof_minimum(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(eof_length=1)

    def test_delimiter_minimum(self):
        with pytest.raises(ConfigurationError):
            ControllerConfig(delimiter_length=1)


class TestWireFrameHelpers:
    def test_levels_sequence(self):
        wire = encode_frame(data_frame(0x123, b"\x01"))
        levels = wire.levels()
        assert len(levels) == len(wire.bits)
        assert levels[0].value == 0  # SOF is dominant


class TestRates:
    def test_hours_between_incidents_inverse(self):
        rate = incidents_per_hour(1e-9, PAPER_PROFILE)
        assert hours_between_incidents(1e-9, PAPER_PROFILE) == pytest.approx(1 / rate)

    def test_zero_probability_is_never(self):
        assert hours_between_incidents(0.0, PAPER_PROFILE) == float("inf")

    def test_probability_validated(self):
        with pytest.raises(AnalysisError):
            incidents_per_hour(1.5, PAPER_PROFILE)


class TestEngineInjectorDefault:
    def test_base_injector_is_identity(self):
        from repro.simulation.engine import FaultInjector

        injector = FaultInjector()
        node = CanController("n")
        assert injector.perturb_drive(node, 0, DOMINANT) is DOMINANT
        assert injector.perturb_view(node, 0, DOMINANT) is DOMINANT
        injector.on_bit_start(0, [node])  # no-op, must not raise


class TestReceivedFramesAlias:
    def test_received_frames_matches_deliveries(self):
        tx, rx = CanController("tx"), CanController("rx")
        engine = SimulationEngine([tx, rx])
        tx.submit(data_frame(0x1, b"\x09"))
        engine.run_until_idle(5000)
        assert rx.received_frames == [d.frame for d in rx.deliveries]
