"""Unit tests for the fault injection framework."""

import pytest

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import CanController
from repro.can.fields import DATA, EOF
from repro.can.frame import data_frame
from repro.errors import ConfigurationError
from repro.faults.bit_errors import (
    BurstViewErrorInjector,
    ErrorBudgetInjector,
    RandomViewErrorInjector,
)
from repro.faults.injector import (
    CompositeInjector,
    CrashFault,
    DriveFault,
    ScriptedInjector,
    Trigger,
    ViewFault,
)
from repro.simulation.engine import SimulationEngine

from helpers import run_one_frame


class TestTrigger:
    def test_requires_some_criterion(self):
        with pytest.raises(ConfigurationError):
            Trigger()

    def test_occurrence_one_based(self):
        with pytest.raises(ConfigurationError):
            Trigger(field=EOF, occurrence=0)

    def test_time_trigger(self):
        node = CanController("n")
        trigger = Trigger(time=5, field=None, state="idle")
        node.now = 0
        assert not trigger.fires(node, 4)
        assert trigger.fires(node, 5)

    def test_position_trigger_matches_field_and_index(self):
        node = CanController("n")
        node.position = (EOF, 3)
        assert Trigger(field=EOF, index=3).fires(node, 0)
        assert not Trigger(field=EOF, index=4).fires(node, 1)
        assert not Trigger(field=DATA, index=3).fires(node, 2)

    def test_occurrence_selects_nth_match(self):
        node = CanController("n")
        node.position = (EOF, 0)
        trigger = Trigger(field=EOF, occurrence=2)
        assert not trigger.fires(node, 0)
        assert trigger.fires(node, 1)
        assert not trigger.fires(node, 2)  # one-shot by default

    def test_repeat_fires_from_occurrence_onwards(self):
        node = CanController("n")
        node.position = (EOF, 0)
        trigger = Trigger(field=EOF, occurrence=2, repeat=True)
        assert not trigger.fires(node, 0)
        assert trigger.fires(node, 1)
        assert trigger.fires(node, 2)

    def test_reset(self):
        node = CanController("n")
        node.position = (EOF, 0)
        trigger = Trigger(field=EOF)
        assert trigger.fires(node, 0)
        trigger.reset()
        assert trigger.fires(node, 1)


class TestFaultApplication:
    def test_view_fault_force(self):
        fault = ViewFault("n", Trigger(field=EOF), force=DOMINANT)
        assert fault.apply(RECESSIVE) is DOMINANT

    def test_view_fault_flip(self):
        fault = ViewFault("n", Trigger(field=EOF), force=None)
        assert fault.apply(RECESSIVE) is DOMINANT
        assert fault.apply(DOMINANT) is RECESSIVE

    def test_scripted_injector_records_firings(self):
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        fault = ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)
        injector = ScriptedInjector(view_faults=[fault])
        run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert len(fault.fired_at) == 1
        assert injector.total_fired == 1
        assert injector.all_fired()

    def test_drive_fault_perturbs_physical_output(self):
        """Masking the transmitter's drive during DATA corrupts the bus
        for everyone: all receivers reject, the frame is retransmitted."""
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            drive_faults=[DriveFault("tx", Trigger(field=DATA, index=0), force=RECESSIVE)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x00"), injector)
        assert outcome.attempts == 2
        assert outcome.all_delivered_once

    def test_crash_fault(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        injector = ScriptedInjector(
            crash_faults=[CrashFault("tx", Trigger(time=10))]
        )
        engine = SimulationEngine(nodes, injector=injector)
        engine.run(20)
        assert nodes[0].crashed
        assert not nodes[1].crashed


class TestCompositeInjector:
    def test_chains_view_perturbations(self):
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        first = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)]
        )
        second = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=5), force=RECESSIVE)]
        )
        composite = CompositeInjector([first, second])
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), composite)
        # The second injector undoes the first: clean run.
        assert outcome.attempts == 1
        assert outcome.all_delivered_once


class TestRandomInjector:
    def test_validates_probability(self):
        with pytest.raises(ConfigurationError):
            RandomViewErrorInjector(1.5)

    def test_counts_injections(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        injector = RandomViewErrorInjector(0.02, seed=1)
        engine = SimulationEngine(nodes, injector=injector)
        nodes[0].submit(data_frame(0x123, b"\x55"))
        engine.run(300)
        assert injector.injected == len(injector.injections)
        assert injector.injected > 0

    def test_only_nodes_restriction(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        injector = RandomViewErrorInjector(0.5, seed=1, only_nodes=["x"])
        engine = SimulationEngine(nodes, injector=injector)
        engine.run(100)
        assert set(injector.injected_by_node) <= {"x"}


class TestBurstAndBudget:
    def test_burst_flips_exact_window(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        injector = BurstViewErrorInjector("x", start_time=10, length=5)
        engine = SimulationEngine(nodes, injector=injector)
        engine.run(30)
        assert injector.injected == 5

    def test_burst_validates_length(self):
        with pytest.raises(ConfigurationError):
            BurstViewErrorInjector("x", 0, 0)

    def test_budget_applies_exact_flips(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        injector = ErrorBudgetInjector([(3, "x"), (7, "x"), (9, "tx")])
        engine = SimulationEngine(nodes, injector=injector)
        engine.run(20)
        assert injector.applied == 3

    def test_budget_ignores_unscheduled(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        injector = ErrorBudgetInjector([(500, "x")])
        engine = SimulationEngine(nodes, injector=injector)
        engine.run(20)
        assert injector.applied == 0


class TestScriptSerde:
    """Round-tripping injector scripts through plain dicts (trace store)."""

    def test_trigger_round_trip(self):
        trigger = Trigger(field=EOF, index=5, occurrence=2, repeat=True)
        rebuilt = Trigger.from_dict(trigger.to_dict())
        assert rebuilt.to_dict() == trigger.to_dict()

    def test_fired_trigger_serializes_fresh(self):
        node = CanController("n")
        node.position = (EOF, 0)
        trigger = Trigger(field=EOF)
        assert trigger.fires(node, 0)
        rebuilt = Trigger.from_dict(trigger.to_dict())
        assert rebuilt.fires(node, 1)  # runtime state was not serialized

    def test_view_fault_round_trip_preserves_force(self):
        fault = ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)
        rebuilt = ViewFault.from_dict(fault.to_dict())
        assert rebuilt.node == "x"
        assert rebuilt.force is DOMINANT
        assert rebuilt.to_dict() == fault.to_dict()

    def test_flip_fault_round_trips_force_none(self):
        fault = DriveFault("x", Trigger(field=DATA, index=0), force=None)
        rebuilt = DriveFault.from_dict(fault.to_dict())
        assert rebuilt.force is None
        assert rebuilt.apply(RECESSIVE) is DOMINANT

    def test_crash_fault_round_trip(self):
        from repro.faults.injector import injector_from_dict

        injector = ScriptedInjector(crash_faults=[CrashFault("tx", Trigger(time=40))])
        rebuilt = injector_from_dict(injector.to_dict())
        assert rebuilt.to_dict() == injector.to_dict()

    def test_round_tripped_script_reproduces_the_run(self):
        from repro.faults.injector import injector_from_dict

        def script():
            return ScriptedInjector(
                view_faults=[
                    ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)
                ]
            )

        frame = data_frame(0x123, b"\x55", message_id="m")
        original = run_one_frame(
            [CanController(n) for n in ("tx", "x", "y")], frame, script()
        )
        rebuilt = run_one_frame(
            [CanController(n) for n in ("tx", "x", "y")],
            frame,
            injector_from_dict(script().to_dict()),
        )
        assert original.engine.bus.history == rebuilt.engine.bus.history

    def test_unknown_kind_rejected(self):
        from repro.faults.injector import injector_from_dict

        with pytest.raises(ConfigurationError):
            injector_from_dict({"kind": "random"})
