"""Stateful fuzzing of the simulation substrate.

A hypothesis rule machine drives a live bus with arbitrary interleaved
operations — frame submissions on any node, node crashes, bursts of
random view noise, plain time advancement — and checks global
invariants after every step:

* the engine never raises;
* nothing is delivered that was never submitted (wire-level
  non-triviality);
* per-source delivery order never inverts the submission order
  (modulo adjacent duplicates from the CAN last-bit rule);
* error counters remain non-negative and controllers stay in known
  states.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.can.controller import CanController
from repro.can.frame import data_frame
from repro.core.majorcan import MajorCanController
from repro.core.minorcan import MinorCanController
from repro.faults.bit_errors import RandomViewErrorInjector
from repro.simulation.engine import SimulationEngine

NODE_COUNT = 4
KNOWN_STATES = {
    "idle",
    "receiving",
    "transmitting",
    "error_flag",
    "passive_error_flag",
    "error_wait",
    "error_delim",
    "overload_flag",
    "overload_wait",
    "overload_delim",
    "intermission",
    "suspend",
    "bus_off",
    "major_flag",
    "major_quiet",
    "major_extended_flag",
}


class BusMachine(RuleBasedStateMachine):
    @initialize(
        protocol=st.sampled_from(["can", "minorcan", "majorcan"]),
        seed=st.integers(0, 2**31),
    )
    def setup(self, protocol, seed):
        classes = {
            "can": CanController,
            "minorcan": MinorCanController,
            "majorcan": MajorCanController,
        }
        self.nodes = [classes[protocol]("n%d" % i) for i in range(NODE_COUNT)]
        self.injector = RandomViewErrorInjector(0.0, seed=seed)
        self.engine = SimulationEngine(
            self.nodes, injector=self.injector, record_bits=False
        )
        self.submitted_payloads = set()
        self.sequence_counter = 0

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @rule(node_index=st.integers(0, NODE_COUNT - 1))
    def submit_frame(self, node_index):
        node = self.nodes[node_index]
        if node.pending_transmissions > 4:
            return
        payload = bytes([node_index, self.sequence_counter % 256])
        self.sequence_counter += 1
        self.submitted_payloads.add(payload)
        node.submit(data_frame(0x100 + node_index, payload))

    @rule(bits=st.integers(1, 300))
    def advance(self, bits):
        self.engine.run(bits)

    @rule(noise=st.sampled_from([0.0, 1e-4, 1e-3]))
    def set_noise(self, noise):
        self.injector.ber_star = noise

    @rule(node_index=st.integers(1, NODE_COUNT - 1))
    def crash_node(self, node_index):
        # Keep node 0 alive so the bus never fully dies.
        self.nodes[node_index].crash()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def nothing_undelivered_was_invented(self):
        for node in self.nodes:
            for delivery in node.deliveries:
                assert delivery.frame.data in self.submitted_payloads

    @invariant()
    def per_source_order_never_inverts(self):
        for node in self.nodes:
            per_source = {}
            for delivery in node.deliveries:
                data = delivery.frame.data
                if len(data) != 2:
                    continue
                per_source.setdefault(data[0], []).append(data[1])
            for sequence in per_source.values():
                deduplicated = []
                for item in sequence:
                    if not deduplicated or deduplicated[-1] != item:
                        deduplicated.append(item)
                assert deduplicated == sorted(set(deduplicated), key=deduplicated.index)
                # strictly: the first occurrences must be increasing
                firsts = list(dict.fromkeys(sequence))
                assert firsts == sorted(firsts)

    @invariant()
    def counters_non_negative_and_states_known(self):
        for node in self.nodes:
            assert node.counters.tec >= 0
            assert node.counters.rec >= 0
            assert node.state in KNOWN_STATES


BusMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestBusFuzz = BusMachine.TestCase
