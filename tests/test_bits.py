"""Unit tests for the bus-level primitives."""

import pytest

from repro.can.bits import (
    DOMINANT,
    RECESSIVE,
    Level,
    bits_from_int,
    bits_from_levels,
    int_from_bits,
    levels_from_bits,
    levels_from_string,
    levels_to_string,
    wired_and,
)


class TestLevel:
    def test_dominant_is_logical_zero(self):
        assert int(Level.DOMINANT) == 0

    def test_recessive_is_logical_one(self):
        assert int(Level.RECESSIVE) == 1

    def test_symbols(self):
        assert Level.DOMINANT.symbol == "d"
        assert Level.RECESSIVE.symbol == "r"

    def test_flipped_is_involutive(self):
        for level in Level:
            assert level.flipped().flipped() is level

    def test_flipped_changes_value(self):
        assert Level.DOMINANT.flipped() is Level.RECESSIVE
        assert Level.RECESSIVE.flipped() is Level.DOMINANT

    def test_module_aliases(self):
        assert DOMINANT is Level.DOMINANT
        assert RECESSIVE is Level.RECESSIVE


class TestWiredAnd:
    def test_empty_bus_floats_recessive(self):
        assert wired_and([]) is Level.RECESSIVE

    def test_single_dominant_wins(self):
        assert wired_and([RECESSIVE, RECESSIVE, DOMINANT]) is DOMINANT

    def test_all_recessive_stays_recessive(self):
        assert wired_and([RECESSIVE] * 5) is RECESSIVE

    def test_all_dominant(self):
        assert wired_and([DOMINANT, DOMINANT]) is DOMINANT


class TestBitConversions:
    def test_bits_from_int_msb_first(self):
        assert bits_from_int(0b1011, 4) == [1, 0, 1, 1]

    def test_bits_from_int_pads_leading_zeros(self):
        assert bits_from_int(1, 4) == [0, 0, 0, 1]

    def test_bits_from_int_rejects_negative(self):
        with pytest.raises(ValueError):
            bits_from_int(-1, 4)

    def test_bits_from_int_rejects_overflow(self):
        with pytest.raises(ValueError):
            bits_from_int(16, 4)

    def test_int_from_bits_roundtrip(self):
        for value in (0, 1, 0x555, 0x7FF):
            assert int_from_bits(bits_from_int(value, 11)) == value

    def test_int_from_bits_rejects_non_bits(self):
        with pytest.raises(ValueError):
            int_from_bits([0, 2, 1])

    def test_levels_from_bits(self):
        assert levels_from_bits([0, 1]) == [DOMINANT, RECESSIVE]

    def test_bits_from_levels_roundtrip(self):
        bits = [0, 1, 1, 0, 1]
        assert bits_from_levels(levels_from_bits(bits)) == bits


class TestLevelStrings:
    def test_render_error_flag(self):
        assert levels_to_string([DOMINANT] * 6) == "dddddd"

    def test_parse_simple(self):
        assert levels_from_string("drd") == [DOMINANT, RECESSIVE, DOMINANT]

    def test_parse_ignores_separators(self):
        assert levels_from_string("d r_d|r") == [
            DOMINANT,
            RECESSIVE,
            DOMINANT,
            RECESSIVE,
        ]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            levels_from_string("dxr")

    def test_roundtrip(self):
        text = "ddrrdrdr"
        assert levels_to_string(levels_from_string(text)) == text
