"""Property-based tests of the protocols' consistency guarantees.

These are the paper's theorems as executable properties:

* **MajorCAN_m tolerates any m randomly placed view errors** around the
  frame end (Section 5) — Agreement and At-most-once hold;
* **standard CAN never suffers an inconsistent omission from a single
  view error** (one error can cause double reception, Fig. 1b, but an
  omission needs at least two);
* **MinorCAN is fully consistent under any single view error**
  (Section 3: it fixes all single-disturbance scenarios).

Each trial first locates the transmitter's EOF on a clean run, then
replays the run with view flips at hypothesis-chosen (node, bit-time)
sites near the frame end — the region where all the interesting
machinery lives.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.faults.bit_errors import ErrorBudgetInjector
from repro.faults.scenarios import make_controller, run_single_frame_scenario

NODE_NAMES = ("tx", "x", "y")

_PROPERTY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _eof_start_time(protocol: str, m: int) -> int:
    """Bit time of the transmitter's first EOF bit on a clean run."""
    nodes = [make_controller(protocol, name, m=m) for name in NODE_NAMES]
    outcome = run_single_frame_scenario(
        "probe", nodes, injector=_no_faults(), frame=data_frame(0x123, b"\x55")
    )
    times = outcome.trace.position_times("tx", EOF, 0)
    assert times, "clean run must reach the EOF"
    return times[0]


def _no_faults():
    from repro.faults.injector import ScriptedInjector

    return ScriptedInjector()


def _run_with_flips(protocol: str, m: int, flips: List[Tuple[int, str]]):
    nodes = [make_controller(protocol, name, m=m) for name in NODE_NAMES]
    injector = ErrorBudgetInjector(flips)
    return run_single_frame_scenario(
        "property",
        nodes,
        injector,
        frame=data_frame(0x123, b"\x55"),
        record_bits=False,
        max_bits=60000,
    )


_EOF_START_CACHE: dict = {}


def _cached_eof_start(protocol: str, m: int) -> int:
    key = (protocol, m)
    if key not in _EOF_START_CACHE:
        _EOF_START_CACHE[key] = _eof_start_time(protocol, m)
    return _EOF_START_CACHE[key]


@st.composite
def flip_sites(draw, max_flips: int, span_before: int, span_after: int):
    """Draw up to ``max_flips`` distinct (offset, node) error sites."""
    count = draw(st.integers(min_value=0, max_value=max_flips))
    sites = draw(
        st.lists(
            st.tuples(
                st.integers(-span_before, span_after),
                st.sampled_from(NODE_NAMES),
            ),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    return sites


class TestMajorCanTheorem:
    """Atomic Broadcast in the presence of up to m errors per frame."""

    @given(sites=flip_sites(max_flips=5, span_before=4, span_after=25))
    @_PROPERTY_SETTINGS
    def test_m5_consistent_under_any_5_errors_near_frame_end(self, sites):
        m = 5
        eof_start = _cached_eof_start("majorcan", m)
        flips = [(eof_start + offset, node) for offset, node in sites]
        outcome = _run_with_flips("majorcan", m, flips)
        assert outcome.consistent, outcome.summary()
        assert not outcome.double_reception, outcome.summary()

    @given(sites=flip_sites(max_flips=3, span_before=3, span_after=16))
    @_PROPERTY_SETTINGS
    def test_m3_consistent_under_any_3_errors(self, sites):
        m = 3
        eof_start = _cached_eof_start("majorcan", m)
        flips = [(eof_start + offset, node) for offset, node in sites]
        outcome = _run_with_flips("majorcan", m, flips)
        assert outcome.consistent, outcome.summary()
        assert not outcome.double_reception, outcome.summary()

    @given(sites=flip_sites(max_flips=5, span_before=4, span_after=0))
    @_PROPERTY_SETTINGS
    def test_errors_at_frame_tail_stay_consistent(self, sites):
        """Disturbances over the CRC delimiter / ACK field / first EOF
        bit (the paper's never-accept class) reject consistently."""
        m = 5
        eof_start = _cached_eof_start("majorcan", m)
        flips = [(eof_start + offset, node) for offset, node in sites]
        outcome = _run_with_flips("majorcan", m, flips)
        assert outcome.consistent, outcome.summary()


class TestReproductionFindingDesync:
    """Finding F1 (beyond the paper): a *single* mid-frame view error
    can desynchronise a receiver's destuffing/field tracking, so its
    eventual stuff-error flag starts inside the second EOF sub-field —
    where MajorCAN obliges every other node to read it as an extended
    acceptance flag.  The desynchronised node rejects while everyone
    else accepts: an inconsistent omission from one error, outside the
    paper's analysis (which assumes receivers always know their frame
    position).  See EXPERIMENTS.md, finding F1.
    """

    def test_single_error_desync_breaks_majorcan5(self):
        eof_start = _cached_eof_start("majorcan", 5)
        outcome = _run_with_flips("majorcan", 5, [(eof_start - 28, "x")])
        assert outcome.inconsistent_omission, (
            "the documented desync counterexample no longer reproduces: "
            + outcome.summary()
        )
        assert outcome.deliveries == {"tx": 1, "x": 0, "y": 1}

    @pytest.mark.parametrize("m", [3, 4, 5])
    def test_desync_channel_defeats_m_up_to_five(self, m):
        """The desynchronised flag starts 6 bits after the ACK slot —
        EOF-relative bit 6 — which lies in the second sub-field exactly
        when m <= 5.  The paper's proposed m = 5 sits on the boundary."""
        eof_start = _cached_eof_start("majorcan", m)
        outcome = _run_with_flips("majorcan", m, [(18, "x")])
        assert outcome.inconsistent_omission, outcome.summary()

    @pytest.mark.parametrize("m", [6, 7])
    def test_m_of_six_resists_the_desync_channel(self, m):
        outcome = _run_with_flips("majorcan", m, [(18, "x")])
        assert outcome.consistent, outcome.summary()
        assert outcome.all_delivered_once

    def test_same_flip_is_harmless_in_standard_can(self):
        eof_start = _cached_eof_start("can", 5)
        outcome = _run_with_flips("can", 5, [(eof_start - 28, "x")])
        assert not outcome.inconsistent_omission, outcome.summary()

    def test_same_flip_is_harmless_in_minorcan(self):
        eof_start = _cached_eof_start("minorcan", 5)
        outcome = _run_with_flips("minorcan", 5, [(eof_start - 28, "x")])
        assert not outcome.inconsistent_omission, outcome.summary()


class TestStandardCanSingleError:
    @given(sites=flip_sites(max_flips=1, span_before=4, span_after=20))
    @_PROPERTY_SETTINGS
    def test_no_omission_from_one_error(self, sites):
        """A single view error can duplicate (Fig. 1b) but never omit:
        the new scenarios need two errors (the paper's Section 4)."""
        eof_start = _cached_eof_start("can", 5)
        flips = [(eof_start + offset, node) for offset, node in sites]
        outcome = _run_with_flips("can", 5, flips)
        assert not outcome.inconsistent_omission, outcome.summary()


class TestMinorCanSingleError:
    @given(sites=flip_sites(max_flips=1, span_before=4, span_after=20))
    @_PROPERTY_SETTINGS
    def test_fully_consistent_under_one_error(self, sites):
        eof_start = _cached_eof_start("minorcan", 5)
        flips = [(eof_start + offset, node) for offset, node in sites]
        outcome = _run_with_flips("minorcan", 5, flips)
        assert outcome.consistent, outcome.summary()
        assert not outcome.double_reception, outcome.summary()
