"""Edge-case tests for the higher-level protocols under partial
control-frame loss."""

from repro.can.bits import DOMINANT
from repro.can.fields import EOF
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.protocols import (
    RelcanProtocol,
    TotcanProtocol,
    build_protocol_network,
)
from repro.protocols.base import AppMessage, KIND_ACCEPT, KIND_DATA


def _run(factory, injector=None, bits=6000):
    engine, nodes = build_protocol_network(
        factory,
        4,
        engine_kwargs={"injector": injector, "record_bits": False}
        if injector
        else {"record_bits": False},
    )
    nodes[0].broadcast(b"\xaa")
    engine.run(bits)
    engine.run_until_idle(80000)
    return nodes


class TestRelcanConfirmLoss:
    def test_receiver_missing_the_data_frame_via_retransmission(self):
        """A receiver that rejected the DATA frame still converges: the
        controller-level retransmission covers it before CONFIRM."""
        injector = ScriptedInjector(
            view_faults=[
                # Disturb n1's view mid-EOF of the first frame: reject +
                # controller retransmission.
                ViewFault("n1", Trigger(field=EOF, index=3), force=DOMINANT)
            ]
        )
        nodes = _run(RelcanProtocol, injector)
        for node in nodes:
            assert (0, 0) in node.delivered_keys

    def test_recovery_when_one_node_misses_confirm(self):
        """n1 receives the data but its view of the CONFIRM frame is
        corrupted (the controller rejects it and the CONFIRM is
        retransmitted); either path must end consistent."""
        injector = ScriptedInjector(
            view_faults=[
                ViewFault(
                    "n1",
                    Trigger(field=EOF, index=3, occurrence=2),
                    force=DOMINANT,
                )
            ]
        )
        nodes = _run(RelcanProtocol, injector)
        for node in nodes:
            assert (0, 0) in node.delivered_keys


class TestTotcanReordering:
    def test_accept_before_data_is_buffered(self):
        """Protocol-level: an ACCEPT seen before its DATA still fixes
        the message when the DATA arrives."""
        engine, nodes = build_protocol_network(TotcanProtocol, 2)
        protocol = nodes[1].protocol
        message = AppMessage(KIND_DATA, 0, 0)
        protocol.on_frame_delivered(
            AppMessage(KIND_ACCEPT, 0, 0), time=5
        )
        assert nodes[1].delivered_keys == []
        protocol.on_frame_delivered(message, time=9)
        assert nodes[1].delivered_keys == [(0, 0)]

    def test_timeout_only_removes_pending_entries(self):
        engine, nodes = build_protocol_network(TotcanProtocol, 2)
        protocol = nodes[1].protocol
        a = AppMessage(KIND_DATA, 0, 0)
        protocol.on_frame_delivered(a, time=0)
        protocol.on_frame_delivered(AppMessage(KIND_ACCEPT, 0, 0), time=1)
        protocol.on_tick(time=10_000)
        assert nodes[1].delivered_keys == [(0, 0)]

    def test_unaccepted_head_blocks_later_accepted_message(self):
        """Queue order is delivery order: a later-accepted message
        waits for the head to be fixed or removed."""
        engine, nodes = build_protocol_network(
            lambda: TotcanProtocol(timeout_bits=100), 2
        )
        protocol = nodes[1].protocol
        first = AppMessage(KIND_DATA, 0, 0)
        second = AppMessage(KIND_DATA, 2, 0)
        protocol.on_frame_delivered(first, time=0)
        protocol.on_frame_delivered(second, time=1)
        protocol.on_frame_delivered(AppMessage(KIND_ACCEPT, 2, 0), time=2)
        assert nodes[1].delivered_keys == []
        # The head times out; the accepted message is then released.
        protocol.on_tick(time=200)
        assert nodes[1].delivered_keys == [(2, 0)]
