"""Tests for the parallel batch-execution layer (PR 1).

The central contract: for the same seed, ``jobs=1`` and ``jobs=N``
produce *bit-identical* aggregate results — the worker count decides
where a chunk runs, never what it computes.  Plus the engine fast
path: ``record_bits=False`` runs reach the same scenario outcomes as
``record_bits=True``.
"""

import numpy as np
import pytest

from repro.analysis.montecarlo import monte_carlo_full, monte_carlo_tail
from repro.analysis.reliability import reliability_comparison, reliability_sweep
from repro.analysis.sweeps import m_ablation
from repro.analysis.verification import verify_consistency
from repro.can.controller import CanController
from repro.errors import SimulationError
from repro.faults.campaigns import CampaignSpec, run_campaign
from repro.faults.scenarios import fig1b, fig3, make_controller, run_single_frame_scenario
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.can.fields import EOF
import repro.parallel.pool as pool_module
from repro.parallel.pool import cpu_count, effective_jobs, run_tasks, shutdown_pool
from repro.parallel.seeds import adaptive_chunk, chunk_sizes, rng_from, spawn_seeds
from repro.parallel.tasks import MonteCarloTailChunk
from repro.simulation.engine import SimulationEngine


class TestSeedSplitting:
    def test_spawn_is_deterministic(self):
        first = [rng_from(s).random() for s in spawn_seeds(42, 5)]
        second = [rng_from(s).random() for s in spawn_seeds(42, 5)]
        assert first == second

    def test_children_are_independent(self):
        values = {rng_from(s).random() for s in spawn_seeds(3, 6)}
        assert len(values) == 6

    def test_generator_seed_supported(self):
        rng = np.random.default_rng(7)
        children = spawn_seeds(rng, 3)
        assert len(children) == 3

    def test_chunk_sizes_partition(self):
        assert chunk_sizes(100, 32) == [32, 32, 32, 4]
        assert chunk_sizes(10, 32) == [10]
        assert chunk_sizes(0, 32) == []
        assert sum(chunk_sizes(997, 64)) == 997

    def test_chunk_sizes_validation(self):
        with pytest.raises(ValueError):
            chunk_sizes(10, 0)
        with pytest.raises(ValueError):
            chunk_sizes(-1, 4)


class TestPool:
    def test_effective_jobs_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert effective_jobs(None) == 1
        assert effective_jobs(3) == 3
        assert effective_jobs(-1) == cpu_count()

    def test_effective_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert effective_jobs(None) == 5
        monkeypatch.setenv("REPRO_JOBS", "bogus")
        assert effective_jobs(None) == 1

    def test_run_tasks_preserves_order(self):
        tasks = [
            MonteCarloTailChunk(
                protocol="can",
                m=5,
                node_names=("tx", "r1", "r2"),
                sites=(("tx", 5), ("r1", 5)),
                ber_star=0.0,
                trials=index,
                seed=seed,
            )
            for index, seed in zip(range(1, 5), spawn_seeds(1, 4))
        ]
        serial = run_tasks(tasks, jobs=1)
        parallel = run_tasks(tasks, jobs=2)
        assert [part.trials for part in serial] == [1, 2, 3, 4]
        assert [part.trials for part in parallel] == [1, 2, 3, 4]


class _BoomTask:
    """Picklable task that fails inside the worker."""

    def run(self):
        raise RuntimeError("task failure")


class TestPoolReuse:
    """The module-level pool is shared across run_tasks calls."""

    def _tasks(self, count=3, seed=1):
        return [
            MonteCarloTailChunk(
                protocol="can",
                m=5,
                node_names=("tx", "r1", "r2"),
                sites=(("tx", 5), ("r1", 5)),
                ber_star=0.05,
                trials=4,
                seed=child,
            )
            for child in spawn_seeds(seed, count)
        ]

    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        shutdown_pool()
        yield
        shutdown_pool()
        assert pool_module._POOL is None
        assert pool_module._POOL_WORKERS == 0

    def test_pool_survives_across_calls(self):
        first = run_tasks(self._tasks(seed=1), jobs=2)
        created = pool_module._POOL
        if created is None:
            pytest.skip("platform cannot create process pools")
        second = run_tasks(self._tasks(seed=2), jobs=2)
        assert pool_module._POOL is created, "pool must be reused, not rebuilt"
        assert len(first) == len(second) == 3

    def test_pool_recreated_on_worker_count_change(self):
        run_tasks(self._tasks(seed=1), jobs=2)
        created = pool_module._POOL
        if created is None:
            pytest.skip("platform cannot create process pools")
        assert pool_module._POOL_WORKERS == 2
        run_tasks(self._tasks(seed=2), jobs=3)
        assert pool_module._POOL is not created
        assert pool_module._POOL_WORKERS == 3

    def test_serial_path_never_builds_a_pool(self):
        run_tasks(self._tasks(), jobs=1)
        assert pool_module._POOL is None

    def test_shutdown_pool_is_idempotent(self):
        run_tasks(self._tasks(), jobs=2)
        shutdown_pool()
        shutdown_pool()
        assert pool_module._POOL is None

    def test_reused_pool_matches_serial_results(self):
        serial = run_tasks(self._tasks(seed=7), jobs=1)
        warm = run_tasks(self._tasks(seed=7), jobs=2)
        again = run_tasks(self._tasks(seed=7), jobs=2)
        for other in (warm, again):
            assert [part.trials for part in other] == [
                part.trials for part in serial
            ]
            assert [part.flips_total for part in other] == [
                part.flips_total for part in serial
            ]

    def test_exception_discards_the_pool(self):
        run_tasks(self._tasks(), jobs=2)
        if pool_module._POOL is None:
            pytest.skip("platform cannot create process pools")
        with pytest.raises(RuntimeError):
            run_tasks([_BoomTask()], jobs=2)
        assert pool_module._POOL is None


class TestMonteCarloEquivalence:
    def test_tail_jobs_equivalence(self):
        kwargs = dict(protocol="can", n_nodes=3, ber_star=0.08, trials=96, seed=11)
        serial = monte_carlo_tail(jobs=1, **kwargs)
        parallel = monte_carlo_tail(jobs=4, **kwargs)
        assert (
            serial.imo,
            serial.double_reception,
            serial.inconsistent,
            serial.no_fault_trials,
            serial.flips_total,
        ) == (
            parallel.imo,
            parallel.double_reception,
            parallel.inconsistent,
            parallel.no_fault_trials,
            parallel.flips_total,
        )
        assert serial.trials == parallel.trials == 96

    def test_full_jobs_equivalence(self):
        kwargs = dict(protocol="can", n_nodes=3, ber_star=3e-3, trials=48, seed=3)
        serial = monte_carlo_full(jobs=1, **kwargs)
        parallel = monte_carlo_full(jobs=3, **kwargs)
        assert (serial.imo, serial.inconsistent, serial.flips_total) == (
            parallel.imo,
            parallel.inconsistent,
            parallel.flips_total,
        )

    def test_chunking_never_changes_counts(self):
        # Different chunk sizes change the spawn tree (documented), but
        # a fixed chunk size must survive any job count.
        base = monte_carlo_tail("can", ber_star=0.1, trials=50, seed=2, jobs=1)
        for jobs in (2, 3, 8):
            other = monte_carlo_tail("can", ber_star=0.1, trials=50, seed=2, jobs=jobs)
            assert (base.imo, base.flips_total) == (other.imo, other.flips_total)


class TestVerificationEquivalence:
    def test_counterexample_sets_identical(self):
        serial = verify_consistency("can", m=5, n_nodes=3, max_flips=1, jobs=1)
        parallel = verify_consistency("can", m=5, n_nodes=3, max_flips=1, jobs=4)
        assert serial.runs == parallel.runs
        assert [str(c) for c in serial.counterexamples] == [
            str(c) for c in parallel.counterexamples
        ]

    def test_holds_verdict_matches(self):
        serial = verify_consistency("majorcan", m=5, n_nodes=3, max_flips=1, jobs=1)
        parallel = verify_consistency("majorcan", m=5, n_nodes=3, max_flips=1, jobs=2)
        assert serial.holds and parallel.holds
        assert serial.runs == parallel.runs


class TestCampaignEquivalence:
    def test_rows_and_omission_rounds_identical(self):
        spec = CampaignSpec(
            protocol="can",
            rounds=20,
            attack_probability=0.4,
            noise_ber_star=5e-4,
            seed=9,
        )
        serial = run_campaign(spec, jobs=1)
        parallel = run_campaign(spec, jobs=4)
        assert serial.as_row() == parallel.as_row()
        assert serial.omission_rounds == parallel.omission_rounds

    def test_attack_schedule_protocol_independent(self):
        schedules = set()
        for protocol in ("can", "minorcan", "majorcan"):
            spec = CampaignSpec(
                protocol=protocol, rounds=12, attack_probability=0.5, seed=21
            )
            schedules.add(run_campaign(spec, jobs=2).attacked_rounds)
        assert len(schedules) == 1


class TestSweepAndReliabilityParallel:
    def test_m_ablation_jobs_equivalence(self):
        serial = m_ablation(m_values=(3, 5), tail_flips=1, check_f1=False, jobs=1)
        parallel = m_ablation(m_values=(3, 5), tail_flips=1, check_f1=False, jobs=2)
        assert serial == parallel
        assert [row.m for row in parallel] == [3, 5]

    def test_reliability_sweep_matches_pointwise(self):
        sweep = reliability_sweep([1e-4, 1e-6], jobs=2)
        assert list(sweep) == [1e-4, 1e-6]
        for ber, rows in sweep.items():
            assert rows == reliability_comparison(ber)


class TestEngineFastPath:
    def _outcome_pair(self, builder):
        """Run the same scripted scenario with and without recording."""
        results = []
        for record_bits in (True, False):
            nodes = [
                make_controller("can", name, m=5) for name in ("tx", "x", "y")
            ]
            eof_last = nodes[0].config.eof_length - 1
            faults = [
                ViewFault("x", Trigger(field=EOF, index=eof_last - 1), force=None)
            ]
            outcome = run_single_frame_scenario(
                "fastpath",
                nodes,
                ScriptedInjector(view_faults=faults),
                record_bits=record_bits,
            )
            results.append(outcome)
        return results

    def test_same_outcome_without_recording(self):
        recorded, fast = self._outcome_pair(None)
        assert recorded.deliveries == fast.deliveries
        assert recorded.consistent == fast.consistent
        assert recorded.attempts == fast.attempts
        assert recorded.errors_injected == fast.errors_injected

    def test_fast_path_records_no_bits_but_full_bus_history(self):
        node = CanController("solo")
        engine = SimulationEngine([node], record_bits=False)
        engine.run(25)
        assert engine.trace.bits == []
        assert engine.bus.time == 25

    def test_canonical_scenarios_keep_their_verdicts(self):
        assert fig1b("can").double_reception
        assert fig3("can").inconsistent_omission

    def test_node_lookup_uses_index_and_detects_external_mutation(self):
        a, b = CanController("a"), CanController("b")
        engine = SimulationEngine([a])
        engine.nodes.append(b)  # bypass attach() on purpose
        assert engine.node("b") is b
        with pytest.raises(SimulationError):
            engine.node("missing")

    def test_attach_duplicate_still_rejected(self):
        engine = SimulationEngine([CanController("a")])
        with pytest.raises(SimulationError):
            engine.attach(CanController("a"))


class TestAdaptiveChunking:
    """Adaptive chunk sizing (PR 7 satellite).

    ``adaptive_chunk`` scales the house chunk constants by a per-item
    cost estimate, and the resolved value is recorded on the result so
    an experiment's identity includes its partition.
    """

    def test_scales_inversely_with_cost(self):
        assert adaptive_chunk(32, 1.0) == 32
        assert adaptive_chunk(32, 2.0) == 16
        assert adaptive_chunk(64, 0.5) == 128

    def test_clamps_to_floor_and_cap(self):
        assert adaptive_chunk(32, 1000.0) == 8
        assert adaptive_chunk(64, 1e-9) == 4096
        assert adaptive_chunk(32, 100.0, floor=2) == 2
        assert adaptive_chunk(64, 0.01, cap=512) == 512

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            adaptive_chunk(0, 1.0)
        with pytest.raises(ValueError):
            adaptive_chunk(32, 0.0)
        with pytest.raises(ValueError):
            adaptive_chunk(32, 1.0, floor=0)
        with pytest.raises(ValueError):
            adaptive_chunk(32, 1.0, floor=16, cap=8)

    def test_montecarlo_records_resolved_chunk(self):
        result = monte_carlo_tail(protocol="can", m=5, trials=40, seed=3, jobs=1)
        # Three nodes is the baseline network, so the default resolves
        # to the historical CHUNK_TRIALS and pinned results stand.
        assert result.chunk_trials == 32

    def test_montecarlo_explicit_chunk_still_honoured(self):
        implicit = monte_carlo_tail(protocol="can", m=5, trials=40, seed=3, jobs=1)
        explicit = monte_carlo_tail(
            protocol="can", m=5, trials=40, seed=3, jobs=1, chunk_trials=32
        )
        assert explicit.chunk_trials == 32
        assert explicit.inconsistent == implicit.inconsistent
        assert explicit.imo == implicit.imo
        assert explicit.double_reception == implicit.double_reception

    def test_verification_records_backend_scaled_chunk(self):
        engine = verify_consistency(
            protocol="can", m=5, max_flips=1, jobs=1, backend="engine"
        )
        batch = verify_consistency(
            protocol="can", m=5, max_flips=1, jobs=1, backend="batch"
        )
        assert engine.chunk_placements == 64
        # Batch placements are ~16x cheaper per item, so the default
        # chunk grows by the same factor.
        assert batch.chunk_placements == 1024
        assert engine.counterexamples == batch.counterexamples
        assert engine.runs == batch.runs
