"""Unit tests for the per-PR perf regression gate (tools/perf_gate.py).

The gate compares ratio metrics (speedups) between the committed
baseline and a fresh CI smoke report; it must fail on a >tolerance
regression, pass within it, and skip metrics absent from either file
rather than erroring.
"""

import importlib.util
import json
import os

GATE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tools",
    "perf_gate.py",
)

_spec = importlib.util.spec_from_file_location("perf_gate", GATE_PATH)
perf_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(perf_gate)


def _report(engine=2.4, controller=3.2, batch=18.0, header=6.0, mc=4.0):
    return {
        "engine": {"fast_path_speedup": engine},
        "controller": {"fast_path_speedup": controller},
        "batch_enumeration": {"speedup": batch},
        "header_enumeration": {"speedup": header},
        "montecarlo_batch": {"speedup": mc},
    }


class TestLookup:
    def test_resolves_dotted_paths(self):
        report = _report(batch=7.5)
        assert perf_gate.lookup(report, "batch_enumeration.speedup") == 7.5
        assert perf_gate.lookup(report, "engine.fast_path_speedup") == 2.4

    def test_missing_paths_return_none(self):
        assert perf_gate.lookup({}, "engine.fast_path_speedup") is None
        assert perf_gate.lookup({"engine": {}}, "engine.fast_path_speedup") is None
        assert perf_gate.lookup({"engine": 3}, "engine.fast_path_speedup") is None


class TestCheck:
    def test_identical_reports_pass(self):
        assert perf_gate.check(_report(), _report()) == []

    def test_regression_within_tolerance_passes(self):
        # 20% below baseline sits inside the 30% tolerance band.
        baseline = _report(engine=2.0, controller=3.0, batch=10.0)
        measured = _report(engine=1.6, controller=2.4, batch=8.0)
        assert perf_gate.check(baseline, measured) == []

    def test_regression_beyond_tolerance_fails(self):
        baseline = _report(batch=10.0)
        measured = _report(batch=6.0)  # 40% drop > 30% tolerance
        failures = perf_gate.check(baseline, measured)
        assert len(failures) == 1
        assert "batch_enumeration.speedup" in failures[0]

    def test_improvements_always_pass(self):
        baseline = _report(engine=2.0, controller=3.0, batch=10.0)
        measured = _report(engine=4.0, controller=6.0, batch=30.0)
        assert perf_gate.check(baseline, measured) == []

    def test_missing_metric_is_skipped_not_failed(self, capsys):
        baseline = _report()
        measured = _report()
        del measured["batch_enumeration"]
        assert perf_gate.check(baseline, measured) == []
        assert "skip" in capsys.readouterr().out

    def test_custom_tolerance(self):
        baseline = _report(batch=10.0)
        measured = _report(batch=9.4)  # 6% drop
        assert perf_gate.check(baseline, measured, tolerance=0.10) == []
        failures = perf_gate.check(baseline, measured, tolerance=0.05)
        assert len(failures) == 1


class TestMain:
    def _write(self, tmp_path, name, report):
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", _report())
        report = self._write(tmp_path, "report.json", _report())
        assert perf_gate.main([baseline, report]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        baseline = self._write(tmp_path, "baseline.json", _report(batch=20.0))
        report = self._write(tmp_path, "report.json", _report(batch=5.0))
        assert perf_gate.main([baseline, report]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path):
        baseline = self._write(tmp_path, "baseline.json", _report(batch=10.0))
        report = self._write(tmp_path, "report.json", _report(batch=9.0))
        assert perf_gate.main([baseline, report, "--tolerance", "0.05"]) == 1
        assert perf_gate.main([baseline, report, "--tolerance", "0.20"]) == 0

    def test_committed_baseline_is_gateable(self):
        """The repo's own BENCH_PR10.json carries every gated metric."""
        bench = os.path.join(os.path.dirname(GATE_PATH), "..", "BENCH_PR10.json")
        with open(bench) as handle:
            baseline = json.load(handle)
        for metric in perf_gate.GATED_METRICS:
            value = perf_gate.lookup(baseline, metric)
            assert isinstance(value, float) and value > 1.0, metric
