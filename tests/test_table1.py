"""Reproduction tests for Table 1 (experiment E-T1)."""

import pytest

from repro.analysis.table1 import (
    PAPER_TABLE1,
    RUFINO_IMO_PER_HOUR,
    generate_table1,
    relative_error,
    render_table1,
)
from repro.faults.models import REFERENCE_INCIDENT_RATE
from repro.analysis.rates import meets_reference
from repro.workload.profiles import PAPER_PROFILE


@pytest.fixture(scope="module")
def rows():
    return generate_table1()


class TestAgreementWithPaper:
    def test_three_rows(self, rows):
        assert [row.ber for row in rows] == [1e-4, 1e-5, 1e-6]

    @pytest.mark.parametrize("index,ber", [(0, 1e-4), (1, 1e-5), (2, 1e-6)])
    def test_imo_new_column_within_one_percent(self, rows, index, ber):
        assert relative_error(
            rows[index].imo_new_per_hour, PAPER_TABLE1[ber]["imo_new"]
        ) < 0.01

    @pytest.mark.parametrize("index,ber", [(0, 1e-4), (1, 1e-5), (2, 1e-6)])
    def test_imo_star_column_within_one_percent(self, rows, index, ber):
        assert relative_error(
            rows[index].imo_star_per_hour, PAPER_TABLE1[ber]["imo_star"]
        ) < 0.01

    def test_rufino_column_is_reference_data(self, rows):
        for row in rows:
            assert row.imo_rufino_per_hour == RUFINO_IMO_PER_HOUR[row.ber]

    def test_star_model_reproduces_rufino_values(self, rows):
        """The paper's point: IMO* (equation 5) closely matches the
        values Rufino et al. published, legitimating the comparison."""
        for row in rows:
            assert relative_error(
                row.imo_star_per_hour, row.imo_rufino_per_hour
            ) < 0.02


class TestHeadlineConclusions:
    def test_new_scenarios_exceed_reference_rate(self, rows):
        """Every IMOnew value is above the 1e-9/hour safety target."""
        for row in rows:
            assert not meets_reference(row.imo_new_per_hour, REFERENCE_INCIDENT_RATE)

    def test_new_scenarios_dominate_old(self, rows):
        for row in rows:
            # ~2200x at ber=1e-4 shrinking to ~22x at ber=1e-6.
            assert row.imo_new_per_hour > row.imo_star_per_hour * 10

    def test_paper_row_lookup(self, rows):
        assert rows[0].paper_row()["imo_new"] == 8.80e-3


class TestRendering:
    def test_render_contains_all_columns(self, rows):
        text = render_table1(rows)
        assert "IMOnew/hour" in text
        assert "IMO*/hour" in text
        for row in rows:
            assert ("%.2e" % row.imo_new_per_hour) in text

    def test_relative_error_zero_reference(self):
        assert relative_error(1.0, 0.0) == float("inf")


class TestProfile:
    def test_paper_profile_values(self):
        assert PAPER_PROFILE.n_nodes == 32
        assert PAPER_PROFILE.bit_rate == 1e6
        assert PAPER_PROFILE.load == 0.9
        assert PAPER_PROFILE.frame_bits == 110

    def test_frames_per_hour(self):
        assert PAPER_PROFILE.frames_per_hour == pytest.approx(0.9 * 1e6 * 3600 / 110)

    def test_scaled_profile(self):
        scaled = PAPER_PROFILE.scaled(n_nodes=8)
        assert scaled.n_nodes == 8
        assert scaled.bit_rate == PAPER_PROFILE.bit_rate
