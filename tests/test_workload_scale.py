"""Workload generators at traffic scale (PR 7 satellite).

The unit tests in ``test_workload.py`` check the generators against a
bare engine; these check them through :mod:`repro.traffic` — sustained
multi-window runs, seed handoff across the worker pool, the load
arithmetic against :class:`NetworkProfile`, and queue behaviour when
submissions outpace what arbitration can serve.
"""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.export import json_line
from repro.traffic import TrafficSpec, run_traffic, traffic_records
from repro.workload.profiles import NetworkProfile


def _lines(outcome):
    return [json_line(record) for record in traffic_records(outcome)]


class TestPoissonDeterminism:
    def test_poisson_schedule_invariant_under_jobs(self):
        """The seeded Bernoulli draws never depend on the worker count."""
        spec = TrafficSpec(
            name="poisson-jobs",
            n_nodes=3,
            windows=2,
            window_bits=700,
            source="poisson",
            rate_per_bit=0.003,
            seed=17,
        )
        serial = run_traffic(spec, jobs=1)
        parallel = run_traffic(spec, jobs=2)
        assert _lines(serial) == _lines(parallel)

    def test_poisson_reruns_are_bit_identical(self):
        spec = TrafficSpec(
            n_nodes=3,
            windows=1,
            window_bits=900,
            source="poisson",
            rate_per_bit=0.004,
            seed=9,
        )
        assert _lines(run_traffic(spec, jobs=1)) == _lines(
            run_traffic(spec, jobs=1)
        )

    def test_poisson_seed_changes_schedule(self):
        def schedule(seed):
            spec = TrafficSpec(
                n_nodes=3,
                windows=1,
                window_bits=900,
                source="poisson",
                rate_per_bit=0.004,
                seed=seed,
            )
            return [
                (s.time, s.node) for s in run_traffic(spec, jobs=1).schedule
            ]

        assert schedule(1) != schedule(2)


class TestLoadArithmetic:
    def test_submission_rate_matches_profile(self):
        """The periodic schedule realises ``frames_per_second``.

        The spec's period arithmetic is the same as
        ``periodic_sources_for_profile``; over a long window the
        submission count must match the profile's frame rate applied
        to the active simulated time.
        """
        profile = NetworkProfile(
            bit_rate=1_000_000.0, n_nodes=4, load=0.5, frame_bits=110
        )
        spec = TrafficSpec(
            n_nodes=4, windows=1, window_bits=20_000, load=0.5, seed=1
        )
        assert spec.period_bits == int(
            round(profile.n_nodes * profile.frame_bits / profile.load)
        )
        outcome = run_traffic(spec, jobs=1)
        active_seconds = spec.total_active_bits / profile.bit_rate
        expected = profile.frames_per_second * active_seconds
        frames = outcome.stats.frames_submitted
        assert abs(frames - expected) / expected < 0.05

    def test_measured_load_tracks_frames_per_second(self):
        """Doubling the profile's frame rate doubles the measured load.

        The absolute measured load sits below the nominal target — the
        ``frame_bits=110`` planning constant is the paper's payload-8
        frame, while the generated 2-byte frames occupy fewer wire bits
        — but the measurement must scale linearly with the realised
        frame rate for it to mean anything.
        """

        def measured(load):
            spec = TrafficSpec(
                n_nodes=3,
                windows=1,
                window_bits=30_000,
                load=load,
                seed=4,
            )
            return run_traffic(spec, jobs=1).stats.bus_load

        low = measured(0.2)
        high = measured(0.4)
        assert low > 0.05
        assert high / low == pytest.approx(2.0, rel=0.2)


class TestOverloadBacklog:
    def test_backlog_builds_when_submissions_outpace_arbitration(self):
        """Overload queues frames; the drain still delivers all of them."""
        spec = TrafficSpec(
            name="overload",
            n_nodes=3,
            windows=1,
            window_bits=4000,
            load=3.0,
            seed=6,
        )
        outcome = run_traffic(spec, jobs=1)
        stats = outcome.stats
        assert stats.max_backlog >= 2
        assert stats.bus_load > 0.85
        assert stats.frames_submitted > 50
        assert stats.delivered == stats.frames_submitted
        assert stats.omitted == 0 and stats.lost == 0
        assert outcome.atomic

    def test_overload_beyond_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(load=4.5)
