"""Tests for the dual-CAN redundancy architecture."""

import pytest

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.core.majorcan import MajorCanController
from repro.errors import ConfigurationError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.redundancy import DualBusSystem

FRAME = data_frame(0x123, b"\x55", message_id="m")


def fig3_injector(x_port: str, tx_port: str, eof_length: int = 7) -> ScriptedInjector:
    last = eof_length - 1
    return ScriptedInjector(
        view_faults=[
            ViewFault(x_port, Trigger(field=EOF, index=last - 1), force=DOMINANT),
            ViewFault(tx_port, Trigger(field=EOF, index=last), force=RECESSIVE),
        ]
    )


class TestCleanOperation:
    def test_every_node_delivers_once(self):
        system = DualBusSystem(["tx", "x", "y"])
        system.node("tx").submit(FRAME)
        system.run_until_idle()
        outcome = system.classify(FRAME)
        assert outcome.all_delivered_once

    def test_duplicate_replica_suppressed(self):
        """Both channels deliver the replica; the app sees one copy."""
        system = DualBusSystem(["tx", "x"])
        system.node("tx").submit(FRAME)
        system.run_until_idle()
        x = system.node("x")
        channel_deliveries = sum(
            len(c.deliveries) for c in x.controllers.values()
        )
        assert channel_deliveries == 2
        assert len(x.app_deliveries) == 1

    def test_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            DualBusSystem(["solo"])


class TestSingleChannelFaultMasked:
    def test_fig3a_on_one_channel_is_masked(self):
        """The Fig. 3a pattern on channel A alone: the replica on
        channel B restores consistency — the redundancy fix works
        against single-channel disturbances."""
        system = DualBusSystem(
            ["tx", "x", "y"],
            injectors={"A": fig3_injector("x.A", "tx.A")},
        )
        system.node("tx").submit(FRAME)
        system.run_until_idle()
        outcome = system.classify(FRAME)
        assert outcome.all_delivered_once
        # Channel A really did omit: x's A-port never delivered.
        assert len(system.node("x").controllers["A"].deliveries) == 0

    def test_channel_port_crash_masked(self):
        system = DualBusSystem(["tx", "x", "y"])
        system.node("x").controllers["A"].crash()
        system.node("tx").submit(FRAME)
        system.run_until_idle()
        assert system.classify(FRAME).all_delivered_once


class TestBothChannelsAttacked:
    def test_fig3a_on_both_channels_defeats_redundancy(self):
        """The same disturbance pattern on both channels: redundancy
        has nothing left to offer, the omission goes through (four
        single-bit errors in total)."""
        system = DualBusSystem(
            ["tx", "x", "y"],
            injectors={
                "A": fig3_injector("x.A", "tx.A"),
                "B": fig3_injector("x.B", "tx.B"),
            },
        )
        system.node("tx").submit(FRAME)
        system.run_until_idle()
        outcome = system.classify(FRAME)
        assert outcome.inconsistent_omission
        assert outcome.counts["x"] == 0

    def test_majorcan_single_bus_beats_dual_can_same_error_budget(self):
        """With the same four errors (two per channel), a dual standard
        CAN omits while a single MajorCAN_5 bus would still agree —
        the paper's protocol fix is strictly stronger per error."""
        from helpers import run_one_frame
        from repro.faults.injector import ScriptedInjector as SI

        nodes = [MajorCanController(n) for n in ("tx", "x", "y")]
        injector = SI(
            view_faults=[
                ViewFault("x", Trigger(field=EOF, index=8), force=DOMINANT),
                ViewFault("tx", Trigger(field=EOF, index=9), force=RECESSIVE),
                ViewFault("y", Trigger(field=EOF, index=9), force=DOMINANT),
                ViewFault("x", Trigger(field="SAMPLING", index=12), force=RECESSIVE),
            ]
        )
        outcome = run_one_frame(nodes, FRAME, injector)
        assert outcome.consistent


class TestDualMajorCan:
    def test_belt_and_braces(self):
        """Dual MajorCAN buses: both fixes composed."""
        system = DualBusSystem(
            ["tx", "x", "y"],
            controller_factory=lambda name: MajorCanController(name),
            injectors={"A": fig3_injector("x.A", "tx.A", eof_length=10)},
        )
        system.node("tx").submit(FRAME)
        system.run_until_idle()
        assert system.classify(FRAME).all_delivered_once


class TestNodeCrash:
    def test_crashed_node_excluded_from_verdict(self):
        system = DualBusSystem(["tx", "x", "y"])
        system.node("y").crash()
        system.node("tx").submit(FRAME)
        system.run_until_idle()
        outcome = system.classify(FRAME)
        assert "y" not in outcome.counts
        assert outcome.all_delivered_once
