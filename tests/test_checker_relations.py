"""Cross-checker consistency properties on random ledgers.

The AB checkers, the CAN checkers and the omission classifier are
independent implementations over the same ledger model; these
hypothesis properties pin the logical relations that must hold between
them for *any* ledger.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.properties.broadcast import (
    check_agreement,
    check_at_most_once,
    check_total_order,
    check_validity,
    is_atomic_broadcast,
    is_reliable_broadcast,
)
from repro.properties.can_properties import (
    check_can2_best_effort_agreement,
    classify_omissions,
)
from repro.properties.ledger import NodeLedger, SystemLedger

MESSAGES = ["m%d" % i for i in range(4)]


@st.composite
def ledgers(draw):
    node_count = draw(st.integers(2, 4))
    ledger = SystemLedger()
    for index in range(node_count):
        name = "n%d" % index
        correct = draw(st.booleans()) or index == 0  # keep one correct
        broadcasts = draw(
            st.lists(st.sampled_from(MESSAGES), max_size=2, unique=True)
        )
        deliveries = draw(st.lists(st.sampled_from(MESSAGES), max_size=5))
        ledger.nodes[name] = NodeLedger(
            name=name,
            correct=correct,
            broadcasts=broadcasts,
            deliveries=deliveries,
        )
    return ledger


_SETTINGS = settings(max_examples=200, deadline=None)


class TestRelations:
    @given(ledger=ledgers())
    @_SETTINGS
    def test_atomic_implies_reliable(self, ledger):
        if is_atomic_broadcast(ledger):
            assert is_reliable_broadcast(ledger)

    @given(ledger=ledgers())
    @_SETTINGS
    def test_agreement_implies_no_imo_classification(self, ledger):
        """If AB2 holds, the omission classifier must find no
        inconsistent omission among the broadcast messages."""
        if check_agreement(ledger).holds:
            assert classify_omissions(ledger).imo_count == 0

    @given(ledger=ledgers())
    @_SETTINGS
    def test_imo_classification_implies_agreement_violation(self, ledger):
        if classify_omissions(ledger).imo_count > 0:
            # Some delivered message is missing somewhere; AB2 can only
            # hold if that message was never delivered to a correct
            # node at all — which classify_omissions excludes.
            assert not check_agreement(ledger).holds

    @given(ledger=ledgers())
    @_SETTINGS
    def test_can2_weaker_than_ab2(self, ledger):
        """Best-effort agreement (CAN2) only constrains messages whose
        transmitter stayed correct, so AB2 implies CAN2."""
        if check_agreement(ledger).holds:
            assert check_can2_best_effort_agreement(ledger).holds

    @given(ledger=ledgers())
    @_SETTINGS
    def test_duplicate_free_single_node_always_totally_ordered(self, ledger):
        """With one correct node, total order is vacuous."""
        correct = ledger.correct_nodes
        if len(correct) == 1:
            assert check_total_order(ledger).holds

    @given(ledger=ledgers())
    @_SETTINGS
    def test_checkers_are_deterministic(self, ledger):
        first = [
            check_validity(ledger).holds,
            check_agreement(ledger).holds,
            check_at_most_once(ledger).holds,
            check_total_order(ledger).holds,
        ]
        second = [
            check_validity(ledger).holds,
            check_agreement(ledger).holds,
            check_at_most_once(ledger).holds,
            check_total_order(ledger).holds,
        ]
        assert first == second

    @given(ledger=ledgers())
    @_SETTINGS
    def test_violations_nonempty_iff_failed(self, ledger):
        for result in (
            check_validity(ledger),
            check_agreement(ledger),
            check_at_most_once(ledger),
            check_total_order(ledger),
        ):
            assert result.holds == (not result.violations)
