"""Unit and property tests for bit stuffing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.stuffing import (
    STUFF_WIDTH,
    Destuffer,
    StuffResult,
    destuff,
    stuff,
    stuffed_length,
    worst_case_stuffed_length,
)
from repro.errors import StuffingError

bits_lists = st.lists(st.integers(0, 1), max_size=300)


class TestStuff:
    def test_empty(self):
        assert stuff([]) == []

    def test_short_run_untouched(self):
        assert stuff([0, 0, 0, 0]) == [0, 0, 0, 0]

    def test_five_zeros_get_a_one(self):
        assert stuff([0] * 5) == [0, 0, 0, 0, 0, 1]

    def test_five_ones_get_a_zero(self):
        assert stuff([1] * 5) == [1, 1, 1, 1, 1, 0]

    def test_stuff_bit_starts_new_run(self):
        # 0x00 byte: 8 zeros -> stuff after 5, the stuff '1' breaks the
        # run, remaining 3 zeros need no stuffing.
        assert stuff([0] * 8) == [0, 0, 0, 0, 0, 1, 0, 0, 0]

    def test_run_crossing_inserted_stuff(self):
        # After a stuff bit, the run counter restarts at the stuff bit.
        # 5 zeros + stuff(1) + 4 ones makes a 5-run of ones -> stuff(0).
        assert stuff([0, 0, 0, 0, 0, 1, 1, 1, 1]) == [
            0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0,
        ]

    def test_alternating_never_stuffed(self):
        bits = [0, 1] * 40
        assert stuff(bits) == bits

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            stuff([0, 1, 2])


class TestDestuff:
    def test_inverse_of_stuff_simple(self):
        bits = [0] * 7 + [1] * 7
        assert destuff(stuff(bits)) == bits

    def test_six_equal_bits_is_violation(self):
        with pytest.raises(StuffingError):
            destuff([0] * 6)

    def test_error_flag_pattern_is_violation(self):
        # An error flag superimposed on a frame produces 6 dominant bits.
        with pytest.raises(StuffingError):
            destuff([1, 0, 1] + [0] * 6)

    @given(bits_lists)
    def test_roundtrip(self, bits):
        assert destuff(stuff(bits)) == bits

    @given(bits_lists)
    def test_stuffed_never_has_six_run(self, bits):
        stuffed = stuff(bits)
        run = 0
        last = None
        for bit in stuffed:
            run = run + 1 if bit == last else 1
            last = bit
            assert run <= STUFF_WIDTH


class TestLengths:
    @given(bits_lists)
    def test_stuffed_length_matches(self, bits):
        assert stuffed_length(bits) == len(stuff(bits))

    @given(bits_lists)
    def test_worst_case_is_upper_bound(self, bits):
        assert len(stuff(bits)) <= worst_case_stuffed_length(len(bits))

    def test_worst_case_achieved(self):
        # 0b11111 0000 1111 ... achieves one stuff per 4 bits after the
        # first five.
        bits = [1] * 5
        value = 0
        while len(bits) < 29:
            bits.extend([value] * 4)
            value ^= 1
        assert len(stuff(bits)) == worst_case_stuffed_length(len(bits))

    def test_worst_case_of_zero(self):
        assert worst_case_stuffed_length(0) == 0


class TestDestuffer:
    def test_classifies_data_and_stuff(self):
        destuffer = Destuffer()
        results = [destuffer.feed(bit) for bit in stuff([0] * 5)]
        assert results == [StuffResult.DATA] * 5 + [StuffResult.STUFF]

    def test_next_is_stuff_flag(self):
        destuffer = Destuffer()
        for bit in [0] * 5:
            destuffer.feed(bit)
        assert destuffer.next_is_stuff

    def test_violation_reported_once(self):
        destuffer = Destuffer()
        for bit in [0] * 5:
            assert destuffer.feed(bit) == StuffResult.DATA
        assert destuffer.feed(0) == StuffResult.VIOLATION
        with pytest.raises(StuffingError):
            destuffer.feed(0)

    def test_reset_recovers(self):
        destuffer = Destuffer()
        for bit in [0] * 5:
            destuffer.feed(bit)
        destuffer.feed(0)  # violation
        destuffer.reset()
        assert destuffer.feed(0) == StuffResult.DATA

    @given(bits_lists)
    def test_incremental_matches_batch(self, bits):
        stuffed = stuff(bits)
        destuffer = Destuffer()
        recovered = [
            bit
            for bit in stuffed
            if destuffer.feed(bit) == StuffResult.DATA
        ]
        assert recovered == bits
