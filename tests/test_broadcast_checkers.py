"""Unit tests for the AB1-AB5 checkers on synthetic ledgers."""

from repro.properties.broadcast import (
    check_agreement,
    check_at_most_once,
    check_atomic_broadcast,
    check_non_triviality,
    check_total_order,
    check_validity,
    is_atomic_broadcast,
    is_reliable_broadcast,
)
from repro.properties.can_properties import (
    check_can2_best_effort_agreement,
    classify_omissions,
    omission_degree,
)
from repro.properties.ledger import NodeLedger, SystemLedger


def make_ledger(**nodes):
    """nodes: name=(correct, broadcasts, deliveries)"""
    ledger = SystemLedger()
    for name, (correct, broadcasts, deliveries) in nodes.items():
        ledger.nodes[name] = NodeLedger(
            name=name,
            correct=correct,
            broadcasts=list(broadcasts),
            deliveries=list(deliveries),
        )
    return ledger


class TestValidity:
    def test_holds_when_delivered_somewhere(self):
        ledger = make_ledger(a=(True, ["m"], ["m"]), b=(True, [], ["m"]))
        assert check_validity(ledger).holds

    def test_violated_when_nobody_delivers(self):
        ledger = make_ledger(a=(True, ["m"], []), b=(True, [], []))
        result = check_validity(ledger)
        assert not result.holds
        assert "m" in result.violations[0]

    def test_crashed_broadcaster_is_exempt(self):
        ledger = make_ledger(a=(False, ["m"], []), b=(True, [], []))
        assert check_validity(ledger).holds

    def test_delivery_to_crashed_node_does_not_count(self):
        ledger = make_ledger(a=(True, ["m"], []), b=(False, [], ["m"]))
        assert not check_validity(ledger).holds


class TestAgreement:
    def test_holds_when_everyone_delivers(self):
        ledger = make_ledger(a=(True, ["m"], ["m"]), b=(True, [], ["m"]))
        assert check_agreement(ledger).holds

    def test_violated_on_partial_delivery(self):
        ledger = make_ledger(a=(True, ["m"], ["m"]), b=(True, [], []))
        result = check_agreement(ledger)
        assert not result.holds

    def test_crashed_nodes_exempt(self):
        ledger = make_ledger(a=(True, ["m"], ["m"]), b=(False, [], []))
        assert check_agreement(ledger).holds


class TestAtMostOnce:
    def test_holds_for_single_deliveries(self):
        ledger = make_ledger(a=(True, [], ["m", "n"]))
        assert check_at_most_once(ledger).holds

    def test_violated_on_duplicate(self):
        ledger = make_ledger(a=(True, [], ["m", "m"]))
        result = check_at_most_once(ledger)
        assert not result.holds
        assert "2 times" in result.violations[0]


class TestNonTriviality:
    def test_holds_when_origin_exists(self):
        ledger = make_ledger(a=(True, ["m"], []), b=(True, [], ["m"]))
        assert check_non_triviality(ledger).holds

    def test_violated_on_spontaneous_delivery(self):
        ledger = make_ledger(a=(True, [], ["ghost"]))
        assert not check_non_triviality(ledger).holds

    def test_crashed_broadcaster_still_counts_as_origin(self):
        ledger = make_ledger(a=(False, ["m"], []), b=(True, [], ["m"]))
        assert check_non_triviality(ledger).holds


class TestTotalOrder:
    def test_holds_for_identical_orders(self):
        ledger = make_ledger(a=(True, [], ["m", "n"]), b=(True, [], ["m", "n"]))
        assert check_total_order(ledger).holds

    def test_violated_on_swapped_pair(self):
        ledger = make_ledger(a=(True, [], ["m", "n"]), b=(True, [], ["n", "m"]))
        assert not check_total_order(ledger).holds

    def test_subsets_are_fine(self):
        """A node that misses a message does not violate total order."""
        ledger = make_ledger(a=(True, [], ["m", "n", "o"]), b=(True, [], ["m", "o"]))
        assert check_total_order(ledger).holds

    def test_the_paper_can5_example(self):
        """The paper's CAN5 justification: nodes that received frame A
        before the retransmission see A, B, A — the others see B, A."""
        ledger = make_ledger(
            early=(True, [], ["A", "B"]),  # first delivery positions
            late=(True, [], ["B", "A"]),
        )
        assert not check_total_order(ledger).holds

    def test_crashed_node_order_ignored(self):
        ledger = make_ledger(
            a=(True, [], ["m", "n"]),
            b=(False, [], ["n", "m"]),
        )
        assert check_total_order(ledger).holds


class TestAggregates:
    def test_atomic_broadcast_all_hold(self):
        ledger = make_ledger(a=(True, ["m"], ["m"]), b=(True, [], ["m"]))
        assert is_atomic_broadcast(ledger)
        results = check_atomic_broadcast(ledger)
        assert len(results) == 5

    def test_reliable_but_not_atomic(self):
        """Order violation only: reliable broadcast still holds."""
        ledger = make_ledger(
            a=(True, ["m", "n"], ["m", "n"]),
            b=(True, [], ["n", "m"]),
        )
        assert is_reliable_broadcast(ledger)
        assert not is_atomic_broadcast(ledger)


class TestCan2AndClassification:
    def test_can2_violated_by_partial_delivery_from_correct_tx(self):
        ledger = make_ledger(
            tx=(True, ["m"], ["m"]),
            x=(True, [], []),
            y=(True, [], ["m"]),
        )
        assert not check_can2_best_effort_agreement(ledger).holds

    def test_can2_holds_when_tx_crashed(self):
        ledger = make_ledger(
            tx=(False, ["m"], []),
            x=(True, [], []),
            y=(True, [], ["m"]),
        )
        assert check_can2_best_effort_agreement(ledger).holds

    def test_classification_buckets(self):
        ledger = make_ledger(
            tx=(True, ["m", "n", "o"], ["m", "n", "o"]),
            x=(True, [], ["m", "m"]),       # m duplicated, n and o missing
            y=(True, [], ["m", "n", "o"]),
        )
        classification = classify_omissions(ledger)
        assert "m" in classification.consistent or "m" in classification.duplicates
        assert "n" in classification.inconsistent_omissions
        assert "o" in classification.inconsistent_omissions

    def test_never_delivered_bucket(self):
        ledger = make_ledger(tx=(True, ["m"], []), x=(True, [], []))
        classification = classify_omissions(ledger)
        assert classification.never_delivered == ["m"]
        assert classification.imo_count == 0

    def test_omission_degree_aggregation(self):
        ledger_imo = make_ledger(
            tx=(True, ["m"], ["m"]), x=(True, [], []), y=(True, [], ["m"])
        )
        ledger_ok = make_ledger(
            tx=(True, ["n"], ["n"]), x=(True, [], ["n"]), y=(True, [], ["n"])
        )
        degree = omission_degree([ledger_imo, ledger_ok])
        assert degree.transmissions == 2
        assert degree.omissions == 1
        assert degree.rate == 0.5
