"""Seeded property tests: formal-spec invariants, fast path vs reference.

The formal CAN specifications (van Glabbeek & Höfner's process-algebra
model; Spichkova's Isabelle spec) pin down the frame format and the
error-signalling discipline as machine-checkable invariants:

* **stuffing** — inside a clean frame the bus never carries six equal
  consecutive levels (the stuff width is five);
* **error signalling** — an error-active node that detects an error
  transmits six dominant bits starting at the next bit time, so the
  wired-AND bus is dominant for (at least) those six bits;
* **inter-frame space** — a (re)transmission only starts after at
  least three recessive intermission bits;
* **agreement (MajorCAN)** — any ≤ 2 view errors confined to the EOF
  schedule leave every node with the same verdict (the paper's
  atomic-broadcast claim at the bounded-verification depth).

Every invariant is checked on *randomised, seeded* fault scenarios —
including faults triggered at the error/overload signalling positions
that PR 6 moved onto the table-driven fast path — and each scenario is
run under both ``fast_path=True`` and ``fast_path=False`` with the full
observable surface compared, so the invariants hold for the reference
machine and the fast path proves bit-equivalent on the same inputs.
"""

import random
import re

import pytest

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller_config import ControllerConfig
from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC_DELIM,
    EOF,
    ERROR_DELIM,
    ERROR_FLAG,
    EXTENDED_FLAG,
    FLAG_LENGTH,
    INTERMISSION,
    OVERLOAD_DELIM,
    OVERLOAD_FLAG,
    SAMPLING,
)
from repro.can.frame import data_frame
from repro.core.majorcan import majorcan_config
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import make_controller, run_single_frame_scenario

NODE_NAMES = ("tx", "r1", "r2")
FRAME = data_frame(0x123, b"\x55", message_id="m")

CONFIGS = [("can", 5), ("minorcan", 5), ("majorcan", 3), ("majorcan", 5)]

FORCES = (None, DOMINANT, RECESSIVE)


def variant_config(protocol, m, fast_path):
    if protocol == "majorcan":
        return majorcan_config(m, fast_path=fast_path)
    return ControllerConfig(fast_path=fast_path)


def build_nodes(protocol, m, fast_path):
    return [
        make_controller(
            protocol, name, m=m, config=variant_config(protocol, m, fast_path)
        )
        for name in NODE_NAMES
    ]


def signalling_positions(protocol, m):
    """Candidate trigger positions, signalling states included.

    These index straight into the fast path's precompiled
    ``SignalTable`` walks, so a trigger that fires here under the
    reference machine must fire at the same bit under the fast path.
    """
    config = variant_config(protocol, m, True)
    positions = [(EOF, i) for i in range(config.eof_length)]
    positions += [(ERROR_FLAG, i) for i in range(FLAG_LENGTH)]
    positions += [(OVERLOAD_FLAG, i) for i in range(FLAG_LENGTH)]
    positions += [(ERROR_DELIM, i) for i in range(config.delimiter_length)]
    positions += [(OVERLOAD_DELIM, i) for i in range(config.delimiter_length)]
    positions += [(INTERMISSION, i) for i in range(3)]
    positions += [(CRC_DELIM, 0), (ACK_SLOT, 0), (ACK_DELIM, 0)]
    if protocol == "majorcan":
        window_end = 3 * m + 5
        positions += [(SAMPLING, k) for k in range(1, window_end + 1)]
        positions += [(EXTENDED_FLAG, k) for k in range(m + 2, window_end + 1)]
    return positions


def random_faults(protocol, m, seed):
    """A seeded fault script igniting and then perturbing signalling."""
    rng = random.Random(seed)
    config = variant_config(protocol, m, True)
    faults = [
        ViewFault(
            rng.choice(NODE_NAMES),
            Trigger(field=EOF, index=rng.randrange(config.eof_length)),
            force=None,
        )
    ]
    pool = signalling_positions(protocol, m)
    for _ in range(rng.randint(1, 3)):
        field_name, index = rng.choice(pool)
        faults.append(
            ViewFault(
                rng.choice(NODE_NAMES),
                Trigger(field=field_name, index=index),
                force=rng.choice(FORCES),
            )
        )
    return faults


def run_scenario(protocol, m, faults, fast_path):
    injector = ScriptedInjector(
        view_faults=[
            ViewFault(f.node, Trigger(field=f.trigger.field, index=f.trigger.index), force=f.force)
            for f in faults
        ]
    )
    outcome = run_single_frame_scenario(
        "invariants",
        build_nodes(protocol, m, fast_path),
        injector,
        frame=FRAME,
        record_bits=True,
    )
    return outcome, injector


def surface(outcome, injector):
    engine = outcome.engine
    trace = engine.collect_events()
    return {
        "bus": "".join(level.symbol for level in engine.bus.history),
        "events": [(e.time, e.node, e.kind, e.data) for e in trace.events],
        "deliveries": outcome.deliveries,
        "attempts": outcome.attempts,
        "consistent": outcome.consistent,
        "imo": outcome.inconsistent_omission,
        "fired": injector.total_fired,
    }


# ---------------------------------------------------------------------------
# Fast path ≡ reference on randomised signalling faults
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol,m", CONFIGS)
@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6, 7, 8])
def test_random_signalling_faults_identical_fast_vs_reference(protocol, m, seed):
    faults = random_faults(protocol, m, seed)
    reference = surface(*run_scenario(protocol, m, faults, fast_path=False))
    fast = surface(*run_scenario(protocol, m, faults, fast_path=True))
    assert fast == reference
    assert reference["fired"] >= 1  # the EOF igniter always fires


# ---------------------------------------------------------------------------
# Formal-spec invariants (checked on the reference machine's trace)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol,m", CONFIGS)
def test_stuffing_bound_on_clean_bus(protocol, m):
    """No six equal consecutive levels inside an error-free frame."""
    outcome, _ = run_scenario(protocol, m, [], fast_path=True)
    bus = "".join(level.symbol for level in outcome.engine.bus.history)
    dominant_runs = [len(run) for run in re.findall(r"d+", bus)]
    assert dominant_runs and max(dominant_runs) <= 5
    assert outcome.consistent and outcome.attempts == 1


@pytest.mark.parametrize("protocol,m", CONFIGS)
@pytest.mark.parametrize("seed", [11, 12, 13, 14])
def test_active_error_flags_are_six_dominant_bits(protocol, m, seed):
    """Every active flag start is followed by six dominant bus bits."""
    faults = random_faults(protocol, m, seed)
    outcome, injector = run_scenario(protocol, m, faults, fast_path=True)
    ref = surface(outcome, injector)
    flag_starts = [
        (time, node)
        for time, node, kind, data in ref["events"]
        if kind in ("error_flag_start", "extended_flag_start")
        and not data.get("passive", False)
    ]
    assert flag_starts  # random_faults always ignites signalling
    for time, _node in flag_starts:
        window = ref["bus"][time + 1 : time + 1 + FLAG_LENGTH]
        # Extended flags run to the window end, which is > FLAG_LENGTH
        # bits for every m >= 3, so six dominant bits is a valid lower
        # bound for both flag kinds (wired-AND keeps them dominant no
        # matter what other nodes do).
        if len(window) == FLAG_LENGTH:
            assert window == "d" * FLAG_LENGTH


@pytest.mark.parametrize("protocol,m", CONFIGS)
@pytest.mark.parametrize("seed", [21, 22, 23])
def test_retransmissions_respect_intermission(protocol, m, seed):
    """A retransmission starts only after >= 3 recessive bus bits."""
    faults = random_faults(protocol, m, seed)
    outcome, injector = run_scenario(protocol, m, faults, fast_path=True)
    ref = surface(outcome, injector)
    for time, _node, kind, data in ref["events"]:
        if kind == "tx_start" and data.get("attempt", 1) > 1:
            assert ref["bus"][time - 3 : time] == "rrr"


@pytest.mark.parametrize("m", [3, 5])
@pytest.mark.parametrize("seed", [31, 32, 33, 34, 35])
def test_majorcan_agreement_under_tail_flips(m, seed):
    """<= 2 EOF view errors never split the MajorCAN verdict."""
    rng = random.Random(seed)
    eof_length = 2 * m
    faults = [
        ViewFault(
            rng.choice(NODE_NAMES),
            Trigger(field=EOF, index=rng.randrange(eof_length)),
            force=None,
        )
        for _ in range(rng.randint(1, 2))
    ]
    for fast_path in (False, True):
        outcome, _ = run_scenario("majorcan", m, faults, fast_path=fast_path)
        assert outcome.consistent
        assert not outcome.inconsistent_omission
