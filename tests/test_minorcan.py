"""Reproduction tests for MinorCAN (Section 3 / Fig. 2) and its defeat
by the new scenarios (Fig. 3b)."""


from repro.can.bits import DOMINANT
from repro.can.events import EventKind
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.core.minorcan import MinorCanController
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import fig1a, fig1b, fig1c, fig3b

from helpers import run_one_frame


def _nodes(*names):
    return [MinorCanController(name) for name in names]


class TestFig2Consistency:
    """MinorCAN achieves consistency in every Fig. 1 scenario."""

    def test_fig1a_all_accept(self):
        outcome = fig1a("minorcan")
        assert outcome.all_delivered_once
        assert outcome.attempts == 1

    def test_fig1b_all_reject_then_retransmit(self):
        outcome = fig1b("minorcan")
        assert outcome.all_delivered_once
        assert outcome.attempts == 2
        assert not outcome.double_reception

    def test_fig1c_consistent_even_with_crash(self):
        """The paper: MinorCAN stays consistent in the event of a
        permanent node failure after the bit error detection — here
        nobody delivers, which satisfies Agreement."""
        outcome = fig1c("minorcan")
        assert outcome.consistent
        assert not outcome.inconsistent_omission
        assert outcome.deliveries["x"] == outcome.deliveries["y"] == 0


class TestPrimaryErrorMechanism:
    def test_primary_node_accepts(self):
        """A lone disturbance at the last EOF bit: the disturbed node is
        primary (everyone else flags later via overload) and accepts."""
        nodes = _nodes("tx", "x", "y")
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=6), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        x = outcome.engine.node("x")
        assert any(e.kind == EventKind.PRIMARY_ERROR for e in x.events)
        assert any(e.kind == EventKind.DEFERRED_ACCEPT for e in x.events)

    def test_all_nodes_last_bit_error_consistent_retransmission(self):
        """If every node sees the error in the last EOF bit, none is
        primary and the frame is 'unnecessarily but consistently'
        rejected and retransmitted (paper, Section 3)."""
        nodes = _nodes("tx", "x", "y")
        injector = ScriptedInjector(
            view_faults=[
                ViewFault(name, Trigger(field=EOF, index=6), force=DOMINANT)
                for name in ("tx", "x", "y")
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.attempts == 2
        assert outcome.all_delivered_once
        for name in ("tx", "x", "y"):
            node = outcome.engine.node(name)
            assert any(e.kind == EventKind.DEFERRED_REJECT for e in node.events)

    def test_transmitter_avoids_unnecessary_retransmission(self):
        """Performance gain over standard CAN: a transmitter seeing an
        error in the last EOF bit may avoid retransmitting."""
        nodes = _nodes("tx", "x", "y")
        injector = ScriptedInjector(
            view_faults=[ViewFault("tx", Trigger(field=EOF, index=6), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.attempts == 1
        assert outcome.all_delivered_once

    def test_standard_can_would_retransmit_in_same_case(self):
        from repro.can.controller import CanController

        nodes = [CanController(n) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("tx", Trigger(field=EOF, index=6), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.attempts == 2


class TestFig3bDefeat:
    def test_inconsistent_omission(self):
        outcome = fig3b()
        assert outcome.inconsistent_omission
        assert outcome.deliveries == {"tx": 1, "x": 0, "y": 1}

    def test_transmitter_remains_correct(self):
        outcome = fig3b()
        assert outcome.crashed == []

    def test_y_fooled_by_fake_primary(self):
        """Y's primary-error indication is faked by the transmitter's
        reactive overload flag (the paper's Fig. 3b analysis)."""
        outcome = fig3b()
        y = outcome.engine.node("y")
        assert any(e.kind == EventKind.PRIMARY_ERROR for e in y.events)
        assert any(e.kind == EventKind.DEFERRED_ACCEPT for e in y.events)
        tx = outcome.engine.node("tx")
        assert any(e.kind == EventKind.OVERLOAD_FLAG_START for e in tx.events)

    def test_only_two_errors_needed(self):
        assert fig3b().errors_injected == 2


class TestDeliveryTiming:
    def test_clean_frame_delivers_at_end_of_eof(self):
        """MinorCAN defers delivery to the end of EOF (a dominant last
        bit can still lead to rejection), unlike standard CAN."""
        nodes = _nodes("tx", "x", "y")
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"))
        assert outcome.all_delivered_once
