"""Differential tests between protocol variants.

MinorCAN is *defined* as standard CAN with a different decision at the
last EOF bit; MajorCAN changes only the frame tail.  These tests run
identical fault scripts through the variants and compare outcomes —
pinning both the regions of exact equivalence and the exact sites
where the protocols (correctly) diverge:

* a flip at the transmitter's *last-but-one* EOF bit makes its error
  flag land on the receivers' *last* bit, so even that site engages
  the modified machinery (MinorCAN avoids CAN's double reception);
* DLC flips are the finding-F1 desynchronisation channel, where
  MajorCAN_5 (unlike CAN) omits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.controller import CanController
from repro.can.fields import CRC, DATA, DLC, EOF, ID_A
from repro.can.frame import data_frame
from repro.core.majorcan import MajorCanController
from repro.core.minorcan import MinorCanController
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault

from helpers import run_one_frame

_SETTINGS = settings(max_examples=40, deadline=None)

#: (field, max index) single-flip sites that cannot reach anyone's
#: last EOF bit (flags from EOF bit <= 4 end inside the EOF).
EQUIVALENT_SITES = [
    (ID_A, 10),
    (DLC, 3),
    (DATA, 7),
    (CRC, 14),
    (EOF, 4),
]


def _outcome(protocol_cls, field, index, node):
    nodes = [protocol_cls(n) for n in ("tx", "x", "y")]
    injector = ScriptedInjector(
        view_faults=[ViewFault(node, Trigger(field=field, index=index), force=None)]
    )
    return run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)


@st.composite
def equivalent_flip(draw):
    field, max_index = draw(st.sampled_from(EQUIVALENT_SITES))
    index = draw(st.integers(0, max_index))
    node = draw(st.sampled_from(["tx", "x", "y"]))
    return field, index, node


class TestMinorCanEquivalence:
    @given(site=equivalent_flip())
    @_SETTINGS
    def test_identical_outcomes_away_from_the_frame_end(self, site):
        field, index, node = site
        can = _outcome(CanController, field, index, node)
        minor = _outcome(MinorCanController, field, index, node)
        assert can.deliveries == minor.deliveries
        assert can.attempts == minor.attempts

    def test_divergence_at_the_last_bit(self):
        """At the last EOF bit the protocols differ by design: the
        standard transmitter retransmits, MinorCAN's accepts."""
        can = _outcome(CanController, EOF, 6, "tx")
        minor = _outcome(MinorCanController, EOF, 6, "tx")
        assert can.attempts == 2
        assert minor.attempts == 1

    def test_divergence_at_the_last_but_one_bit(self):
        """A transmitter flip at the last-but-one bit puts its flag on
        the receivers' last bit: standard CAN double-delivers there,
        MinorCAN's no-primary rule rejects consistently."""
        can = _outcome(CanController, EOF, 5, "tx")
        minor = _outcome(MinorCanController, EOF, 5, "tx")
        assert can.deliveries == {"tx": 1, "x": 2, "y": 2}
        assert minor.deliveries == {"tx": 1, "x": 1, "y": 1}


class TestMajorCanPreTailEquivalence:
    # Deterministic sites verified to leave the receiver's frame
    # tracking synchronised (no apparent-stuff shift): the alternating
    # 0x55 payload and these identifier/CRC positions create no 5-runs.
    STABLE_SITES = [
        (ID_A, 0),
        (ID_A, 7),
        (DATA, 0),
        (DATA, 3),
        (DATA, 7),
    ]

    @pytest.mark.parametrize("field,index", STABLE_SITES)
    @pytest.mark.parametrize("node", ["tx", "x", "y"])
    def test_pre_tail_flips_behave_like_standard_can(self, field, index, node):
        can = _outcome(CanController, field, index, node)
        major = _outcome(MajorCanController, field, index, node)
        assert can.deliveries == major.deliveries
        assert can.attempts == major.attempts

    def test_dlc_flip_is_the_known_divergence(self):
        """The one pre-tail channel where the variants part ways:
        receiver DLC corruption (finding F1)."""
        can = _outcome(CanController, DLC, 1, "x")
        major = _outcome(MajorCanController, DLC, 1, "x")
        assert can.deliveries["x"] == 1  # recovered by retransmission
        assert major.deliveries["x"] == 0  # the F1 omission

    def test_all_protocols_identical_without_faults(self):
        outcomes = [
            run_one_frame([cls(n) for n in ("tx", "x", "y")], data_frame(0x123, b"\x55"))
            for cls in (CanController, MinorCanController, MajorCanController)
        ]
        for outcome in outcomes:
            assert outcome.deliveries == {"tx": 1, "x": 1, "y": 1}
            assert outcome.attempts == 1
