"""The batch backend without numpy: same verdicts, logged fallback.

numpy is an optional extra (``repro[fast]``); when it is missing, the
batch backend must silently degrade to the pure-python scalar
micro-simulator — identical verdicts, one logged notice — rather than
fail.  Simulating a numpy-less interpreter inside a numpy-equipped
test run takes three steps: strip the cached modules, install an
import blocker, and reload :mod:`repro.analysis.batchreplay` so its
guarded import re-executes.  The fixture restores everything
afterwards, so the rest of the suite keeps the vectorised path.
"""

import importlib
import itertools
import logging
import random
import sys

import pytest

import repro.analysis.batchreplay as batchreplay
from repro.analysis.verification import tail_sites
from repro.faults.scenarios import make_controller


class _BlockNumpy:
    """Meta-path hook that refuses to import numpy."""

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy import blocked by test")
        return None

    # Python 3.9 compatibility: the legacy finder protocol.
    def find_module(self, name, path=None):
        if name == "numpy" or name.startswith("numpy."):
            return self
        return None

    def load_module(self, name):
        raise ImportError("numpy import blocked by test")


@pytest.fixture
def numpy_blocked():
    """Reload batchreplay with numpy unimportable; restore afterwards."""
    saved = {
        name: module
        for name, module in sys.modules.items()
        if name == "numpy" or name.startswith("numpy.")
    }
    blocker = _BlockNumpy()
    sys.meta_path.insert(0, blocker)
    for name in saved:
        del sys.modules[name]
    try:
        importlib.reload(batchreplay)
        assert not batchreplay.HAVE_NUMPY
        yield batchreplay
    finally:
        sys.meta_path.remove(blocker)
        sys.modules.update(saved)
        importlib.reload(batchreplay)
        assert batchreplay.HAVE_NUMPY


def test_fallback_verdicts_match_engine(numpy_blocked, caplog):
    node_names = ["tx", "r1", "r2"]
    for protocol, m in (("can", 5), ("majorcan", 5)):
        probe = make_controller(protocol, "probe", m=m)
        sites = tail_sites(
            node_names,
            probe.config.eof_length,
            window_start=getattr(probe, "window_start", None),
            window_end=getattr(probe, "window_end", None),
        )
        rng = random.Random(99)
        combos = [(site,) for site in sites] + rng.sample(
            list(itertools.combinations(sites, 2)), 20
        )
        with caplog.at_level(logging.INFO, logger="repro.analysis.batchreplay"):
            evaluator = numpy_blocked.BatchReplayEvaluator(
                protocol, m, node_names
            )
            assert evaluator.backend == "python"
            outcomes = evaluator.evaluate(combos)
        # The scalar micro-sim (not the engine) classified everything...
        assert evaluator.stats["engine"] == 0
        assert evaluator.stats["scalar"] == len(combos)
        # ...and each verdict still matches an engine oracle run.
        for combo, outcome in zip(combos, outcomes):
            oracle = evaluator._engine_outcome(combo)
            assert (outcome.deliveries, outcome.attempts) == (
                oracle.deliveries,
                oracle.attempts,
            ), combo
    assert any(
        "numpy unavailable" in record.message for record in caplog.records
    ), "the fallback must be announced once"


def test_fallback_notice_logged_once(numpy_blocked, caplog):
    with caplog.at_level(logging.INFO, logger="repro.analysis.batchreplay"):
        numpy_blocked.BatchReplayEvaluator("can", 5, ["tx", "r1"])
        numpy_blocked.BatchReplayEvaluator("can", 5, ["tx", "r1"])
    notices = [
        record
        for record in caplog.records
        if "numpy unavailable" in record.message
    ]
    assert len(notices) == 1


def test_fallback_notice_once_across_construction_paths(numpy_blocked, caplog):
    """Every entry point that builds an evaluator shares the one notice.

    Evaluators are constructed all over the workload layer — direct
    use, :func:`classify_placements`, the verification / Monte-Carlo /
    campaign chunk tasks — and a sweep builds hundreds of them.  The
    dedupe is per *process*, not per call site, so a numpy-less sweep
    logs exactly one notice no matter how many paths run.
    """
    from repro.can.fields import EOF

    with caplog.at_level(logging.INFO, logger="repro.analysis.batchreplay"):
        numpy_blocked.BatchReplayEvaluator("can", 5, ["tx", "r1"])
        numpy_blocked.classify_placements(
            "can", 5, ("tx", "r1", "r2"), [(("r1", EOF, 5),)], payload=b"\x55"
        )
        numpy_blocked.BatchReplayEvaluator("majorcan", 5, ["tx", "r1", "r2"])
    notices = [
        record
        for record in caplog.records
        if "numpy unavailable" in record.message
    ]
    assert len(notices) == 1


def test_explicit_numpy_request_degrades(numpy_blocked):
    evaluator = numpy_blocked.BatchReplayEvaluator(
        "can", 5, ["tx", "r1"], backend="numpy"
    )
    assert evaluator.backend == "python"


def test_restored_after_block():
    """Sanity: the fixture teardown really restored the numpy path."""
    assert batchreplay.HAVE_NUMPY
    evaluator = batchreplay.BatchReplayEvaluator("can", 5, ["tx", "r1"])
    assert evaluator.backend == "numpy"
