"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.can.controller import CanController
from repro.simulation.engine import SimulationEngine


@pytest.fixture
def three_node_bus():
    """A transmitter and two receivers on a fresh bus."""
    transmitter = CanController("tx")
    receiver_a = CanController("rx1")
    receiver_b = CanController("rx2")
    engine = SimulationEngine([transmitter, receiver_a, receiver_b])
    return engine, transmitter, receiver_a, receiver_b
