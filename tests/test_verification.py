"""Tests for the bounded exhaustive verification harness.

This is the reproduction's answer to the paper's planned formal
verification: every placement of up to k view errors over the paper's
error universe is explored by simulation.
"""

import pytest

from repro.analysis.verification import (
    header_sites,
    tail_sites,
    verify_consistency,
)
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def majorcan_two_flips():
    return verify_consistency("majorcan", m=5, n_nodes=3, max_flips=2)


@pytest.fixture(scope="module")
def can_two_flips():
    return verify_consistency("can", m=5, n_nodes=3, max_flips=2)


class TestSiteUniverses:
    def test_tail_sites_cover_delimiters_and_eof(self):
        sites = tail_sites(["a"], eof_length=7)
        fields = {field for _, field, _ in sites}
        assert fields == {"CRC_DELIM", "ACK_SLOT", "ACK_DELIM", "EOF"}
        assert len([s for s in sites if s[1] == "EOF"]) == 7

    def test_tail_sites_with_window(self):
        sites = tail_sites(["a"], eof_length=10, window_start=12, window_end=20)
        window = [s for s in sites if s[1] == "SAMPLING"]
        assert len(window) == 9

    def test_header_sites(self):
        sites = header_sites(["a", "b"], data_bits=8)
        assert len(sites) == 2 * (4 + 8)


class TestMajorCanVerified:
    def test_no_counterexample_with_two_flips(self, majorcan_two_flips):
        result = majorcan_two_flips
        assert result.holds, [str(c) for c in result.counterexamples[:3]]
        assert result.runs > 2000

    def test_summary_mentions_verdict(self, majorcan_two_flips):
        assert "no counterexample" in majorcan_two_flips.summary()

    def test_four_nodes_single_flip(self):
        result = verify_consistency("majorcan", m=5, n_nodes=4, max_flips=1)
        assert result.holds

    def test_m3_single_flip(self):
        result = verify_consistency("majorcan", m=3, n_nodes=3, max_flips=1)
        assert result.holds


class TestStandardCanCounterexamples:
    def test_exactly_the_fig3a_imo_patterns(self, can_two_flips):
        imos = [c for c in can_two_flips.counterexamples if c.kind == "imo"]
        assert len(imos) == 2
        for counterexample in imos:
            fields = sorted(
                (name, field, index) for name, field, index in counterexample.sites
            )
            assert ("tx", "EOF", 6) in fields
            receiver_site = [s for s in fields if s[0] != "tx"][0]
            assert receiver_site[1:] == ("EOF", 5)

    def test_single_flip_double_receptions_exist(self, can_two_flips):
        singles = [
            c
            for c in can_two_flips.counterexamples
            if c.kind == "double" and len(c.sites) == 1
        ]
        assert singles  # the Fig. 1b family

    def test_no_single_flip_imo(self, can_two_flips):
        assert not [
            c
            for c in can_two_flips.counterexamples
            if c.kind == "imo" and len(c.sites) == 1
        ]


class TestMinorCanVerified:
    def test_single_flip_clean(self):
        result = verify_consistency("minorcan", m=5, n_nodes=3, max_flips=1)
        assert result.holds


class TestHeaderUniverseFindsF1:
    def test_dlc_flips_break_majorcan5(self):
        result = verify_consistency(
            "majorcan",
            m=5,
            n_nodes=3,
            max_flips=1,
            extra_sites=header_sites(["tx", "r1", "r2"]),
        )
        assert not result.holds
        dlc_hits = [
            c
            for c in result.counterexamples
            if all(field == "DLC" for _, field, _ in c.sites)
        ]
        assert dlc_hits
        # Only receivers can desynchronise; the transmitter knows its frame.
        for counterexample in dlc_hits:
            assert all(name != "tx" for name, _, _ in counterexample.sites)

    def test_stop_at_first(self):
        result = verify_consistency(
            "majorcan",
            m=5,
            n_nodes=3,
            max_flips=1,
            extra_sites=header_sites(["r1"]),
            stop_at_first=True,
        )
        assert len(result.counterexamples) <= 1


class TestValidation:
    def test_node_count(self):
        with pytest.raises(AnalysisError):
            verify_consistency(n_nodes=1)

    def test_flip_count(self):
        with pytest.raises(AnalysisError):
            verify_consistency(max_flips=0)
