"""End-to-end tests of the property matrix (experiment E-PROP).

Each assertion is a sentence from the paper turned into a check.
"""

import pytest

from repro.properties.broadcast import AB2, AB3, AB5
from repro.properties.matrix import (
    core_matrix,
    hlp_matrix,
    render_matrix,
    run_hlp_cell,
)


def cell_map(cells):
    return {(cell.protocol, cell.scenario): cell for cell in cells}


@pytest.fixture(scope="module")
def core_cells():
    return cell_map(core_matrix())


@pytest.fixture(scope="module")
def hlp_cells():
    return cell_map(hlp_matrix())


class TestStandardCanRow(object):
    def test_clean_run_is_atomic(self, core_cells):
        assert core_cells[("CAN", "clean")].atomic_broadcast

    def test_fig1a_consistent(self, core_cells):
        assert core_cells[("CAN", "fig1a")].atomic_broadcast

    def test_fig1b_violates_at_most_once(self, core_cells):
        assert core_cells[("CAN", "fig1b")].failed_properties() == [AB3]

    def test_fig1c_violates_agreement(self, core_cells):
        assert core_cells[("CAN", "fig1c")].failed_properties() == [AB2]

    def test_fig3_violates_agreement_with_correct_transmitter(self, core_cells):
        assert core_cells[("CAN", "fig3")].failed_properties() == [AB2]


class TestMinorCanRow:
    def test_fixes_all_fig1_scenarios(self, core_cells):
        for scenario in ("fig1a", "fig1b", "fig1c"):
            assert core_cells[("MinorCAN", scenario)].atomic_broadcast

    def test_fig3_still_violates_agreement(self, core_cells):
        assert core_cells[("MinorCAN", "fig3")].failed_properties() == [AB2]


class TestMajorCanRow:
    def test_atomic_in_every_scenario(self, core_cells):
        for scenario in ("clean", "fig1a", "fig1b", "fig1c", "fig3"):
            cell = core_cells[("MajorCAN", scenario)]
            assert cell.atomic_broadcast, (scenario, cell.failed_properties())


class TestHigherLevelProtocols:
    def test_edcan_keeps_agreement_in_fig3(self, hlp_cells):
        cell = hlp_cells[("EDCAN", "fig3")]
        assert AB2 not in cell.failed_properties()

    def test_edcan_lacks_total_order(self, hlp_cells):
        """EDCAN provides Reliable, not Atomic, Broadcast."""
        assert AB5 in hlp_cells[("EDCAN", "fig3")].failed_properties()

    def test_relcan_fails_agreement_in_fig3(self, hlp_cells):
        assert AB2 in hlp_cells[("RELCAN", "fig3")].failed_properties()

    def test_totcan_fails_agreement_in_fig3(self, hlp_cells):
        assert AB2 in hlp_cells[("TOTCAN", "fig3")].failed_properties()

    def test_relcan_recovers_from_transmitter_crash(self, hlp_cells):
        assert AB2 not in hlp_cells[("RELCAN", "fig1c")].failed_properties()

    def test_totcan_consistent_under_transmitter_crash(self, hlp_cells):
        """TOTCAN removes the unaccepted message everywhere: agreement
        and total order both hold."""
        cell = hlp_cells[("TOTCAN", "fig1c")]
        assert AB2 not in cell.failed_properties()
        assert AB5 not in cell.failed_properties()

    def test_all_clean_runs_atomic(self, hlp_cells):
        for protocol in ("EDCAN", "RELCAN", "TOTCAN"):
            assert hlp_cells[(protocol, "clean")].atomic_broadcast


class TestRendering:
    def test_render_contains_fail_markers(self, core_cells):
        text = render_matrix(list(core_cells.values()))
        assert "FAIL" in text
        assert "MajorCAN" in text

    def test_render_empty(self):
        assert "empty" in render_matrix([])

    def test_unknown_hlp_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_hlp_cell("edcan", "nonsense")
