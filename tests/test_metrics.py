"""Tests for metrics aggregation and report rendering."""

from repro.faults.scenarios import fig1b, fig3a
from repro.metrics.counters import CampaignResult, ConsistencyCounter
from repro.metrics.report import render_kv, render_table
from repro.properties.ledger import NodeLedger, SystemLedger


def _ledger_with_imo():
    ledger = SystemLedger()
    ledger.nodes["tx"] = NodeLedger("tx", True, broadcasts=["m"], deliveries=["m"])
    ledger.nodes["x"] = NodeLedger("x", True, deliveries=[])
    ledger.nodes["y"] = NodeLedger("y", True, deliveries=["m"])
    return ledger


class TestConsistencyCounter:
    def test_add_ledger(self):
        counter = ConsistencyCounter()
        counter.add_ledger(_ledger_with_imo())
        assert counter.messages == 1
        assert counter.inconsistent_omissions == 1
        assert counter.imo_rate == 1.0

    def test_add_outcome(self):
        counter = ConsistencyCounter()
        counter.add_outcome(fig3a())
        counter.add_outcome(fig1b("minorcan"))
        assert counter.messages == 2
        assert counter.inconsistent_omissions == 1
        assert counter.consistent == 1

    def test_double_reception_counted(self):
        counter = ConsistencyCounter()
        counter.add_outcome(fig1b("can"))
        assert counter.double_receptions == 1

    def test_merge(self):
        a = ConsistencyCounter(messages=2, consistent=1, inconsistent_omissions=1)
        b = ConsistencyCounter(messages=3, consistent=3)
        merged = a.merge(b)
        assert merged.messages == 5
        assert merged.consistent == 4
        assert merged.imo_rate == 0.2

    def test_empty_rate(self):
        assert ConsistencyCounter().imo_rate == 0.0


class TestCampaignResult:
    def test_counters_created_on_demand(self):
        campaign = CampaignResult(label="test")
        campaign.counter("can").add_outcome(fig3a())
        campaign.counter("majorcan")
        rows = campaign.rows()
        assert [row["protocol"] for row in rows] == ["can", "majorcan"]
        assert rows[0]["imo"] == 1


class TestRenderTable:
    def test_alignment_and_content(self):
        rows = [
            {"name": "alpha", "value": 1.23456},
            {"name": "b", "value": 7},
        ]
        text = render_table(rows, columns=["name", "value"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text
        assert "1.23" in text

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], columns=["a"])

    def test_missing_keys_render_blank(self):
        text = render_table([{"a": 1}], columns=["a", "b"])
        assert text


class TestRenderKv:
    def test_pairs_aligned(self):
        text = render_kv("Title", [("short", 1), ("much-longer-key", 2)])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1].split(":")[1].strip() == "1"
