"""Tests for the steady-state traffic engine (:mod:`repro.traffic`)."""

import pytest

from repro.cli import main
from repro.errors import ConfigurationError, ProtocolError, TraceStoreError
from repro.metrics.export import json_line
from repro.tracestore import load_trace, replay_trace, validate_records
from repro.traffic import (
    BurstSpec,
    TrafficSpec,
    build_schedule,
    record_traffic,
    run_traffic,
    splice_windows,
    traffic_records,
)
from repro.traffic.run import WindowResult
from repro.traffic.spec import Submission
from repro.workload.profiles import NetworkProfile


def _lines(outcome):
    return [json_line(record) for record in traffic_records(outcome)]


class TestSpecValidation:
    def test_rejects_unknown_protocol(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(protocol="ttcan")

    def test_rejects_unknown_source(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(source="bursty")

    def test_rejects_unknown_hlp(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(hlp="abcast")

    def test_rejects_bad_node_counts(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(n_nodes=1)
        with pytest.raises(ConfigurationError):
            TrafficSpec(n_nodes=257)
        with pytest.raises(ConfigurationError):
            TrafficSpec(n_nodes=65, hlp="edcan")

    def test_rejects_tiny_window(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(window_bits=32)

    def test_rejects_drain_budget_below_window(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(window_bits=2000, max_window_bits=2000)

    def test_rejects_bad_load(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(load=0.0)
        with pytest.raises(ConfigurationError):
            TrafficSpec(load=4.5)

    def test_rejects_burst_against_unknown_node(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(n_nodes=2, bursts=(BurstSpec(node="n7", start=0, length=5),))

    def test_rejects_burst_in_missing_window(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(
                windows=1,
                bursts=(BurstSpec(node="n0", start=0, length=5, window=3),),
            )

    def test_rejects_noise_against_unknown_node(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(n_nodes=2, noise_ber=0.01, noise_nodes=("n9",))

    def test_rejects_non_integer_seed(self):
        with pytest.raises(ConfigurationError):
            TrafficSpec(seed="7")

    def test_burst_validates_itself(self):
        with pytest.raises(ConfigurationError):
            BurstSpec(node="n0", start=-1, length=5)
        with pytest.raises(ConfigurationError):
            BurstSpec(node="n0", start=0, length=0)
        with pytest.raises(ConfigurationError):
            BurstSpec(node="n0", start=0, length=5, window=-2)


class TestSpecGeometry:
    def test_period_matches_profile_arithmetic(self):
        profile = NetworkProfile(
            bit_rate=1e6, n_nodes=4, load=0.9, frame_bits=110
        )
        spec = TrafficSpec(n_nodes=4, load=0.9)
        assert spec.period_bits == int(
            round(profile.n_nodes * profile.frame_bits / profile.load)
        )

    def test_node_names(self):
        assert TrafficSpec(n_nodes=3).node_names == ("n0", "n1", "n2")

    def test_seq_cap_depends_on_hlp(self):
        assert TrafficSpec().seq_cap == 1 << 16
        assert TrafficSpec(hlp="edcan", n_nodes=3).seq_cap == 1 << 8

    def test_burst_window_wildcard(self):
        every = BurstSpec(node="n0", start=5, length=3, window=-1)
        only1 = BurstSpec(node="n1", start=5, length=3, window=1)
        spec = TrafficSpec(windows=2, bursts=(every, only1))
        assert spec.bursts_for_window(0) == (every,)
        assert spec.bursts_for_window(1) == (every, only1)


class TestManifestRoundTrip:
    def test_round_trip_is_exact(self):
        spec = TrafficSpec(
            name="rt",
            protocol="majorcan",
            m=4,
            n_nodes=5,
            windows=3,
            window_bits=800,
            load=1.2,
            seed=99,
            noise_ber=0.001,
            noise_nodes=("n1", "n3"),
            bursts=(BurstSpec(node="n2", start=10, length=7, window=1),),
            bus_off_recovery=True,
            record_events=False,
        )
        assert TrafficSpec.from_manifest(spec.to_manifest()) == spec

    def test_meta_rides_along(self):
        manifest = TrafficSpec().to_manifest(meta={"entry": "x"})
        assert manifest["meta"] == {"entry": "x"}

    def test_rejects_wrong_version(self):
        manifest = TrafficSpec().to_manifest()
        manifest["version"] = 1
        with pytest.raises(TraceStoreError):
            TrafficSpec.from_manifest(manifest)

    def test_rejects_wrong_kind(self):
        manifest = TrafficSpec().to_manifest()
        manifest["kind"] = "scenario"
        with pytest.raises(TraceStoreError):
            TrafficSpec.from_manifest(manifest)


class TestSchedule:
    def test_periodic_times_follow_phase_and_period(self):
        spec = TrafficSpec(n_nodes=3, windows=2, window_bits=700, load=0.8)
        period = spec.period_bits
        schedule = build_schedule(spec)
        for sub in schedule:
            index = sub.node_index
            phase = (index * period) // spec.n_nodes
            assert (sub.time - phase) % period == 0
            assert sub.window == sub.time // spec.window_bits
            assert sub.identifier == 0x100 + index
        assert [s.time for s in schedule] == sorted(s.time for s in schedule)

    def test_schedule_is_deterministic(self):
        spec = TrafficSpec(
            n_nodes=3,
            windows=2,
            window_bits=600,
            source="poisson",
            rate_per_bit=0.004,
            seed=21,
        )
        assert build_schedule(spec) == build_schedule(spec)

    def test_per_node_sequences_are_dense(self):
        spec = TrafficSpec(n_nodes=3, windows=2, window_bits=900, load=0.9)
        seqs = {}
        for sub in build_schedule(spec):
            seqs.setdefault(sub.node, []).append(sub.seq)
        for per_node in seqs.values():
            assert per_node == list(range(len(per_node)))

    def test_hlp_seq_cap_enforced(self):
        spec = TrafficSpec(
            n_nodes=2,
            hlp="edcan",
            windows=1,
            window_bits=300,
            load=4.0,
            frame_bits=1,
        )
        with pytest.raises(ConfigurationError):
            build_schedule(spec)


class TestJobsInvariance:
    def test_noisy_burst_run_is_jobs_invariant(self):
        spec = TrafficSpec(
            name="jobs-inv",
            protocol="majorcan",
            m=5,
            n_nodes=3,
            windows=3,
            window_bits=700,
            load=0.8,
            seed=31,
            noise_ber=0.001,
            bursts=(BurstSpec(node="n1", start=150, length=20, window=1),),
        )
        serial = run_traffic(spec, jobs=1)
        parallel = run_traffic(spec, jobs=2)
        assert _lines(serial) == _lines(parallel)
        assert {k: bool(v) for k, v in serial.properties.items()} == {
            k: bool(v) for k, v in parallel.properties.items()
        }


class TestRecordReplay:
    def test_recording_replays_bit_identically(self, tmp_path):
        spec = TrafficSpec(
            name="rec",
            protocol="majorcan",
            m=5,
            n_nodes=4,
            windows=2,
            window_bits=800,
            load=0.9,
            seed=11,
            bursts=(BurstSpec(node="n1", start=120, length=18),),
        )
        path = tmp_path / "rec.jsonl"
        record_traffic(path, run_traffic(spec, jobs=2), meta={"entry": "rec"})
        trace = load_trace(path)
        assert trace.version == 2
        assert trace.traffic_spec() == spec
        assert trace.submissions and trace.frame_verdicts
        result = replay_trace(path)
        assert result.bit_identical, result.diff.summary()

    def test_schema_valid_record_stream(self):
        outcome = run_traffic(
            TrafficSpec(n_nodes=3, window_bits=600, seed=2), jobs=1
        )
        assert validate_records(list(traffic_records(outcome))) == []


class TestSchemaV2Validation:
    def _records(self):
        outcome = run_traffic(
            TrafficSpec(n_nodes=3, window_bits=600, seed=2), jobs=1
        )
        return list(traffic_records(outcome))

    def test_out_of_order_sections_flagged(self):
        records = self._records()
        bus_at = next(i for i, r in enumerate(records) if r["type"] == "bus")
        records.insert(bus_at + 1, records.pop(1))  # submission after bus
        assert validate_records(records)

    def test_bad_frame_status_flagged(self):
        records = self._records()
        for record in records:
            if record["type"] == "frame_verdict":
                record["status"] = "misplaced"
                break
        assert validate_records(records)

    def test_missing_manifest_key_flagged(self):
        records = self._records()
        del records[0]["engine"]
        assert validate_records(records)

    def test_decreasing_submission_times_flagged(self):
        records = self._records()
        subs = [r for r in records if r["type"] == "submission"]
        assert len(subs) >= 2
        subs[0]["t"], subs[1]["t"] = subs[1]["t"], subs[0]["t"]
        assert validate_records(records)

    def test_v1_recordings_still_validate(self):
        from repro.faults.scenarios import fig3
        from repro.tracestore import outcome_records

        records = list(outcome_records(fig3("can")))
        assert validate_records(records) == []


class TestVerdictClassification:
    def _spec(self):
        return TrafficSpec(n_nodes=3, windows=1, window_bits=100, load=0.5)

    def _schedule(self, spec):
        return tuple(
            Submission(
                time=t,
                window=0,
                node="n0",
                node_index=0,
                seq=seq,
                identifier=0x100,
                payload=bytes([seq, 0]),
                message_id="n0#%d" % seq,
            )
            for seq, t in enumerate((0, 10, 20, 30))
        )

    def _result(self, deliveries, ever_offline=()):
        return WindowResult(
            window=0,
            bits=200,
            bus="r" * 200,
            deliveries=deliveries,
            event_counts={},
            events=(),
            ever_offline=tuple(ever_offline),
            offline_at_end=tuple(ever_offline),
            max_backlog=0,
            busy_bits=0,
            errors_injected=0,
        )

    def test_statuses_follow_precedence(self):
        spec = self._spec()
        schedule = self._schedule(spec)
        # seq 0: everyone once -> delivered; seq 1: n1 twice -> duplicated
        # (even though n2 missed it); seq 2: only n1 -> omitted;
        # seq 3: nobody -> lost.
        deliveries = {
            "n0": (("n0", 0, 50), ("n0", 1, 60)),
            "n1": (("n0", 0, 50), ("n0", 1, 60), ("n0", 1, 70), ("n0", 2, 80)),
            "n2": (("n0", 0, 50),),
        }
        outcome = splice_windows(spec, schedule, [self._result(deliveries)])
        assert [v.status for v in outcome.verdicts] == [
            "delivered",
            "duplicated",
            "omitted",
            "lost",
        ]
        assert outcome.stats.delivered == 1
        assert outcome.stats.duplicated == 1
        assert outcome.stats.omitted == 1
        assert outcome.stats.lost == 1
        assert outcome.verdicts[0].first_delivered == 50
        assert outcome.verdicts[3].first_delivered is None
        assert not outcome.atomic

    def test_offline_nodes_do_not_count(self):
        spec = self._spec()
        schedule = self._schedule(spec)[:1]
        deliveries = {
            "n0": (("n0", 0, 50),),
            "n1": (("n0", 0, 50),),
            "n2": (),
        }
        outcome = splice_windows(
            spec, schedule, [self._result(deliveries, ever_offline=("n2",))]
        )
        assert outcome.verdicts[0].status == "delivered"
        assert not outcome.ledger.nodes["n2"].correct


class TestHlpTraffic:
    def test_edcan_stream_is_atomic(self):
        spec = TrafficSpec(
            n_nodes=3,
            hlp="edcan",
            windows=2,
            window_bits=900,
            load=0.3,
            seed=5,
        )
        outcome = run_traffic(spec, jobs=2)
        assert outcome.stats.frames_submitted > 0
        assert outcome.stats.delivered == outcome.stats.frames_submitted
        assert outcome.atomic

    def test_sequence_counter_refuses_rewind(self):
        from repro.can.controller import CanController
        from repro.protocols import PROTOCOL_FACTORIES
        from repro.protocols.base import AppNode

        node = AppNode(0, CanController("n0"), PROTOCOL_FACTORIES["edcan"]())
        node.broadcast(b"")
        node.broadcast(b"")
        node.advance_sequence_to(5)
        with pytest.raises(ProtocolError):
            node.advance_sequence_to(1)


class TestSustainedFaults:
    def test_burst_forces_error_signalling_and_recovery(self):
        spec = TrafficSpec(
            n_nodes=3,
            windows=2,
            window_bits=1100,
            load=0.7,
            seed=7,
            bursts=(BurstSpec(node="n1", window=0, start=140, length=24),),
        )
        outcome = run_traffic(spec, jobs=1)
        assert outcome.stats.errors_injected > 0
        assert outcome.stats.errors_detected > 0
        assert outcome.stats.delivered == outcome.stats.frames_submitted
        assert outcome.atomic

    def test_tec_ramp_reaches_bus_off_and_recovers(self):
        spec = TrafficSpec(
            protocol="majorcan",
            m=5,
            n_nodes=3,
            windows=1,
            window_bits=6000,
            load=0.3,
            seed=3,
            bursts=(BurstSpec(node="n0", window=0, start=10, length=700),),
            bus_off_recovery=True,
        )
        outcome = run_traffic(spec, jobs=1)
        assert outcome.stats.bus_off >= 1
        assert outcome.stats.bus_off_recovered >= 1
        # n0 went bus-off, so it is excluded from the correct set; the
        # stream over the correct nodes still satisfies AB1-AB5.
        assert not outcome.ledger.nodes["n0"].correct
        assert outcome.atomic


class TestTrafficCli:
    def test_traffic_smoke(self, capsys):
        assert (
            main(
                [
                    "traffic",
                    "--nodes",
                    "3",
                    "--windows",
                    "2",
                    "--window-bits",
                    "600",
                    "--load",
                    "0.8",
                    "--seed",
                    "7",
                    "--jobs",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "AB1-validity" in out
        assert "frames:" in out

    def test_traffic_record_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "cli.jsonl")
        assert (
            main(
                [
                    "traffic",
                    "--nodes",
                    "3",
                    "--window-bits",
                    "600",
                    "--seed",
                    "3",
                    "--burst",
                    "n1:0:100:12",
                    "--record",
                    path,
                ]
            )
            == 0
        )
        assert main(["replay", path]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_traffic_rejects_malformed_burst(self):
        with pytest.raises(ConfigurationError):
            main(["traffic", "--burst", "n1:wat"])
