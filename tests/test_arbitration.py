"""Controller tests: bitwise arbitration."""

from repro.can.controller import CanController
from repro.can.events import EventKind
from repro.can.frame import data_frame, remote_frame
from repro.simulation.engine import SimulationEngine

from helpers import delivered_payloads


def _bus(*names):
    nodes = [CanController(name) for name in names]
    return SimulationEngine(nodes), nodes


class TestTwoTransmitters:
    def test_lower_id_wins(self):
        engine, (a, b, observer) = _bus("a", "b", "obs")
        a.submit(data_frame(0x200, b"\xaa"))
        b.submit(data_frame(0x100, b"\xbb"))
        engine.run_until_idle(10000)
        assert delivered_payloads(observer) == [b"\xbb", b"\xaa"]

    def test_loser_logs_arbitration_lost(self):
        engine, (a, b, _) = _bus("a", "b", "obs")
        a.submit(data_frame(0x200, b"\xaa"))
        b.submit(data_frame(0x100, b"\xbb"))
        engine.run_until_idle(10000)
        lost = [e for e in a.events if e.kind == EventKind.ARBITRATION_LOST]
        assert len(lost) == 1

    def test_loser_receives_winner_frame(self):
        engine, (a, b, _) = _bus("a", "b", "obs")
        a.submit(data_frame(0x200, b"\xaa"))
        b.submit(data_frame(0x100, b"\xbb"))
        engine.run_until_idle(10000)
        assert b"\xbb" in delivered_payloads(a)

    def test_loser_retransmits_after_winner(self):
        engine, (a, b, _) = _bus("a", "b", "obs")
        a.submit(data_frame(0x200, b"\xaa"))
        b.submit(data_frame(0x100, b"\xbb"))
        engine.run_until_idle(10000)
        assert delivered_payloads(b)[-1] == b"\xaa"
        assert a.pending_transmissions == 0

    def test_no_error_flags_during_arbitration(self):
        engine, (a, b, _) = _bus("a", "b", "obs")
        a.submit(data_frame(0x200, b"\xaa"))
        b.submit(data_frame(0x100, b"\xbb"))
        engine.run_until_idle(10000)
        for node in (a, b):
            assert not [e for e in node.events if e.kind == EventKind.ERROR_DETECTED]


class TestPriorityOrdering:
    def test_three_way_arbitration(self):
        engine, (a, b, c, observer) = _bus("a", "b", "c", "obs")
        a.submit(data_frame(0x300, b"\x03"))
        b.submit(data_frame(0x100, b"\x01"))
        c.submit(data_frame(0x200, b"\x02"))
        engine.run_until_idle(20000)
        assert delivered_payloads(observer) == [b"\x01", b"\x02", b"\x03"]

    def test_data_frame_beats_remote_frame_same_id(self):
        """The dominant RTR bit of the data frame wins arbitration."""
        engine, (a, b, observer) = _bus("a", "b", "obs")
        a.submit(remote_frame(0x100, dlc=1))
        b.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(10000)
        frames = [d.frame for d in observer.deliveries]
        assert [frame.remote for frame in frames] == [False, True]

    def test_base_frame_beats_extended_with_same_prefix(self):
        engine, (a, b, observer) = _bus("a", "b", "obs")
        a.submit(data_frame((0x123 << 18) | 5, b"\xee", extended=True))
        b.submit(data_frame(0x123, b"\xbb"))
        engine.run_until_idle(10000)
        assert delivered_payloads(observer)[0] == b"\xbb"

    def test_high_priority_jumps_queue_between_frames(self):
        engine, (a, b, observer) = _bus("a", "b", "obs")
        a.submit(data_frame(0x300, b"\x01"))
        a.submit(data_frame(0x300, b"\x02"))
        # b's frame is submitted while a's first frame is in flight.
        engine.run(20)
        b.submit(data_frame(0x050, b"\x99"))
        engine.run_until_idle(20000)
        payloads = delivered_payloads(observer)
        assert payloads.index(b"\x99") < payloads.index(b"\x02")


class TestSimultaneousStart:
    def test_identical_ids_different_payload_collide_and_recover(self):
        """Two nodes sending the same id win arbitration together and
        collide in the payload; the bit error is signalled and both
        frames eventually go through."""
        engine, (a, b, observer) = _bus("a", "b", "obs")
        a.submit(data_frame(0x100, b"\xf0"))
        b.submit(data_frame(0x100, b"\x0f"))
        engine.run_until_idle(30000)
        payloads = delivered_payloads(observer)
        assert sorted(payloads) == [b"\x0f", b"\xf0"]
