"""Differential suite: the full ≤2-flip universe vs the engine oracle.

The PR-6 batchreplay extension classifies *multi-flip* combos — header
and tail sites mixed, on any subset of nodes — without engine runs.
This module sweeps the complete ≤2-flip universe (every header site
plus every EOF site, all singles and pairs, plus the clean combo) for
CAN, MinorCAN and MajorCAN at m ∈ {3, 5}, and demands

* *verdict identity*: deliveries and attempts equal the per-combo
  engine oracle everywhere, and
* *engine share < 1%*: the evaluator classifies the whole universe on
  its batch/scalar/header routes.

An empty payload keeps the universe dense but small enough for tier-1
(~500-900 combos per configuration).
"""

import itertools

import pytest

from repro.analysis.batchreplay import BatchReplayEvaluator, clear_caches
from repro.analysis.verification import header_sites
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import make_controller, run_single_frame_scenario

NODE_NAMES = ("tx", "r1", "r2")
FRAME = data_frame(0x123, b"", message_id="m")

CONFIGS = [("can", 5), ("minorcan", 5), ("majorcan", 3), ("majorcan", 5)]


def full_universe(protocol, m):
    """Every header site and EOF site; all ≤2-flip combos over them."""
    probe = make_controller(protocol, "probe", m=m)
    sites = list(header_sites(NODE_NAMES, data_bits=0))
    sites += [
        (name, EOF, index)
        for name in NODE_NAMES
        for index in range(probe.config.eof_length)
    ]
    return (
        [()]
        + [(site,) for site in sites]
        + list(itertools.combinations(sites, 2))
    )


def engine_oracle(protocol, m, combo):
    nodes = [make_controller(protocol, name, m=m) for name in NODE_NAMES]
    faults = [
        ViewFault(name, Trigger(field=field_name, index=index), force=None)
        for name, field_name, index in combo
    ]
    outcome = run_single_frame_scenario(
        "multiflip-oracle",
        nodes,
        ScriptedInjector(view_faults=faults),
        frame=FRAME,
        record_bits=False,
    )
    return (
        tuple(outcome.deliveries[name] for name in NODE_NAMES),
        outcome.attempts,
    )


@pytest.mark.parametrize("protocol,m", CONFIGS)
def test_full_two_flip_universe_matches_engine(protocol, m):
    combos = full_universe(protocol, m)
    clear_caches()
    evaluator = BatchReplayEvaluator(protocol, m, NODE_NAMES, frame=FRAME)
    outcomes = evaluator.evaluate(combos)
    assert len(outcomes) == len(combos)
    mismatches = []
    for combo, outcome in zip(combos, outcomes):
        oracle = engine_oracle(protocol, m, combo)
        if (outcome.deliveries, outcome.attempts) != oracle:
            mismatches.append((combo, (outcome.deliveries, outcome.attempts), oracle))
    assert mismatches == []
    total = sum(evaluator.stats.values())
    assert total == len(combos)
    assert evaluator.stats["engine"] / total < 0.01
