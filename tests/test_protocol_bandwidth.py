"""Tests for the measured per-protocol bandwidth accounting."""

import pytest

from repro.errors import ProtocolError
from repro.protocols.stats import (
    bandwidth_comparison,
    measure_hlp_bandwidth,
    measure_majorcan_bandwidth,
)


@pytest.fixture(scope="module")
def reports():
    return bandwidth_comparison(n_nodes=4)


class TestFrameCounts:
    def test_edcan_costs_one_frame_per_receiver(self, reports):
        assert reports["edcan"].frames_on_bus == 4  # data + 3 diffusion
        assert reports["edcan"].extra_frames == 3

    def test_relcan_costs_one_confirm(self, reports):
        assert reports["relcan"].frames_on_bus == 2

    def test_totcan_costs_one_accept(self, reports):
        assert reports["totcan"].frames_on_bus == 2

    def test_majorcan_costs_a_single_frame(self, reports):
        assert reports["majorcan"].frames_on_bus == 1
        assert reports["majorcan"].extra_frames == 0


class TestBitAccounting:
    def test_every_hlp_spends_more_than_an_extra_frame(self, reports):
        """The paper's Section 5 comparison, measured: each FTCS'98
        protocol transmits more than one extra CAN frame per message,
        dwarfing MajorCAN's tail overhead."""
        single_frame = reports["majorcan"].frame_bits_total
        for name in ("edcan", "relcan", "totcan"):
            extra = reports[name].frame_bits_total - single_frame
            assert extra > 40  # at least a minimal frame

    def test_edcan_scales_with_network_size(self):
        small = measure_hlp_bandwidth("edcan", n_nodes=3)
        large = measure_hlp_bandwidth("edcan", n_nodes=6)
        assert large.frames_on_bus == 6
        assert small.frames_on_bus == 3

    def test_majorcan_m_affects_frame_length(self):
        m5 = measure_majorcan_bandwidth(m=5)
        m7 = measure_majorcan_bandwidth(m=7)
        assert m7.frame_bits_total - m5.frame_bits_total == 4  # 2m grows by 4

    def test_busy_bits_positive(self, reports):
        for report in reports.values():
            assert report.bus_busy_bits > 0


class TestValidation:
    def test_unknown_protocol(self):
        with pytest.raises(ProtocolError):
            measure_hlp_bandwidth("nonsense")
