"""Tests for the exact tail-pattern enumeration (experiment E-MC)."""

import pytest

from repro.analysis.enumeration import (
    enumerate_tail_patterns,
    equation4_tail_prediction,
)
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def can_result():
    return enumerate_tail_patterns("can", n_nodes=3, window=2, ber_star=1e-4)


@pytest.fixture(scope="module")
def majorcan_result():
    return enumerate_tail_patterns("majorcan", n_nodes=3, window=2, ber_star=1e-4)


class TestStandardCan:
    def test_pattern_count(self, can_result):
        # 3 nodes x 2 window bits = 6 sites -> 64 subsets.
        assert len(can_result.outcomes) == 64

    def test_enumeration_matches_equation4(self, can_result):
        predicted = equation4_tail_prediction(1e-4, 3, 110)
        assert can_result.p_inconsistent_omission == pytest.approx(
            predicted, rel=0.001
        )

    def test_minimal_imo_patterns_match_fig3a(self, can_result):
        """Every 2-flip IMO pattern is transmitter@last-bit plus one
        receiver@last-but-one — exactly the Fig. 3a structure."""
        two_flip = [p for p in can_result.imo_patterns() if len(p) == 2]
        assert two_flip
        for pattern in two_flip:
            sites = dict(pattern)
            assert sites.get(0) == 6  # transmitter at the last EOF bit
            receiver_sites = [idx for node, idx in pattern if node != 0]
            assert receiver_sites == [5]

    def test_double_reception_needs_one_flip(self, can_result):
        singles = [
            o for o in can_result.outcomes
            if len(o.pattern) == 1 and o.double_reception
        ]
        assert singles  # Fig. 1b

    def test_empty_pattern_is_consistent(self, can_result):
        empty = [o for o in can_result.outcomes if not o.pattern]
        assert len(empty) == 1
        assert empty[0].consistent


class TestMajorCan:
    def test_no_inconsistent_tail_pattern(self, majorcan_result):
        """Exhaustive check over the 2-bit tail window: MajorCAN_5 is
        consistent for every one of the 64 patterns."""
        assert majorcan_result.p_inconsistent == 0.0
        assert majorcan_result.imo_patterns() == []

    def test_probabilities_sum_to_at_most_one(self, majorcan_result):
        total = sum(
            majorcan_result._probability_of(len(o.pattern))
            for o in majorcan_result.outcomes
        )
        assert total <= 1.0


class TestMinorCan:
    def test_single_flip_patterns_all_consistent(self):
        result = enumerate_tail_patterns(
            "minorcan", n_nodes=3, window=2, ber_star=1e-4, max_flips=1
        )
        assert all(o.consistent for o in result.outcomes)


class TestParameters:
    def test_max_flips_truncates(self):
        result = enumerate_tail_patterns("can", n_nodes=3, window=2, max_flips=1)
        assert len(result.outcomes) == 1 + 6

    def test_window_validation(self):
        with pytest.raises(AnalysisError):
            enumerate_tail_patterns("can", n_nodes=3, window=99)

    def test_node_count_validation(self):
        with pytest.raises(AnalysisError):
            enumerate_tail_patterns("can", n_nodes=1)

    def test_probability_selector(self, can_result):
        p_all = can_result.probability(lambda o: True)
        p_none = can_result.probability(lambda o: False)
        assert p_none == 0.0
        assert 0.0 < p_all <= 1.0
