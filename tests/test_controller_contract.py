"""Contract tests for the controller's engine-facing interface.

The fault injector, the trace and the protocol layers all rely on two
invariants of the two-phase per-bit protocol:

* ``drive()`` always publishes a meaningful ``position``;
* the state machine only emits levels consistent with its state
  (flags dominant, delimiters/waits recessive, idle recessive).
"""

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import (
    CanController,
    STATE_ERROR_DELIM,
    STATE_ERROR_FLAG,
    STATE_ERROR_WAIT,
    STATE_OVERLOAD_FLAG,
    STATE_RECEIVING,
    STATE_TRANSMITTING,
)
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.core.majorcan import MajorCanController
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.simulation.engine import SimulationEngine


def run_recording(nodes, injector=None, bits=400):
    engine = SimulationEngine(nodes, injector=injector or ScriptedInjector())
    nodes[0].submit(data_frame(0x123, b"\x55"))
    records = []
    for _ in range(bits):
        time = engine.time
        states_before = {n.name: n.state for n in engine.nodes}
        engine.step()
        record = engine.trace.bits[-1]
        records.append((time, states_before, record))
    return engine, records


class TestDriveLevelsMatchStates:
    def test_flag_states_drive_dominant(self):
        nodes = [CanController(n) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=3), force=DOMINANT)]
        )
        engine, records = run_recording(nodes, injector)
        flag_seen = 0
        for time, states, record in records:
            for name, state in states.items():
                if state in (STATE_ERROR_FLAG, STATE_OVERLOAD_FLAG):
                    flag_seen += 1
                    assert record.drives[name] is DOMINANT
                elif state in (STATE_ERROR_WAIT, STATE_ERROR_DELIM):
                    # (idle/intermission may legitimately start a
                    # transmission or an overload flag *within* the
                    # drive phase, so only the wait/delimiter states
                    # are unconditionally recessive.)
                    assert record.drives[name] is RECESSIVE
        assert flag_seen >= 6

    def test_positions_always_tuples(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        engine, records = run_recording(nodes)
        for time, states, record in records:
            for name, position in record.positions.items():
                assert isinstance(position, tuple) and len(position) == 2
                field_label, index = position
                assert isinstance(field_label, str)
                assert isinstance(index, int)

    def test_receiver_positions_track_transmitter(self):
        """While no error occurs, transmitter and receivers announce
        the same field at every bit time."""
        nodes = [CanController(n) for n in ("tx", "x")]
        engine, records = run_recording(nodes, bits=60)
        for time, states, record in records:
            if states["tx"] == STATE_TRANSMITTING and states["x"] == STATE_RECEIVING:
                assert record.positions["tx"][0] == record.positions["x"][0]
                assert record.positions["tx"][1] == record.positions["x"][1]


class TestMajorCanStatesDriveCorrectLevels:
    def test_extended_flag_is_dominant_and_quiet_is_recessive(self):
        # An error at EOF bit m makes x flag-and-sample (major_quiet)
        # while the other nodes detect x's flag in the second sub-field
        # and extend (major_extended_flag): both states in one run.
        nodes = [MajorCanController(n) for n in ("tx", "x", "y")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=4), force=DOMINANT)]
        )
        engine, records = run_recording(nodes, injector)
        extended_seen = quiet_seen = 0
        for time, states, record in records:
            for name, state in states.items():
                if state == "major_extended_flag":
                    extended_seen += 1
                    assert record.drives[name] is DOMINANT
                elif state in ("major_quiet",):
                    quiet_seen += 1
                    assert record.drives[name] is RECESSIVE
        assert extended_seen > 0
        assert quiet_seen > 0


class TestOfflineNodesAreSilent:
    def test_crashed_node_never_drives_dominant(self):
        nodes = [CanController(n) for n in ("tx", "x")]
        nodes[1].submit(data_frame(0x050, b"\x01"))
        nodes[1].crash()
        engine, records = run_recording(nodes)
        for time, states, record in records:
            assert record.drives["x"] is RECESSIVE

    def test_disconnected_node_ignores_bus(self):
        node = CanController("n")
        node.disconnect()
        before = node.state
        node.on_bit(DOMINANT)
        assert node.state == before
