"""Tests for the resumable design-space sweep service (repro.sweep).

Covers the contracts the sweep engine is built on: spec validation,
content-addressed cell keys stable across process restarts, store
compaction that is a pure function of the stored cell set, skip-on-rerun
incrementality, and interrupt/resume determinism across backends and
worker counts.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
import repro.sweep
from repro.errors import ConfigurationError
from repro.metrics.export import read_jsonl
from repro.sweep import (
    ResultStore,
    SweepCell,
    SweepSpec,
    cell_constants,
    cell_key,
    expand_cells,
    pending_cells,
    run_sweep,
    surface_rows,
)

#: A small grid that exercises two protocols and two BERs but keeps the
#: fault universe tiny (window=1, max_flips=1 -> 4 patterns per cell).
SMALL_SPEC = dict(
    name="test-grid",
    protocols=("can", "majorcan"),
    m_values=(5,),
    bers=(1e-5, 1e-4),
    bit_rates=(500_000.0,),
    bus_lengths_m=(30.0,),
    payloads=(1,),
    node_counts=(3,),
    window=1,
    max_flips=1,
)


def small_spec(**overrides):
    params = dict(SMALL_SPEC)
    params.update(overrides)
    return SweepSpec(**params)


class TestSweepSpecValidation:
    def test_defaults_are_valid(self):
        spec = SweepSpec()
        assert spec.cell_count() == len(spec.protocols) * len(spec.bers)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(protocols=("canfd",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(bers=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(m_values=(5, 5))

    def test_bad_domains_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(bers=(0.0,))
        with pytest.raises(ConfigurationError):
            SweepSpec(m_values=(1,))
        with pytest.raises(ConfigurationError):
            SweepSpec(node_counts=(1,))
        with pytest.raises(ConfigurationError):
            SweepSpec(payloads=(9,))
        with pytest.raises(ConfigurationError):
            SweepSpec(window=0)
        with pytest.raises(ConfigurationError):
            SweepSpec(load=0.0)

    def test_bool_axis_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(payloads=(True,))

    def test_cell_validation(self):
        with pytest.raises(ConfigurationError):
            SweepCell("can", 5, 1e-5, -1.0, 40.0, 1, 3)
        with pytest.raises(ConfigurationError):
            SweepCell("can", 5, 2.0, 1e6, 40.0, 1, 3)

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"name": "x", "grid": "dense"})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_json("not json")

    def test_json_round_trip(self):
        spec = small_spec()
        again = SweepSpec.from_json(spec.to_json())
        assert again == spec

    def test_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(small_spec().to_json())
        assert SweepSpec.from_file(str(path)) == small_spec()

    def test_explicit_cells_round_trip(self):
        cell = SweepCell("can", 5, 1e-5, 1e6, 40.0, 1, 3)
        spec = SweepSpec(name="explicit", cells=(cell,))
        assert spec.cell_count() == 1
        assert expand_cells(spec) == [cell]
        again = SweepSpec.from_json(spec.to_json())
        assert again.cells == (cell,)

    def test_product_expansion_is_deterministic(self):
        spec = small_spec()
        cells = expand_cells(spec)
        assert len(cells) == spec.cell_count() == 4
        assert cells == expand_cells(spec)
        # Protocol is the outermost axis.
        assert [cell.protocol for cell in cells] == [
            "can",
            "can",
            "majorcan",
            "majorcan",
        ]


class TestCellKeys:
    def test_key_is_stable_across_process_restarts(self):
        spec = small_spec()
        cell = expand_cells(spec)[0]
        constants = cell_constants(
            cell, window=spec.window, max_flips=spec.max_flips, load=spec.load
        )
        here = cell_key(cell, constants)
        script = (
            "from repro.sweep import SweepSpec, cell_constants, cell_key, "
            "expand_cells\n"
            "spec = SweepSpec.from_json(%r)\n"
            "cell = expand_cells(spec)[0]\n"
            "constants = cell_constants(cell, window=spec.window, "
            "max_flips=spec.max_flips, load=spec.load)\n"
            "print(cell_key(cell, constants))\n" % spec.to_json()
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(os.path.dirname(repro.__file__))]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert output.stdout.strip() == here

    def test_key_depends_on_backend(self):
        cell = SweepCell("can", 5, 1e-5, 1e6, 40.0, 1, 3)
        batch = cell_constants(cell, window=2, max_flips=2, load=0.9)
        engine = cell_constants(
            cell, window=2, max_flips=2, load=0.9, backend="engine"
        )
        assert cell_key(cell, batch) != cell_key(cell, engine)

    def test_key_depends_on_spec_constants(self):
        cell = SweepCell("can", 5, 1e-5, 1e6, 40.0, 1, 3)
        base = cell_constants(cell, window=2, max_flips=2, load=0.9)
        assert cell_key(cell, base) != cell_key(
            cell, cell_constants(cell, window=1, max_flips=2, load=0.9)
        )
        assert cell_key(cell, base) != cell_key(
            cell, cell_constants(cell, window=2, max_flips=1, load=0.9)
        )
        assert cell_key(cell, base) != cell_key(
            cell, cell_constants(cell, window=2, max_flips=2, load=0.5)
        )

    def test_chunk_partition_is_part_of_identity(self):
        cell = SweepCell("can", 5, 1e-5, 1e6, 40.0, 1, 3)
        constants = cell_constants(cell, window=2, max_flips=2, load=0.9)
        assert "chunk_cells" in constants
        bumped = dict(constants, chunk_cells=constants["chunk_cells"] + 1)
        assert cell_key(cell, constants) != cell_key(cell, bumped)

    def test_unknown_backend_rejected(self):
        cell = SweepCell("can", 5, 1e-5, 1e6, 40.0, 1, 3)
        with pytest.raises(ConfigurationError):
            cell_constants(
                cell, window=2, max_flips=2, load=0.9, backend="gpu"
            )


class TestResultStore:
    def record(self, key, value):
        return {"key": key, "cell": {"x": value}, "result": {"v": value}}

    def test_append_and_read_back(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        assert store.keys() == set()
        store.append([self.record("b", 2), self.record("a", 1)])
        assert store.keys() == {"a", "b"}

    def test_append_without_key_raises(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        with pytest.raises(Exception):
            store.append([{"cell": {}}])

    def test_compaction_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        store.append([self.record("b", 2), self.record("a", 1)])
        status = store.compact()
        assert status.records == 2
        assert not os.path.exists(store.log_path)
        rows = read_jsonl(store.compacted_path)
        assert [row["key"] for row in rows] == ["a", "b"]
        # The records survive compaction intact.
        assert store.records()["a"]["result"] == {"v": 1}

    def test_compaction_is_byte_deterministic(self, tmp_path):
        ordered = ResultStore(str(tmp_path / "ordered"))
        shuffled = ResultStore(str(tmp_path / "shuffled"))
        records = [self.record(chr(ord("a") + i), i) for i in range(6)]
        ordered.append(records)
        shuffled.append(records[::-1])
        ordered.compact()
        shuffled.compact()
        assert ordered.compacted_bytes() == shuffled.compacted_bytes()
        # Compacting again (and appending duplicates first) is a no-op.
        shuffled.append(records[:2])
        shuffled.compact()
        assert shuffled.compacted_bytes() == ordered.compacted_bytes()

    def test_index_matches_store(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        store.append([self.record("a", 1)])
        status = store.compact()
        index = json.loads(open(store.index_path).read())
        assert index["records"] == 1
        assert index["digest"] == status.digest == store.status().digest


class TestRunSweep:
    def test_rerun_evaluates_nothing(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "s"))
        first = run_sweep(spec, store, jobs=1)
        assert first.evaluated == spec.cell_count() == 4
        assert first.complete
        again = run_sweep(spec, store, jobs=1)
        assert again.evaluated == 0
        assert again.skipped == spec.cell_count()
        assert again.digest == first.digest

    def test_interrupted_resume_across_jobs_is_byte_identical(self, tmp_path):
        spec = small_spec()
        fresh = ResultStore(str(tmp_path / "fresh"))
        run_sweep(spec, fresh, jobs=1)
        resumed = ResultStore(str(tmp_path / "resumed"))
        partial = run_sweep(spec, resumed, jobs=1, cell_budget=1)
        assert partial.evaluated == 1
        assert partial.deferred == spec.cell_count() - 1
        assert not partial.complete
        rest = run_sweep(spec, resumed, jobs=2)
        assert rest.evaluated == spec.cell_count() - 1
        assert rest.complete
        assert resumed.compacted_bytes() == fresh.compacted_bytes()
        assert resumed.compacted_bytes()  # non-empty

    def test_zero_budget_defers_everything(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "s"))
        report = run_sweep(spec, store, jobs=1, cell_budget=0)
        assert report.evaluated == 0
        assert report.deferred == spec.cell_count()

    def test_engine_and_batch_results_agree(self, tmp_path):
        spec = small_spec(protocols=("can",), bers=(1e-4,))
        batch = ResultStore(str(tmp_path / "batch"))
        engine = ResultStore(str(tmp_path / "engine"))
        run_sweep(spec, batch, jobs=1, backend="batch")
        run_sweep(spec, engine, jobs=1, backend="engine")
        (b,) = batch.records().values()
        (e,) = engine.records().values()
        # The backend is part of the key, so the stores differ --
        # but the physics must not.
        assert b["key"] != e["key"]
        b_result = {k: v for k, v in b["result"].items() if k != "backend_stats"}
        e_result = {k: v for k, v in e["result"].items() if k != "backend_stats"}
        assert b_result == e_result

    def test_pending_cells_shrink_as_store_fills(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "s"))
        pending, skipped = pending_cells(spec, store)
        assert len(pending) == 4 and skipped == 0
        run_sweep(spec, store, jobs=1, cell_budget=2)
        pending, skipped = pending_cells(spec, store)
        assert len(pending) == 2 and skipped == 2

    def test_surface_rows(self, tmp_path):
        spec = small_spec()
        store = ResultStore(str(tmp_path / "s"))
        run_sweep(spec, store, jobs=1)
        rows = surface_rows(store)
        assert len(rows) == 4
        assert [row["key"] for row in rows] == sorted(
            row["key"] for row in rows
        )
        for row in rows:
            assert row["protocol"] in ("can", "majorcan")
            assert row["p_imo"] is not None
            assert row["bus_feasible"] is True  # 30 m at 500 kbit/s fits

    def test_result_fields(self, tmp_path):
        spec = small_spec(protocols=("majorcan",), bers=(1e-4,))
        store = ResultStore(str(tmp_path / "s"))
        run_sweep(spec, store, jobs=1)
        (record,) = store.records().values()
        result = record["result"]
        # MajorCAN_5 adds its best-case 2m-7 = 3 overhead bits.
        can_tau = 53
        assert result["tau_data"] == can_tau + 3
        assert result["eq4_per_frame"] is not None
        assert result["frames_per_hour"] > 0
        assert record["constants"]["key_version"] == 1


class TestSweepPackageApi:
    def test_all_exports_resolve(self):
        for name in repro.sweep.__all__:
            assert hasattr(repro.sweep, name), name

    def test_top_level_exports(self):
        assert repro.SweepSpec is SweepSpec
        assert repro.ResultStore is ResultStore
        assert callable(repro.run_sweep)


class TestSweepCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_plan_run_status_export(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(small_spec().to_json())
        store = str(tmp_path / "store")

        assert self.run_cli("sweep", "plan", str(spec_path), "--store", store) == 0
        assert "4 pending" in capsys.readouterr().out

        # A budgeted run reports the incomplete grid via exit code 3.
        assert (
            self.run_cli(
                "sweep",
                "run",
                str(spec_path),
                "--store",
                store,
                "--cell-budget",
                "1",
            )
            == 3
        )
        capsys.readouterr()
        assert self.run_cli("sweep", "run", str(spec_path), "--store", store) == 0
        out = capsys.readouterr().out
        assert "3 evaluated" in out and "1 skipped" in out

        assert self.run_cli("sweep", "status", str(spec_path), "--store", store) == 0
        assert "0 of 4 cells pending" in capsys.readouterr().out

        out_path = tmp_path / "surface.csv"
        assert (
            self.run_cli(
                "sweep",
                "export",
                str(spec_path),
                "--store",
                store,
                "--out",
                str(out_path),
            )
            == 0
        )
        capsys.readouterr()
        header = out_path.read_text().splitlines()[0]
        assert "p_imo" in header and "protocol" in header
        assert len(out_path.read_text().splitlines()) == 5


#: A tiny measured-under-load (traffic-surface) grid.
TRAFFIC_SPEC = dict(
    name="test-traffic-grid",
    surface="traffic",
    protocols=("can", "majorcan"),
    m_values=(5,),
    node_counts=(3,),
    loads=(0.6,),
    sources=("periodic",),
    traffic_windows=1,
    traffic_window_bits=600,
    traffic_seed=7,
)


def traffic_spec(**overrides):
    params = dict(TRAFFIC_SPEC)
    params.update(overrides)
    return SweepSpec(**params)


class TestTrafficSurface:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(surface="measured")
        with pytest.raises(ConfigurationError):
            traffic_spec(loads=(5.0,))
        with pytest.raises(ConfigurationError):
            traffic_spec(sources=("bursty",))
        with pytest.raises(ConfigurationError):
            traffic_spec(
                cells=(
                    SweepCell(
                        protocol="can",
                        m=5,
                        ber=1e-5,
                        bit_rate=500_000.0,
                        bus_length_m=30.0,
                        payload=1,
                        n_nodes=3,
                    ),
                )
            )

    def test_round_trips_through_json(self):
        spec = traffic_spec(loads=(0.6, 1.2), sources=("periodic", "poisson"))
        assert SweepSpec.from_json(spec.to_json()) == spec
        # protocols x m_values x node_counts x loads x sources
        assert spec.cell_count() == 2 * 1 * 1 * 2 * 2

    def test_expansion_order_and_keys_disjoint_from_analytic(self):
        from repro.sweep import (
            TrafficCell,
            expand_traffic_cells,
            traffic_cell_constants,
        )

        spec = traffic_spec(loads=(0.6, 1.2))
        cells = expand_traffic_cells(spec)
        assert cells[0] == TrafficCell("can", 5, 3, 0.6, "periodic")
        assert cells[1] == TrafficCell("can", 5, 3, 1.2, "periodic")
        constants = traffic_cell_constants(
            cells[0], windows=1, window_bits=600, seed=7
        )
        assert constants["surface"] == "traffic"
        key = cell_key(cells[0], constants)
        analytic = small_spec()
        analytic_keys = {
            cell_key(
                cell,
                cell_constants(
                    cell,
                    window=analytic.window,
                    max_flips=analytic.max_flips,
                    load=analytic.load,
                ),
            )
            for cell in expand_cells(analytic)
        }
        assert key not in analytic_keys

    def test_run_resume_and_rows(self, tmp_path):
        spec = traffic_spec()
        store = ResultStore(str(tmp_path / "s"))
        report = run_sweep(spec, store, jobs=2)
        assert report.complete and report.evaluated == 2
        assert report.backend_stats.get("batch", 0) == 2
        # Re-running evaluates nothing and keeps the digest.
        again = run_sweep(spec, store, jobs=1)
        assert again.evaluated == 0 and again.skipped == 2
        assert again.digest == report.digest
        rows = surface_rows(store)
        assert len(rows) == 2
        for row in rows:
            assert row["surface"] == "traffic"
            assert row["frames_submitted"] > 0
            assert row["delivered"] == row["frames_submitted"]
            assert row["atomic"] is True
            assert 0.0 < row["bus_load"] <= 1.0

    def test_engine_and_batch_cells_agree(self, tmp_path):
        spec = traffic_spec(protocols=("majorcan",))
        batch_store = ResultStore(str(tmp_path / "b"))
        engine_store = ResultStore(str(tmp_path / "e"))
        run_sweep(spec, batch_store, jobs=1, backend="batch")
        run_sweep(spec, engine_store, jobs=1, backend="engine")
        (b,) = batch_store.records().values()
        (e,) = engine_store.records().values()
        assert b["key"] != e["key"]
        b_result = {k: v for k, v in b["result"].items() if k != "backend_stats"}
        e_result = {k: v for k, v in e["result"].items() if k != "backend_stats"}
        assert b_result == e_result
        assert b["result"]["backend_stats"] == {"batch": 1}
