"""Shared helpers for the test suite (importable, unlike conftest)."""

from __future__ import annotations

from typing import List, Sequence

from repro.can.controller import CanController
from repro.can.frame import Frame
from repro.faults.injector import ScriptedInjector
from repro.faults.scenarios import ScenarioOutcome, run_single_frame_scenario


def run_one_frame(
    nodes: Sequence[CanController],
    frame: Frame = None,
    injector=None,
    max_bits: int = 20000,
) -> ScenarioOutcome:
    """Convenience wrapper over the scenario harness for tests."""
    return run_single_frame_scenario(
        "test",
        list(nodes),
        injector or ScriptedInjector(),
        frame=frame,
        max_bits=max_bits,
    )


def delivered_payloads(controller: CanController) -> List[bytes]:
    """Payload bytes of everything a controller delivered, in order."""
    return [delivery.frame.data for delivery in controller.deliveries]
