"""Unit tests for delivery ledgers."""

from repro.can.controller import CanController
from repro.can.events import Delivery
from repro.can.frame import data_frame
from repro.properties.ledger import NodeLedger, SystemLedger, wire_key
from repro.simulation.engine import SimulationEngine


class TestWireKey:
    def test_same_frame_same_key(self):
        assert wire_key(data_frame(0x1, b"\x01")) == wire_key(data_frame(0x1, b"\x01"))

    def test_payload_distinguishes(self):
        assert wire_key(data_frame(0x1, b"\x01")) != wire_key(data_frame(0x1, b"\x02"))

    def test_id_format_distinguishes(self):
        assert wire_key(data_frame(0x1, b"")) != wire_key(
            data_frame(0x1, b"", extended=True)
        )

    def test_message_tag_ignored_by_wire_key(self):
        """Receivers cannot see application tags, so the wire key must
        treat tagged and untagged frames as the same message."""
        tagged = data_frame(0x1, b"\x01", message_id="m")
        untagged = data_frame(0x1, b"\x01")
        assert wire_key(tagged) == wire_key(untagged)


class TestNodeLedger:
    def test_delivery_count(self):
        node = NodeLedger(name="n", correct=True, deliveries=["a", "b", "a"])
        assert node.delivery_count("a") == 2
        assert node.delivery_count("c") == 0


class TestSystemLedgerFromControllers:
    def test_collects_broadcasts_and_deliveries(self):
        tx, rx = CanController("tx"), CanController("rx")
        engine = SimulationEngine([tx, rx])
        frame = data_frame(0x10, b"\x05")
        tx.submit(frame)
        engine.run_until_idle(5000)
        ledger = SystemLedger.from_controllers([tx, rx])
        assert ledger.nodes["tx"].broadcasts == [wire_key(frame)]
        assert ledger.nodes["rx"].deliveries == [wire_key(frame)]
        assert ledger.nodes["rx"].correct

    def test_crashed_node_marked_incorrect(self):
        tx, rx = CanController("tx"), CanController("rx")
        rx.crash()
        ledger = SystemLedger.from_controllers([tx, rx])
        assert not ledger.nodes["rx"].correct
        assert [n.name for n in ledger.correct_nodes] == ["tx"]

    def test_correct_override(self):
        tx = CanController("tx")
        ledger = SystemLedger.from_controllers([tx], correct={"tx": False})
        assert not ledger.nodes["tx"].correct


class TestSystemLedgerQueries:
    def _ledger(self):
        ledger = SystemLedger()
        ledger.nodes["a"] = NodeLedger(
            "a", correct=True, broadcasts=["m1"], deliveries=["m1", "m2"]
        )
        ledger.nodes["b"] = NodeLedger(
            "b", correct=True, broadcasts=["m2"], deliveries=["m1"]
        )
        ledger.nodes["c"] = NodeLedger(
            "c", correct=False, broadcasts=["m3"], deliveries=["m3"]
        )
        return ledger

    def test_all_broadcast_keys(self):
        assert sorted(self._ledger().all_broadcast_keys()) == ["m1", "m2", "m3"]

    def test_broadcasts_by_correct_nodes_excludes_crashed(self):
        assert sorted(self._ledger().broadcasts_by_correct_nodes()) == ["m1", "m2"]

    def test_delivered_anywhere_correct_dedup_and_excludes_crashed(self):
        assert self._ledger().delivered_anywhere_correct() == ["m1", "m2"]


class TestFromDeliveries:
    def test_builds_app_level_ledger(self):
        frame = data_frame(0x10, b"\x01")
        deliveries = {"a": [Delivery(frame=frame, time=5, node="a")]}
        broadcasts = {"b": [frame]}
        ledger = SystemLedger.from_deliveries(
            deliveries, broadcasts, correct={"a": True, "b": True}
        )
        assert ledger.nodes["a"].deliveries == [wire_key(frame)]
        assert ledger.nodes["a"].delivery_times == [5]
        assert ledger.nodes["b"].broadcasts == [wire_key(frame)]
