"""Reproduction tests for the Fig. 1 scenarios (standard CAN).

These tests check the exact outcomes the paper describes: consistency
via the last-bit rule (1a), double reception (1b), and inconsistent
message omission under a transmitter crash (1c).
"""


from repro.can.events import EventKind
from repro.faults.scenarios import fig1a, fig1b, fig1c


class TestFig1a:
    def test_consistent_delivery(self):
        outcome = fig1a("can")
        assert outcome.consistent
        assert outcome.all_delivered_once

    def test_no_retransmission(self):
        assert fig1a("can").attempts == 1

    def test_x_accepts_via_overload(self):
        outcome = fig1a("can")
        x = outcome.engine.node("x")
        assert any(e.kind == EventKind.OVERLOAD_FLAG_START for e in x.events)
        assert not any(e.kind == EventKind.ERROR_DETECTED for e in x.events)

    def test_multiple_x_receivers(self):
        outcome = fig1a("can", x_count=3, y_count=2)
        assert outcome.all_delivered_once


class TestFig1b:
    def test_double_reception_at_y(self):
        outcome = fig1b("can")
        assert outcome.deliveries == {"tx": 1, "x": 1, "y": 2}

    def test_violates_at_most_once(self):
        outcome = fig1b("can")
        assert outcome.double_reception
        assert not outcome.consistent

    def test_transmitter_retransmits(self):
        assert fig1b("can").attempts == 2

    def test_x_rejects_first_instance(self):
        outcome = fig1b("can")
        x = outcome.engine.node("x")
        rejected = [e for e in x.events if e.kind == EventKind.FRAME_REJECTED]
        assert len(rejected) == 1

    def test_every_y_receives_twice(self):
        outcome = fig1b("can", y_count=3)
        for name in ("y1", "y2", "y3"):
            assert outcome.deliveries[name] == 2

    def test_exactly_one_error_injected(self):
        assert fig1b("can").errors_injected == 1


class TestFig1c:
    def test_inconsistent_message_omission(self):
        outcome = fig1c("can")
        assert outcome.inconsistent_omission
        assert outcome.deliveries["x"] == 0
        assert outcome.deliveries["y"] == 1

    def test_transmitter_crashed(self):
        outcome = fig1c("can")
        assert "tx" in outcome.crashed

    def test_no_retransmission_happened(self):
        assert fig1c("can").attempts == 1

    def test_x_never_delivers(self):
        outcome = fig1c("can", x_count=2)
        assert outcome.deliveries["x1"] == 0
        assert outcome.deliveries["x2"] == 0

    def test_agreement_violated_among_correct_nodes(self):
        """x and y are both correct (only tx crashed), yet only y
        delivered: AB2 is violated."""
        outcome = fig1c("can")
        assert set(outcome.live_nodes) == {"x", "y"}
        assert not outcome.consistent
