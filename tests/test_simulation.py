"""Unit tests for the simulation engine, bus and trace."""

import pytest

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import CanController
from repro.can.fields import EOF, SOF
from repro.can.frame import data_frame
from repro.errors import SimulationError
from repro.simulation.bus import Bus
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import make_rng, spawn


class TestBus:
    def test_resolve_wired_and(self):
        bus = Bus()
        assert bus.resolve({"a": RECESSIVE, "b": DOMINANT}) is DOMINANT
        assert bus.resolve({"a": RECESSIVE, "b": RECESSIVE}) is RECESSIVE

    def test_history_and_time(self):
        bus = Bus()
        bus.resolve({"a": DOMINANT})
        bus.resolve({"a": RECESSIVE})
        assert bus.time == 2
        assert bus.as_string() == "dr"

    def test_idle_tail(self):
        bus = Bus()
        for level in (DOMINANT, RECESSIVE, RECESSIVE):
            bus.resolve({"a": level})
        assert bus.idle_tail() == 2


class TestEngine:
    def test_attach_after_construction(self):
        engine = SimulationEngine()
        engine.attach(CanController("a"))
        with pytest.raises(SimulationError):
            engine.attach(CanController("a"))

    def test_node_lookup(self):
        node = CanController("a")
        engine = SimulationEngine([node])
        assert engine.node("a") is node
        with pytest.raises(SimulationError):
            engine.node("missing")

    def test_time_advances(self):
        engine = SimulationEngine([CanController("a")])
        engine.run(10)
        assert engine.time == 10

    def test_tick_hooks_called_every_bit(self):
        engine = SimulationEngine([CanController("a")])
        ticks = []
        engine.add_tick_hook(ticks.append)
        engine.run(5)
        assert ticks == [0, 1, 2, 3, 4]

    def test_run_until_idle_returns_elapsed(self):
        tx, rx = CanController("tx"), CanController("rx")
        engine = SimulationEngine([tx, rx])
        tx.submit(data_frame(0x100, b"\x01"))
        elapsed = engine.run_until_idle(5000)
        assert elapsed == engine.time
        assert elapsed > 40

    def test_collect_events_sorted_by_time(self):
        tx, rx = CanController("tx"), CanController("rx")
        engine = SimulationEngine([tx, rx])
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(5000)
        trace = engine.collect_events()
        times = [event.time for event in trace.events]
        assert times == sorted(times)


class TestTrace:
    def _run(self):
        tx, rx = CanController("tx"), CanController("rx")
        engine = SimulationEngine([tx, rx])
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(5000)
        return engine

    def test_records_bits(self):
        engine = self._run()
        assert len(engine.trace.bits) == engine.time
        record = engine.trace.bits[0]
        assert record.positions["tx"] == (SOF, 0)

    def test_record_bits_can_be_disabled(self):
        tx = CanController("tx")
        engine = SimulationEngine([tx], record_bits=False)
        engine.run(10)
        assert engine.trace.bits == []

    def test_bus_string_matches_history(self):
        engine = self._run()
        assert engine.trace.bus_string() == engine.bus.as_string()

    def test_node_view_string_length(self):
        engine = self._run()
        assert len(engine.trace.node_view_string("rx")) == engine.time

    def test_position_times(self):
        engine = self._run()
        times = engine.trace.position_times("tx", EOF, 0)
        assert len(times) == 1

    def test_events_of_kind(self):
        engine = self._run()
        trace = engine.collect_events()
        assert trace.events_of_kind("tx_success", node="tx")
        assert trace.events_of_kind("tx_success", node="rx") == []

    def test_render_timeline(self):
        engine = self._run()
        text = engine.trace.render_timeline(["tx", "rx"], start=0, end=20)
        lines = text.splitlines()
        assert len(lines) == 3  # two nodes + bus
        assert lines[0].startswith("tx")
        assert "d" in lines[-1]

    def test_render_without_bus(self):
        engine = self._run()
        text = engine.trace.render_timeline(["tx"], with_bus=False)
        assert "bus" not in text


class TestRng:
    def test_seeded_generators_reproduce(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_generator_passthrough(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng

    def test_spawn_children_differ(self):
        children = spawn(make_rng(3), 4)
        values = {child.random() for child in children}
        assert len(values) == 4
