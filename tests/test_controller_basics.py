"""Controller tests: error-free transmission, reception, delivery."""

import pytest

from repro.can.controller import (
    CanController,
    STATE_IDLE,
    STATE_RECEIVING,
    STATE_TRANSMITTING,
)
from repro.can.controller_config import ControllerConfig
from repro.can.events import EventKind
from repro.can.frame import data_frame, remote_frame
from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine

from helpers import delivered_payloads


class TestErrorFreeTransfer:
    def test_every_receiver_delivers_once(self, three_node_bus):
        engine, tx, rx1, rx2 = three_node_bus
        tx.submit(data_frame(0x123, b"\x01\x02"))
        engine.run_until_idle(5000)
        assert delivered_payloads(rx1) == [b"\x01\x02"]
        assert delivered_payloads(rx2) == [b"\x01\x02"]

    def test_transmitter_self_delivers_by_default(self, three_node_bus):
        engine, tx, rx1, rx2 = three_node_bus
        tx.submit(data_frame(0x123, b"\x99"))
        engine.run_until_idle(5000)
        assert delivered_payloads(tx) == [b"\x99"]

    def test_self_delivery_can_be_disabled(self):
        tx = CanController("tx", ControllerConfig(self_delivery=False))
        rx = CanController("rx")
        engine = SimulationEngine([tx, rx])
        tx.submit(data_frame(0x1, b"\x01"))
        engine.run_until_idle(5000)
        assert tx.deliveries == []
        assert len(rx.deliveries) == 1

    def test_receivers_reconstruct_identifier(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        tx.submit(data_frame(0x6A5, b"\xab\xcd"))
        engine.run_until_idle(5000)
        assert rx1.deliveries[0].frame.can_id.value == 0x6A5

    def test_extended_frame_transfer(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        tx.submit(data_frame(0x1FFFFFFF, b"\x01", extended=True))
        engine.run_until_idle(8000)
        received = rx1.deliveries[0].frame
        assert received.can_id.value == 0x1FFFFFFF
        assert received.can_id.extended

    def test_remote_frame_transfer(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        tx.submit(remote_frame(0x321, dlc=6))
        engine.run_until_idle(5000)
        received = rx1.deliveries[0].frame
        assert received.remote
        assert received.dlc == 6

    def test_eight_byte_frame(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        payload = bytes(range(8))
        tx.submit(data_frame(0x100, payload))
        engine.run_until_idle(5000)
        assert delivered_payloads(rx1) == [payload]

    def test_back_to_back_frames_in_order(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        for value in range(5):
            tx.submit(data_frame(0x100, bytes([value])))
        engine.run_until_idle(20000)
        assert delivered_payloads(rx1) == [bytes([v]) for v in range(5)]

    def test_tx_success_event_and_counter(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(5000)
        successes = [e for e in tx.events if e.kind == EventKind.TX_SUCCESS]
        assert len(successes) == 1
        assert successes[0].data["attempt"] == 1
        assert tx.tx_successes[0][1].data == b"\x01"

    def test_receiver_rec_decrements_stay_at_zero(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(5000)
        assert rx1.counters.rec == 0
        assert tx.counters.tec == 0

    def test_receiver_acks(self, three_node_bus):
        """With a receiver present the transmitter sees the ACK and
        does not raise an ACK error."""
        engine, tx, rx1, _ = three_node_bus
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(5000)
        errors = [e for e in tx.events if e.kind == EventKind.ERROR_DETECTED]
        assert errors == []


class TestLoneTransmitter:
    def test_ack_error_without_receivers(self):
        tx = CanController("tx")
        passive_observer = CanController("obs", ControllerConfig())
        engine = SimulationEngine([tx])
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run(200)
        errors = [e for e in tx.events if e.kind == EventKind.ERROR_DETECTED]
        assert errors
        assert errors[0].data["reason"] == "ack_error"

    def test_lone_transmitter_keeps_retrying(self):
        tx = CanController("tx")
        engine = SimulationEngine([tx])
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run(2000)
        starts = [e for e in tx.events if e.kind == EventKind.TX_START]
        assert len(starts) > 3
        assert tx.pending_transmissions == 1


class TestStates:
    def test_idle_initially(self):
        assert CanController("n").state == STATE_IDLE

    def test_transmitting_state_during_frame(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run(10)
        assert tx.state == STATE_TRANSMITTING
        assert rx1.state == STATE_RECEIVING

    def test_back_to_idle_after_frame(self, three_node_bus):
        engine, tx, rx1, rx2 = three_node_bus
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(5000)
        for node in (tx, rx1, rx2):
            assert node.state == STATE_IDLE

    def test_crash_goes_offline(self, three_node_bus):
        engine, tx, rx1, _ = three_node_bus
        rx1.crash()
        assert rx1.offline
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run_until_idle(5000)
        assert rx1.deliveries == []

    def test_disconnect_event(self):
        node = CanController("n")
        node.disconnect()
        assert node.offline
        assert any(e.kind == EventKind.DISCONNECTED for e in node.events)


class TestEngineGuards:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine([CanController("a"), CanController("a")])

    def test_empty_bus_rejected(self):
        with pytest.raises(SimulationError):
            SimulationEngine([]).step()

    def test_run_until_idle_times_out(self):
        tx = CanController("tx")
        engine = SimulationEngine([tx])
        tx.submit(data_frame(0x100, b"\x01"))  # never acked, never idle
        with pytest.raises(SimulationError):
            engine.run_until_idle(500)
