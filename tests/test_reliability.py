"""Tests for the mission-reliability model."""

import math

import pytest

from repro.analysis.reliability import (
    hours_to_reliability,
    mean_time_to_failure_hours,
    mission_reliability,
    reliability_comparison,
)
from repro.errors import AnalysisError


class TestPrimitives:
    def test_zero_rate_is_certain_survival(self):
        assert mission_reliability(0.0, 1e6) == 1.0

    def test_exponential_form(self):
        assert mission_reliability(0.1, 10.0) == pytest.approx(math.exp(-1.0))

    def test_negative_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            mission_reliability(-1.0, 1.0)
        with pytest.raises(AnalysisError):
            mean_time_to_failure_hours(-1.0)

    def test_mttf(self):
        assert mean_time_to_failure_hours(0.5) == 2.0
        assert mean_time_to_failure_hours(0.0) == float("inf")

    def test_hours_to_reliability_inverts_survival(self):
        rate = 3e-4
        hours = hours_to_reliability(rate, 0.99)
        assert mission_reliability(rate, hours) == pytest.approx(0.99)

    def test_hours_to_reliability_validates_target(self):
        with pytest.raises(AnalysisError):
            hours_to_reliability(1.0, 1.5)

    def test_zero_rate_mission_is_unbounded(self):
        assert hours_to_reliability(0.0, 0.999) == float("inf")


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self):
        return reliability_comparison(1e-4, mission_hours=(1.0, 8760.0))

    def test_three_protocols(self, rows):
        assert [row.protocol for row in rows] == ["CAN", "MinorCAN", "MajorCAN"]

    def test_can_rate_is_sum_of_families(self, rows):
        can, minor, major = rows
        assert can.imo_rate_per_hour > minor.imo_rate_per_hour
        assert major.imo_rate_per_hour == 0.0

    def test_can_mttf_is_about_113_hours_at_1e4(self, rows):
        """The striking operational consequence of Table 1: at
        ber = 1e-4 a standard CAN bus suffers an inconsistent omission
        about every 113 hours of operation."""
        assert rows[0].mttf_hours == pytest.approx(113, rel=0.02)

    def test_majorcan_survives_any_mission(self, rows):
        assert rows[2].mission_survival[8760.0] == 1.0

    def test_can_fails_a_year_long_mission(self, rows):
        assert rows[0].mission_survival[8760.0] < 1e-6
