"""Unit and property tests for the CAN CRC-15."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.crc import (
    CRC15_POLYNOMIAL,
    CRC_WIDTH,
    Crc15Register,
    crc15,
    crc15_bits,
    crc15_check,
)


class TestBasics:
    def test_empty_sequence_is_zero(self):
        assert crc15([]) == 0

    def test_single_one_bit(self):
        # One '1' bit shifts through: register becomes the polynomial.
        assert crc15([1]) == CRC15_POLYNOMIAL

    def test_zeros_stay_zero(self):
        assert crc15([0] * 64) == 0

    def test_value_fits_width(self):
        assert crc15([1, 0, 1] * 30) < (1 << CRC_WIDTH)

    def test_bits_form(self):
        bits = crc15_bits([1, 0, 1, 1])
        assert len(bits) == CRC_WIDTH
        assert all(bit in (0, 1) for bit in bits)

    def test_check_accepts_correct(self):
        data = [1, 0, 1, 1, 0, 0, 1]
        assert crc15_check(data, crc15(data))

    def test_check_rejects_wrong(self):
        data = [1, 0, 1, 1, 0, 0, 1]
        assert not crc15_check(data, crc15(data) ^ 1)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            crc15([0, 1, 2])


class TestIncrementalRegister:
    def test_matches_batch(self):
        data = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1]
        register = Crc15Register()
        for bit in data:
            register.feed(bit)
        assert register.value == crc15(data)

    def test_reset(self):
        register = Crc15Register()
        register.feed(1)
        register.reset()
        assert register.value == 0

    @given(st.lists(st.integers(0, 1), max_size=200))
    def test_incremental_equals_batch(self, bits):
        register = Crc15Register()
        for bit in bits:
            register.feed(bit)
        assert register.value == crc15(bits)


class TestErrorDetectionGuarantees:
    """The properties the paper uses to justify m = 5."""

    @given(
        data=st.lists(st.integers(0, 1), min_size=1, max_size=90),
        flip_count=st.integers(1, 5),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=300)
    def test_detects_up_to_five_random_errors(self, data, flip_count, seed):
        """Hamming distance 6: any <= 5 bit flips over data+CRC detected."""
        import random

        codeword = list(data) + crc15_bits(data)
        rng = random.Random(seed)
        positions = rng.sample(range(len(codeword)), min(flip_count, len(codeword)))
        for position in positions:
            codeword[position] ^= 1
        corrupted_data = codeword[: len(data)]
        corrupted_crc = codeword[len(data):]
        from repro.can.bits import int_from_bits

        assert not crc15_check(corrupted_data, int_from_bits(corrupted_crc))

    @given(
        data=st.lists(st.integers(0, 1), min_size=20, max_size=90),
        start=st.integers(0, 200),
        length=st.integers(1, 14),
    )
    @settings(max_examples=300)
    def test_detects_bursts_shorter_than_15(self, data, start, length):
        """Any burst error of length < 15 within the codeword is caught."""
        codeword = list(data) + crc15_bits(data)
        start = start % (len(codeword) - length + 1) if len(codeword) > length else 0
        burst = codeword[:]
        # Flip the burst edges and a pattern inside: still one burst.
        for offset in range(length):
            if offset == 0 or offset == length - 1 or offset % 2 == 0:
                burst[start + offset] ^= 1
        corrupted_data = burst[: len(data)]
        corrupted_crc = burst[len(data):]
        from repro.can.bits import int_from_bits

        assert not crc15_check(corrupted_data, int_from_bits(corrupted_crc))

    def test_single_bit_error_always_detected_exhaustive(self):
        data = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0]
        codeword = data + crc15_bits(data)
        from repro.can.bits import int_from_bits

        for position in range(len(codeword)):
            corrupted = codeword[:]
            corrupted[position] ^= 1
            assert not crc15_check(
                corrupted[: len(data)], int_from_bits(corrupted[len(data):])
            )
