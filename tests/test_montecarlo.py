"""Tests for the Monte-Carlo validation (experiment E-MC)."""

import pytest

from repro.analysis.enumeration import enumerate_tail_patterns
from repro.analysis.montecarlo import (
    monte_carlo_full,
    monte_carlo_tail,
    wilson_interval,
)
from repro.errors import AnalysisError


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(10, 100)
        assert low < 0.1 < high

    def test_zero_successes(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert high > 0.0

    def test_all_successes(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low < 1.0

    def test_narrows_with_trials(self):
        narrow = wilson_interval(100, 1000)
        wide = wilson_interval(10, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_no_trials_rejected(self):
        with pytest.raises(AnalysisError):
            wilson_interval(0, 0)


class TestTailMonteCarlo:
    def test_estimate_brackets_exact_value(self):
        """The stochastic estimate must agree with the exhaustive
        enumeration over the identical fault universe."""
        ber = 0.08
        mc = monte_carlo_tail("can", n_nodes=3, ber_star=ber, trials=600, seed=11)
        exact = enumerate_tail_patterns(
            "can", n_nodes=3, window=2, ber_star=ber, tau_data=2
        )
        low, high = mc.imo_confidence_interval(z=2.6)
        assert low <= exact.p_inconsistent_omission <= high

    def test_majorcan_never_inconsistent(self):
        mc = monte_carlo_tail("majorcan", n_nodes=3, ber_star=0.2, trials=150, seed=5)
        assert mc.inconsistent == 0

    def test_determinism_with_seed(self):
        a = monte_carlo_tail("can", ber_star=0.1, trials=100, seed=42)
        b = monte_carlo_tail("can", ber_star=0.1, trials=100, seed=42)
        assert (a.imo, a.flips_total) == (b.imo, b.flips_total)

    def test_zero_rate_never_flips(self):
        mc = monte_carlo_tail("can", ber_star=0.0, trials=20, seed=1)
        assert mc.flips_total == 0
        assert mc.no_fault_trials == 20

    def test_validation(self):
        with pytest.raises(AnalysisError):
            monte_carlo_tail("can", n_nodes=1)


class TestFullMonteCarlo:
    def test_runs_and_counts(self):
        mc = monte_carlo_full("can", n_nodes=3, ber_star=3e-3, trials=40, seed=3)
        assert mc.trials == 40
        assert mc.flips_total > 0
        assert 0 <= mc.imo <= mc.trials

    def test_majorcan_consistent_at_moderate_noise(self):
        mc = monte_carlo_full("majorcan", n_nodes=3, ber_star=1e-3, trials=40, seed=9)
        assert mc.imo == 0
