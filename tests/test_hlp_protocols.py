"""Behavioural tests for EDCAN, RELCAN and TOTCAN."""


from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import STATE_ERROR_FLAG
from repro.can.fields import EOF
from repro.faults.injector import CrashFault, ScriptedInjector, Trigger, ViewFault
from repro.properties.broadcast import check_atomic_broadcast
from repro.protocols import (
    EdcanProtocol,
    RelcanProtocol,
    TotcanProtocol,
    app_ledger,
    build_protocol_network,
)


def run_network(factory, n_nodes=4, injector=None, broadcasts=((0, b"\xaa"),),
                bits=4000):
    engine, nodes = build_protocol_network(
        factory,
        n_nodes,
        engine_kwargs={"injector": injector, "record_bits": False}
        if injector
        else {"record_bits": False},
    )
    for node_id, payload in broadcasts:
        nodes[node_id].broadcast(payload)
    engine.run(bits)
    engine.run_until_idle(60000)
    return engine, nodes


def fig1c_injector(eof_length=7):
    last = eof_length - 1
    return ScriptedInjector(
        view_faults=[
            ViewFault("n1", Trigger(field=EOF, index=last - 1), force=DOMINANT)
        ],
        crash_faults=[CrashFault("n0", Trigger(state=STATE_ERROR_FLAG))],
    )


def fig3_injector(eof_length=7):
    last = eof_length - 1
    return ScriptedInjector(
        view_faults=[
            ViewFault("n1", Trigger(field=EOF, index=last - 1), force=DOMINANT),
            ViewFault("n0", Trigger(field=EOF, index=last), force=RECESSIVE),
        ]
    )


class TestEdcan:
    def test_every_receiver_retransmits_once(self):
        engine, nodes = run_network(EdcanProtocol)
        # Each of the 3 receivers queued one diffusion copy.
        retransmissions = sum(
            1
            for node in nodes
            for frame in node.controller.submitted
            if frame.data and frame.data[0] == 3  # KIND_RETRANS
        )
        assert retransmissions == 3

    def test_duplicates_filtered_at_delivery(self):
        engine, nodes = run_network(EdcanProtocol)
        for node in nodes:
            assert node.delivered_keys == [(0, 0)]

    def test_survives_transmitter_crash(self):
        engine, nodes = run_network(EdcanProtocol, injector=fig1c_injector())
        survivors = [node for node in nodes if node.correct]
        for node in survivors:
            assert (0, 0) in node.delivered_keys

    def test_recovers_fig3_omission(self):
        engine, nodes = run_network(EdcanProtocol, injector=fig3_injector())
        for node in nodes:
            assert (0, 0) in node.delivered_keys

    def test_interleaved_broadcast_breaks_order(self):
        engine, nodes = run_network(
            EdcanProtocol,
            injector=fig3_injector(),
            broadcasts=((0, b"\xaa"), (3, b"\xbb")),
        )
        ledger = app_ledger(nodes)
        results = check_atomic_broadcast(ledger)
        assert not results["AB5-total-order"].holds
        assert results["AB2-agreement"].holds


class TestRelcan:
    def test_sender_confirms(self):
        engine, nodes = run_network(RelcanProtocol)
        confirms = [
            frame
            for frame in nodes[0].controller.submitted
            if frame.data and frame.data[0] == 1  # KIND_CONFIRM
        ]
        assert len(confirms) == 1

    def test_no_recovery_traffic_when_confirm_arrives(self):
        engine, nodes = run_network(RelcanProtocol)
        for node in nodes[1:]:
            retrans = [
                frame
                for frame in node.controller.submitted
                if frame.data and frame.data[0] == 3
            ]
            assert retrans == []

    def test_timeout_recovery_after_crash(self):
        engine, nodes = run_network(RelcanProtocol, injector=fig1c_injector())
        survivors = [node for node in nodes if node.correct]
        for node in survivors:
            assert (0, 0) in node.delivered_keys
        # Recovery required at least one RETRANS frame on the bus.
        retrans = [
            frame
            for node in nodes
            for frame in node.controller.submitted
            if frame.data and frame.data[0] == 3
        ]
        assert retrans

    def test_fig3_omission_is_permanent(self):
        """The correct transmitter confirms; n1 never saw the data and
        cannot recover from a CONFIRM alone."""
        engine, nodes = run_network(RelcanProtocol, injector=fig3_injector())
        assert (0, 0) not in nodes[1].delivered_keys
        assert (0, 0) in nodes[2].delivered_keys

    def test_custom_timeout_respected(self):
        engine, nodes = build_protocol_network(
            lambda: RelcanProtocol(timeout_bits=150), 3
        )
        assert nodes[0].protocol.timeout_bits == 150


class TestTotcan:
    def test_sender_accepts_after_data(self):
        engine, nodes = run_network(TotcanProtocol)
        accepts = [
            frame
            for frame in nodes[0].controller.submitted
            if frame.data and frame.data[0] == 2  # KIND_ACCEPT
        ]
        assert len(accepts) == 1

    def test_receivers_deliver_after_accept(self):
        engine, nodes = run_network(TotcanProtocol)
        for node in nodes:
            assert node.delivered_keys == [(0, 0)]

    def test_crash_before_accept_removes_message_everywhere(self):
        engine, nodes = run_network(TotcanProtocol, injector=fig1c_injector())
        survivors = [node for node in nodes if node.correct]
        for node in survivors:
            assert (0, 0) not in node.delivered_keys

    def test_fig3_omission(self):
        engine, nodes = run_network(TotcanProtocol, injector=fig3_injector())
        assert (0, 0) not in nodes[1].delivered_keys
        assert (0, 0) in nodes[2].delivered_keys

    def test_total_order_with_two_senders(self):
        engine, nodes = run_network(
            TotcanProtocol, broadcasts=((0, b"\x01"), (1, b"\x02"), (2, b"\x03"))
        )
        sequences = [tuple(node.delivered_keys) for node in nodes]
        assert len(set(sequences)) == 1
        assert len(sequences[0]) == 3

    def test_queue_requeues_duplicates_at_tail(self):
        """Direct protocol-level check of the duplicate rule."""
        from repro.protocols.base import AppMessage, KIND_DATA

        engine, nodes = build_protocol_network(TotcanProtocol, 2)
        protocol = nodes[1].protocol
        a = AppMessage(KIND_DATA, 0, 0)
        b = AppMessage(KIND_DATA, 0, 1)
        protocol.on_frame_delivered(a, time=0)
        protocol.on_frame_delivered(b, time=1)
        protocol.on_frame_delivered(a, time=2)  # duplicate of a
        queue_keys = [entry.message.key for entry in protocol._queue]
        assert queue_keys == [(0, 1), (0, 0)]
