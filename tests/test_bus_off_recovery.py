"""Tests for the optional bus-off recovery sequence."""

from repro.can.controller import CanController, STATE_BUS_OFF, STATE_IDLE
from repro.can.controller_config import ControllerConfig
from repro.can.events import EventKind
from repro.can.frame import data_frame
from repro.simulation.engine import SimulationEngine


def drive_to_bus_off(recovery):
    """A lone transmitter accumulates ACK errors until bus-off."""
    config = ControllerConfig(bus_off_recovery=recovery)
    node = CanController("tx", config)
    engine = SimulationEngine([node], record_bits=False)
    node.submit(data_frame(0x100, b"\x01"))
    while node.state != STATE_BUS_OFF and engine.time < 60000:
        engine.step()
    assert node.state == STATE_BUS_OFF
    return engine, node


class TestWithoutRecovery:
    def test_stays_bus_off_forever(self):
        engine, node = drive_to_bus_off(recovery=False)
        engine.run(5000)
        assert node.state == STATE_BUS_OFF
        assert node.offline

    def test_no_recovery_event(self):
        engine, node = drive_to_bus_off(recovery=False)
        engine.run(3000)
        assert not [
            e for e in node.events if e.kind == EventKind.BUS_OFF_RECOVERED
        ]


class TestWithRecovery:
    def test_recovers_after_128_sequences(self):
        engine, node = drive_to_bus_off(recovery=True)
        # 128 x 11 recessive bits on an idle bus.
        engine.run(128 * 11 + 20)
        recovered = [
            e for e in node.events if e.kind == EventKind.BUS_OFF_RECOVERED
        ]
        assert recovered
        assert node.counters.tec < 256

    def test_counters_cleared_on_recovery(self):
        engine, node = drive_to_bus_off(recovery=True)
        node.tx_queue.clear()  # keep the bus quiet afterwards
        engine.run(128 * 11 + 20)
        assert node.state == STATE_IDLE
        assert (node.counters.tec, node.counters.rec) == (0, 0)

    def test_not_offline_after_recovery(self):
        engine, node = drive_to_bus_off(recovery=True)
        node.tx_queue.clear()
        engine.run(128 * 11 + 20)
        assert not node.offline

    def test_rejoins_traffic(self):
        engine, node = drive_to_bus_off(recovery=True)
        receiver = CanController("rx")
        engine.attach(receiver)
        engine.run(128 * 11 + 20)
        engine.run_until_idle(10000)
        assert len(receiver.deliveries) >= 1

    def test_dominant_bits_restart_the_run(self):
        engine, node = drive_to_bus_off(recovery=True)
        node.tx_queue.clear()
        # A chattering neighbour keeps interrupting the recovery count.
        neighbour = CanController("nb")
        engine.attach(neighbour)
        for _ in range(40):
            neighbour.submit(data_frame(0x100, b"\x01"))
        engine.run(800)
        # Frames every ~60 bits leave >11-bit recessive gaps rarely;
        # recovery must take longer than the idle-bus case.
        assert node.state == STATE_BUS_OFF
