"""API surface tests: the documented entry points exist and are wired.

These catch accidental breakage of the public interface (renames,
missed re-exports) that unit tests importing the private modules would
not notice.
"""

import repro
import repro.analysis
import repro.can
import repro.core
import repro.faults
import repro.metrics
import repro.parallel
import repro.properties
import repro.protocols
import repro.redundancy
import repro.simulation
import repro.tracestore
import repro.traffic
import repro.workload


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_headline_classes(self):
        assert repro.CanController.protocol_name == "CAN"
        assert repro.MinorCanController.protocol_name == "MinorCAN"
        assert repro.MajorCanController.protocol_name == "MajorCAN"
        assert callable(repro.SimulationEngine)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_tracestore_entry_points(self):
        assert callable(repro.TraceRecorder)
        assert callable(repro.Replayer)
        assert callable(repro.load_trace)
        assert callable(repro.replay_trace)
        assert callable(repro.check_corpus)
        assert repro.tracestore.SCHEMA_VERSION == 1
        assert repro.tracestore.TRAFFIC_SCHEMA_VERSION == 2

    def test_traffic_entry_points(self):
        assert callable(repro.TrafficSpec)
        assert callable(repro.run_traffic)
        assert callable(repro.record_traffic)


class TestSubpackageAllLists:
    def test_every_all_entry_exists(self):
        for module in (
            repro.analysis,
            repro.can,
            repro.core,
            repro.faults,
            repro.metrics,
            repro.parallel,
            repro.properties,
            repro.protocols,
            repro.redundancy,
            repro.simulation,
            repro.tracestore,
            repro.traffic,
            repro.workload,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_scenario_registry_complete(self):
        assert set(repro.faults.SCENARIOS) == {
            "fig1a",
            "fig1b",
            "fig1c",
            "fig3a",
            "fig3b",
            "fig5",
        }

    def test_protocol_registries(self):
        assert set(repro.faults.PROTOCOLS) == {"can", "minorcan", "majorcan"}
        assert set(repro.protocols.PROTOCOL_FACTORIES) == {
            "edcan",
            "relcan",
            "totcan",
        }


class TestDocstrings:
    def test_public_callables_are_documented(self):
        import inspect

        undocumented = []
        for module in (
            repro.analysis,
            repro.can,
            repro.core,
            repro.faults,
            repro.metrics,
            repro.parallel,
            repro.properties,
            repro.protocols,
            repro.redundancy,
            repro.simulation,
            repro.tracestore,
            repro.traffic,
            repro.workload,
        ):
            for name in module.__all__:
                obj = getattr(module, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append("%s.%s" % (module.__name__, name))
        assert undocumented == []
