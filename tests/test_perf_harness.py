"""Smoke test of the perf harness — exercises the parallel path on
every test run with tiny trial counts and checks the report schema."""

import json
import os
import subprocess
import sys

HARNESS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "perf_harness.py",
)


def test_smoke_run_writes_report(tmp_path):
    out = tmp_path / "bench.json"
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(HARNESS), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, HARNESS, "--smoke", "--jobs", "2", "--out", str(out)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    report = json.loads(out.read_text())
    assert report["smoke"] is True
    assert report["host"]["cpu_count"] >= 1
    for section, rate_key in (
        ("montecarlo", "trials_per_sec"),
        ("verify", "placements_per_sec"),
    ):
        assert report[section]["serial"][rate_key] > 0
        assert report[section]["parallel"][rate_key] > 0
        assert report[section]["speedup"] > 0
    assert report["engine"]["fast_path"]["bits_per_sec"] > 0
    assert report["engine"]["fast_path_speedup"] > 0
    capture = report["capture"]
    assert capture["fast_path"]["bits_per_sec"] > 0
    assert capture["fast_path_with_recording"]["bits_per_sec"] > 0
    # Overhead is a ratio relative to the bare fast path; smoke counts on a
    # loaded 1-CPU host are too noisy for a tight bound, but the key must
    # exist and be a finite number.
    assert isinstance(capture["overhead"], float)
