"""Controller tests: overload frames and the interframe space."""

from repro.can.bits import DOMINANT
from repro.can.controller import CanController
from repro.can.events import EventKind
from repro.can.fields import EOF, INTERMISSION
from repro.can.frame import data_frame
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.simulation.engine import SimulationEngine

from helpers import delivered_payloads, run_one_frame


def _overload_count(node):
    return len([e for e in node.events if e.kind == EventKind.OVERLOAD_FLAG_START])


class TestRequestedOverload:
    def test_slow_node_delays_next_frame(self):
        tx, rx1, rx2 = CanController("tx"), CanController("rx1"), CanController("rx2")
        engine = SimulationEngine([tx, rx1, rx2])
        tx.submit(data_frame(0x100, b"\x01"))
        tx.submit(data_frame(0x100, b"\x02"))
        rx1.request_overload()
        engine.run_until_idle(10000)
        assert _overload_count(rx1) == 1
        # The other nodes react with their own overload flags.
        assert _overload_count(rx2) == 1
        assert delivered_payloads(rx2) == [b"\x01", b"\x02"]

    def test_overload_does_not_lose_frames(self):
        tx, rx1 = CanController("tx"), CanController("rx1")
        engine = SimulationEngine([tx, rx1])
        for value in range(3):
            tx.submit(data_frame(0x100, bytes([value])))
        rx1.request_overload()
        rx1.request_overload()
        engine.run_until_idle(20000)
        assert delivered_payloads(rx1) == [bytes([v]) for v in range(3)]

    def test_at_most_two_self_initiated_overloads(self):
        tx, rx1 = CanController("tx"), CanController("rx1")
        engine = SimulationEngine([tx, rx1])
        tx.submit(data_frame(0x100, b"\x01"))
        for _ in range(5):
            rx1.request_overload()
        engine.run_until_idle(20000)
        assert _overload_count(rx1) <= 2


class TestReactiveOverload:
    def test_dominant_in_first_intermission_bit(self):
        """A disturbance in the intermission triggers overload frames,
        not error frames, and nothing is retransmitted."""
        nodes = [CanController("tx"), CanController("rx1"), CanController("rx2")]
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("rx1", Trigger(field=INTERMISSION, index=0), force=DOMINANT)
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.attempts == 1
        assert outcome.all_delivered_once
        assert _overload_count(nodes[1]) >= 1

    def test_last_eof_bit_overload_keeps_frame(self):
        """The last-bit rule: receiver accepts and sends overload."""
        nodes = [CanController("tx"), CanController("rx1"), CanController("rx2")]
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("rx1", Trigger(field=EOF, index=6), force=DOMINANT)
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.deliveries["rx1"] == 1
        assert _overload_count(nodes[1]) == 1

    def test_bus_recovers_to_idle_after_overload(self):
        nodes = [CanController("tx"), CanController("rx1")]
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("rx1", Trigger(field=INTERMISSION, index=1), force=DOMINANT)
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        for node in nodes:
            assert node.state == "idle"

    def test_third_intermission_bit_dominant_is_sof(self):
        """Dominant at the third intermission bit starts a new frame;
        a pending transmitter joins from the identifier."""
        tx, other, rx = CanController("tx"), CanController("other"), CanController("rx")
        engine = SimulationEngine([tx, other, rx])
        tx.submit(data_frame(0x100, b"\x01"))
        # Queue a second frame on another node while the first flies;
        # it will start right at the end of the intermission.
        other.submit(data_frame(0x200, b"\x02"))
        engine.run_until_idle(10000)
        assert delivered_payloads(rx) == [b"\x01", b"\x02"]
