"""Differential tests: the frame-granular traffic batch backend.

The contract under test is strict equality of the *entire observable
surface*: a ``run_traffic(backend="batch")`` run must serialize to the
same schema-v2 records — schedule, spliced bus trace, event stream,
per-frame verdicts, aggregate verdict — as the per-bit engine, for any
worker count, cache temperature and fallback mix.
"""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.metrics.export import json_line
from repro.traffic import (
    BurstSpec,
    TrafficSpec,
    clear_window_cache,
    run_traffic,
    traffic_records,
    window_backend,
    window_cache_stats,
)
from repro.traffic.batch import warm_traffic


def _lines(outcome):
    return [json_line(record) for record in traffic_records(outcome)]


def _corpus_specs():
    from repro.tracestore.corpus import GOLDEN_TRAFFIC_ENTRIES, _traffic_spec

    return [_traffic_spec(name) for name in GOLDEN_TRAFFIC_ENTRIES]


#: Seeded specs beyond the corpus: contention, protocol variants,
#: Poisson arrivals and overload backlog.
_SEEDED_SPECS = (
    TrafficSpec(
        name="contended-majorcan",
        protocol="majorcan",
        m=5,
        n_nodes=4,
        windows=3,
        window_bits=800,
        load=0.9,
        seed=23,
    ),
    TrafficSpec(
        name="periodic-can",
        protocol="can",
        n_nodes=3,
        windows=2,
        window_bits=700,
        load=0.8,
        seed=5,
    ),
    TrafficSpec(
        name="periodic-minorcan",
        protocol="minorcan",
        n_nodes=3,
        windows=2,
        window_bits=900,
        load=0.7,
        seed=9,
    ),
    TrafficSpec(
        name="poisson-majorcan",
        protocol="majorcan",
        m=3,
        n_nodes=4,
        windows=2,
        window_bits=900,
        source="poisson",
        rate_per_bit=0.002,
        load=0.9,
        seed=41,
    ),
    TrafficSpec(
        name="overload-can",
        protocol="can",
        n_nodes=4,
        windows=2,
        window_bits=600,
        load=1.8,
        seed=3,
    ),
)


class TestBackendEquivalence:
    @pytest.mark.parametrize("spec", _SEEDED_SPECS, ids=lambda s: s.name)
    def test_seeded_specs_bit_identical_across_backend_and_jobs(self, spec):
        reference = _lines(run_traffic(spec, jobs=1))
        clear_window_cache()
        assert _lines(run_traffic(spec, jobs=1, backend="batch")) == reference
        assert _lines(run_traffic(spec, jobs=2, backend="batch")) == reference
        assert _lines(run_traffic(spec, jobs=2)) == reference

    def test_traffic_corpus_specs_bit_identical(self):
        for spec in _corpus_specs():
            clear_window_cache()
            engine = run_traffic(spec, jobs=1)
            batch = run_traffic(spec, jobs=1, backend="batch")
            assert _lines(batch) == _lines(engine), spec.name

    def test_cache_warm_run_bit_identical_to_cold(self):
        spec = _SEEDED_SPECS[0]
        clear_window_cache()
        cold = run_traffic(spec, jobs=1, backend="batch")
        stats = window_cache_stats()
        assert stats["misses"] == spec.windows and stats["hits"] == 0
        warm = run_traffic(spec, jobs=1, backend="batch")
        assert window_cache_stats()["hits"] == spec.windows
        assert _lines(warm) == _lines(cold)

    def test_drain_overflow_error_matches_engine(self):
        spec = TrafficSpec(
            name="overflow",
            protocol="can",
            n_nodes=3,
            windows=1,
            window_bits=64,
            max_window_bits=65,
            load=2.0,
            seed=1,
        )
        with pytest.raises(SimulationError) as engine_err:
            run_traffic(spec, jobs=1)
        clear_window_cache()
        with pytest.raises(SimulationError) as batch_err:
            run_traffic(spec, jobs=1, backend="batch")
        assert str(batch_err.value) == str(engine_err.value)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            run_traffic(TrafficSpec(), backend="vectorised")


class TestFallbackAccounting:
    def test_clean_spec_is_all_batch(self):
        spec = _SEEDED_SPECS[0]
        outcome = run_traffic(spec, jobs=1, backend="batch")
        assert outcome.backend_stats == {"batch": spec.windows}

    def test_engine_backend_reports_no_stats(self):
        outcome = run_traffic(_SEEDED_SPECS[1], jobs=1)
        assert outcome.backend_stats is None

    def test_burst_window_resumes_from_the_cut(self):
        spec = TrafficSpec(
            name="burst-split",
            protocol="majorcan",
            m=5,
            n_nodes=3,
            windows=3,
            window_bits=800,
            load=0.7,
            seed=13,
            bursts=(BurstSpec(node="n1", window=1, start=120, length=6),),
        )
        assert window_backend(spec, 0) == "batch"
        assert window_backend(spec, 1) == "noise"
        assert window_backend(spec, 2) == "batch"
        clear_window_cache()
        batch = run_traffic(spec, jobs=1, backend="batch")
        assert batch.backend_stats == {"batch": 2, "resume": 1}
        assert _lines(batch) == _lines(run_traffic(spec, jobs=1))

    def test_noisy_windows_route_to_the_noise_evaluator(self):
        spec = TrafficSpec(
            name="noisy", n_nodes=3, windows=2, window_bits=600,
            load=0.5, seed=2, noise_ber=0.001,
        )
        assert all(
            window_backend(spec, window) == "noise"
            for window in range(spec.windows)
        )
        clear_window_cache()
        outcome = run_traffic(spec, jobs=1, backend="batch")
        assert outcome.backend_stats is not None
        assert set(outcome.backend_stats) <= {"batch", "resume", "engine"}
        assert sum(outcome.backend_stats.values()) == spec.windows
        assert _lines(outcome) == _lines(run_traffic(spec, jobs=1))

    def test_hlp_windows_still_classify_to_engine(self):
        spec = TrafficSpec(
            name="hlp", n_nodes=3, windows=2, window_bits=900,
            load=0.3, seed=2, hlp="edcan",
        )
        assert all(
            window_backend(spec, window) == "engine"
            for window in range(spec.windows)
        )
        outcome = run_traffic(spec, jobs=1, backend="batch")
        assert outcome.backend_stats == {"engine": spec.windows}


class TestWindowCache:
    def test_hits_are_deterministic_copies(self):
        spec = TrafficSpec(
            name="cache", protocol="can", n_nodes=3, windows=1,
            window_bits=600, load=0.8, seed=5,
        )
        clear_window_cache()
        first = run_traffic(spec, jobs=1, backend="batch")
        second = run_traffic(spec, jobs=1, backend="batch")
        assert window_cache_stats() == {"entries": 1, "hits": 1, "misses": 1}
        assert _lines(first) == _lines(second)
        # A hit returns an independent copy, not the cached object.
        first.stats  # touch to make the intent explicit
        assert first is not second

    def test_clear_resets_counters(self):
        clear_window_cache()
        assert window_cache_stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_warm_traffic_primes_wire_images(self):
        # warm_traffic is a cache fill: it must swallow every spec it
        # is handed (even ones whose schedule cannot build) and leave
        # subsequent batch runs bit-identical.
        spec = _SEEDED_SPECS[1]
        warm_traffic((spec,))
        clear_window_cache()
        warmed = run_traffic(spec, jobs=1, backend="batch")
        assert _lines(warmed) == _lines(run_traffic(spec, jobs=1))
