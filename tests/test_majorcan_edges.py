"""Edge-case tests for the MajorCAN agreement machinery."""

import pytest

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.events import EventKind
from repro.can.fields import ACK_DELIM, ACK_SLOT, CRC_DELIM, EOF, INTERMISSION
from repro.can.frame import data_frame
from repro.core.majorcan import MajorCanController
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault

from helpers import run_one_frame


def _network(m=5):
    return [MajorCanController(name, m=m) for name in ("tx", "x", "y")]


class TestLateExtenderReconvergence:
    def test_error_at_last_eof_bit_converges_via_overload(self):
        """One node errs at EOF bit 2m: it extends while the clean
        nodes are already in the intermission — they react with
        overload flags and everyone re-synchronises on the common
        delimiter.  All accept; nothing is retransmitted."""
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=9), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 1
        clean = outcome.engine.node("y")
        assert any(e.kind == EventKind.OVERLOAD_FLAG_START for e in clean.events)

    def test_back_to_back_traffic_after_reconvergence(self):
        """The slot after the extended-flag dance must carry the next
        frame normally."""
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=9), force=DOMINANT)]
        )
        nodes[0].submit(data_frame(0x123, b"\x55"))
        nodes[0].submit(data_frame(0x124, b"\x66"))
        from repro.simulation.engine import SimulationEngine

        engine = SimulationEngine(nodes, injector=injector)
        engine.run_until_idle(20000)
        assert len(nodes[1].deliveries) == 2
        assert len(nodes[2].deliveries) == 2


class TestFrameTailErrors:
    @pytest.mark.parametrize("field,index", [
        (CRC_DELIM, 0),
        (ACK_DELIM, 0),
    ])
    def test_receiver_tail_form_errors_reject_consistently(self, field, index):
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=field, index=index), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 2

    def test_transmitter_masked_ack_causes_consistent_retransmission(self):
        """The transmitter misses the ACK (its view of the slot is
        masked recessive): ACK error, never-accept class, everyone
        rejects, one retransmission."""
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("tx", Trigger(field=ACK_SLOT, index=0), force=RECESSIVE)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 2
        tx = outcome.engine.node("tx")
        assert not any(
            e.kind == EventKind.SAMPLING_VERDICT for e in tx.events
        )

    def test_tail_error_node_does_not_spoil_the_window(self):
        """Regression for the F-series fix: a transmitter with a bit
        error at the ACK delimiter must stay quiet through the
        sampling window instead of flagging its second error into it."""
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("tx", Trigger(field=ACK_DELIM, index=0), force=DOMINANT),
                # The flip that used to provoke a delimiter-error flag:
                ViewFault("tx", Trigger(field="SAMPLING", index=14), force=DOMINANT),
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.consistent
        assert not outcome.double_reception


class TestPostEofErrors:
    def test_intermission_disturbance_is_overload_not_retransmission(self):
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("x", Trigger(field=INTERMISSION, index=0), force=DOMINANT)
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 1


class TestMultipleSimultaneousSamplers:
    def test_all_nodes_err_in_first_subfield_reject_together(self):
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[
                ViewFault(name, Trigger(field=EOF, index=1), force=DOMINANT)
                for name in ("tx", "x", "y")
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 2

    def test_all_nodes_err_in_second_subfield_accept_together(self):
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[
                ViewFault(name, Trigger(field=EOF, index=7), force=DOMINANT)
                for name in ("tx", "x", "y")
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 1


class TestArbitrationStillWorks:
    def test_two_majorcan_transmitters(self):
        a = MajorCanController("a")
        b = MajorCanController("b")
        observer = MajorCanController("obs")
        from repro.simulation.engine import SimulationEngine

        engine = SimulationEngine([a, b, observer])
        a.submit(data_frame(0x200, b"\xaa"))
        b.submit(data_frame(0x100, b"\xbb"))
        engine.run_until_idle(20000)
        payloads = [d.frame.data for d in observer.deliveries]
        assert payloads == [b"\xbb", b"\xaa"]
