"""Unit tests for field layout and wire encoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.can.crc import crc15
from repro.can.encoding import encode_frame
from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC,
    CRC_DELIM,
    DATA,
    DLC,
    EOF,
    ID_A,
    ID_B,
    IDE,
    R0,
    R1,
    RTR,
    SOF,
    SRR,
    header_segments,
    nominal_frame_length,
    tail_segments,
    unstuffed_header_bits,
)
from repro.can.frame import data_frame, remote_frame
from repro.can.stuffing import stuff

payloads = st.binary(max_size=8)
standard_ids = st.integers(0, 0x7FF)
extended_ids = st.integers(0, 0x1FFFFFFF)


class TestHeaderSegments:
    def test_base_frame_field_order(self):
        names = [segment.name for segment in header_segments(data_frame(1, b"\x01"))]
        assert names == [SOF, ID_A, RTR, IDE, R0, DLC, DATA, CRC]

    def test_extended_frame_field_order(self):
        frame = data_frame(1, b"\x01", extended=True)
        names = [segment.name for segment in header_segments(frame)]
        assert names == [SOF, ID_A, SRR, IDE, ID_B, RTR, R1, R0, DLC, DATA, CRC]

    def test_remote_frame_has_no_data(self):
        names = [segment.name for segment in header_segments(remote_frame(1, dlc=4))]
        assert DATA not in names

    def test_sof_is_dominant(self):
        assert header_segments(data_frame(1, b""))[0].bits == (0,)

    def test_rtr_encodes_remote(self):
        def rtr_bit(frame):
            return dict(
                (segment.name, segment.bits) for segment in header_segments(frame)
            )[RTR][0]

        assert rtr_bit(data_frame(1, b"")) == 0
        assert rtr_bit(remote_frame(1)) == 1

    def test_ide_distinguishes_formats(self):
        def ide_bit(frame):
            return dict(
                (segment.name, segment.bits) for segment in header_segments(frame)
            )[IDE][0]

        assert ide_bit(data_frame(1, b"")) == 0
        assert ide_bit(data_frame(1, b"", extended=True)) == 1

    def test_crc_covers_header(self):
        frame = data_frame(0x123, b"\xde\xad")
        bits = unstuffed_header_bits(frame)
        crc_segment = header_segments(frame)[-1]
        covered = bits[: -len(crc_segment)]
        from repro.can.bits import int_from_bits

        assert int_from_bits(list(crc_segment.bits)) == crc15(covered)


class TestTail:
    def test_tail_order_and_values(self):
        segments = tail_segments()
        assert [segment.name for segment in segments] == [
            CRC_DELIM,
            ACK_SLOT,
            ACK_DELIM,
            EOF,
        ]
        assert all(all(bit == 1 for bit in segment.bits) for segment in segments)

    def test_eof_length_configurable(self):
        segments = {segment.name: segment for segment in tail_segments(eof_length=10)}
        assert len(segments[EOF]) == 10


class TestEncodeFrame:
    def test_levels_match_stuffed_header_plus_tail(self):
        frame = data_frame(0x2AA, b"\x0f\xf0")
        wire = encode_frame(frame)
        expected = stuff(unstuffed_header_bits(frame)) + [1] * 10
        assert [int(bit.level) for bit in wire.bits] == expected

    def test_stuff_bits_flagged(self):
        # Identifier 0 produces runs of dominant bits needing stuffing.
        wire = encode_frame(data_frame(0, b""))
        assert any(bit.is_stuff for bit in wire.bits)

    def test_arbitration_region_marked(self):
        wire = encode_frame(data_frame(0x123, b"\x01"))
        arbitration_fields = {bit.field for bit in wire.bits if bit.in_arbitration}
        assert ID_A in arbitration_fields
        assert RTR in arbitration_fields
        assert DATA not in arbitration_fields

    def test_ack_slot_position(self):
        wire = encode_frame(data_frame(0x123, b"\x01"))
        assert wire.bits[wire.ack_slot_position].field == ACK_SLOT

    def test_eof_start(self):
        wire = encode_frame(data_frame(0x123, b"\x01"))
        assert wire.bits[wire.eof_start].field == EOF
        assert wire.bits[wire.eof_start - 1].field == ACK_DELIM

    def test_field_positions(self):
        wire = encode_frame(data_frame(0x123, b"\x01"), eof_length=7)
        assert len(wire.field_positions(EOF)) == 7

    def test_custom_eof_length(self):
        wire = encode_frame(data_frame(0x123, b"\x01"), eof_length=10)
        assert len(wire.field_positions(EOF)) == 10
        assert wire.eof_length == 10

    @given(identifier=standard_ids, payload=payloads)
    def test_wire_length_equals_nominal(self, identifier, payload):
        frame = data_frame(identifier, payload)
        assert len(encode_frame(frame)) == nominal_frame_length(frame)

    @given(identifier=extended_ids, payload=payloads)
    def test_extended_wire_length_equals_nominal(self, identifier, payload):
        frame = data_frame(identifier, payload, extended=True)
        assert len(encode_frame(frame)) == nominal_frame_length(frame)

    def test_no_six_bit_runs_before_tail(self):
        wire = encode_frame(data_frame(0, bytes(8)))
        header = [int(bit.level) for bit in wire.bits if bit.field not in
                  (CRC_DELIM, ACK_SLOT, ACK_DELIM, EOF)]
        run, last = 0, None
        for bit in header:
            run = run + 1 if bit == last else 1
            last = bit
            assert run <= 5


class TestNominalLength:
    def test_minimal_base_frame(self):
        # SOF(1) ID(11) RTR IDE r0 DLC(4) CRC(15) = 34 unstuffed header
        # bits + 10 tail bits, plus the stuffing the zero control/DLC
        # run requires (one stuff bit for id 0x555 with dlc 0).
        frame = data_frame(0x555, b"")
        assert nominal_frame_length(frame) == 34 + 10 + 1
        assert nominal_frame_length(frame) == len(
            stuff(unstuffed_header_bits(frame))
        ) + 10

    def test_full_payload_near_paper_length(self):
        # The paper's tau_data = 110 bits corresponds to an 8-byte frame
        # including typical stuffing; the unstuffed length is 108.
        frame = data_frame(0x555, bytes(range(1, 9)))
        assert 108 <= nominal_frame_length(frame) <= 125

    def test_length_grows_with_payload(self):
        lengths = [
            nominal_frame_length(data_frame(0x555, bytes([0x55] * size)))
            for size in range(9)
        ]
        assert lengths == sorted(lengths)
        assert lengths[8] - lengths[0] == 64  # 0x55 bytes never stuff
