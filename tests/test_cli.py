"""Smoke tests for every CLI sub-command."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "IMOnew/hour" in out
        assert "8.8" in out

    def test_scenarios_single_protocol(self, capsys):
        assert main(["scenarios", "--protocol", "can"]) == 0
        out = capsys.readouterr().out
        assert "fig1b/CAN" in out
        assert "fig3a/CAN" in out

    def test_scenarios_majorcan_includes_fig5(self, capsys):
        assert main(["scenarios", "--protocol", "majorcan"]) == 0
        assert "fig5/MajorCAN" in capsys.readouterr().out

    def test_fig4(self, capsys):
        assert main(["fig4", "--m", "3"]) == 0
        out = capsys.readouterr().out
        assert "CRC error" in out
        assert "extended error flag" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "--m", "5"]) == 0
        out = capsys.readouterr().out
        assert "best 3 bits" in out
        assert "worst 11 bits" in out

    def test_overhead_large_m_formula_only(self, capsys):
        assert main(["overhead", "--m", "8"]) == 0
        assert "measured: (worst-case" in capsys.readouterr().out

    def test_enumerate(self, capsys):
        assert main(["enumerate", "--nodes", "3", "--window", "2"]) == 0
        out = capsys.readouterr().out
        assert "P(IMO) enumerated" in out

    def test_montecarlo(self, capsys):
        assert main(["montecarlo", "--trials", "50", "--seed", "3"]) == 0
        assert "P(IMO)" in capsys.readouterr().out

    def test_geometry(self, capsys):
        assert main(["geometry", "--m", "5"]) == 0
        out = capsys.readouterr().out
        assert "window_start" in out
        assert "invariants:" in out

    def test_campaign(self, capsys):
        assert main(["campaign", "--rounds", "4", "--attack", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "majorcan" in out

    def test_reliability(self, capsys):
        assert main(["reliability", "--ber", "1e-4"]) == 0
        assert "MTTF" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation", "--m-values", "4", "5", "--flips", "1"]) == 0
        out = capsys.readouterr().out
        assert "F1 closed" in out
        assert "CAN6'" in out

    def test_verify_majorcan_holds(self, capsys):
        assert main(["verify", "--protocol", "majorcan", "--flips", "1"]) == 0
        assert "no counterexample" in capsys.readouterr().out

    def test_verify_can_finds_counterexamples(self, capsys):
        assert main(["verify", "--protocol", "can", "--flips", "2"]) == 1
        assert "counterexample" in capsys.readouterr().out

    def test_verify_header_universe(self, capsys):
        assert main(["verify", "--protocol", "majorcan", "--flips", "1",
                     "--include-header"]) == 1
        assert "DLC" in capsys.readouterr().out

    def test_matrix(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "MajorCAN" in out
        assert "EDCAN" in out


class TestTraceCommands:
    """The trace-store sub-commands: record, replay, diff, corpus."""

    def test_record_then_replay(self, capsys, tmp_path):
        out = str(tmp_path / "fig1b-can.jsonl")
        assert main(["record", "fig1b", "--protocol", "can", "--out", out]) == 0
        assert "recorded" in capsys.readouterr().out
        assert main(["replay", out]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_record_fig3a_takes_no_protocol(self, capsys, tmp_path):
        out = str(tmp_path / "fig3a.jsonl")
        assert main(["record", "fig3a", "--out", out]) == 0
        assert "recorded" in capsys.readouterr().out

    def test_diff_identical_and_divergent(self, capsys, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        assert main(["record", "fig1b", "--out", a]) == 0
        assert main(["record", "fig1b", "--out", b]) == 0
        assert main(["diff", a, b]) == 0
        c = str(tmp_path / "c.jsonl")
        assert main(["record", "fig1c", "--out", c]) == 0
        capsys.readouterr()
        assert main(["diff", a, c]) == 1
        assert "diverg" in capsys.readouterr().out.lower()

    def test_corpus_update_and_check(self, capsys, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        assert main(["corpus", "update", "--dir", corpus_dir]) == 0
        capsys.readouterr()
        assert main(["corpus", "check", "--dir", corpus_dir, "--jobs", "2"]) == 0
        assert "bit-identical" in capsys.readouterr().out

    def test_corpus_check_fails_on_missing_dir(self, tmp_path):
        from repro.errors import TraceStoreError

        with pytest.raises(TraceStoreError):
            main(["corpus", "check", "--dir", str(tmp_path / "nope")])
