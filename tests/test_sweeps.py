"""Tests for parameter sweeps and the m-choice ablation."""

import pytest

from repro.analysis.sweeps import (
    imo_rate_sweep,
    m_ablation,
    omission_degree_revision,
)
from repro.errors import AnalysisError


class TestImoRateSweep:
    def test_grid_size(self):
        points = imo_rate_sweep(
            ber_values=(1e-5, 1e-4), node_counts=(8, 32), frame_lengths=(60, 110)
        )
        assert len(points) == 8

    def test_rates_increase_with_ber(self):
        points = imo_rate_sweep(ber_values=(1e-6, 1e-5, 1e-4))
        rates = [point.imo_new_per_hour for point in points]
        assert rates == sorted(rates)

    def test_new_scenario_rate_decreases_with_nodes(self):
        """ber* = ber/N, and the new scenario needs two *effective*
        errors, so spreading errors over more nodes helps."""
        points = imo_rate_sweep(ber_values=(1e-4,), node_counts=(8, 32, 64))
        rates = [point.imo_new_per_hour for point in points]
        assert rates[0] > rates[1] > rates[2]

    def test_ratio_property(self):
        point = imo_rate_sweep(ber_values=(1e-4,))[0]
        assert point.ratio == pytest.approx(
            point.imo_new_per_hour / point.imo_star_per_hour
        )


class TestOmissionDegreeRevision:
    def test_j_prime_exceeds_j(self):
        """The paper's CAN6' statement: j' is larger than j."""
        revision = omission_degree_revision(1e-4)
        assert revision.j_prime_with_new > revision.j_old_scenarios

    def test_inflation_is_three_orders_at_high_ber(self):
        revision = omission_degree_revision(1e-4)
        assert revision.inflation > 1000

    def test_scales_with_interval(self):
        one_hour = omission_degree_revision(1e-4, t_rd_hours=1.0)
        two_hours = omission_degree_revision(1e-4, t_rd_hours=2.0)
        assert two_hours.j_prime_with_new == pytest.approx(
            2 * one_hour.j_prime_with_new
        )

    def test_interval_validated(self):
        with pytest.raises(AnalysisError):
            omission_degree_revision(1e-4, t_rd_hours=0)


class TestMAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return m_ablation(m_values=(3, 5, 6), tail_flips=1)

    def test_overhead_columns(self, rows):
        by_m = {row.m: row for row in rows}
        assert by_m[5].best_case_bits == 3
        assert by_m[5].worst_case_bits == 11
        assert by_m[3].best_case_bits == -1

    def test_tail_consistency_for_all_m(self, rows):
        for row in rows:
            assert row.tail_consistent, row

    def test_f1_boundary_at_m6(self, rows):
        by_m = {row.m: row for row in rows}
        assert by_m[3].f1_channel_closed is False
        assert by_m[5].f1_channel_closed is False
        assert by_m[6].f1_channel_closed is True

    def test_f1_check_can_be_skipped(self):
        rows = m_ablation(m_values=(5,), tail_flips=1, check_f1=False)
        assert rows[0].f1_channel_closed is None
