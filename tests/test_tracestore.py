"""Tests for the trace store: schema, capture, replay, and corpus.

The determinism contract under test: a recording replays bit-identically
(same bus string, same events, same verdict) on a fresh engine built
purely from the manifest — and a deliberate controller tweak surfaces as
a structured diff, never as silent acceptance.
"""

import os

import pytest

from repro.can.bits import DOMINANT
from repro.can.controller import CanController
from repro.can.controller_config import ControllerConfig
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.errors import TraceError, TraceStoreError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.tracestore import (
    GOLDEN_BUILDERS,
    Replayer,
    ScenarioSpec,
    check_corpus,
    corpus_entries,
    diff_traces,
    load_trace,
    record_outcome,
    replay_trace,
    spec_from_outcome,
    update_corpus,
)
from repro.tracestore.recorder import outcome_records, records_to_text
from repro.tracestore.replay import recorded_from_outcome
from repro.tracestore.schema import SCHEMA_VERSION, require_valid, validate_records

from helpers import run_one_frame

FRAME = data_frame(0x123, b"\x55", message_id="m")
CORPUS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "corpus"
)


def _fig1b_outcome(record_bits=True):
    from repro.faults.scenarios import run_single_frame_scenario

    nodes = [CanController(name) for name in ("tx", "x", "y")]
    injector = ScriptedInjector(
        view_faults=[ViewFault("x", Trigger(field=EOF, index=5), force=DOMINANT)]
    )
    return run_single_frame_scenario(
        "test", nodes, injector, frame=FRAME, record_bits=record_bits
    )


class TestSchemaValidation:
    def _records(self):
        return list(outcome_records(_fig1b_outcome()))

    def test_full_recording_validates(self):
        assert validate_records(self._records()) == []

    def test_manifest_must_come_first(self):
        records = self._records()
        records.append(records.pop(0))
        assert validate_records(records)

    def test_exactly_one_verdict(self):
        records = self._records()
        errors = validate_records(records[:-1])
        assert any("verdict" in error for error in errors)

    def test_bit_times_strictly_increasing(self):
        records = self._records()
        bits = [record for record in records if record["type"] == "bit"]
        bits[5]["t"] = bits[4]["t"]
        assert any("increas" in error for error in validate_records(records))

    def test_bus_levels_restricted_to_symbols(self):
        records = self._records()
        bus = next(record for record in records if record["type"] == "bus")
        bus["levels"] = bus["levels"][:-1] + "x"
        assert validate_records(records)

    def test_require_valid_raises(self):
        with pytest.raises(TraceStoreError):
            require_valid([{"type": "verdict"}], "unit-test")

    def test_schema_version_pinned_in_manifest(self):
        manifest = self._records()[0]
        assert manifest["version"] == SCHEMA_VERSION


class TestRecordRoundTrip:
    def test_record_then_load(self, tmp_path):
        outcome = _fig1b_outcome()
        path = record_outcome(str(tmp_path / "fig1b.jsonl"), outcome)
        recorded = load_trace(path)
        assert recorded.name == "test"
        assert recorded.manifest["engine"]["record_bits"] is True
        assert recorded.bus == "".join(
            level.symbol for level in outcome.engine.bus.history
        )
        assert len(recorded.bits) == len(outcome.trace.bits)
        assert len(recorded.events) == len(outcome.trace.events)
        assert recorded.verdict["double_reception"] is True

    def test_fast_path_run_records_without_bit_lines(self, tmp_path):
        outcome = _fig1b_outcome(record_bits=False)
        path = record_outcome(str(tmp_path / "fast.jsonl"), outcome)
        recorded = load_trace(path)
        assert recorded.bits == []
        assert recorded.manifest["engine"]["record_bits"] is False
        assert len(recorded.bus) == outcome.engine.time

    def test_recording_is_deterministic(self, tmp_path):
        first = record_outcome(str(tmp_path / "a.jsonl"), _fig1b_outcome())
        second = record_outcome(str(tmp_path / "b.jsonl"), _fig1b_outcome())
        with open(first) as fa, open(second) as fb:
            assert fa.read() == fb.read()

    def test_spec_round_trips_through_manifest(self):
        spec = spec_from_outcome(_fig1b_outcome())
        rebuilt = ScenarioSpec.from_manifest(spec.to_manifest())
        assert rebuilt == spec

    def test_unserializable_injector_rejected(self):
        from repro.faults.injector import FaultInjector

        nodes = [CanController(name) for name in ("tx", "x")]
        outcome = run_one_frame(nodes, FRAME, FaultInjector())
        with pytest.raises(TraceStoreError):
            spec_from_outcome(outcome)


class TestReplay:
    def test_replay_is_bit_identical(self, tmp_path):
        path = record_outcome(str(tmp_path / "fig1b.jsonl"), _fig1b_outcome())
        result = replay_trace(path)
        assert result.bit_identical
        assert result.diff.identical

    def test_replay_fast_path_recording(self, tmp_path):
        outcome = _fig1b_outcome(record_bits=False)
        path = record_outcome(str(tmp_path / "fast.jsonl"), outcome)
        assert replay_trace(path).bit_identical

    def test_replayer_accepts_recorded_trace(self):
        outcome = _fig1b_outcome()
        recorded = recorded_from_outcome(outcome)
        result = Replayer(recorded).replay()
        assert result.bit_identical

    def test_controller_tweak_caught_as_diff(self, tmp_path, monkeypatch):
        """A deliberate behaviour change (longer EOF field) must show up
        as a structured bus/verdict diff on replay."""
        from repro.faults import scenarios

        path = record_outcome(str(tmp_path / "fig1b.jsonl"), _fig1b_outcome())
        original = scenarios.make_controller

        def tweaked(protocol, name, m=5, config=None):
            if protocol == "can" and config is None:
                config = ControllerConfig(eof_length=8)
            return original(protocol, name, m=m, config=config)

        monkeypatch.setattr(scenarios, "make_controller", tweaked)
        result = replay_trace(path)
        assert not result.bit_identical
        assert result.diff.bus
        assert "bus" in result.diff.summary()

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = record_outcome(str(tmp_path / "fig1b.jsonl"), _fig1b_outcome())
        recorded = load_trace(path)
        recorded.manifest["version"] = 99
        with pytest.raises(TraceStoreError):
            recorded.spec()


class TestDiff:
    def test_identical_traces_have_empty_diff(self):
        outcome = _fig1b_outcome()
        recorded = recorded_from_outcome(outcome)
        diff = diff_traces(recorded, recorded)
        assert diff.identical
        assert diff.problems() == []

    def test_bus_divergence_reports_position_and_context(self):
        outcome = _fig1b_outcome()
        expected = recorded_from_outcome(outcome)
        actual = recorded_from_outcome(outcome)
        levels = actual.bus
        actual.bus = levels[:40] + ("d" if levels[40] == "r" else "r") + levels[41:]
        diff = diff_traces(expected, actual)
        assert not diff.identical
        assert any("bit 40" in line for line in diff.bus)

    def test_verdict_divergence_reported_by_key(self):
        outcome = _fig1b_outcome()
        expected = recorded_from_outcome(outcome)
        actual = recorded_from_outcome(outcome)
        actual.verdict["double_reception"] = False
        diff = diff_traces(expected, actual)
        assert not diff.identical
        assert any("double_reception" in line for line in diff.verdict)


class TestCheckedInCorpus:
    """The repo's own golden corpus is complete, valid, and replayable."""

    def test_every_golden_entry_is_checked_in(self):
        present = {
            name
            for name in os.listdir(CORPUS_DIR)
            if name.endswith(".jsonl")
        }
        assert {name + ".jsonl" for name in corpus_entries()} <= present

    def test_core_figures_covered_for_all_protocols(self):
        names = set(corpus_entries())
        assert {"fig1b-can", "fig1b-minorcan", "fig1b-majorcan"} <= names
        assert {"fig1c-can", "fig1c-minorcan", "fig1c-majorcan"} <= names
        assert {"fig3a-can", "fig3b-minorcan", "fig3-majorcan"} <= names

    def test_checked_in_files_validate_against_schema(self):
        for name in corpus_entries():
            recorded = load_trace(os.path.join(CORPUS_DIR, name + ".jsonl"))
            assert recorded.manifest["meta"]["entry"] == name

    def test_corpus_check_passes_and_is_jobs_invariant(self):
        serial = check_corpus(CORPUS_DIR, jobs=1)
        parallel = check_corpus(CORPUS_DIR, jobs=2)
        assert serial.ok, serial.summary()
        assert serial.results == parallel.results

    def test_missing_golden_entry_is_a_failure(self, tmp_path):
        update_corpus(str(tmp_path), names=["fig1b-can"])
        report = check_corpus(str(tmp_path), jobs=1)
        assert not report.ok
        missing = {result.entry for result in report.failures}
        assert "fig1c-majorcan" in missing

    def test_update_rejects_unknown_entry(self, tmp_path):
        with pytest.raises(TraceStoreError):
            update_corpus(str(tmp_path), names=["not-a-scenario"])

    def test_corrupted_entry_fails_check(self, tmp_path):
        update_corpus(str(tmp_path), names=["fig1b-can"])
        path = os.path.join(str(tmp_path), "fig1b-can.jsonl")
        with open(path) as handle:
            lines = handle.readlines()
        with open(path, "w") as handle:
            handle.writelines(lines[:-1])  # drop the verdict line
        report = check_corpus(str(tmp_path), jobs=1, require_golden=False)
        assert not report.ok
        assert report.failures[0].entry == "fig1b-can"

    def test_golden_builders_reproduce_their_recordings(self):
        """Spot-check: re-running a builder gives the recorded wire."""
        outcome = GOLDEN_BUILDERS["fig1b-can"]()
        recorded = load_trace(os.path.join(CORPUS_DIR, "fig1b-can.jsonl"))
        assert recorded.bus == "".join(
            level.symbol for level in outcome.engine.bus.history
        )


class TestTraceSortedPrecondition:
    def test_add_events_rejects_unsorted_trace(self):
        from repro.simulation.trace import Event, Trace

        trace = Trace()
        trace.events = [
            Event(time=5, node="a", kind="k", data={}),
            Event(time=3, node="a", kind="k", data={}),
        ]
        with pytest.raises(TraceError):
            trace.add_events([Event(time=1, node="b", kind="k", data={})])


class TestSharedJsonlHelpers:
    def test_json_line_is_deterministic(self):
        from repro.metrics.export import json_line

        assert json_line({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_write_then_read_round_trip(self, tmp_path):
        from repro.metrics.export import read_jsonl, write_jsonl

        path = str(tmp_path / "records.jsonl")
        records = [{"a": 1}, {"b": [1, 2]}]
        assert write_jsonl(path, records) == 2
        assert read_jsonl(path) == records

    def test_read_rejects_garbage_lines(self, tmp_path):
        from repro.errors import ReproError
        from repro.metrics.export import read_jsonl

        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok":1}\nnot json\n')
        with pytest.raises(ReproError):
            read_jsonl(str(path))

    def test_records_to_text_matches_file_output(self, tmp_path):
        outcome = _fig1b_outcome()
        spec = spec_from_outcome(outcome)
        text = records_to_text(outcome_records(outcome, spec=spec))
        path = record_outcome(str(tmp_path / "t.jsonl"), outcome, spec=spec)
        with open(path) as handle:
            assert handle.read() == text
