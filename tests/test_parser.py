"""Unit and property tests for the incremental frame parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.encoding import encode_frame
from repro.can.fields import ACK_SLOT, CRC, CRC_DELIM, EOF
from repro.can.frame import data_frame, remote_frame
from repro.can.parser import FrameParser
from repro.errors import DecodingError

payloads = st.binary(max_size=8)
standard_ids = st.integers(0, 0x7FF)
extended_ids = st.integers(0, 0x1FFFFFFF)


def feed_whole_frame(parser, wire, ack=True):
    """Feed a wire frame as seen on the bus (ACK slot pulled dominant)."""
    steps = []
    for position, wire_bit in enumerate(wire.bits):
        level = wire_bit.level
        if ack and position == wire.ack_slot_position:
            level = DOMINANT
        steps.append(parser.feed(level))
    return steps


class TestHappyPath:
    def test_reconstructs_base_frame(self):
        frame = data_frame(0x2B3, b"\x12\x34\x56")
        parser = FrameParser()
        feed_whole_frame(parser, encode_frame(frame))
        assert parser.complete
        assert parser.crc_ok
        received = parser.frame()
        assert received.can_id == frame.can_id
        assert received.data == frame.data
        assert received.dlc == frame.dlc
        assert not received.remote

    def test_reconstructs_extended_frame(self):
        frame = data_frame(0x1ABCDEF0, b"\xff", extended=True)
        parser = FrameParser()
        feed_whole_frame(parser, encode_frame(frame))
        assert parser.crc_ok
        assert parser.frame().can_id == frame.can_id

    def test_reconstructs_remote_frame(self):
        frame = remote_frame(0x300, dlc=5)
        parser = FrameParser()
        feed_whole_frame(parser, encode_frame(frame))
        received = parser.frame()
        assert received.remote
        assert received.dlc == 5
        assert received.data == b""

    def test_header_complete_before_eof(self):
        frame = data_frame(0x123, b"\x01")
        wire = encode_frame(frame)
        parser = FrameParser()
        for position, wire_bit in enumerate(wire.bits):
            level = DOMINANT if position == wire.ack_slot_position else wire_bit.level
            parser.feed(level)
            if wire_bit.field == CRC_DELIM:
                assert parser.header_complete
                break

    @given(identifier=standard_ids, payload=payloads)
    @settings(max_examples=60)
    def test_roundtrip_base(self, identifier, payload):
        frame = data_frame(identifier, payload)
        parser = FrameParser()
        feed_whole_frame(parser, encode_frame(frame))
        received = parser.frame()
        assert (received.can_id, received.data) == (frame.can_id, frame.data)
        assert parser.crc_ok

    @given(identifier=extended_ids, payload=payloads)
    @settings(max_examples=60)
    def test_roundtrip_extended(self, identifier, payload):
        frame = data_frame(identifier, payload, extended=True)
        parser = FrameParser()
        feed_whole_frame(parser, encode_frame(frame))
        assert parser.frame().can_id == frame.can_id
        assert parser.crc_ok


class TestTrailingStuffBit:
    def _frame_with_trailing_stuff(self):
        """Find a payload whose CRC ends in a five-bit run."""
        from repro.can.fields import unstuffed_header_bits

        for value in range(0, 4096):
            payload = bytes([value & 0xFF, (value >> 8) & 0xFF])
            frame = data_frame(0x123, payload)
            bits = unstuffed_header_bits(frame)
            if len(set(bits[-5:])) == 1:
                return frame
        raise AssertionError("no trailing-stuff payload found")

    def test_trailing_stuff_bit_is_consumed_as_crc(self):
        frame = self._frame_with_trailing_stuff()
        wire = encode_frame(frame)
        parser = FrameParser()
        steps = feed_whole_frame(parser, wire)
        stuff_steps = [step for step in steps if step.is_stuff]
        assert any(step.field == CRC for step in stuff_steps)
        assert parser.crc_ok
        assert parser.frame().data == frame.data


class TestViolations:
    def test_stuff_violation_reported(self):
        parser = FrameParser()
        # SOF + 5 more dominant bits = six in a row: the sixth feed
        # (where the complementary stuff bit was expected) violates.
        steps = [parser.feed(DOMINANT) for _ in range(6)]
        assert steps[-1].stuff_violation
        assert not any(step.stuff_violation for step in steps[:-1])

    def test_parser_unusable_after_violation(self):
        parser = FrameParser()
        for _ in range(6):
            parser.feed(DOMINANT)
        with pytest.raises(DecodingError):
            parser.feed(DOMINANT)

    def test_form_violation_on_crc_delim(self):
        frame = data_frame(0x555, b"")
        wire = encode_frame(frame)
        parser = FrameParser()
        violation = None
        for wire_bit in wire.bits:
            level = wire_bit.level
            if wire_bit.field == CRC_DELIM:
                level = DOMINANT
            step = parser.feed(level)
            if step.form_violation:
                violation = step
                break
        assert violation is not None
        assert violation.field == CRC_DELIM

    def test_crc_mismatch_detected(self):
        frame = data_frame(0x555, b"\xaa")
        wire = encode_frame(frame)
        parser = FrameParser()
        flipped = False
        for wire_bit in wire.bits:
            level = wire_bit.level
            if wire_bit.field == "DATA" and not wire_bit.is_stuff and not flipped:
                level = level.flipped()
                flipped = True
            parser.feed(level)
            if parser.header_complete:
                break
        assert parser.crc_ok is False

    def test_feeding_past_end_raises(self):
        frame = data_frame(0x555, b"")
        parser = FrameParser()
        feed_whole_frame(parser, encode_frame(frame))
        with pytest.raises(DecodingError):
            parser.feed(RECESSIVE)

    def test_frame_before_header_raises(self):
        parser = FrameParser()
        parser.feed(DOMINANT)
        with pytest.raises(DecodingError):
            parser.frame()


class TestUpcoming:
    def test_predicts_ack_slot(self):
        frame = data_frame(0x555, b"\x0f")
        wire = encode_frame(frame)
        parser = FrameParser()
        predicted_ack_at = None
        for position, wire_bit in enumerate(wire.bits):
            if parser.upcoming[0] == ACK_SLOT:
                predicted_ack_at = position
            level = DOMINANT if position == wire.ack_slot_position else wire_bit.level
            parser.feed(level)
        assert predicted_ack_at == wire.ack_slot_position

    def test_tracks_eof_indices(self):
        frame = data_frame(0x555, b"")
        wire = encode_frame(frame)
        parser = FrameParser()
        seen_eof_indices = []
        for position, wire_bit in enumerate(wire.bits):
            if parser.upcoming[0] == EOF:
                seen_eof_indices.append(parser.upcoming[1])
            level = DOMINANT if position == wire.ack_slot_position else wire_bit.level
            parser.feed(level)
        assert seen_eof_indices == list(range(7))

    def test_custom_eof_length(self):
        parser = FrameParser(eof_length=10)
        assert parser.eof_length == 10

    def test_eof_too_short_rejected(self):
        with pytest.raises(DecodingError):
            FrameParser(eof_length=1)
