"""Unit tests for the higher-level protocol substrate."""

import pytest

from repro.can.frame import data_frame, remote_frame
from repro.errors import ProtocolError
from repro.protocols.base import (
    AppMessage,
    BroadcastProtocol,
    KIND_ACCEPT,
    KIND_CONFIRM,
    KIND_DATA,
    KIND_RETRANS,
    build_protocol_network,
    decode_message,
    encode_message,
    message_ledger_key,
)


class TestCodec:
    def test_roundtrip(self):
        message = AppMessage(kind=KIND_DATA, origin=3, seq=17, payload=b"\xab")
        frame = encode_message(message, sender_id=3)
        decoded = decode_message(frame)
        assert decoded == message

    def test_retransmission_keeps_origin(self):
        message = AppMessage(kind=KIND_RETRANS, origin=2, seq=9)
        frame = encode_message(message, sender_id=7)
        decoded = decode_message(frame)
        assert decoded.origin == 2
        assert decoded.key == (2, 9)

    def test_control_frames_outrank_data_frames(self):
        data = encode_message(AppMessage(KIND_DATA, 0, 0), sender_id=0)
        confirm = encode_message(AppMessage(KIND_CONFIRM, 0, 0), sender_id=0)
        accept = encode_message(AppMessage(KIND_ACCEPT, 0, 0), sender_id=0)
        assert confirm.can_id.outranks(data.can_id)
        assert accept.can_id.outranks(data.can_id)

    def test_sender_id_disambiguates_retransmissions(self):
        a = encode_message(AppMessage(KIND_RETRANS, 0, 0), sender_id=1)
        b = encode_message(AppMessage(KIND_RETRANS, 0, 0), sender_id=2)
        assert a.can_id != b.can_id

    def test_decode_rejects_foreign_frames(self):
        assert decode_message(data_frame(0x700, b"")) is None
        assert decode_message(remote_frame(0x100, dlc=4)) is None
        assert decode_message(data_frame(0x100, b"\xff\x00\x00")) is None

    def test_payload_limit(self):
        with pytest.raises(ProtocolError):
            encode_message(
                AppMessage(KIND_DATA, 0, 0, payload=b"\x00" * 6), sender_id=0
            )

    def test_ledger_key_for_messages(self):
        frame = encode_message(AppMessage(KIND_DATA, 4, 2), sender_id=4)
        assert message_ledger_key(frame) == ("msg", 4, 2)

    def test_ledger_key_for_raw_frames(self):
        key = message_ledger_key(data_frame(0x700, b""))
        assert key[0] == "raw"


class TestAppNode:
    def _node(self):
        engine, nodes = build_protocol_network(BroadcastProtocol, 1)
        return engine, nodes[0]

    def test_broadcast_assigns_sequence_numbers(self):
        _, node = self._node()
        first = node.broadcast()
        second = node.broadcast()
        assert (first.seq, second.seq) == (0, 1)
        assert len(node.app_broadcasts) == 2

    def test_deliver_records_key_order(self):
        _, node = self._node()
        node.deliver(AppMessage(KIND_DATA, 1, 0), time=10)
        node.deliver(AppMessage(KIND_DATA, 2, 0), time=11)
        assert node.delivered_keys == [(1, 0), (2, 0)]
        assert node.has_delivered((1, 0))
        assert not node.has_delivered((9, 9))

    def test_correctness_follows_controller(self):
        _, node = self._node()
        assert node.correct
        node.controller.crash()
        assert not node.correct


class TestNetworkBuilder:
    def test_builds_unique_nodes(self):
        engine, nodes = build_protocol_network(BroadcastProtocol, 4)
        assert len(nodes) == 4
        assert len(engine.nodes) == 4
        assert [n.node_id for n in nodes] == [0, 1, 2, 3]

    def test_tick_hooks_registered(self):
        engine, nodes = build_protocol_network(BroadcastProtocol, 2)
        engine.run(5)  # would raise if hooks were broken
