"""Unit and scenario tests for the MajorCAN_m controller."""

import pytest

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import CanController
from repro.can.events import EventKind
from repro.can.fields import DATA, EOF, SAMPLING
from repro.can.frame import data_frame
from repro.core.majorcan import (
    DEFAULT_M,
    MajorCanController,
    majorcan_config,
)
from repro.errors import ConfigurationError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import fig4_behaviour, fig5

from helpers import run_one_frame


def _network(m=5):
    return [MajorCanController(name, m=m) for name in ("tx", "x", "y")]


class TestConfiguration:
    def test_default_m_is_five(self):
        node = MajorCanController("n")
        assert node.m == DEFAULT_M == 5

    def test_eof_and_delimiter_lengths(self):
        node = MajorCanController("n", m=4)
        assert node.config.eof_length == 8
        assert node.config.delimiter_length == 9

    def test_m_below_three_rejected(self):
        """With m <= 2 the scenario leading to CAN2' can still happen."""
        with pytest.raises(ConfigurationError):
            majorcan_config(2)
        with pytest.raises(ConfigurationError):
            MajorCanController("n", m=2)

    def test_inconsistent_config_rejected(self):
        from repro.can.controller_config import ControllerConfig

        with pytest.raises(ConfigurationError):
            MajorCanController("n", m=5, config=ControllerConfig(eof_length=7))

    def test_geometry(self):
        node = MajorCanController("n", m=5)
        assert node.window_start == 12
        assert node.window_end == 20
        assert node.majority == 5

    def test_window_has_2m_minus_1_bits(self):
        for m in (3, 5, 9):
            node = MajorCanController("n%d" % m, m=m)
            assert node.window_end - node.window_start + 1 == 2 * m - 1


class TestErrorFreeOperation:
    def test_clean_transfer(self):
        outcome = run_one_frame(_network(), data_frame(0x123, b"\x55"))
        assert outcome.all_delivered_once
        assert outcome.attempts == 1

    def test_frame_is_2m_minus_7_longer(self):
        """Best-case overhead check at the whole-simulation level."""
        major = run_one_frame(_network(5), data_frame(0x123, b"\x55"))
        standard = run_one_frame(
            [CanController(n) for n in ("tx", "x", "y")],
            data_frame(0x123, b"\x55"),
        )
        # Compare delivery times of receivers (delivery happens at the
        # end of EOF for MajorCAN, last-but-one bit for standard CAN).
        major_time = major.engine.node("x").deliveries[0].time
        can_time = standard.engine.node("x").deliveries[0].time
        # Standard CAN delivers at the last-but-one of 7 EOF bits
        # (index 5); MajorCAN at the end of its 2m bits (index 9).
        assert major_time - can_time == (2 * 5 - 7) + 1

    def test_mid_frame_errors_handled_as_standard(self):
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=DATA, index=3))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 2


class TestFirstSubfield:
    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_lone_error_votes_reject_then_retransmission(self, index):
        """A single first-subfield disturbance (with everyone else
        detecting the flag still inside the first sub-field) makes all
        nodes sample an empty window and reject consistently."""
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=index), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 2

    def test_error_at_bit_m_accepted_via_neighbours(self):
        """Boundary case from the paper: error detected at the m-th bit
        means everyone else sees the flag in the second sub-field, so
        they accept and notify with extended flags; the sampler agrees."""
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=4), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 1
        x = outcome.engine.node("x")
        verdicts = [e for e in x.events if e.kind == EventKind.SAMPLING_VERDICT]
        assert verdicts and verdicts[0].data["accept"]

    def test_sampling_window_size(self):
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=1), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        x = outcome.engine.node("x")
        verdict = [e for e in x.events if e.kind == EventKind.SAMPLING_VERDICT][0]
        assert verdict.data["samples"] == 2 * 5 - 1


class TestSecondSubfield:
    @pytest.mark.parametrize("index", [5, 6, 7, 8, 9])
    def test_error_accepts_with_extended_flag(self, index):
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=EOF, index=index), force=DOMINANT)]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 1
        x = outcome.engine.node("x")
        assert any(e.kind == EventKind.EXTENDED_FLAG_START for e in x.events)


class TestCrcErrorClass:
    def test_crc_error_never_accepts(self):
        """A node whose flag starts at the first EOF bit must reject
        without sampling; the frame is consistently retransmitted."""
        nodes = _network()
        injector = ScriptedInjector(
            view_faults=[ViewFault("x", Trigger(field=DATA, index=3))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once
        assert outcome.attempts == 2
        x = outcome.engine.node("x")
        assert not any(e.kind == EventKind.SAMPLING_VERDICT for e in x.events)


class TestSamplingRobustness:
    def test_majority_survives_m_minus_1_masked_samples(self):
        """Corrupt m-1 samples of a voting node: still accepts."""
        m = 5
        nodes = _network(m)
        faults = [ViewFault("x", Trigger(field=EOF, index=m - 1), force=DOMINANT)]
        window_start = m + 7
        faults += [
            ViewFault("x", Trigger(field=SAMPLING, index=window_start + k), force=RECESSIVE)
            for k in range(m - 1)
        ]
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), ScriptedInjector(view_faults=faults))
        assert outcome.all_delivered_once
        assert outcome.attempts == 1

    def test_phantom_dominant_samples_do_not_accept_alone(self):
        """m-1 phantom dominant samples are below the majority: the
        lone sampler still rejects (consistently with everyone)."""
        m = 5
        nodes = _network(m)
        faults = [ViewFault("x", Trigger(field=EOF, index=0), force=DOMINANT)]
        window_start = m + 7
        faults += [
            ViewFault("x", Trigger(field=SAMPLING, index=window_start + k), force=DOMINANT)
            for k in range(m - 1)
        ]
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), ScriptedInjector(view_faults=faults))
        assert outcome.all_delivered_once
        assert outcome.attempts == 2


class TestFig4Table:
    def test_row_structure(self):
        rows = fig4_behaviour(5)
        assert len(rows) == 11  # CRC + 10 EOF bits

    def test_crc_row(self):
        row = fig4_behaviour(5)[0]
        assert row.flag == "6-bit error flag"
        assert not row.sampling
        assert row.verdict == "rejected"

    def test_first_subfield_rows_sample(self):
        rows = fig4_behaviour(5)
        for row in rows[1:6]:
            assert row.flag == "6-bit error flag"
            assert row.sampling

    def test_second_subfield_rows_extend(self):
        rows = fig4_behaviour(5)
        for row in rows[6:]:
            assert row.flag == "extended error flag"
            assert not row.sampling
            assert row.verdict == "accepted"

    def test_boundary_bit_m_accepts_in_three_node_probe(self):
        """EOF bit m: the probe's neighbours extend, so it accepts."""
        rows = fig4_behaviour(5)
        assert rows[5].verdict == "accepted"

    def test_render_mentions_sampling(self):
        rows = fig4_behaviour(3)
        assert "sampling" in rows[1].render()

    @pytest.mark.parametrize("m", [3, 4, 6])
    def test_other_m_values(self, m):
        rows = fig4_behaviour(m)
        assert len(rows) == 2 * m + 1


class TestFig5:
    def test_five_errors_consistent(self):
        outcome = fig5()
        assert outcome.all_delivered_once
        assert outcome.errors_injected == 5
        assert outcome.attempts == 1

    def test_transmitter_used_extended_flag(self):
        outcome = fig5()
        tx = outcome.engine.node("tx")
        assert any(e.kind == EventKind.EXTENDED_FLAG_START for e in tx.events)

    def test_receivers_sampled_and_accepted(self):
        outcome = fig5()
        for name in ("x", "y"):
            node = outcome.engine.node(name)
            verdicts = [e for e in node.events if e.kind == EventKind.SAMPLING_VERDICT]
            assert verdicts and verdicts[0].data["accept"]
