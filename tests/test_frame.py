"""Unit tests for the frame model."""

import pytest

from repro.can.frame import MAX_DATA_LENGTH, Frame, data_frame, remote_frame
from repro.can.identifiers import CanId
from repro.errors import FrameError


class TestValidation:
    def test_default_dlc_matches_payload(self):
        frame = Frame(CanId(1), data=b"\x01\x02\x03")
        assert frame.dlc == 3

    def test_payload_too_long(self):
        with pytest.raises(FrameError):
            Frame(CanId(1), data=bytes(MAX_DATA_LENGTH + 1))

    def test_remote_with_data_rejected(self):
        with pytest.raises(FrameError):
            Frame(CanId(1), data=b"\x01", remote=True)

    def test_dlc_out_of_range(self):
        with pytest.raises(FrameError):
            Frame(CanId(1), dlc=16)

    def test_dlc_payload_mismatch(self):
        with pytest.raises(FrameError):
            Frame(CanId(1), data=b"\x01\x02", dlc=3)

    def test_remote_may_request_length(self):
        frame = Frame(CanId(1), remote=True, dlc=4)
        assert frame.dlc == 4
        assert frame.payload_bits == 0

    def test_dlc_above_eight_means_eight_bytes(self):
        frame = Frame(CanId(1), data=bytes(8), dlc=12)
        assert frame.effective_data_length == 8


class TestProperties:
    def test_payload_bits(self):
        assert Frame(CanId(1), data=b"\xff\x00").payload_bits == 16

    def test_identity_distinguishes_payloads(self):
        a = data_frame(0x123, b"\x01")
        b = data_frame(0x123, b"\x02")
        assert a.identity() != b.identity()

    def test_identity_includes_message_tag(self):
        a = data_frame(0x123, b"\x01", message_id="m1")
        b = data_frame(0x123, b"\x01", message_id="m2")
        assert a.identity() != b.identity()

    def test_tagged_copy(self):
        frame = data_frame(0x123, b"\x01")
        tagged = frame.tagged("m9", origin="n1")
        assert tagged.message_id == "m9"
        assert tagged.origin == "n1"
        assert tagged.data == frame.data
        assert frame.message_id is None

    def test_str_mentions_kind(self):
        assert "remote" in str(remote_frame(0x10, dlc=2))
        assert "data" in str(data_frame(0x10, b"\x01"))


class TestConstructors:
    def test_data_frame(self):
        frame = data_frame(0x456, b"\xab", extended=True, message_id="x")
        assert frame.can_id == CanId(0x456, extended=True)
        assert not frame.remote

    def test_remote_frame(self):
        frame = remote_frame(0x10, dlc=3)
        assert frame.remote
        assert frame.dlc == 3

    def test_frames_are_immutable(self):
        frame = data_frame(0x1, b"")
        with pytest.raises(AttributeError):
            frame.dlc = 5
