"""Controller tests: error detection, signalling and fault confinement."""


from repro.can.bits import DOMINANT
from repro.can.controller import CanController, STATE_BUS_OFF
from repro.can.controller_config import ControllerConfig
from repro.can.error_counters import ConfinementState, ErrorCounters
from repro.can.events import ErrorReason, EventKind
from repro.can.fields import ACK_DELIM, CRC, DATA
from repro.can.frame import data_frame
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.simulation.engine import SimulationEngine

from helpers import run_one_frame


def _nodes(*names, config=None):
    return [CanController(name, config) for name in names]


def _error_reasons(node):
    return [
        event.data["reason"]
        for event in node.events
        if event.kind == EventKind.ERROR_DETECTED
    ]


class TestBitErrorRecovery:
    def test_data_bit_error_causes_retransmission(self):
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rx1", Trigger(field=DATA, index=3))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.attempts == 2
        assert outcome.all_delivered_once

    def test_stuff_error_at_other_receivers(self):
        """rx1's error flag must be detected as a stuff violation or bit
        error by everyone else, globalising the local error."""
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rx1", Trigger(field=DATA, index=3))]
        )
        run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert _error_reasons(nodes[2])  # rx2 saw the globalised error

    def test_transmitter_bit_error_detected_by_compare(self):
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("tx", Trigger(field=DATA, index=2))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert ErrorReason.BIT in _error_reasons(nodes[0])
        assert outcome.all_delivered_once
        assert outcome.attempts == 2

    def test_crc_field_error(self):
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rx1", Trigger(field=CRC, index=7))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.all_delivered_once

    def test_multiple_consecutive_corrupted_attempts(self):
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("rx1", Trigger(field=DATA, index=1, occurrence=n))
                for n in (1, 2, 3)
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.attempts == 4
        assert outcome.all_delivered_once


class TestCrcErrorPath:
    def test_crc_error_flag_starts_at_first_eof_bit(self):
        """A receiver with a CRC mismatch must not ACK and must start
        its error flag at the bit following the ACK delimiter."""
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rx1", Trigger(field=DATA, index=3))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        rx1 = outcome.engine.node("rx1")
        detections = [
            event
            for event in rx1.events
            if event.kind == EventKind.ERROR_DETECTED
        ]
        assert detections[0].data["reason"] == ErrorReason.CRC
        assert detections[0].data["position"].startswith(ACK_DELIM)

    def test_single_nack_does_not_cause_ack_error(self):
        """Other receivers' dominant ACK covers rx1's missing one."""
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rx1", Trigger(field=DATA, index=3))]
        )
        run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert ErrorReason.ACK not in _error_reasons(nodes[0])


class TestFormErrors:
    def test_ack_delim_corruption(self):
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[
                ViewFault("rx1", Trigger(field=ACK_DELIM, index=0), force=DOMINANT)
            ]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert ErrorReason.FORM in _error_reasons(nodes[1])
        assert outcome.all_delivered_once


class TestErrorCounters:
    def test_unit_rules(self):
        counters = ErrorCounters()
        counters.on_receiver_error()
        assert counters.rec == 1
        counters.on_receiver_error(primary=True)
        assert counters.rec == 9
        counters.on_transmitter_error()
        assert counters.tec == 8
        counters.on_transmit_success()
        assert counters.tec == 7
        counters.on_receive_success()
        assert counters.rec == 8

    def test_floors_at_zero(self):
        counters = ErrorCounters()
        counters.on_transmit_success()
        counters.on_receive_success()
        assert (counters.tec, counters.rec) == (0, 0)

    def test_state_thresholds(self):
        counters = ErrorCounters()
        assert counters.state is ConfinementState.ERROR_ACTIVE
        counters.rec = 128
        assert counters.state is ConfinementState.ERROR_PASSIVE
        counters.rec = 0
        counters.tec = 256
        assert counters.state is ConfinementState.BUS_OFF

    def test_warning_at_96(self):
        counters = ErrorCounters()
        counters.tec = 95
        assert not counters.warning
        counters.on_transmitter_error()
        assert counters.warning
        assert counters.warnings_raised == 1

    def test_stuck_dominant_octet(self):
        counters = ErrorCounters()
        counters.on_stuck_dominant_octet(transmitter=True)
        assert counters.tec == 8
        counters.on_stuck_dominant_octet(transmitter=False)
        assert counters.rec == 8

    def test_reset(self):
        counters = ErrorCounters(tec=100, rec=100)
        counters.reset()
        assert (counters.tec, counters.rec) == (0, 0)

    def test_transmitter_counts_in_simulation(self):
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rx1", Trigger(field=DATA, index=3))]
        )
        run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        # +8 for the signalled error, -1 for the successful retry.
        assert nodes[0].counters.tec == 7

    def test_primary_receiver_counts_in_simulation(self):
        nodes = _nodes("tx", "rx1", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rx1", Trigger(field=DATA, index=3))]
        )
        run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        # +1 error, +8 primary, -1 successful reception of the retry.
        assert nodes[1].counters.rec == 8


class TestBusOff:
    def test_repeated_ack_errors_reach_bus_off(self):
        tx = CanController("tx")
        engine = SimulationEngine([tx])
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run(40000)
        assert tx.state == STATE_BUS_OFF
        assert tx.offline
        assert any(e.kind == EventKind.BUS_OFF for e in tx.events)

    def test_bus_off_node_stops_driving(self):
        tx = CanController("tx")
        engine = SimulationEngine([tx])
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run(40000)
        quiet_before = engine.bus.idle_tail()
        engine.run(100)
        assert engine.bus.idle_tail() >= quiet_before


class TestDisconnectOnWarning:
    def test_node_disconnects_before_error_passive(self):
        """The paper's recommendation: switch off at the warning limit
        so no node ever operates error-passive."""
        config = ControllerConfig(disconnect_on_warning=True)
        tx = CanController("tx", config)
        engine = SimulationEngine([tx])
        tx.submit(data_frame(0x100, b"\x01"))
        engine.run(40000)
        assert tx.disconnected
        assert tx.counters.state is not ConfinementState.ERROR_PASSIVE
        assert tx.counters.tec < 128
        assert any(e.kind == EventKind.WARNING_RAISED for e in tx.events)


class TestErrorPassiveImpairment:
    """Section 2's first impairment: an error-passive receiver cannot
    force a retransmission, so it alone omits the frame."""

    def _passive_receiver(self):
        node = CanController("rxp")
        node.counters.rec = 130  # force error-passive
        return node

    def test_passive_flag_is_invisible(self):
        nodes = [CanController("tx"), self._passive_receiver(), CanController("rx2")]
        injector = ScriptedInjector(
            view_faults=[ViewFault("rxp", Trigger(field=DATA, index=3))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        # The passive node rejected the frame but nobody noticed:
        assert outcome.deliveries == {"tx": 1, "rxp": 0, "rx2": 1}
        assert outcome.attempts == 1
        assert outcome.inconsistent_omission

    def test_active_receiver_same_fault_forces_retransmit(self):
        nodes = _nodes("tx", "rxp", "rx2")
        injector = ScriptedInjector(
            view_faults=[ViewFault("rxp", Trigger(field=DATA, index=3))]
        )
        outcome = run_one_frame(nodes, data_frame(0x123, b"\x55"), injector)
        assert outcome.deliveries == {"tx": 1, "rxp": 1, "rx2": 1}
        assert outcome.attempts == 2
