"""Differential tests pinning the batch-replay backend to the engine.

The batch backend (:mod:`repro.analysis.batchreplay`) is exact by
construction — every placement it classifies itself must match an
engine run bit for bit, and anything it cannot model must fall back to
the engine.  These tests enforce that contract:

* over the **full tail-site universe of every golden-corpus frame**
  (single flips exhaustively, multi-flips sampled with a fixed seed);
* over the **full header-site universe** (the F1 desync placements,
  classified through the stuff-aware header class cache) for every
  protocol, network size and announced field;
* over a **seeded random sweep** of 1-3 flip placements per protocol;
* through every wired entry point (``verify_consistency``,
  ``enumerate_tail_patterns``, ``monte_carlo_tail``, ``m_ablation``,
  the CLI ``--backend`` flag), asserting backend equality end to end.
"""

import itertools
import json
import random
from dataclasses import replace
from pathlib import Path

import pytest

from repro.analysis.batchreplay import (
    HAVE_NUMPY,
    BatchReplayEvaluator,
    classify_placements,
    tail_shape,
)
from repro.analysis.enumeration import enumerate_tail_patterns
from repro.analysis.montecarlo import monte_carlo_tail
from repro.analysis.sweeps import ablation_row
from repro.analysis.verification import (
    header_sites,
    tail_sites,
    verify_consistency,
)
from repro.can.frame import data_frame
from repro.cli import main
from repro.errors import AnalysisError
from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import make_controller, run_single_frame_scenario
from repro.tracestore import load_trace

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def _scenario_version(path):
    with open(path) as handle:
        return json.loads(handle.readline()).get("version")


#: Single-frame (schema v1) entries only — the tail-universe
#: differential rebuilds a scenario spec, which v2 traffic recordings
#: (multi-frame, no injector script) do not have.
CORPUS_FILES = [
    p for p in sorted(CORPUS_DIR.glob("*.jsonl")) if _scenario_version(p) == 1
]

#: Micro-model configs exercised by the random sweep.
SWEEP_CONFIGS = (
    ("can", 5),
    ("minorcan", 5),
    ("majorcan", 5),
    ("majorcan", 3),
)


def engine_oracle(protocol, m, node_names, combo, frame):
    """One independent engine run -> (per-node deliveries, attempts)."""
    nodes = [make_controller(protocol, name, m=m) for name in node_names]
    faults = [
        ViewFault(name, Trigger(field=field_name, index=index), force=None)
        for name, field_name, index in combo
    ]
    outcome = run_single_frame_scenario(
        "oracle",
        nodes,
        ScriptedInjector(view_faults=faults),
        frame=frame,
        record_bits=False,
        max_bits=60000,
    )
    return (
        tuple(outcome.deliveries[name] for name in node_names),
        outcome.attempts,
    )


def universe(protocol, m, node_names):
    """The paper's tail-site universe for one config."""
    probe = make_controller(protocol, "probe", m=m)
    return tail_sites(
        node_names,
        probe.config.eof_length,
        window_start=getattr(probe, "window_start", None),
        window_end=getattr(probe, "window_end", None),
    )


class TestCorpusDifferential:
    """Batch == engine over every golden-corpus frame's tail universe."""

    def test_corpus_is_present(self):
        assert len(CORPUS_FILES) >= 13

    @pytest.mark.parametrize(
        "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
    )
    def test_full_tail_universe_matches_engine(self, path):
        spec = load_trace(path).spec()
        protocols = {protocol for _, protocol, _ in spec.nodes}
        assert len(protocols) == 1, "corpus entries are single-protocol"
        protocol = protocols.pop()
        m = next(
            (node_m for _, _, node_m in spec.nodes if node_m is not None), 5
        )
        node_names = [name for name, _, _ in spec.nodes]
        sites = universe(protocol, m, node_names)
        singles = [(site,) for site in sites]
        rng = random.Random(0xC0FFEE)
        doubles = rng.sample(list(itertools.combinations(sites, 2)), 25)
        combos = singles + doubles

        evaluator = BatchReplayEvaluator(
            protocol, m, node_names, frame=spec.frame
        )
        outcomes = evaluator.evaluate(combos)
        assert evaluator.stats["engine"] == 0, (
            "corpus frames must be classified by the micro-model itself"
        )
        for combo, outcome in zip(combos, outcomes):
            assert outcome.via == "batch"
            expected = engine_oracle(protocol, m, node_names, combo, spec.frame)
            assert (outcome.deliveries, outcome.attempts) == expected, (
                path.stem,
                combo,
            )


class TestSeededRandomSweep:
    """Batch == engine on seeded random 1-3 flip placements."""

    @pytest.mark.parametrize("protocol,m", SWEEP_CONFIGS)
    def test_random_placements_match_engine(self, protocol, m):
        node_names = ["tx", "r1", "r2"]
        frame = data_frame(0x123, b"\x55", message_id="m")
        sites = universe(protocol, m, node_names)
        rng = random.Random(20260806 + m)
        combos = [
            tuple(rng.sample(sites, rng.randint(1, 3))) for _ in range(60)
        ]
        evaluator = BatchReplayEvaluator(protocol, m, node_names)
        for combo, outcome in zip(combos, evaluator.evaluate(combos)):
            expected = engine_oracle(protocol, m, node_names, combo, frame)
            assert (outcome.deliveries, outcome.attempts) == expected, combo

    @pytest.mark.skipif(not HAVE_NUMPY, reason="needs the numpy backend")
    def test_numpy_and_python_backends_agree(self):
        node_names = ["tx", "r1", "r2"]
        for protocol, m in SWEEP_CONFIGS:
            sites = universe(protocol, m, node_names)
            rng = random.Random(7 * m)
            combos = [(s,) for s in sites] + [
                tuple(rng.sample(sites, 2)) for _ in range(40)
            ]
            vec = BatchReplayEvaluator(
                protocol, m, node_names, backend="numpy"
            ).evaluate(combos)
            pure = BatchReplayEvaluator(
                protocol, m, node_names, backend="python"
            ).evaluate(combos)
            for a, b in zip(vec, pure):
                assert (a.deliveries, a.attempts) == (b.deliveries, b.attempts)


class TestHeaderDifferential:
    """Header flips ride the class cache; verdicts == engine exactly."""

    #: majorcan requires m >= 3, so its "small m" config is m=3.
    HEADER_CONFIGS = (
        ("can", 2),
        ("can", 5),
        ("minorcan", 2),
        ("minorcan", 5),
        ("majorcan", 3),
        ("majorcan", 5),
    )

    @pytest.mark.parametrize("protocol,m", HEADER_CONFIGS)
    def test_header_sites_universe_matches_engine(self, protocol, m):
        node_names = ("tx", "r1", "r2")
        evaluator = BatchReplayEvaluator(protocol, m, node_names)
        combos = [(site,) for site in header_sites(node_names, data_bits=8)]
        outcomes = evaluator.evaluate(combos)
        assert evaluator.stats["engine"] == 0, (
            "header sites must not bail to the full engine"
        )
        assert evaluator.stats["header"] == len(combos)
        for combo, outcome in zip(combos, outcomes):
            assert outcome.via == "batch"
            expected = engine_oracle(
                protocol, m, node_names, combo, evaluator.frame
            )
            assert (outcome.deliveries, outcome.attempts) == expected, combo

    @pytest.mark.parametrize("n_nodes", (2, 4))
    def test_all_announced_fields_match_engine(self, n_nodes):
        from repro.can.encoding import header_shape

        node_names = tuple(["tx"] + ["r%d" % i for i in range(1, n_nodes)])
        for protocol, m in (("can", 5), ("majorcan", 3)):
            evaluator = BatchReplayEvaluator(protocol, m, node_names)
            shape = header_shape(evaluator.frame, evaluator.shape.eof_length)
            combos = [
                ((name, field_name, index),)
                for (field_name, index) in sorted(shape.announced)
                for name in node_names
            ]
            outcomes = evaluator.evaluate(combos)
            assert evaluator.stats["engine"] == 0
            for combo, outcome in zip(combos, outcomes):
                expected = engine_oracle(
                    protocol, m, node_names, combo, evaluator.frame
                )
                assert (
                    outcome.deliveries,
                    outcome.attempts,
                ) == expected, (protocol, m, combo)

    def test_inert_header_sites_match_clean_run(self):
        # The default 1-byte payload never announces DATA index 60, and
        # SOF has a single bit: both triggers can never fire.
        evaluator = BatchReplayEvaluator("can", 5, ["tx", "r1", "r2"])
        clean, data_inert, sof_inert = evaluator.evaluate(
            [(), (("r1", "DATA", 60),), (("r1", "SOF", 3),)]
        )
        for outcome in (data_inert, sof_inert):
            assert outcome.via == "batch"
            assert (outcome.deliveries, outcome.attempts) == (
                clean.deliveries,
                clean.attempts,
            )
        assert evaluator.stats["engine"] == 0

    def test_multi_flip_header_combos_stay_off_the_engine(self):
        # Header+header and header+tail combos classify through the
        # cached reduced-run path — no full-network engine runs.
        evaluator = BatchReplayEvaluator("can", 5, ["tx", "r1", "r2"])
        header = ("r1", "DATA", 0)
        tail = ("r2", "EOF", 5)
        combos = [(header, ("r2", "DATA", 1)), (header, tail)]
        outcomes = evaluator.evaluate(combos)
        assert evaluator.stats["engine"] == 0
        assert evaluator.stats["header"] == 2
        frame = evaluator.frame
        for combo, outcome in zip(combos, outcomes):
            assert outcome.via == "batch"
            expected = engine_oracle("can", 5, ("tx", "r1", "r2"), combo, frame)
            assert (outcome.deliveries, outcome.attempts) == expected

    def test_inert_header_plus_tail_flip_stays_vectorised(self):
        node_names = ("tx", "r1", "r2")
        evaluator = BatchReplayEvaluator("can", 5, node_names)
        combo = (("r1", "DATA", 60), ("r2", "EOF", 6))
        (outcome,) = evaluator.evaluate([combo])
        assert outcome.via == "batch"
        assert evaluator.stats["engine"] == 0
        expected = engine_oracle("can", 5, node_names, combo, evaluator.frame)
        assert (outcome.deliveries, outcome.attempts) == expected


class TestRouting:
    """Placements outside the micro-model go to the engine oracle."""

    def test_duplicate_sites_cancel_by_parity(self):
        # Duplicate triggers on one position all fire at the same first
        # announcement and a flip of a flip is the identity, so an even
        # repeat count is a clean run and an odd one a single flip —
        # matching the engine without ever invoking it.
        evaluator = BatchReplayEvaluator("can", 5, ["tx", "r1", "r2"])
        node_names = ("tx", "r1", "r2")
        site = ("r1", "EOF", 5)
        even, odd, clean, single = evaluator.evaluate(
            [(site, site), (site, site, site), (), (site,)]
        )
        assert evaluator.stats["engine"] == 0
        assert even.via == "batch" and odd.via == "batch"
        assert (even.deliveries, even.attempts) == (
            clean.deliveries,
            clean.attempts,
        )
        assert (odd.deliveries, odd.attempts) == (
            single.deliveries,
            single.attempts,
        )
        for combo, outcome in ((((site, site)), even), ((site, site, site), odd)):
            expected = engine_oracle(
                "can", 5, node_names, combo, evaluator.frame
            )
            assert (outcome.deliveries, outcome.attempts) == expected

    def test_inert_sites_match_clean_run(self):
        evaluator = BatchReplayEvaluator("can", 5, ["tx", "r1", "r2"])
        clean, inert = evaluator.evaluate([(), (("r1", "EOF", 99),)])
        assert clean.via == "batch" and inert.via == "batch"
        assert (clean.deliveries, clean.attempts) == (
            inert.deliveries,
            inert.attempts,
        )
        assert clean.deliveries == (1, 1, 1)

    def test_unknown_node_falls_back_to_engine(self):
        evaluator = BatchReplayEvaluator("can", 5, ["tx", "r1"])
        (outcome,) = evaluator.evaluate([(("ghost", "EOF", 5),)])
        assert outcome.via == "engine"


class TestWiredEntryPoints:
    """backend="batch" is result-identical at every integration point."""

    def test_verify_consistency_equality(self):
        engine = verify_consistency("can", m=5, n_nodes=3, max_flips=2)
        batch = verify_consistency(
            "can", m=5, n_nodes=3, max_flips=2, backend="batch"
        )
        assert engine.runs == batch.runs
        assert [str(c) for c in engine.counterexamples] == [
            str(c) for c in batch.counterexamples
        ]
        assert batch.counterexamples, "the CAN 2-flip universe has IMO hits"

    def test_verify_consistency_equality_majorcan(self):
        engine = verify_consistency("majorcan", m=3, n_nodes=3, max_flips=1)
        batch = verify_consistency(
            "majorcan", m=3, n_nodes=3, max_flips=1, backend="batch"
        )
        assert engine.runs == batch.runs
        assert [str(c) for c in engine.counterexamples] == [
            str(c) for c in batch.counterexamples
        ]

    def test_verify_consistency_batch_parallel_path(self):
        serial = verify_consistency(
            "can", m=5, n_nodes=3, max_flips=2, backend="batch"
        )
        parallel = verify_consistency(
            "can", m=5, n_nodes=3, max_flips=2, backend="batch", jobs=2
        )
        assert serial.runs == parallel.runs
        assert [str(c) for c in serial.counterexamples] == [
            str(c) for c in parallel.counterexamples
        ]

    def test_verify_stop_at_first_on_batch(self):
        result = verify_consistency(
            "can",
            m=5,
            n_nodes=3,
            max_flips=2,
            backend="batch",
            stop_at_first=True,
        )
        assert len(result.counterexamples) == 1

    def test_enumerate_equality(self):
        for protocol in ("can", "minorcan", "majorcan"):
            engine = enumerate_tail_patterns(
                protocol, n_nodes=3, window=2, max_flips=2
            )
            batch = enumerate_tail_patterns(
                protocol, n_nodes=3, window=2, max_flips=2, backend="batch"
            )
            assert len(engine.outcomes) == len(batch.outcomes)
            for a, b in zip(engine.outcomes, batch.outcomes):
                assert (
                    a.pattern,
                    a.consistent,
                    a.inconsistent_omission,
                    a.double_reception,
                    a.attempts,
                ) == (
                    b.pattern,
                    b.consistent,
                    b.inconsistent_omission,
                    b.double_reception,
                    b.attempts,
                )
            assert engine.p_inconsistent_omission == pytest.approx(
                batch.p_inconsistent_omission, abs=0.0
            )

    def test_montecarlo_equality(self):
        engine = monte_carlo_tail("can", trials=200, seed=42)
        batch = monte_carlo_tail("can", trials=200, seed=42, backend="batch")
        assert (
            engine.imo,
            engine.double_reception,
            engine.inconsistent,
            engine.no_fault_trials,
            engine.flips_total,
        ) == (
            batch.imo,
            batch.double_reception,
            batch.inconsistent,
            batch.no_fault_trials,
            batch.flips_total,
        )

    def test_montecarlo_batch_jobs_invariant(self):
        serial = monte_carlo_tail(
            "majorcan", trials=150, seed=11, backend="batch"
        )
        parallel = monte_carlo_tail(
            "majorcan", trials=150, seed=11, backend="batch", jobs=2
        )
        assert (serial.imo, serial.inconsistent, serial.flips_total) == (
            parallel.imo,
            parallel.inconsistent,
            parallel.flips_total,
        )

    def test_montecarlo_counts_identical_across_backend_and_jobs(self):
        """The seeded chunked draw is part of the experiment identity.

        The (trials, sites) matrix draw consumes each chunk's PCG64
        stream exactly like the scalar per-trial draws it replaced, so
        every count is bit-identical across backend=engine/batch and
        jobs=1/4 for the same seed.
        """
        results = {
            (backend, jobs): monte_carlo_tail(
                "can", trials=96, seed=20260806, backend=backend, jobs=jobs
            )
            for backend in ("engine", "batch")
            for jobs in (1, 4)
        }
        reference = results[("engine", 1)]
        key = lambda r: (  # noqa: E731
            r.imo,
            r.double_reception,
            r.inconsistent,
            r.no_fault_trials,
            r.flips_total,
        )
        for label, result in results.items():
            assert key(result) == key(reference), label

    def test_montecarlo_backend_stats_surfaced(self):
        batch = monte_carlo_tail("can", trials=64, seed=5, backend="batch")
        engine = monte_carlo_tail("can", trials=64, seed=5)
        assert engine.backend_stats is None
        assert batch.backend_stats is not None
        classified = sum(batch.backend_stats.values())
        assert classified == batch.trials - batch.no_fault_trials

    def test_verify_backend_stats_surfaced(self):
        node_names = ["tx", "r1", "r2"]
        extra = header_sites(node_names, data_bits=8)
        serial = verify_consistency(
            "can",
            m=5,
            n_nodes=3,
            max_flips=1,
            extra_sites=extra,
            backend="batch",
        )
        parallel = verify_consistency(
            "can",
            m=5,
            n_nodes=3,
            max_flips=1,
            extra_sites=extra,
            backend="batch",
            jobs=2,
        )
        engine = verify_consistency(
            "can", m=5, n_nodes=3, max_flips=1, extra_sites=extra
        )
        assert engine.backend_stats is None
        for result in (serial, parallel):
            assert result.backend_stats is not None
            assert sum(result.backend_stats.values()) == result.runs
            assert result.backend_stats["header"] == len(extra)
            assert result.backend_stats["engine"] == 0

    def test_ablation_row_equality(self):
        engine = ablation_row(3, tail_flips=1, check_f1=True)
        batch = ablation_row(3, tail_flips=1, check_f1=True, backend="batch")
        assert replace(engine, backend_stats=None) == replace(
            batch, backend_stats=None
        )
        assert engine.backend_stats is None
        assert batch.backend_stats is not None
        assert batch.backend_stats["engine"] == 0

    def test_classify_placements_hit_tuples(self):
        from repro.analysis.verification import classify_placement

        node_names = ("tx", "r1", "r2")
        sites = universe("can", 5, list(node_names))
        combos = [(site,) for site in sites]
        hits = classify_placements("can", 5, node_names, combos, b"\x55")
        for combo, hit in zip(combos, hits):
            assert hit == classify_placement(
                "can", 5, node_names, combo, b"\x55"
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(AnalysisError):
            verify_consistency("can", backend="cuda")
        with pytest.raises(AnalysisError):
            enumerate_tail_patterns("can", backend="cuda")
        with pytest.raises(AnalysisError):
            monte_carlo_tail("can", trials=1, backend="cuda")
        with pytest.raises(ValueError):
            BatchReplayEvaluator("can", 5, ["tx", "r1"], backend="cuda")


class TestSignalShapeHook:
    """The precompiled error-signalling table flows from the protocol."""

    def test_can_signal_shape(self):
        shape = make_controller("can", "probe").signal_shape()
        assert shape.error_flag == 6
        assert shape.overload_flag == 6
        assert shape.delimiter == 8
        assert shape.intermission == 3
        assert shape.extended_flag_end == 0

    def test_majorcan_signal_shape_tracks_m(self):
        for m in (3, 5, 7):
            probe = make_controller("majorcan", "probe", m=m)
            shape = probe.signal_shape()
            assert shape.delimiter == probe.config.delimiter_length
            assert shape.extended_flag_end == probe.window_end == 3 * m + 5

    def test_tail_shape_consumes_the_hook(self):
        frame = data_frame(0x123, b"\x55", message_id="m")
        shape = tail_shape("majorcan", 5, frame)
        assert dict(shape.signal_shapes)["extended_flag_end"] == 20
        assert dict(shape.signal_shapes)["delimiter"] == 11
        assert shape.supported


class TestStatsHelpers:
    def test_format_stats_line(self):
        from repro.analysis.batchreplay import format_stats

        line = format_stats({"batch": 10, "scalar": 0, "header": 4, "engine": 2})
        assert line == (
            "backend stats: batch=10 scalar=0 header=4 resume=0 engine=2 "
            "(total 16)"
        )
        line = format_stats({"batch": 2, "resume": 1})
        assert line == (
            "backend stats: batch=2 scalar=0 header=0 resume=1 engine=0 "
            "(total 3)"
        )

    def test_engine_share_notice_thresholds(self):
        from repro.analysis.batchreplay import engine_share_notice

        assert engine_share_notice({}) is None
        assert engine_share_notice({"batch": 90, "engine": 10}) is None
        notice = engine_share_notice({"batch": 80, "engine": 20})
        assert notice is not None and "20%" in notice

    def test_warm_shapes_populates_caches(self):
        from repro.analysis.batchreplay import warm_shapes
        from repro.can.encoding import header_shape

        warm_shapes()
        frame = data_frame(0x123, b"\x55", message_id="m")
        assert tail_shape.cache_info().currsize >= 7
        assert header_shape.cache_info().currsize >= 1
        # The warmed entries cover the sweep protocols for this frame.
        assert tail_shape("majorcan", 3, frame).supported


def _strip_stats(output):
    """Drop the batch-only stats/notice lines for backend comparisons."""
    return "".join(
        line
        for line in output.splitlines(keepends=True)
        if "backend stats:" not in line and "notice:" not in line
    )


class TestCli:
    def test_verify_backend_batch(self, capsys):
        engine_rc = main(["verify", "--protocol", "can", "--flips", "1"])
        engine_out = capsys.readouterr().out
        batch_rc = main(
            ["verify", "--protocol", "can", "--flips", "1", "--backend", "batch"]
        )
        batch_out = capsys.readouterr().out
        assert engine_rc == batch_rc == 1
        assert engine_out == _strip_stats(batch_out)
        assert "backend stats: batch=" in batch_out

    def test_engine_backend_prints_no_stats(self, capsys):
        main(["verify", "--protocol", "can", "--flips", "1"])
        assert "backend stats:" not in capsys.readouterr().out

    def test_montecarlo_backend_batch(self, capsys):
        assert (
            main(
                [
                    "montecarlo",
                    "--trials",
                    "64",
                    "--seed",
                    "5",
                    "--backend",
                    "batch",
                ]
            )
            == 0
        )
        batch_out = capsys.readouterr().out
        assert main(["montecarlo", "--trials", "64", "--seed", "5"]) == 0
        assert capsys.readouterr().out == _strip_stats(batch_out)
        assert "backend stats: batch=" in batch_out

    def test_enumerate_backend_batch(self, capsys):
        assert main(["enumerate", "--backend", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert main(["enumerate"]) == 0
        assert capsys.readouterr().out == _strip_stats(batch_out)
        assert "backend stats: batch=" in batch_out

    def test_backend_choices_validated(self):
        with pytest.raises(SystemExit):
            main(["verify", "--backend", "cuda"])
