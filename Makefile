# Convenience targets for the MajorCAN reproduction.

PYTHON ?= python
# JSON report written by bench-perf (override: make bench-perf OUT=foo.json).
OUT ?= BENCH_PR10.json

.PHONY: install test lint bench bench-perf bench-batch corpus-check corpus-update examples experiments clean

install:
	pip install -e . || $(PYTHON) setup.py develop

# Same invocation as the tier-1 CI job — works without an editable install.
test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q tests/

# Uses ruff (configured in pyproject.toml) when available; otherwise the
# stdlib fallback checker in tools/lint.py covers the same error classes.
lint:
	$(PYTHON) tools/lint.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Timing harness for the controller fast path, the parallel trial layer,
# the engine bit loop and the batch-replay backend; writes $(OUT) at the
# repo root.
bench-perf:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_harness.py --out $(OUT)

# Only the vectorised batch-enumeration section (engine vs batch backend
# on identical verify_consistency universes, verdicts asserted equal).
bench-batch:
	PYTHONPATH=src $(PYTHON) benchmarks/perf_harness.py --section batch_enumeration --out BENCH_BATCH.json

# Golden-scenario trace corpus (see docs/traces.md).  check replays
# every recording and fails on any behavioural diff; update re-records
# the corpus after an *intended* behaviour change (review the diff!).
corpus-check:
	PYTHONPATH=src $(PYTHON) -m repro.cli corpus check --dir corpus

corpus-update:
	PYTHONPATH=src $(PYTHON) -m repro.cli corpus update --dir corpus

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/scenario_gallery.py
	$(PYTHON) examples/table1_reproduction.py
	$(PYTHON) examples/protocol_comparison.py
	$(PYTHON) examples/automotive_network.py
	$(PYTHON) examples/rufino_protocols.py
	$(PYTHON) examples/bounded_verification.py
	$(PYTHON) examples/dual_bus.py
	$(PYTHON) examples/desync_finding.py

experiments:
	$(PYTHON) -m repro.cli table1
	$(PYTHON) -m repro.cli scenarios
	$(PYTHON) -m repro.cli fig4
	$(PYTHON) -m repro.cli matrix
	$(PYTHON) -m repro.cli overhead
	$(PYTHON) -m repro.cli ablation
	$(PYTHON) -m repro.cli reliability
	$(PYTHON) -m repro.cli geometry
	$(PYTHON) -m repro.cli verify --flips 1

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
