"""Protocol fix vs redundancy fix: MajorCAN against a dual CAN bus.

The paper's reference [2] (by the same group) pursues fault tolerance
through *media redundancy* — two independent CAN buses, every message
on both.  The paper itself pursues a *protocol* fix.  This example
puts the two side by side against the Fig. 3a disturbance pattern:

* single CAN bus: the pattern (2 errors) causes the omission;
* dual CAN bus: the same pattern on ONE channel is masked by the
  replica; striking BOTH channels (4 errors) brings the omission back;
* single MajorCAN_5 bus: consistent up to 5 errors per frame, with a
  3-11 bit frame overhead instead of a whole second bus.

Run with::

    python examples/dual_bus.py
"""

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.faults import ScriptedInjector, Trigger, ViewFault
from repro.faults.scenarios import fig3
from repro.redundancy import DualBusSystem

FRAME = data_frame(0x123, b"\x55", message_id="cmd")


def fig3_injector(x_port, tx_port, eof_length=7):
    last = eof_length - 1
    return ScriptedInjector(
        view_faults=[
            ViewFault(x_port, Trigger(field=EOF, index=last - 1), force=DOMINANT),
            ViewFault(tx_port, Trigger(field=EOF, index=last), force=RECESSIVE),
        ]
    )


def dual_bus_run(injectors, label):
    system = DualBusSystem(["tx", "x", "y"], injectors=injectors)
    system.node("tx").submit(FRAME)
    system.run_until_idle()
    outcome = system.classify(FRAME)
    verdict = "CONSISTENT " if outcome.consistent else "INCONSISTENT"
    print("  %-34s %s %s" % (label, verdict, outcome.counts))


def main():
    print("Fig. 3a pattern, three architectures:\n")

    single = fig3("can")
    print(
        "  %-34s %s %s"
        % (
            "single CAN bus (2 errors)",
            "INCONSISTENT" if not single.consistent else "CONSISTENT ",
            single.deliveries,
        )
    )
    dual_bus_run(
        {"A": fig3_injector("x.A", "tx.A")},
        "dual CAN, channel A hit (2 errors)",
    )
    dual_bus_run(
        {
            "A": fig3_injector("x.A", "tx.A"),
            "B": fig3_injector("x.B", "tx.B"),
        },
        "dual CAN, both channels (4 errors)",
    )
    major = fig3("majorcan")
    print(
        "  %-34s %s %s"
        % (
            "single MajorCAN_5 bus (2 errors)",
            "CONSISTENT " if major.consistent else "INCONSISTENT",
            major.deliveries,
        )
    )
    print()
    print("Redundancy masks single-channel disturbances at the cost of a")
    print("full second bus and transceivers per node; MajorCAN removes the")
    print("inconsistency class itself for 2m-7..4m-9 bits per frame, and")
    print("the two compose (see tests/test_dualbus.py::TestDualMajorCan).")


if __name__ == "__main__":
    main()
