"""Compare every protocol on properties and cost.

Regenerates the paper's qualitative analysis as two property matrices
(link-layer and higher-level protocols) and the overhead comparison of
Sections 5-6.

Run with::

    python examples/protocol_comparison.py
"""

from repro.analysis.overhead import (
    best_case_overhead_bits,
    higher_level_protocol_overhead_bits,
    measured_overhead,
    worst_case_overhead_bits,
)
from repro.properties.matrix import core_matrix, hlp_matrix, render_matrix


def property_matrices():
    print("Link-layer protocols (scenarios of Figs. 1 and 3):")
    print(render_matrix(core_matrix()))
    print()
    print("Higher-level protocols of Rufino et al. over standard CAN:")
    print(render_matrix(hlp_matrix()))
    print()
    print("Reading the tables:")
    print(" * CAN loses At-most-once in fig1b (double reception) and")
    print("   Agreement in fig1c/fig3 (inconsistent omissions);")
    print(" * MinorCAN fixes the fig1 family but not fig3;")
    print(" * MajorCAN keeps AB1-AB5 everywhere;")
    print(" * EDCAN alone survives fig3 (diffusion) but never provides")
    print("   total order; RELCAN/TOTCAN only recover from transmitter")
    print("   failures, so the fig3 omission is permanent for them.")
    print()


def overhead_comparison():
    print("MajorCAN_m overhead versus standard CAN (bits per frame):")
    for m in (3, 4, 5):
        measured = measured_overhead(m)
        print(
            "  m=%d: best %+d (formula %+d), worst %+d (formula %+d)"
            % (
                m,
                measured.best_case,
                best_case_overhead_bits(m),
                measured.worst_case,
                worst_case_overhead_bits(m),
            )
        )
    print()
    print("Per-message cost of the higher-level protocols (paper profile,")
    print("110-bit frames, 31 receivers), against MajorCAN_5's 11 bits:")
    for protocol, bits in sorted(
        higher_level_protocol_overhead_bits(110, 31).items()
    ):
        print("  %-7s ~%5d extra bits (>= one extra frame per message)" % (protocol, bits))


def main():
    property_matrices()
    overhead_comparison()


if __name__ == "__main__":
    main()
