"""Bounded verification: exploring the protocol's entire error space.

The paper's future work plans formal verification of the MajorCAN
design.  This example performs the simulation analogue: it enumerates
*every* placement of up to two view errors over the paper's error
universe (the frame tail and the agreement window), runs each through
the bit-level simulator, and prints the complete counterexample
census — for standard CAN (whose only 2-error omissions turn out to be
exactly the Fig. 3a pattern) and for MajorCAN_5 (none).  It then
checks the Section 5 design arithmetic as executable invariants.

Run with::

    python examples/bounded_verification.py
"""

from collections import Counter

from repro.analysis.geometry import geometry_report
from repro.analysis.verification import header_sites, verify_consistency


def census(protocol, **kwargs):
    result = verify_consistency(protocol, **kwargs)
    print(result.summary())
    kinds = Counter(ce.kind for ce in result.counterexamples)
    if kinds:
        print("  by kind:", dict(kinds))
        imos = [ce for ce in result.counterexamples if ce.kind == "imo"]
        for counterexample in imos[:5]:
            print("   ", counterexample)
    print()
    return result


def main():
    print("== standard CAN, <= 2 errors over the tail universe ==")
    can = census("can", m=5, n_nodes=3, max_flips=2)
    imos = [ce for ce in can.counterexamples if ce.kind == "imo"]
    print("Every minimal omission is the Fig. 3a pattern: a transmitter")
    print("masked at its last EOF bit plus one receiver disturbed at the")
    print("last-but-one (%d such placements found).\n" % len(imos))

    print("== MajorCAN_5, <= 2 errors over tail + sampling window ==")
    census("majorcan", m=5, n_nodes=3, max_flips=2)

    print("== MajorCAN_5, single errors over the frame header ==")
    print("(outside the paper's universe: exposes finding F1)")
    census(
        "majorcan",
        m=5,
        n_nodes=3,
        max_flips=1,
        extra_sites=header_sites(["tx", "r1", "r2"]),
    )

    print("== Section 5 design arithmetic, checked ==")
    print(geometry_report(5))


if __name__ == "__main__":
    main()
