"""Quickstart: simulate a CAN bus, inject the paper's key fault, and
watch MajorCAN fix it.

Run with::

    python examples/quickstart.py
"""

from repro.can import CanController, data_frame
from repro.core import MajorCanController
from repro.faults import ScriptedInjector, Trigger, ViewFault
from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.fields import EOF
from repro.simulation import SimulationEngine


def error_free_transfer():
    """Three standard CAN nodes, one frame, no faults."""
    transmitter = CanController("tx")
    receiver_a = CanController("rx-a")
    receiver_b = CanController("rx-b")
    engine = SimulationEngine([transmitter, receiver_a, receiver_b])

    transmitter.submit(data_frame(0x123, b"\xbe\xef", message_id="hello"))
    engine.run_until_idle(5000)

    print("-- error-free transfer --")
    for node in engine.nodes:
        frames = [str(delivery.frame) for delivery in node.deliveries]
        print("  %-5s delivered: %s" % (node.name, frames))
    print("  bus busy for %d bit times" % engine.time)
    print()


def the_new_inconsistency(controller_class, label):
    """The paper's Fig. 3a disturbance pattern under a given protocol.

    Two single-bit view errors: receiver x sees a dominant level in the
    last-but-one EOF bit (and rejects); the transmitter's view of x's
    error flag is masked (and it believes the transfer succeeded).
    """
    transmitter = controller_class("tx")
    x = controller_class("x")
    y = controller_class("y")
    last = transmitter.config.eof_length - 1
    injector = ScriptedInjector(
        view_faults=[
            ViewFault("x", Trigger(field=EOF, index=last - 1), force=DOMINANT),
            ViewFault("tx", Trigger(field=EOF, index=last), force=RECESSIVE),
        ]
    )
    engine = SimulationEngine([transmitter, x, y], injector=injector)
    transmitter.submit(data_frame(0x123, b"\xbe\xef"))
    engine.run_until_idle(5000)

    counts = {node.name: len(node.deliveries) for node in engine.nodes}
    verdict = "CONSISTENT" if len(set(counts.values())) == 1 else "INCONSISTENT"
    print("-- Fig. 3a pattern under %-8s -> %s %s" % (label, verdict, counts))


def main():
    error_free_transfer()
    the_new_inconsistency(CanController, "CAN")
    the_new_inconsistency(MajorCanController, "MajorCAN")
    print()
    print("Standard CAN leaves x without the frame while the transmitter")
    print("believes everything went fine; MajorCAN's two-sub-field EOF and")
    print("extended error flags make every node accept.")


if __name__ == "__main__":
    main()
