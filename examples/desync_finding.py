"""Finding F1: a single mid-frame error can still defeat MajorCAN_5.

While reproducing the paper, property-based testing found an error
channel outside its analysis: a single view error on a *DLC bit*
desynchronises one receiver's idea of where the frame ends.  The
desynchronised receiver keeps destuffing into the real frame tail and
hits a stuff violation six bits after the (dominant) ACK slot — i.e.
at EOF bit 5 — so its error flag starts at EOF bit 6.  For m <= 5 that
is the *second* sub-field: every other node is obliged to read the
flag as an extended acceptance notification.  They accept; the
desynchronised node rejects; the transmitter never retransmits — an
inconsistent omission caused by ONE channel error.

For m >= 6 the same flag lands in the first sub-field, everyone
samples an empty window, and the frame is consistently rejected and
retransmitted: increasing m past the paper's proposed value closes
this channel.

Run with::

    python examples/desync_finding.py
"""

from repro.can import CanController, data_frame
from repro.core import MajorCanController, MinorCanController
from repro.faults import ErrorBudgetInjector
from repro.faults.scenarios import run_single_frame_scenario

#: Bit time of the DLC bit whose corruption desynchronises receiver x
#: for the frame used below (id 0x123, payload 0x55).
DLC_FLIP_TIME = 18


def run(protocol, m=5):
    if protocol == "majorcan":
        nodes = [MajorCanController(name, m=m) for name in ("tx", "x", "y")]
        label = "MajorCAN_%d" % m
    else:
        cls = {"can": CanController, "minorcan": MinorCanController}[protocol]
        nodes = [cls(name) for name in ("tx", "x", "y")]
        label = nodes[0].protocol_name
    outcome = run_single_frame_scenario(
        "desync",
        nodes,
        ErrorBudgetInjector([(DLC_FLIP_TIME, "x")]),
        frame=data_frame(0x123, b"\x55"),
        record_bits=False,
    )
    verdict = "CONSISTENT " if outcome.consistent else "INCONSISTENT"
    extra = " <- IMO from a single error!" if outcome.inconsistent_omission else ""
    print(
        "  %-12s %s deliveries=%s attempts=%d%s"
        % (label, verdict, outcome.deliveries, outcome.attempts, extra)
    )
    return outcome


def main():
    print(__doc__)
    print("One view flip on x's DLC bit (bit time %d):" % DLC_FLIP_TIME)
    run("can")
    run("minorcan")
    for m in (3, 4, 5, 6, 7):
        run("majorcan", m=m)
    print()
    print("The m <= 5 variants omit at x; m >= 6 resists (the flag falls in")
    print("the first sub-field).  Section 5 sizes m only against *channel*")
    print("errors near the frame end; receiver desynchronisation shortens")
    print("the effective distance between 'error detected' and 'flag lands")
    print("in the acceptance window'.")


if __name__ == "__main__":
    main()
