"""Reproduce Table 1 and validate the model behind it.

Three independent views of the same question — how often does the new
inconsistency scenario strike?

1. the closed forms of equations 4 and 5 at the paper's operating
   point (this *is* Table 1);
2. exhaustive enumeration of every tail error pattern for a small
   network, simulated bit by bit;
3. Monte-Carlo sampling over the same fault universe.

Run with::

    python examples/table1_reproduction.py
"""

from repro.analysis import (
    enumerate_tail_patterns,
    equation4_tail_prediction,
    generate_table1,
    render_table1,
)
from repro.analysis.montecarlo import monte_carlo_tail
from repro.analysis.table1 import PAPER_TABLE1, relative_error
from repro.faults.models import REFERENCE_INCIDENT_RATE


def analytical_table():
    rows = generate_table1()
    print(render_table1(rows))
    print()
    print("agreement with the published table:")
    for row in rows:
        paper = PAPER_TABLE1[row.ber]
        print(
            "  ber=%.0e: IMOnew within %.2f%%, IMO* within %.2f%% of the paper"
            % (
                row.ber,
                100 * relative_error(row.imo_new_per_hour, paper["imo_new"]),
                100 * relative_error(row.imo_star_per_hour, paper["imo_star"]),
            )
        )
    print()
    print(
        "every IMOnew rate exceeds the %.0e/hour dependability target,"
        % REFERENCE_INCIDENT_RATE
    )
    print("which is the paper's motivation for modifying the protocol.")
    print()


def exhaustive_validation():
    print("-- exhaustive validation (3 nodes, 2-bit tail window) --")
    result = enumerate_tail_patterns("can", n_nodes=3, window=2, ber_star=1e-4)
    predicted = equation4_tail_prediction(1e-4, 3, 110)
    print("  P(IMO) by enumerating all %d patterns : %.6e" % (
        len(result.outcomes), result.p_inconsistent_omission))
    print("  P(IMO) by equation 4                  : %.6e" % predicted)
    minimal = [p for p in result.imo_patterns() if len(p) == 2]
    print("  minimal IMO patterns:", minimal)
    print("  (node 0 = transmitter at the last EOF bit, plus one receiver")
    print("   at the last-but-one bit: exactly the Fig. 3a structure)")
    print()


def monte_carlo_validation():
    print("-- Monte-Carlo cross-check (inflated ber* = 0.08) --")
    mc = monte_carlo_tail("can", n_nodes=3, ber_star=0.08, trials=800, seed=7)
    exact = enumerate_tail_patterns(
        "can", n_nodes=3, window=2, ber_star=0.08, tau_data=2
    )
    low, high = mc.imo_confidence_interval()
    print("  sampled P(IMO) = %.4f  (95%% CI [%.4f, %.4f])" % (mc.p_imo, low, high))
    print("  exact   P(IMO) = %.4f" % exact.p_inconsistent_omission)


def main():
    analytical_table()
    exhaustive_validation()
    monte_carlo_validation()


if __name__ == "__main__":
    main()
