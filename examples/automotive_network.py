"""An automotive-style network: a safety-critical broadcast under fire.

The paper's motivation is distributed control in vehicles, where a
message that half the ECUs never saw (an inconsistently omitted brake
command) is a safety hazard.  Operationally such events are rare —
Table 1 puts them at 1e-6..1e-3 per *hour* — so this example makes
them observable by injecting the paper's Fig. 3 tail-disturbance
pattern into a fraction of the rounds, on top of background traffic
from seven other ECUs.

Each round: the ``brakes`` ECU broadcasts a command (highest priority,
first on the bus) while other ECUs queue background frames.  With
probability ``ATTACK_PROBABILITY`` the round suffers the two-bit
disturbance of Fig. 3a: one receiver's view of the last-but-one EOF
bit is hit, and the transmitter's view of the resulting error flag is
masked.

Run with::

    python examples/automotive_network.py
"""

from repro.can import CanController, data_frame
from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.fields import EOF
from repro.core import MajorCanController, MinorCanController
from repro.faults import ScriptedInjector, Trigger, ViewFault
from repro.metrics import render_table
from repro.simulation import SimulationEngine, make_rng

ECU_NAMES = [
    "brakes",      # the critical broadcaster
    "engine",
    "steering",
    "gearbox",
    "airbag",
    "dashboard",
    "lights",
    "gateway",
]

ROUNDS = 40
ATTACK_PROBABILITY = 0.35
SEED = 2000


def run_round(controller_class, attacked, victim):
    """One round: the brake command plus background traffic."""
    controllers = [controller_class(name) for name in ECU_NAMES]
    brakes = controllers[0]
    eof_last = brakes.config.eof_length - 1
    faults = []
    if attacked:
        faults = [
            ViewFault(victim, Trigger(field=EOF, index=eof_last - 1), force=DOMINANT),
            ViewFault("brakes", Trigger(field=EOF, index=eof_last), force=RECESSIVE),
        ]
    engine = SimulationEngine(
        controllers, injector=ScriptedInjector(view_faults=faults), record_bits=False
    )
    command = data_frame(0x010, b"\xb0\x01", message_id="brake-cmd")
    brakes.submit(command)
    for index, controller in enumerate(controllers[1:], start=1):
        controller.submit(
            data_frame(0x100 + index, bytes([index]), message_id="bg-%d" % index)
        )
    engine.run_until_idle(60000)
    key = (
        command.can_id.value,
        command.can_id.extended,
        command.remote,
        command.dlc,
        command.data,
    )
    counts = [
        sum(1 for delivery in controller.deliveries if delivery.wire_key() == key)
        for controller in controllers
    ]
    return counts


def campaign(controller_class, label):
    rng = make_rng(SEED)
    consistent = omitted = duplicated = attacks = 0
    for _ in range(ROUNDS):
        attacked = rng.random() < ATTACK_PROBABILITY
        victim = ECU_NAMES[1 + int(rng.integers(0, len(ECU_NAMES) - 1))]
        attacks += int(attacked)
        counts = run_round(controller_class, attacked, victim)
        if any(count == 0 for count in counts) and any(count > 0 for count in counts):
            omitted += 1
        elif any(count > 1 for count in counts):
            duplicated += 1
        else:
            consistent += 1
    return {
        "protocol": label,
        "rounds": ROUNDS,
        "attacked rounds": attacks,
        "consistent": consistent,
        "omitted (IMO)": omitted,
        "duplicated": duplicated,
    }


def main():
    print(
        "%d rounds of a brake command over %d ECUs; %d%% of rounds suffer"
        % (ROUNDS, len(ECU_NAMES), int(100 * ATTACK_PROBABILITY))
    )
    print("the Fig. 3a two-bit tail disturbance.\n")
    rows = [
        campaign(CanController, "CAN"),
        campaign(MinorCanController, "MinorCAN"),
        campaign(MajorCanController, "MajorCAN_5"),
    ]
    print(
        render_table(
            rows,
            columns=[
                "protocol",
                "rounds",
                "attacked rounds",
                "consistent",
                "omitted (IMO)",
                "duplicated",
            ],
            title="Brake-command consistency per protocol",
        )
    )
    print()
    print("Every attacked round becomes an inconsistent omission under CAN")
    print("and MinorCAN: some ECUs actuate the brake command, some never")
    print("see it, and the transmitter believes all is well.  MajorCAN_5")
    print("delivers the command to every ECU in every round.")


if __name__ == "__main__":
    main()
