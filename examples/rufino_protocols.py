"""The FTCS'98 higher-level protocols, message by message.

EDCAN, RELCAN and TOTCAN run above unmodified CAN controllers and are
the baselines MajorCAN is compared against.  This example narrates one
broadcast through each protocol — the frames on the bus, the recovery
actions, and how each behaves under (a) a transmitter crash (Fig. 1c)
and (b) the paper's new scenario (Fig. 3a), where only EDCAN keeps
Agreement and none of them is free.

Run with::

    python examples/rufino_protocols.py
"""

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import STATE_ERROR_FLAG
from repro.can.fields import EOF
from repro.faults import CrashFault, ScriptedInjector, Trigger, ViewFault
from repro.protocols import (
    EdcanProtocol,
    RelcanProtocol,
    TotcanProtocol,
    build_protocol_network,
    decode_message,
)

KIND_NAMES = {0: "DATA", 1: "CONFIRM", 2: "ACCEPT", 3: "RETRANS"}


def injector_for(scenario):
    if scenario == "clean":
        return None
    if scenario == "fig1c":
        return ScriptedInjector(
            view_faults=[
                ViewFault("n1", Trigger(field=EOF, index=5), force=DOMINANT)
            ],
            crash_faults=[CrashFault("n0", Trigger(state=STATE_ERROR_FLAG))],
        )
    if scenario == "fig3":
        return ScriptedInjector(
            view_faults=[
                ViewFault("n1", Trigger(field=EOF, index=5), force=DOMINANT),
                ViewFault("n0", Trigger(field=EOF, index=6), force=RECESSIVE),
            ]
        )
    raise KeyError(scenario)


def narrate(factory, scenario):
    injector = injector_for(scenario)
    engine, nodes = build_protocol_network(
        factory,
        4,
        engine_kwargs={"injector": injector, "record_bits": False}
        if injector
        else {"record_bits": False},
    )
    nodes[0].broadcast(b"\xaa")
    engine.run(4000)
    engine.run_until_idle(60000)

    wire_traffic = []
    for node in nodes:
        for time, frame in node.controller.tx_successes:
            message = decode_message(frame)
            if message is not None:
                wire_traffic.append(
                    (time, node.name, KIND_NAMES[message.kind], message.key)
                )
    wire_traffic.sort()

    print("  %s / %s" % (factory.name, scenario))
    for time, sender, kind, key in wire_traffic:
        print("    t=%5d  %-3s sends %-8s for message %s" % (time, sender, kind, key))
    for node in nodes:
        status = "crashed" if not node.correct else "ok     "
        print(
            "    %-3s [%s] delivered: %s"
            % (node.name, status, node.delivered_keys or "-")
        )
    print()


def main():
    for scenario in ("clean", "fig1c", "fig3"):
        print("=" * 64)
        print("scenario:", scenario)
        print("=" * 64)
        for factory in (EdcanProtocol, RelcanProtocol, TotcanProtocol):
            narrate(factory, scenario)
    print("Summary:")
    print(" * EDCAN floods a diffusion copy per receiver: always recovers,")
    print("   never orders (and costs the most bandwidth);")
    print(" * RELCAN/TOTCAN piggyback on transmitter liveness: cheap, and")
    print("   correct under crashes — but the fig3 omission is invisible")
    print("   to them because the transmitter never failed.")


if __name__ == "__main__":
    main()
