"""Scenario gallery: every figure of the paper as a simulation, with
the per-node d/r timelines the figures use.

Run with::

    python examples/scenario_gallery.py
"""

from repro.faults import fig1a, fig1b, fig1c, fig3, fig4_behaviour, fig5


def show(outcome, description):
    print("=" * 72)
    print("%s" % description)
    print("  " + outcome.summary())
    eof_times = outcome.trace.position_times("tx", "EOF", 0)
    if eof_times:
        start = max(eof_times[0] - 3, 0)
        window = outcome.trace.render_timeline(
            list(outcome.deliveries), start=start, end=start + 34
        )
        print("  timeline around the EOF (d/r as in the paper's figures):")
        for line in window.splitlines():
            print("    " + line)
    print()


def main():
    show(
        fig1a("can"),
        "Fig. 1a  CAN: X sees dominant in the LAST EOF bit -> last-bit rule,\n"
        "         overload flag, everyone keeps the frame.",
    )
    show(
        fig1b("can"),
        "Fig. 1b  CAN: X sees dominant in the LAST-BUT-ONE EOF bit -> X\n"
        "         rejects, tx retransmits, Y receives TWICE.",
    )
    show(
        fig1c("can"),
        "Fig. 1c  CAN: as 1b but the transmitter crashes before the\n"
        "         retransmission -> inconsistent message omission.",
    )
    show(
        fig1b("minorcan"),
        "Fig. 2   MinorCAN on the 1b pattern: nobody sees a primary error,\n"
        "         consistent rejection + one retransmission.",
    )
    show(
        fig3("can"),
        "Fig. 3a  CAN: one extra disturbance masks X's error flag from the\n"
        "         transmitter -> IMO with a CORRECT transmitter.",
    )
    show(
        fig3("minorcan"),
        "Fig. 3b  MinorCAN: the transmitter's reactive overload flag fakes\n"
        "         a primary error for Y -> same IMO.",
    )
    show(
        fig3("majorcan"),
        "Fig. 3   MajorCAN_5: the same two disturbances -> extended error\n"
        "         flags notify acceptance, every node delivers.",
    )
    show(
        fig5(),
        "Fig. 5   MajorCAN_5 under FIVE errors: X errs at EOF bit 3, the\n"
        "         transmitter is masked to bit 6 and extends, two samples\n"
        "         of Y are corrupted -> still consistent.",
    )

    print("=" * 72)
    print("Fig. 4  Behaviour of a MajorCAN_5 node per error position:")
    for row in fig4_behaviour(5):
        print("    " + row.render())


if __name__ == "__main__":
    main()
