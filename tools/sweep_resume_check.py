#!/usr/bin/env python
"""CI guard: interrupted sweeps resume to a byte-identical store.

The resumability contract of :mod:`repro.sweep` is that the compacted
result store is a pure function of the evaluated cell set — independent
of the worker count, the chunk grouping, and any interrupt/resume
history.  This check models the full failure story on a small grid:

1. run the sweep uninterrupted at ``jobs=1`` (the reference store);
2. run the same sweep into a fresh store with a cell budget that cuts
   it off mid-grid (the "killed" run), then resume it at ``jobs=2``;
3. assert the resumed store's compacted bytes equal the reference's;
4. re-run the completed sweep and assert it evaluates zero cells
   (pure skip — the incrementality half of the contract).

Any mismatch means cell identity, store compaction or the resume path
leaked nondeterminism and fails the build.

Usage::

    PYTHONPATH=src python tools/sweep_resume_check.py

Exit status 0 when the store is byte-identical and the re-run is a pure
skip, 1 otherwise.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)


def _spec():
    from repro.sweep import SweepSpec

    return SweepSpec(
        name="resume-check",
        protocols=("can", "majorcan"),
        m_values=(5,),
        bers=(1e-5, 1e-4),
        bit_rates=(500_000.0,),
        bus_lengths_m=(30.0,),
        payloads=(1,),
        node_counts=(3,),
        window=2,
        max_flips=2,
    )


def main() -> int:
    from repro.sweep import ResultStore, run_sweep

    spec = _spec()
    workdir = tempfile.mkdtemp(prefix="sweep-resume-check-")
    try:
        reference = ResultStore(os.path.join(workdir, "reference"))
        full = run_sweep(spec, reference, jobs=1)
        print("sweep-resume: reference  %s" % full.summary())
        if not full.complete or full.evaluated != spec.cell_count():
            print("sweep-resume: FAIL (reference run did not cover the grid)")
            return 1

        # Kill mid-grid via the cell budget, then resume at jobs=2.
        resumed = ResultStore(os.path.join(workdir, "resumed"))
        budget = max(1, spec.cell_count() // 2)
        killed = run_sweep(spec, resumed, jobs=1, cell_budget=budget)
        print("sweep-resume: interrupted %s" % killed.summary())
        if killed.complete:
            print("sweep-resume: FAIL (budget did not interrupt the run)")
            return 1
        resume = run_sweep(spec, resumed, jobs=2)
        print("sweep-resume: resumed    %s" % resume.summary())

        identical = resumed.compacted_bytes() == reference.compacted_bytes()
        print(
            "sweep-resume: compacted store %s (reference digest %s)"
            % ("identical" if identical else "DIVERGED", full.digest[:16])
        )
        if not identical:
            return 1

        rerun = run_sweep(spec, reference, jobs=1)
        print("sweep-resume: re-run      %s" % rerun.summary())
        if rerun.evaluated != 0:
            print(
                "sweep-resume: FAIL (completed sweep re-evaluated %d cells)"
                % rerun.evaluated
            )
            return 1
        if rerun.digest != full.digest:
            print("sweep-resume: FAIL (re-run changed the store digest)")
            return 1
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        "sweep-resume: interrupted runs resume byte-identically and "
        "completed sweeps are pure skips"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
