#!/usr/bin/env python
"""Repository lint runner (``make lint``).

Prefers ``ruff check`` with the configuration in ``pyproject.toml``.
When ruff is not installed (the pinned reproduction container ships
only the base python toolchain), falls back to a stdlib checker that
covers the highest-value error classes from the same selection:

* **E9** — files that fail to compile (syntax / tab errors);
* **F401** — module-level imports that are never used (honouring
  ``# noqa`` comments, ``__all__`` re-exports, and skipping package
  ``__init__.py`` files, matching the per-file-ignores in
  ``pyproject.toml``);
* **F811** — a module-level import redefined by a later import.

CI installs real ruff, so the full E4/E7/F/I selection gates every PR;
the fallback keeps ``make lint`` meaningful offline.
"""

from __future__ import annotations

import ast
import os
import re
import shutil
import subprocess
import sys
from typing import Iterator, List, Tuple

_IDENTIFIER = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Directories scanned by the fallback checker (ruff scans the whole
#: tree minus its excludes; the fallback pins the same code dirs).
SCAN_DIRS = ("src", "tests", "benchmarks", "examples", "tools")
SKIP_DIR_NAMES = {"__pycache__", ".git", "build", "dist", ".pytest_cache"}


def python_files() -> Iterator[str]:
    for scan_dir in SCAN_DIRS:
        root_dir = os.path.join(REPO_ROOT, scan_dir)
        for dirpath, dirnames, filenames in os.walk(root_dir):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIR_NAMES]
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def _noqa_lines(source: str) -> set:
    return {
        number
        for number, line in enumerate(source.splitlines(), start=1)
        if "# noqa" in line
    }


def _exported_names(tree: ast.Module) -> set:
    """String entries of a module-level ``__all__`` list/tuple."""
    exported = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__all__"
            for target in node.targets
        ):
            continue
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    exported.add(element.value)
    return exported


def _used_names(tree: ast.Module) -> set:
    used = set()
    for node in ast.walk(tree):
        # String annotations ('"CanId"') count as uses, as in ruff —
        # but only in annotation position, never in docstrings.
        for annotation in (
            getattr(node, "annotation", None),
            getattr(node, "returns", None),
        ):
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                used.update(_IDENTIFIER.findall(annotation.value))
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # ``a.b.c`` marks ``a`` used; the Name child covers that,
            # but string annotations resolved lazily do not parse to
            # Name nodes — collect attribute heads defensively anyway.
            head = node
            while isinstance(head, ast.Attribute):
                head = head.value
            if isinstance(head, ast.Name):
                used.add(head.id)
    return used


def check_file(path: str) -> List[Tuple[int, str, str]]:
    """Return ``(line, code, message)`` findings for one file."""
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        source = raw.decode("utf-8")
        tree = ast.parse(source, filename=path)
        compile(source, path, "exec")
    except (SyntaxError, UnicodeDecodeError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        return [(line, "E999", "cannot compile: %s" % exc)]

    findings: List[Tuple[int, str, str]] = []
    if os.path.basename(path) == "__init__.py":
        return findings

    noqa = _noqa_lines(source)
    exported = _exported_names(tree)
    used = _used_names(tree)

    bound: dict = {}
    for node in tree.body:
        if isinstance(node, ast.Import):
            # ``import a.b`` re-binds the root package ``a``; repeated
            # submodule imports are idiomatic, so exempt them from F811.
            names = [
                (alias.asname or alias.name.split(".")[0], "." in alias.name)
                for alias in node.names
            ]
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            names = [(alias.asname or alias.name, False) for alias in node.names]
        else:
            continue
        if node.lineno in noqa:
            continue
        for name, dotted in names:
            if name == "*":
                continue
            if name in bound and not dotted:
                findings.append(
                    (node.lineno, "F811", "redefinition of import %r" % name)
                )
            bound[name] = node.lineno
            if name not in used and name not in exported:
                findings.append((node.lineno, "F401", "unused import %r" % name))
    return findings


def run_fallback() -> int:
    total = 0
    for path in python_files():
        for line, code, message in check_file(path):
            relative = os.path.relpath(path, REPO_ROOT)
            print("%s:%d: %s %s" % (relative, line, code, message))
            total += 1
    if total:
        print("lint (fallback): %d finding(s)" % total)
        return 1
    print("lint (fallback): clean")
    return 0


def main() -> int:
    if shutil.which("ruff"):
        return subprocess.call(["ruff", "check", REPO_ROOT])
    return run_fallback()


if __name__ == "__main__":
    sys.exit(main())
