#!/usr/bin/env python
"""Per-PR performance regression gate.

Compares a freshly measured perf-harness report (typically CI's
``--smoke`` run) against the committed baseline (``BENCH_PR10.json``)
and fails when a hot-loop metric regressed beyond the tolerance.

Only *ratio* metrics are compared — speedups of one code path over
another measured in the same process.  Absolute rates (bits/sec,
trials/sec) shift with the host, the runner's load and the CPU budget,
so they cannot gate anything across machines; a speedup divides all of
that out.  The compared universes are also identical between smoke and
full runs (the smoke report shrinks *other* sections, not these), so
baseline-vs-smoke is apples to apples.

A metric missing from either file is skipped with a notice rather than
failed: sections can be run selectively (``--section``), and older
baselines predate newer metrics.

Usage::

    python tools/perf_gate.py BASELINE REPORT [--tolerance 0.30]

Exit status 0 when every present metric passes, 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Gated metrics, as dotted paths into the report dict.  All are
#: same-process speedup ratios over identical workloads:
#: * ``engine.fast_path_speedup``     — record_bits=False vs recorded;
#: * ``controller.fast_path_speedup`` — table-driven vs reference
#:   state machine on the record_bits=False hot loop;
#: * ``batch_enumeration.speedup``    — batch replay vs one engine run
#:   per placement on the can/2-flip verification universe;
#: * ``header_enumeration.speedup``   — batch vs engine on the
#:   header-heavy ``m_ablation check_f1`` sweep (rows asserted equal);
#: * ``montecarlo_batch.speedup``     — chunked-draw batch vs engine
#:   ``monte_carlo_tail`` at one seed (counts asserted bit-identical);
#: * ``multiflip_header.speedup``     — batch classification of the
#:   full ≤2-flip header+tail combo universe vs one engine run per
#:   combo (verdicts asserted identical in-harness);
#: * ``campaign_batch.speedup``       — batch vs engine
#:   ``run_campaign`` on one seeded schedule (rows asserted identical);
#: * ``reliability_batch.speedup``    — batch vs engine enumerated
#:   ``reliability_comparison`` rates (rows asserted identical);
#: * ``traffic_steady_state.speedup`` — controller fast path vs
#:   reference state machine driving the same steady-state traffic run
#:   (ledgers asserted identical); traffic-driver overhead is common
#:   to both sides, so a driver regression drags this ratio toward 1;
#: * ``sweep.speedup``                — batch vs engine ``run_sweep``
#:   over the same small design-space grid into fresh result stores
#:   (stored payloads asserted identical); store/driver overhead is
#:   common to both sides, so a sweep-engine regression drags this
#:   ratio toward 1;
#: * ``traffic_batch.speedup``        — frame-granular batch windows
#:   vs the per-bit engine on one clean contended traffic profile
#:   with cold window caches (serialized records, ledger, stats and
#:   AB1–AB5 asserted identical in-harness; engine share must be 0);
#: * ``noise_batch.traffic.speedup``  — vectorised first-flip scan +
#:   resume vs the per-bit engine on one noisy contended traffic
#:   profile with cold caches (serialized records asserted identical
#:   in-harness; full-engine share must stay under 10%);
#: * ``noise_batch.campaign.speedup`` — flip-scanned noisy campaign
#:   rounds vs the engine on one seeded schedule (campaign surface
#:   asserted identical in-harness).
GATED_METRICS = (
    "engine.fast_path_speedup",
    "controller.fast_path_speedup",
    "batch_enumeration.speedup",
    "header_enumeration.speedup",
    "montecarlo_batch.speedup",
    "multiflip_header.speedup",
    "campaign_batch.speedup",
    "reliability_batch.speedup",
    "traffic_steady_state.speedup",
    "traffic_batch.speedup",
    "sweep.speedup",
    "noise_batch.traffic.speedup",
    "noise_batch.campaign.speedup",
)

#: A measured metric below ``baseline * (1 - TOLERANCE)`` fails the
#: gate: >30% regression on a hot-loop speedup is a real change, not
#: runner noise.
TOLERANCE = 0.30


def lookup(report: dict, path: str):
    """Resolve a dotted ``path`` in ``report``; None when absent."""
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check(baseline: dict, report: dict, tolerance: float = TOLERANCE) -> list:
    """Compare every gated metric; return failure description lines."""
    failures = []
    for metric in GATED_METRICS:
        expected = lookup(baseline, metric)
        measured = lookup(report, metric)
        if not isinstance(expected, (int, float)) or not isinstance(
            measured, (int, float)
        ):
            print("perf-gate: skip %-32s (missing from %s)" % (
                metric,
                "baseline" if expected is None else "report",
            ))
            continue
        floor = expected * (1.0 - tolerance)
        verdict = "ok" if measured >= floor else "REGRESSED"
        print(
            "perf-gate: %-37s baseline x%.2f  measured x%.2f  floor x%.2f  %s"
            % (metric, expected, measured, floor, verdict)
        )
        if measured < floor:
            failures.append(
                "%s regressed: x%.2f < x%.2f (baseline x%.2f - %d%%)"
                % (metric, measured, floor, expected, round(tolerance * 100))
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline report (JSON)")
    parser.add_argument("report", help="freshly measured report (JSON)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="allowed fractional regression per metric (default 0.30)",
    )
    args = parser.parse_args(argv)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.report) as handle:
        report = json.load(handle)
    failures = check(baseline, report, tolerance=args.tolerance)
    for failure in failures:
        print("perf-gate: FAIL %s" % failure)
    if not failures:
        print("perf-gate: all gated metrics within tolerance")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
