#!/usr/bin/env python
"""Assert the batch backends stay off the per-bit engine.

The PR 6 acceptance bar: on noise-free batch-backend runs of

* bounded verification over the full ≤ 2-flip header+tail universe,
* a seeded fault-injection campaign, and
* the enumerated reliability rates,

fewer than 1% of placements/rounds/patterns may fall back to a full
engine run — everything else must classify on the vectorised batch,
header-class or scalar micro-sim routes.  CI runs this next to the
golden-trace corpus replay: the corpus pins the engine's behaviour,
this pins the batch layer's *coverage* of that behaviour.

Exit status 0 when every workload is under the threshold, 1 otherwise.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

#: Maximum tolerated fraction of engine-classified work items.
THRESHOLD = 0.01


def check_verification() -> dict:
    """≤2-flip header+tail combo universe through the evaluator."""
    import itertools

    from repro.analysis.batchreplay import BatchReplayEvaluator, clear_caches
    from repro.analysis.verification import header_sites
    from repro.can.fields import EOF
    from repro.can.frame import data_frame
    from repro.faults.scenarios import make_controller

    node_names = ("tx", "r1", "r2")
    frame = data_frame(0x123, b"", message_id="share-check")
    stats = {}
    for protocol, m in (("can", 5), ("majorcan", 5)):
        probe = make_controller(protocol, "probe", m=m)
        sites = list(header_sites(node_names, data_bits=0))
        sites += [
            (name, EOF, index)
            for name in node_names
            for index in range(probe.config.eof_length)
        ]
        combos = (
            [()]
            + [(site,) for site in sites]
            + list(itertools.combinations(sites, 2))
        )
        clear_caches()
        evaluator = BatchReplayEvaluator(protocol, m, node_names, frame=frame)
        evaluator.evaluate(combos)
        for key, value in evaluator.stats.items():
            stats[key] = stats.get(key, 0) + value
    return stats


def check_campaign() -> dict:
    """One seeded noise-free campaign per protocol on the batch backend."""
    from repro.faults.campaigns import CampaignSpec, run_campaign

    stats = {}
    for protocol in ("can", "minorcan", "majorcan"):
        outcome = run_campaign(
            CampaignSpec(
                protocol=protocol,
                n_nodes=4,
                rounds=64,
                attack_probability=0.5,
                seed=17,
            ),
            backend="batch",
        )
        for key, value in outcome.backend_stats.items():
            stats[key] = stats.get(key, 0) + value
    return stats


def check_reliability() -> dict:
    """The enumerated reliability rates on the batch backend."""
    from repro.analysis.reliability import reliability_comparison

    stats = {}
    for row in reliability_comparison(1e-5, backend="batch"):
        for key, value in (row.backend_stats or {}).items():
            stats[key] = stats.get(key, 0) + value
    return stats


def main() -> int:
    failures = 0
    for name, run in (
        ("verification", check_verification),
        ("campaign", check_campaign),
        ("reliability", check_reliability),
    ):
        stats = run()
        total = sum(stats.values())
        share = stats.get("engine", 0) / total if total else 0.0
        verdict = "ok" if share < THRESHOLD else "FAIL"
        print(
            "engine-share: %-12s %6d items, engine %d (%.2f%% < %.0f%%)  %s"
            % (name, total, stats.get("engine", 0), share * 100.0,
               THRESHOLD * 100.0, verdict)
        )
        if share >= THRESHOLD:
            failures += 1
    if not failures:
        print("engine-share: all batch workloads under the threshold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
