#!/usr/bin/env python
"""Assert the batch backends stay off the per-bit engine.

The PR 6 acceptance bar: on noise-free batch-backend runs of

* bounded verification over the full ≤ 2-flip header+tail universe,
* a seeded fault-injection campaign, and
* the enumerated reliability rates,

fewer than 1% of placements/rounds/patterns may fall back to a full
engine run — everything else must classify on the vectorised batch,
header-class or scalar micro-sim routes.  CI runs this next to the
golden-trace corpus replay: the corpus pins the engine's behaviour,
this pins the batch layer's *coverage* of that behaviour.

The PR 10 bar extends the same discipline to *noisy* runs: with random
per-bit noise at realistic BERs, the vectorised flip scan must resolve
most windows/rounds without a full per-bit engine run — under 10% may
fall back to one.  Resumed windows (scan finds a flip, engine re-enters
from the cut) are the designed noisy path and do not count against the
bound; full fallbacks do.

Exit status 0 when every workload is under its threshold, 1 otherwise.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

#: Maximum tolerated fraction of engine-classified work items
#: (noise-free workloads).
THRESHOLD = 0.01

#: Maximum tolerated full-engine fraction on noisy workloads.  The flip
#: scan classifies zero-flip work closed-form and *resumes* flipped
#: windows from the cut; only windows/rounds that re-run entirely on
#: the per-bit engine count against this bound (mirrors
#: ``repro.analysis.batchreplay.ENGINE_SHARE_NOTICE``).
NOISY_THRESHOLD = 0.10


def check_verification() -> dict:
    """≤2-flip header+tail combo universe through the evaluator."""
    import itertools

    from repro.analysis.batchreplay import BatchReplayEvaluator, clear_caches
    from repro.analysis.verification import header_sites
    from repro.can.fields import EOF
    from repro.can.frame import data_frame
    from repro.faults.scenarios import make_controller

    node_names = ("tx", "r1", "r2")
    frame = data_frame(0x123, b"", message_id="share-check")
    stats = {}
    for protocol, m in (("can", 5), ("majorcan", 5)):
        probe = make_controller(protocol, "probe", m=m)
        sites = list(header_sites(node_names, data_bits=0))
        sites += [
            (name, EOF, index)
            for name in node_names
            for index in range(probe.config.eof_length)
        ]
        combos = (
            [()]
            + [(site,) for site in sites]
            + list(itertools.combinations(sites, 2))
        )
        clear_caches()
        evaluator = BatchReplayEvaluator(protocol, m, node_names, frame=frame)
        evaluator.evaluate(combos)
        for key, value in evaluator.stats.items():
            stats[key] = stats.get(key, 0) + value
    return stats


def check_campaign() -> dict:
    """One seeded noise-free campaign per protocol on the batch backend."""
    from repro.faults.campaigns import CampaignSpec, run_campaign

    stats = {}
    for protocol in ("can", "minorcan", "majorcan"):
        outcome = run_campaign(
            CampaignSpec(
                protocol=protocol,
                n_nodes=4,
                rounds=64,
                attack_probability=0.5,
                seed=17,
            ),
            backend="batch",
        )
        for key, value in outcome.backend_stats.items():
            stats[key] = stats.get(key, 0) + value
    return stats


def check_reliability() -> dict:
    """The enumerated reliability rates on the batch backend."""
    from repro.analysis.reliability import reliability_comparison

    stats = {}
    for row in reliability_comparison(1e-5, backend="batch"):
        for key, value in (row.backend_stats or {}).items():
            stats[key] = stats.get(key, 0) + value
    return stats


def check_noisy_traffic() -> dict:
    """A contended noisy traffic run: flip scan + resume, rare engine."""
    from repro.traffic import TrafficSpec, clear_window_cache, run_traffic

    clear_window_cache()
    outcome = run_traffic(
        TrafficSpec(
            name="share-noisy-traffic",
            protocol="majorcan",
            m=3,
            n_nodes=4,
            windows=40,
            window_bits=900,
            load=0.55,
            seed=11,
            noise_ber=2e-5,
        ),
        backend="batch",
    )
    return dict(outcome.backend_stats or {})


def check_noisy_campaign() -> dict:
    """A noisy fault-injection campaign on the batch backend."""
    from repro.faults.campaigns import CampaignSpec, run_campaign

    outcome = run_campaign(
        CampaignSpec(
            protocol="majorcan",
            n_nodes=4,
            rounds=60,
            attack_probability=0.4,
            noise_ber_star=2e-5,
            seed=17,
        ),
        backend="batch",
    )
    return dict(outcome.backend_stats or {})


def main() -> int:
    failures = 0
    for name, run, threshold in (
        ("verification", check_verification, THRESHOLD),
        ("campaign", check_campaign, THRESHOLD),
        ("reliability", check_reliability, THRESHOLD),
        ("noisy-traffic", check_noisy_traffic, NOISY_THRESHOLD),
        ("noisy-campaign", check_noisy_campaign, NOISY_THRESHOLD),
    ):
        stats = run()
        total = sum(stats.values())
        share = stats.get("engine", 0) / total if total else 0.0
        verdict = "ok" if share < threshold else "FAIL"
        print(
            "engine-share: %-14s %6d items, engine %d (%.2f%% < %.0f%%)  %s"
            % (name, total, stats.get("engine", 0), share * 100.0,
               threshold * 100.0, verdict)
        )
        if share >= threshold:
            failures += 1
    if not failures:
        print("engine-share: all batch workloads under the threshold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
