#!/usr/bin/env python
"""CI guard: traffic runs are invariant under worker count and backend.

The sharding contract of :mod:`repro.traffic` is that ``jobs`` decides
*where* a time window simulates, never *what* it computes: the
submission schedule and per-window seeds are fixed before fan-out, and
window results are spliced in window order.  The backend contract is
the same one level up: ``backend`` decides *how* a fault-free window
evaluates — per-bit engine or frame-granular batch replay — never what
it observes.  This check runs each spec at ``jobs=1`` and ``jobs=2``
on both backends and compares the complete serialized run — schedule,
spliced bus, events, per-frame verdicts, aggregate verdict — plus the
AB1–AB5 property results.  Any mismatch means the parallel path leaked
state into the simulation (or the batch evaluator drifted from the
engine) and fails the build.

Runs three specs so every traffic regime is covered: a clean contended
MajorCAN run (all windows batch-eligible), a noisy CAN run with a
deterministic burst whose per-window noise streams come from the
spawned seed tree (windows scan for the first flip on the vectorised
noise evaluator and *resume* from the cut — or classify closed-form
when the scan comes back clean), and a low-BER MajorCAN run where most
windows scan clean and the occasional flipped one resumes.

Usage::

    PYTHONPATH=src python tools/traffic_invariance_check.py

Exit status 0 when both specs are invariant, 1 otherwise.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)


def _specs():
    from repro.traffic import BurstSpec, TrafficSpec

    return (
        TrafficSpec(
            name="invariance-contended",
            protocol="majorcan",
            m=5,
            n_nodes=4,
            windows=3,
            window_bits=800,
            load=0.9,
            seed=23,
        ),
        TrafficSpec(
            name="invariance-noisy",
            protocol="can",
            n_nodes=3,
            windows=3,
            window_bits=700,
            load=0.6,
            seed=29,
            noise_ber=0.002,
            bursts=(BurstSpec(node="n1", window=1, start=200, length=16),),
        ),
        TrafficSpec(
            name="invariance-noisy-low-ber",
            protocol="majorcan",
            m=3,
            n_nodes=4,
            windows=4,
            window_bits=900,
            load=0.55,
            seed=11,
            noise_ber=2e-5,
        ),
    )


def _lines(outcome):
    from repro.metrics.export import json_line
    from repro.traffic import traffic_records

    return [json_line(record) for record in traffic_records(outcome)]


def _report_divergence(spec, label, want, got):
    for index, (want_line, got_line) in enumerate(zip(want, got)):
        if want_line != got_line:
            print("traffic-invariance: %s first diverging record %d (%s):" % (
                spec.name, index, label))
            print("traffic-invariance:   want %s" % want_line[:160])
            print("traffic-invariance:   got  %s" % got_line[:160])
            break
    if len(want) != len(got):
        print(
            "traffic-invariance: %s record count differs (%s): %d vs %d"
            % (spec.name, label, len(want), len(got))
        )


def check_spec(spec) -> bool:
    """Run ``spec`` across jobs x backend; True when all bit-identical.

    The jobs=1 engine run is the reference; every other (jobs, backend)
    combination must serialize to the same records and the same AB1–AB5
    verdicts.
    """
    from repro.traffic import run_traffic

    reference = run_traffic(spec, jobs=1)
    reference_lines = _lines(reference)
    reference_properties = {
        name: bool(result) for name, result in reference.properties.items()
    }
    ok = True
    split = None
    for jobs in (1, 2):
        for backend in ("engine", "batch"):
            if jobs == 1 and backend == "engine":
                continue
            outcome = run_traffic(spec, jobs=jobs, backend=backend)
            label = "jobs=%d backend=%s" % (jobs, backend)
            lines = _lines(outcome)
            if lines != reference_lines:
                _report_divergence(spec, label, reference_lines, lines)
                ok = False
            properties = {
                name: bool(result)
                for name, result in outcome.properties.items()
            }
            if properties != reference_properties:
                print(
                    "traffic-invariance: %s AB properties diverged (%s)"
                    % (spec.name, label)
                )
                ok = False
            if backend == "batch":
                split = outcome.backend_stats
    print(
        "traffic-invariance: %-22s jobs x backend %-9s split %s"
        % (spec.name, "identical" if ok else "DIVERGED", split)
    )
    return ok


def main() -> int:
    failures = 0
    for spec in _specs():
        if not check_spec(spec):
            failures += 1
    if failures:
        print("traffic-invariance: FAIL (%d spec(s) diverged)" % failures)
        return 1
    print(
        "traffic-invariance: jobs=1/2 runs are bit-identical on both backends"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
