#!/usr/bin/env python
"""CI guard: traffic runs are invariant under the worker count.

The sharding contract of :mod:`repro.traffic` is that ``jobs`` decides
*where* a time window simulates, never *what* it computes: the
submission schedule and per-window seeds are fixed before fan-out, and
window results are spliced in window order.  This check runs the same
spec at ``jobs=1`` and ``jobs=2`` and compares the complete serialized
run — schedule, spliced bus, events, per-frame verdicts, aggregate
verdict — plus the AB1–AB5 property results.  Any mismatch means the
parallel path leaked state into the simulation and fails the build.

Runs two specs so both traffic regimes are covered: a clean contended
MajorCAN run and a noisy CAN run whose per-window noise streams come
from the spawned seed tree.

Usage::

    PYTHONPATH=src python tools/traffic_invariance_check.py

Exit status 0 when both specs are invariant, 1 otherwise.
"""

from __future__ import annotations

import os
import sys

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)


def _specs():
    from repro.traffic import BurstSpec, TrafficSpec

    return (
        TrafficSpec(
            name="invariance-contended",
            protocol="majorcan",
            m=5,
            n_nodes=4,
            windows=3,
            window_bits=800,
            load=0.9,
            seed=23,
        ),
        TrafficSpec(
            name="invariance-noisy",
            protocol="can",
            n_nodes=3,
            windows=3,
            window_bits=700,
            load=0.6,
            seed=29,
            noise_ber=0.002,
            bursts=(BurstSpec(node="n1", window=1, start=200, length=16),),
        ),
    )


def check_spec(spec) -> bool:
    """Run ``spec`` at jobs=1 and jobs=2; True when bit-identical."""
    from repro.metrics.export import json_line
    from repro.traffic import run_traffic, traffic_records

    serial = run_traffic(spec, jobs=1)
    parallel = run_traffic(spec, jobs=2)
    serial_lines = [json_line(r) for r in traffic_records(serial)]
    parallel_lines = [json_line(r) for r in traffic_records(parallel)]
    ok = serial_lines == parallel_lines
    if not ok:
        for index, (want, got) in enumerate(zip(serial_lines, parallel_lines)):
            if want != got:
                print("traffic-invariance: %s first diverging record %d:" % (
                    spec.name, index))
                print("traffic-invariance:   jobs=1 %s" % want[:160])
                print("traffic-invariance:   jobs=2 %s" % got[:160])
                break
        if len(serial_lines) != len(parallel_lines):
            print(
                "traffic-invariance: %s record count differs: %d vs %d"
                % (spec.name, len(serial_lines), len(parallel_lines))
            )
    properties_ok = {
        name: bool(result) for name, result in serial.properties.items()
    } == {name: bool(result) for name, result in parallel.properties.items()}
    print(
        "traffic-invariance: %-22s records %-9s AB properties %s"
        % (
            spec.name,
            "identical" if ok else "DIVERGED",
            "identical" if properties_ok else "DIVERGED",
        )
    )
    return ok and properties_ok


def main() -> int:
    failures = 0
    for spec in _specs():
        if not check_spec(spec):
            failures += 1
    if failures:
        print("traffic-invariance: FAIL (%d spec(s) diverged)" % failures)
        return 1
    print("traffic-invariance: jobs=1 and jobs=2 runs are bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
