"""Execute a traffic spec: window workers, splicing, ledger verdicts.

Run model
---------

A run is ``spec.windows`` independent time segments.  Each window
builds a fresh network from idle, submits its slice of the global
schedule at window-local bit times while ``engine.time <
spec.window_bits``, then *drains*: ``run_until_idle`` keeps the bus
alive until every online controller is quiet, so no message is cut off
at a window boundary.  The spliced global trace concatenates the
windows' actual bit streams (active + drain), offsetting every event
and delivery time by the cumulative length of the preceding windows.

Windows are the sharding unit over ``repro.parallel``: each
:class:`repro.parallel.tasks.TrafficWindowTask` is pure in (spec,
window, submissions, noise child seed), so ``--jobs 1`` and
``--jobs N`` produce bit-identical ledgers by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.traffic.schedule import build_schedule, traffic_seed_tree
from repro.traffic.spec import ID_BASE, Submission, TrafficSpec

#: Extra quiet bits required before a window counts as drained.  HLP
#: runs settle longer so protocol timeouts (retransmission timers) get
#: a chance to fire after the controllers fall idle.
_SETTLE_BITS = 12
_SETTLE_BITS_HLP = 128

#: Backlog sampling stride (bit times); a power of two so the hook is
#: one mask test on the hot path.
_BACKLOG_STRIDE = 16


@dataclass
class WindowResult:
    """Picklable observables of one window's run."""

    window: int
    bits: int
    bus: str
    #: node name -> ((origin, seq, local_time), ...) in delivery order.
    deliveries: Dict[str, Tuple[Tuple[str, int, int], ...]]
    #: Event-kind -> count over the whole window (always present).
    event_counts: Dict[str, int]
    #: Serialized event records (local times); None when events are off.
    events: Optional[Tuple[dict, ...]]
    #: Nodes that were offline at any point (bus-off/crash/disconnect).
    ever_offline: Tuple[str, ...]
    offline_at_end: Tuple[str, ...]
    max_backlog: int
    busy_bits: int
    errors_injected: int
    #: Which evaluator produced this window: ``"engine"`` (per-bit run),
    #: ``"batch"`` (closed-form clean replay, incl. zero-flip noisy
    #: windows) or ``"resume"`` (clean prefix + engine from the fault
    #: point).  Aggregated into :attr:`TrafficOutcome.backend_stats`.
    backend: str = "engine"


@dataclass(frozen=True)
class MessageVerdict:
    """Per-message delivery verdict over the correct nodes.

    ``status`` is one of ``delivered`` (every correct node exactly
    once), ``duplicated`` (some correct node more than once),
    ``omitted`` (delivered somewhere but missing at a correct node) or
    ``lost`` (no correct node delivered it) — checked in that
    precedence order, duplication first.
    """

    origin: str
    seq: int
    window: int
    submitted_at: int
    status: str
    counts: Dict[str, int]
    first_delivered: Optional[int]


@dataclass(frozen=True)
class TrafficStats:
    """Aggregate run statistics."""

    frames_submitted: int
    delivered: int
    duplicated: int
    omitted: int
    lost: int
    total_bits: int
    busy_bits: int
    bus_load: float
    max_backlog: int
    arbitration_lost: int
    errors_detected: int
    errors_injected: int
    bus_off: int
    bus_off_recovered: int
    window_bits: Tuple[int, ...]


@dataclass
class TrafficOutcome:
    """Everything a traffic run produced."""

    spec: TrafficSpec
    schedule: Tuple[Submission, ...]
    verdicts: Tuple[MessageVerdict, ...]
    ledger: object
    properties: Dict[str, object]
    stats: TrafficStats
    bus: str
    events: Optional[List[dict]]
    #: Windows per evaluation backend (``{"batch": ..., "resume": ...,
    #: "engine": ...}``) when the run was asked for the batch backend;
    #: None on the engine backend.  Same counter shape as the analytic
    #: workloads' ``repro.analysis.batchreplay`` stats.
    backend_stats: Optional[Dict[str, int]] = None

    @property
    def atomic(self) -> bool:
        """Whether every AB1–AB5 property held over the whole stream."""
        return all(bool(result) for result in self.properties.values())

    def summary(self) -> str:
        stats = self.stats
        lines = [
            "traffic %r: %s%s, %d nodes, %d window(s) x %d bits (+drain)"
            % (
                self.spec.name,
                self.spec.protocol,
                "+%s" % self.spec.hlp if self.spec.hlp else "",
                self.spec.n_nodes,
                self.spec.windows,
                self.spec.window_bits,
            ),
            "frames: %d submitted - %d delivered, %d omitted, %d duplicated, %d lost"
            % (
                stats.frames_submitted,
                stats.delivered,
                stats.omitted,
                stats.duplicated,
                stats.lost,
            ),
            "bus: %d bits, measured load %.3f, max backlog %d, arbitration lost %d"
            % (stats.total_bits, stats.bus_load, stats.max_backlog,
               stats.arbitration_lost),
            "faults: %d injected, %d errors detected, bus-off %d (recovered %d)"
            % (stats.errors_injected, stats.errors_detected, stats.bus_off,
               stats.bus_off_recovered),
        ]
        for name in sorted(self.properties):
            lines.append(str(self.properties[name]))
        return "\n".join(lines)


def _controller_config(spec: TrafficSpec):
    """Controller config honouring the spec's fault-confinement knobs."""
    if spec.protocol == "majorcan":
        from repro.core.majorcan import majorcan_config

        return majorcan_config(
            spec.m,
            bus_off_recovery=spec.bus_off_recovery,
            fast_path=spec.fast_path,
        )
    from repro.can.controller_config import ControllerConfig

    return ControllerConfig(
        bus_off_recovery=spec.bus_off_recovery, fast_path=spec.fast_path
    )


def _window_injector(spec: TrafficSpec, window: int, noise_seed):
    """Compose the window's fault injector (noise + bursts); None if none."""
    injectors = []
    if spec.noise_ber > 0.0:
        from repro.faults.bit_errors import RandomViewErrorInjector
        from repro.parallel.seeds import rng_from

        injectors.append(
            RandomViewErrorInjector(
                spec.noise_ber,
                seed=rng_from(noise_seed),
                only_nodes=spec.noise_nodes,
            )
        )
    for burst in spec.bursts_for_window(window):
        from repro.faults.bit_errors import BurstViewErrorInjector

        injectors.append(
            BurstViewErrorInjector(burst.node, burst.start, burst.length)
        )
    if not injectors:
        return None, ()
    if len(injectors) == 1:
        return injectors[0], tuple(injectors)
    from repro.faults.injector import CompositeInjector

    return CompositeInjector(injectors), tuple(injectors)


def _busy_bits(history) -> int:
    """Busy bit count with the same idle rule as ``measured_bus_load``."""
    busy = 0
    idle_run = 0
    for level in history:
        if level.value == 0:
            busy += 1
            idle_run = 0
        else:
            idle_run += 1
            if idle_run <= 12:
                busy += 1
    return busy


def _decode_wire_key(frame, n_nodes: int) -> Optional[Tuple[str, int]]:
    """(origin, seq) of a traffic data frame; None for foreign frames."""
    index = frame.can_id.value - ID_BASE
    data = frame.data
    if frame.remote or not 0 <= index < n_nodes or len(data) < 2:
        return None
    return ("n%d" % index, data[0] | (data[1] << 8))


def run_window(
    spec: TrafficSpec,
    window: int,
    submissions: Tuple[Submission, ...],
    noise_seed=None,
    backend: str = "engine",
) -> WindowResult:
    """Run one window of ``spec`` from idle and summarise it.

    ``submissions`` is the window's slice of the global schedule (still
    carrying global nominal times); ``noise_seed`` the spawned child
    seed for this window's noise injector (None when noise is off).
    ``backend="batch"`` routes fault-free windows through the
    frame-granular evaluator and noisy/burst windows through the
    vectorised noise dispatch (:mod:`repro.traffic.batch`); only HLP
    windows always run on the engine.
    """
    if backend == "batch":
        from repro.traffic.batch import (
            run_window_batch,
            run_window_noisy,
            window_backend,
        )

        chosen = window_backend(spec, window)
        if chosen == "batch":
            return run_window_batch(spec, window, submissions)
        if chosen == "noise":
            return run_window_noisy(spec, window, submissions, noise_seed)
    return _run_window_engine(spec, window, submissions, noise_seed)


def _run_window_engine(
    spec: TrafficSpec,
    window: int,
    submissions: Tuple[Submission, ...],
    noise_seed=None,
) -> WindowResult:
    """The per-bit engine evaluation of one window (see ``run_window``)."""
    from repro.faults.scenarios import make_controller
    from repro.simulation.engine import SimulationEngine
    from repro.tracestore.recorder import event_record

    config = _controller_config(spec)
    injector, injector_parts = _window_injector(spec, window, noise_seed)
    offset = window * spec.window_bits
    local = [
        (sub.time - offset, sub.node_index, sub.seq, sub.payload,
         sub.identifier, sub.message_id)
        for sub in submissions
    ]

    app_nodes = None
    if spec.hlp is None:
        controllers = [
            make_controller(spec.protocol, name, m=spec.m, config=config)
            for name in spec.node_names
        ]
        engine = SimulationEngine(
            controllers, injector=injector, record_bits=False
        )
    else:
        from repro.protocols import PROTOCOL_FACTORIES, build_protocol_network

        engine, app_nodes = build_protocol_network(
            PROTOCOL_FACTORIES[spec.hlp],
            spec.n_nodes,
            controller_factory=lambda name: make_controller(
                spec.protocol, name, m=spec.m, config=config
            ),
            engine_kwargs={"injector": injector, "record_bits": False},
        )
        controllers = [node.controller for node in app_nodes]
        first_seq: Dict[int, int] = {}
        for _, node_index, seq, _, _, _ in local:
            first_seq.setdefault(node_index, seq)
        for node_index, seq in first_seq.items():
            app_nodes[node_index].advance_sequence_to(seq)

    cursor = [0]
    if spec.hlp is None:
        from repro.can.frame import data_frame

        def _submit(now: int) -> None:
            index = cursor[0]
            while index < len(local) and local[index][0] == now:
                _, node_index, seq, payload, identifier, message_id = local[index]
                controllers[node_index].submit(
                    data_frame(
                        identifier,
                        payload,
                        message_id=message_id,
                        origin=spec.node_names[node_index],
                    )
                )
                index += 1
            cursor[0] = index
    else:

        def _submit(now: int) -> None:
            index = cursor[0]
            while index < len(local) and local[index][0] == now:
                _, node_index, seq, payload, _, _ = local[index]
                message = app_nodes[node_index].broadcast(payload)
                if message.seq != seq:
                    raise SimulationError(
                        "window %d: node n%d minted seq %d for scheduled seq %d"
                        % (window, node_index, message.seq, seq)
                    )
                index += 1
            cursor[0] = index

    backlog = [0]

    def _sample_backlog(now: int) -> None:
        if now & (_BACKLOG_STRIDE - 1) == 0:
            depth = max(c.pending_transmissions for c in controllers)
            if depth > backlog[0]:
                backlog[0] = depth

    engine.add_tick_hook(_submit)
    engine.add_tick_hook(_sample_backlog)

    engine.run(spec.window_bits)
    settle = _SETTLE_BITS_HLP if spec.hlp else _SETTLE_BITS
    engine.run_until_idle(max_bits=spec.max_window_bits, settle_bits=settle)

    trace = engine.collect_events()
    event_counts: Dict[str, int] = {}
    for event in trace.events:
        event_counts[event.kind] = event_counts.get(event.kind, 0) + 1
    events = (
        tuple(event_record(event) for event in trace.events)
        if spec.record_events
        else None
    )

    deliveries: Dict[str, Tuple[Tuple[str, int, int], ...]] = {}
    if spec.hlp is None:
        for controller in controllers:
            rows = []
            for delivery in controller.deliveries:
                key = _decode_wire_key(delivery.frame, spec.n_nodes)
                if key is not None:
                    rows.append((key[0], key[1], delivery.time))
            deliveries[controller.name] = tuple(rows)
    else:
        for node in app_nodes:
            rows = []
            for (origin_id, seq), delivery in zip(
                node.delivered_keys, node.app_deliveries
            ):
                rows.append(("n%d" % origin_id, seq, delivery.time))
            deliveries[node.name] = tuple(rows)

    from repro.can.events import EventKind

    ever_offline = sorted(
        {
            event.node
            for event in trace.events
            if event.kind
            in (EventKind.BUS_OFF, EventKind.CRASHED, EventKind.DISCONNECTED)
        }
        | {c.name for c in controllers if c.offline}
    )
    offline_at_end = tuple(c.name for c in controllers if c.offline)
    injected = sum(getattr(part, "injected", 0) for part in injector_parts)

    return WindowResult(
        window=window,
        bits=engine.time,
        bus="".join(level.symbol for level in engine.bus.history),
        deliveries=deliveries,
        event_counts=event_counts,
        events=events,
        ever_offline=tuple(ever_offline),
        offline_at_end=offline_at_end,
        max_backlog=backlog[0],
        busy_bits=_busy_bits(engine.bus.history),
        errors_injected=injected,
        backend="engine",
    )


def splice_windows(
    spec: TrafficSpec,
    schedule: Tuple[Submission, ...],
    results: List[WindowResult],
    backend_stats: Optional[Dict[str, int]] = None,
) -> TrafficOutcome:
    """Concatenate the window results into one global outcome."""
    from repro.can.events import EventKind
    from repro.properties.broadcast import check_atomic_broadcast
    from repro.properties.ledger import NodeLedger, SystemLedger

    offsets: List[int] = []
    total_bits = 0
    for result in results:
        offsets.append(total_bits)
        total_bits += result.bits

    bus = "".join(result.bus for result in results)
    events: Optional[List[dict]] = None
    if spec.record_events:
        events = []
        for result, offset in zip(results, offsets):
            for record in result.events or ():
                shifted = dict(record)
                shifted["t"] += offset
                events.append(shifted)

    ever_offline = set()
    for result in results:
        ever_offline.update(result.ever_offline)

    # Global per-node delivery streams (times offset into spliced time).
    delivered: Dict[str, List[Tuple[str, int]]] = {
        name: [] for name in spec.node_names
    }
    delivery_times: Dict[str, List[int]] = {name: [] for name in spec.node_names}
    counts: Dict[str, Dict[Tuple[str, int], int]] = {
        name: {} for name in spec.node_names
    }
    first_time: Dict[Tuple[str, int], int] = {}
    for result, offset in zip(results, offsets):
        for name, rows in result.deliveries.items():
            for origin, seq, local_time in rows:
                key = (origin, seq)
                time = local_time + offset
                delivered[name].append(key)
                delivery_times[name].append(time)
                counts[name][key] = counts[name].get(key, 0) + 1
                if key not in first_time or time < first_time[key]:
                    first_time[key] = time

    broadcasts: Dict[str, List[Tuple[str, int]]] = {
        name: [] for name in spec.node_names
    }
    for sub in schedule:
        broadcasts[sub.node].append(sub.key)

    ledger = SystemLedger()
    for name in spec.node_names:
        node = NodeLedger(name=name, correct=name not in ever_offline)
        node.broadcasts = broadcasts[name]
        node.deliveries = delivered[name]
        node.delivery_times = delivery_times[name]
        ledger.nodes[name] = node

    correct_names = [
        name for name in spec.node_names if name not in ever_offline
    ]
    verdicts: List[MessageVerdict] = []
    tally = {"delivered": 0, "duplicated": 0, "omitted": 0, "lost": 0}
    for sub in schedule:
        key = sub.key
        per_node = {
            name: counts[name].get(key, 0) for name in spec.node_names
        }
        correct_counts = [per_node[name] for name in correct_names]
        if any(count > 1 for count in correct_counts):
            status = "duplicated"
        elif correct_counts and all(count == 1 for count in correct_counts):
            status = "delivered"
        elif any(count > 0 for count in correct_counts):
            status = "omitted"
        else:
            status = "lost"
        tally[status] += 1
        verdicts.append(
            MessageVerdict(
                origin=sub.node,
                seq=sub.seq,
                window=sub.window,
                submitted_at=sub.time,
                status=status,
                counts=per_node,
                first_delivered=first_time.get(key),
            )
        )

    event_totals: Dict[str, int] = {}
    for result in results:
        for kind, count in result.event_counts.items():
            event_totals[kind] = event_totals.get(kind, 0) + count

    busy = sum(result.busy_bits for result in results)
    stats = TrafficStats(
        frames_submitted=len(schedule),
        delivered=tally["delivered"],
        duplicated=tally["duplicated"],
        omitted=tally["omitted"],
        lost=tally["lost"],
        total_bits=total_bits,
        busy_bits=busy,
        bus_load=busy / total_bits if total_bits else 0.0,
        max_backlog=max((result.max_backlog for result in results), default=0),
        arbitration_lost=event_totals.get(EventKind.ARBITRATION_LOST, 0),
        errors_detected=event_totals.get(EventKind.ERROR_DETECTED, 0),
        errors_injected=sum(result.errors_injected for result in results),
        bus_off=event_totals.get(EventKind.BUS_OFF, 0),
        bus_off_recovered=event_totals.get(EventKind.BUS_OFF_RECOVERED, 0),
        window_bits=tuple(result.bits for result in results),
    )

    return TrafficOutcome(
        spec=spec,
        schedule=schedule,
        verdicts=tuple(verdicts),
        ledger=ledger,
        properties=check_atomic_broadcast(ledger),
        stats=stats,
        bus=bus,
        events=events,
        backend_stats=backend_stats,
    )


def run_traffic(
    spec: TrafficSpec,
    jobs: Optional[int] = None,
    backend: str = "engine",
) -> TrafficOutcome:
    """Run ``spec``, sharding its windows over ``jobs`` workers.

    The ledger, verdicts and property results are bit-identical for
    any ``jobs`` at the same spec: the schedule is precomputed
    serially, the per-window noise seeds are spawned from the root
    seed, and ``run_tasks`` preserves submission order.

    ``backend="batch"`` evaluates fault-free windows with the
    frame-granular replay of :mod:`repro.traffic.batch` — same ledger,
    stats and events, no per-bit engine — and noisy/burst windows with
    the vectorised noise dispatch (zero-flip realisations resolve
    through the clean replay, flipped ones resume the engine from the
    fault point); only HLP windows fall back to the engine outright.
    The per-window provenance is reported in
    :attr:`TrafficOutcome.backend_stats`.
    """
    from repro.errors import ConfigurationError
    from repro.parallel.pool import run_tasks
    from repro.parallel.tasks import TrafficWindowTask

    if backend not in ("engine", "batch"):
        raise ConfigurationError("unknown traffic backend %r" % (backend,))
    schedule = build_schedule(spec)
    per_window: List[List[Submission]] = [[] for _ in range(spec.windows)]
    for sub in schedule:
        per_window[sub.window].append(sub)
    if spec.noise_ber > 0.0:
        _, noise_children = traffic_seed_tree(spec)
    else:
        noise_children = [None] * spec.windows
    tasks = [
        TrafficWindowTask(
            spec=spec,
            window=window,
            submissions=tuple(per_window[window]),
            noise_seed=noise_children[window],
            backend=backend,
        )
        for window in range(spec.windows)
    ]
    results = run_tasks(tasks, jobs=jobs)
    backend_stats: Optional[Dict[str, int]] = None
    if backend == "batch":
        # Measured provenance, not a prediction: noisy windows resolve
        # to "batch" (zero-flip), "resume" (fault-point re-entry) or
        # "engine" (nothing committable) only once their masks are
        # drawn.
        backend_stats = {}
        for result in results:
            backend_stats[result.backend] = backend_stats.get(result.backend, 0) + 1
    return splice_windows(spec, schedule, results, backend_stats=backend_stats)
