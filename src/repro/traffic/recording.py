"""Schema-v2 serialisation of traffic runs.

Line order of a v2 (traffic) recording:

1. exactly one ``manifest`` line — ``version: 2``, ``kind: traffic``,
   the full :class:`TrafficSpec` under ``traffic``/``engine`` (the run
   is a deterministic function of the spec, so the manifest alone
   rebuilds it);
2. zero or more ``submission`` lines — the precomputed schedule, in
   time order;
3. exactly one ``bus`` line — the spliced d/r level stream;
4. zero or more ``event`` lines — the merged controller event stream
   in spliced global time (present when ``record_events``);
5. zero or more ``frame_verdict`` lines — one per scheduled message,
   in schedule order;
6. exactly one ``verdict`` line — aggregate counts, bus statistics and
   the AB1–AB5 results.

Traffic runs never record per-bit lines: steady-state runs are long
and always use the engine fast path.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.tracestore.recorder import TraceRecorder
from repro.tracestore.schema import BUS, FRAME_VERDICT, SUBMISSION, VERDICT
from repro.traffic.run import MessageVerdict, TrafficOutcome
from repro.traffic.spec import Submission


def submission_record(sub: Submission) -> Dict[str, Any]:
    """The v2 ``submission`` record of one scheduled message."""
    return {
        "type": SUBMISSION,
        "t": sub.time,
        "window": sub.window,
        "node": sub.node,
        "seq": sub.seq,
        "id": sub.identifier,
        "payload": sub.payload.hex(),
        "message_id": sub.message_id,
    }


def frame_verdict_record(verdict: MessageVerdict) -> Dict[str, Any]:
    """The v2 ``frame_verdict`` record of one per-message verdict."""
    return {
        "type": FRAME_VERDICT,
        "origin": verdict.origin,
        "seq": verdict.seq,
        "window": verdict.window,
        "t": verdict.submitted_at,
        "status": verdict.status,
        "counts": dict(verdict.counts),
        "first_delivered": verdict.first_delivered,
    }


def traffic_verdict_record(outcome: TrafficOutcome) -> Dict[str, Any]:
    """The v2 aggregate ``verdict`` record of a traffic run."""
    stats = outcome.stats
    return {
        "type": VERDICT,
        "frames": stats.frames_submitted,
        "delivered": stats.delivered,
        "duplicated": stats.duplicated,
        "omitted": stats.omitted,
        "lost": stats.lost,
        "total_bits": stats.total_bits,
        "bus_load": stats.bus_load,
        "max_backlog": stats.max_backlog,
        "errors_injected": stats.errors_injected,
        "window_bits": list(stats.window_bits),
        "properties": {
            name: bool(result) for name, result in outcome.properties.items()
        },
        "deliveries": {
            name: len(node.deliveries)
            for name, node in sorted(outcome.ledger.nodes.items())
        },
    }


def traffic_records(
    outcome: TrafficOutcome, meta: Optional[Dict[str, Any]] = None
) -> Iterator[Dict[str, Any]]:
    """Yield the v2 records of ``outcome`` in schema order."""
    yield outcome.spec.to_manifest(meta)
    for sub in outcome.schedule:
        yield submission_record(sub)
    yield {"type": BUS, "levels": outcome.bus}
    for record in outcome.events or ():
        yield record
    for verdict in outcome.verdicts:
        yield frame_verdict_record(verdict)
    yield traffic_verdict_record(outcome)


def record_traffic(
    path, outcome: TrafficOutcome, meta: Optional[Dict[str, Any]] = None
) -> None:
    """Write ``outcome`` as a v2 recording at ``path``."""
    with TraceRecorder(path) as recorder:
        recorder.write_records(traffic_records(outcome, meta))


def recorded_traffic(
    outcome: TrafficOutcome, meta: Optional[Dict[str, Any]] = None
):
    """An in-memory :class:`RecordedTrace` of ``outcome``."""
    from repro.tracestore.replay import RecordedTrace

    return RecordedTrace.from_records(
        list(traffic_records(outcome, meta)), source="<memory>"
    )
