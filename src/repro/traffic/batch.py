"""Frame-granular batch evaluation of clean traffic windows.

A window free of noise, bursts and higher-level protocols is fully
determined by its submission schedule: identifiers are fixed per node,
so arbitration under contention resolves deterministically (lowest
identifier = lowest node index wins), every frame is acknowledged, no
error flag ever fires, and the bus trace is the concatenation of the
winners' cached :class:`repro.can.encoding.BusImage` wire images with
recessive gaps in between.  :func:`run_window_batch` therefore replays
the whole window with a priority-queue scheduler at bus-idle instants
instead of stepping :class:`repro.simulation.engine.SimulationEngine`
bit by bit, and reproduces the engine's observable surface *exactly* —
bus string, per-node deliveries, event stream (times, payloads and
merge order), backlog samples, busy-bit count and the drain-parity
``SimulationError``.

Timing model (verified against the engine's step order — drive, bus
resolve, ``on_bit``, tick hooks, ``time += 1``):

- a submission at tick ``a`` enters the node's queue after ``on_bit``
  of that tick, so the earliest SOF it can drive is ``a + 1``;
- a frame's SOF lands at ``t0 = max(idle_from, a_min + 1)`` where
  ``idle_from`` is the first drive instant after the previous frame's
  intermission (``t_end + 4``; ``0`` at the window start) and
  ``a_min`` the earliest queued arrival;
- the contenders are the nodes whose head-of-queue arrival is
  ``<= t0 - 1``; the winner is the lowest node index; each loser
  withdraws at its first wire-level divergence from the winner (an
  arbitration position by construction) and turns receiver;
- receivers deliver at the protocol's EOF rule — standard CAN at the
  last-but-one EOF bit, MinorCAN and MajorCAN at the last — and the
  winner self-delivers at ``t_end``;
- the drained window ends after twelve quiet bits:
  ``total = max(window_bits, t_last_end + 3) + 12``.

Window outcomes are memoised in a process-wide content-addressed cache
keyed like :func:`repro.sweep.cell.cell_key` — protocol, ``m``, the
config knobs and the exact window-local schedule — so identical window
shapes (empty windows, warm re-runs, sweep re-evaluations) collapse to
cache hits.  Note the honest limit: periodic workloads advance their
sequence numbers every window, so distinct windows of one run rarely
collide; the speedup comes from eliminating the engine, the cache from
eliminating *repeated* evaluation.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.can.events import Event, EventKind
from repro.errors import SimulationError
from repro.traffic.spec import Submission, TrafficSpec

#: Version of the window-cache key schema.  Bump whenever the batch
#: evaluator's semantics change in a way that invalidates cached
#: window results.
WINDOW_KEY_VERSION = 1

#: Quiet bits a drained window ends with (``run._SETTLE_BITS``).
_SETTLE_BITS = 12

#: Bit times between a frame's last EOF bit and the next possible SOF:
#: three intermission bits consumed, then the first idle drive instant.
_TURNAROUND = 4

#: Backlog sampling stride; mirrors ``run._BACKLOG_STRIDE``.
_BACKLOG_STRIDE = 16

#: Process-wide memo of evaluated windows, insertion-ordered for FIFO
#: eviction.  Values are canonical :class:`WindowResult` objects; hits
#: return copies re-stamped with the caller's window index.
_WINDOW_CACHE: Dict[str, object] = {}
_WINDOW_CACHE_MAX = 1024
_CACHE_STATS = {"hits": 0, "misses": 0}


def window_backend(spec: TrafficSpec, window: int) -> str:
    """Which evaluator handles ``window`` of ``spec`` under ``batch``.

    ``"batch"`` is the closed-form replay: nothing can perturb the
    deterministic arbitration timeline.  ``"noise"`` is the vectorised
    noise dispatch (:func:`run_window_noisy`): random view noise and
    scheduled bursts are scanned against the clean timeline and only
    actually-flipped realisations touch the engine, resumed from the
    fault point.  Only higher-level protocols stay on ``"engine"``
    outright — HLP timers submit frames mid-run, so the clean timeline
    the scan needs is not known in advance.
    """
    if spec.hlp is not None:
        return "engine"
    if spec.noise_ber > 0.0 or spec.bursts_for_window(window):
        return "noise"
    return "batch"


def window_cache_key(
    spec: TrafficSpec, window: int, submissions: Tuple[Submission, ...]
) -> str:
    """Content-addressed key of one window evaluation.

    Keyed like :func:`repro.sweep.cell.cell_key`: SHA-256 over the
    canonical JSON of everything the result depends on — protocol,
    ``m``, node count, the window/drain geometry, the config knobs and
    the *window-local* schedule (times relative to the window start, so
    two windows with the same shape share a key regardless of their
    position in the run).
    """
    from repro.metrics.export import json_line

    offset = window * spec.window_bits
    payload = {
        "key_version": WINDOW_KEY_VERSION,
        "protocol": spec.protocol,
        "m": spec.m,
        "n_nodes": spec.n_nodes,
        "window_bits": spec.window_bits,
        "max_window_bits": spec.max_window_bits,
        "bus_off_recovery": spec.bus_off_recovery,
        "fast_path": spec.fast_path,
        "record_events": spec.record_events,
        "schedule": [
            [
                sub.time - offset,
                sub.node_index,
                sub.seq,
                sub.identifier,
                sub.payload.hex(),
                sub.message_id,
            ]
            for sub in submissions
        ],
    }
    return hashlib.sha256(json_line(payload).encode("utf-8")).hexdigest()


def window_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the process-wide window cache."""
    return {
        "entries": len(_WINDOW_CACHE),
        "hits": _CACHE_STATS["hits"],
        "misses": _CACHE_STATS["misses"],
    }


def clear_window_cache() -> None:
    """Empty the window cache and reset its counters (tests, benches)."""
    _WINDOW_CACHE.clear()
    _CACHE_STATS["hits"] = 0
    _CACHE_STATS["misses"] = 0


def warm_traffic(specs: Tuple[TrafficSpec, ...]) -> None:
    """Pre-compile the wire images a batch traffic run concatenates.

    ``specs`` is a sequence of picklable :class:`TrafficSpec` values —
    the distinct traffic shapes of a sweep — broadcast to pool workers
    once per fork through :func:`repro.parallel.set_worker_context`.
    Every clean window of those specs synthesizes its bus from the
    schedule's frame images; warming builds each image once per worker
    instead of once per chunk.  Like
    :func:`repro.analysis.batchreplay.warm_universe` this is purely a
    cache fill: bad entries are skipped, never raised, so a stale
    context cannot take a worker down.
    """
    from repro.can.encoding import bus_image
    from repro.traffic.schedule import build_schedule

    for spec in specs:
        try:
            eof_length = _eof_length(spec)
            for sub in build_schedule(spec):
                bus_image(_submission_frame(spec, sub), eof_length)
        except Exception:  # noqa: BLE001 - cache fill must never raise
            continue


def _eof_length(spec: TrafficSpec) -> int:
    from repro.traffic.run import _controller_config

    return _controller_config(spec).eof_length


def _submission_frame(spec: TrafficSpec, sub: Submission):
    """The exact frame the engine path would submit for ``sub``."""
    from repro.can.frame import data_frame

    return data_frame(
        sub.identifier,
        sub.payload,
        message_id=sub.message_id,
        origin=spec.node_names[sub.node_index],
    )


def _arbitration_divergence(loser_values, winner_values) -> int:
    """First wire position where the loser's program leaves the bus.

    Both programs share SOF and every stuffed prefix bit up to the
    first identifier bit where the winner drives dominant and the loser
    recessive (stuff decisions depend only on the identical prefix), so
    the first level difference is the loser's arbitration-loss
    position.
    """
    for position, (loser, winner) in enumerate(zip(loser_values, winner_values)):
        if loser != winner:
            return position
    raise SimulationError("contending frames share an identifier")


def _busy_symbols(symbols: str) -> int:
    """Busy-bit count of a trace string, same idle rule as the engine:
    dominant bits and the first twelve bits of every recessive run."""
    busy = 0
    idle_run = 0
    for symbol in symbols:
        if symbol == "d":
            busy += 1
            idle_run = 0
        else:
            idle_run += 1
            if idle_run <= _SETTLE_BITS:
                busy += 1
    return busy


def _max_sampled_backlog(
    arrivals: List[List[int]], completions: List[List[int]], total_bits: int
) -> int:
    """The engine's stride-sampled queue-depth maximum, in closed form.

    The engine samples ``max(pending_transmissions)`` at every tick
    divisible by the stride, *after* the submission hook at the same
    tick and after any ``on_bit`` queue pop — so a submission at tick
    ``t`` and a completion at tick ``t`` are both visible at sample
    ``t``.  Walking each node's piecewise-constant depth segments and
    testing whether a sample tick lands inside reproduces the maximum
    without materialising the samples.
    """
    deepest = 0
    for node_arrivals, node_completions in zip(arrivals, completions):
        depth = 0
        arrival_index = completion_index = 0
        n_arrivals = len(node_arrivals)
        n_completions = len(node_completions)
        while arrival_index < n_arrivals or completion_index < n_completions:
            next_arrival = (
                node_arrivals[arrival_index]
                if arrival_index < n_arrivals
                else total_bits
            )
            next_completion = (
                node_completions[completion_index]
                if completion_index < n_completions
                else total_bits
            )
            start = min(next_arrival, next_completion)
            while arrival_index < n_arrivals and node_arrivals[arrival_index] == start:
                depth += 1
                arrival_index += 1
            while (
                completion_index < n_completions
                and node_completions[completion_index] == start
            ):
                depth -= 1
                completion_index += 1
            end = min(
                node_arrivals[arrival_index]
                if arrival_index < n_arrivals
                else total_bits,
                node_completions[completion_index]
                if completion_index < n_completions
                else total_bits,
                total_bits,
            )
            if depth > deepest:
                first_sample = -(-start // _BACKLOG_STRIDE) * _BACKLOG_STRIDE
                if first_sample < end:
                    deepest = depth
    return deepest


class _FramePlan:
    """One planned frame on the clean timeline (plan/render split)."""

    __slots__ = ("t0", "t_end", "winner", "contenders")

    def __init__(self, t0: int, t_end: int, winner: int, contenders: Tuple[int, ...]):
        self.t0 = t0
        self.t_end = t_end
        self.winner = winner
        self.contenders = contenders


def _local_queues(
    spec: TrafficSpec, window: int, submissions: Tuple[Submission, ...]
) -> List[List[Tuple[int, object, Submission]]]:
    """Per-node (window-local arrival, frame, submission) queues."""
    offset = window * spec.window_bits
    queues: List[List[Tuple[int, object, Submission]]] = [
        [] for _ in range(spec.n_nodes)
    ]
    for sub in submissions:
        queues[sub.node_index].append(
            (sub.time - offset, _submission_frame(spec, sub), sub)
        )
    return queues


def _plan_frames(
    spec: TrafficSpec,
    queues: List[List[Tuple[int, object, Submission]]],
    count: int,
) -> Tuple[List[_FramePlan], int]:
    """Lay the window's frames on the clean timeline; no rendering.

    Returns the time-ordered frame plans and the window's total bit
    length (active + drain), raising the engine's drain-parity
    ``SimulationError`` when the clean timeline alone would overflow
    the window's drain budget.
    """
    from repro.can.encoding import bus_image

    eof_length = _eof_length(spec)
    n_nodes = spec.n_nodes
    heads = [0] * n_nodes
    plans: List[_FramePlan] = []
    idle_from = 0
    remaining = count
    while remaining:
        a_min = min(
            queues[index][heads[index]][0]
            for index in range(n_nodes)
            if heads[index] < len(queues[index])
        )
        t0 = max(idle_from, a_min + 1)
        contenders = tuple(
            index
            for index in range(n_nodes)
            if heads[index] < len(queues[index])
            and queues[index][heads[index]][0] < t0
        )
        winner = contenders[0]
        image = bus_image(queues[winner][heads[winner]][1], eof_length)
        t_end = t0 + image.length - 1
        plans.append(_FramePlan(t0, t_end, winner, contenders))
        heads[winner] += 1
        remaining -= 1
        idle_from = t_end + _TURNAROUND
    if not plans:
        total_bits = spec.window_bits + _SETTLE_BITS
    else:
        total_bits = (
            max(spec.window_bits, plans[-1].t_end + _TURNAROUND - 1) + _SETTLE_BITS
        )
    if total_bits - spec.window_bits > spec.max_window_bits:
        raise SimulationError(
            "bus did not become idle within %d bits" % spec.max_window_bits
        )
    return plans, total_bits


def _render_frames(
    spec: TrafficSpec,
    queues: List[List[Tuple[int, object, Submission]]],
    plans: List[_FramePlan],
):
    """Engine-exact surface of the planned frames.

    Returns ``(node_events, deliveries, completions, segments,
    attempts)`` for exactly the frames in ``plans`` — the whole window
    on the clean path, the committed prefix on the noisy resume path.
    ``attempts`` is the per-node retry counter left standing after the
    last plan (losers of committed arbitration rounds carry it into
    the resumed engine so their next TX_START numbers identically).
    """
    from repro.can.frame import Frame
    from repro.can.encoding import bus_image
    from repro.can.identifiers import CanId
    from repro.traffic.run import _controller_config

    config = _controller_config(spec)
    eof_length = config.eof_length
    names = spec.node_names
    n_nodes = spec.n_nodes
    # Receivers of a standard CAN frame deliver at the last-but-one EOF
    # bit; MinorCAN and MajorCAN postpone delivery to the last.
    rx_lag = 1 if spec.protocol == "can" else 0

    heads = [0] * n_nodes
    attempts = [0] * n_nodes
    node_events: List[List[Event]] = [[] for _ in range(n_nodes)]
    deliveries: List[List[Tuple[str, int, int]]] = [[] for _ in range(n_nodes)]
    completions: List[List[int]] = [[] for _ in range(n_nodes)]
    segments: List[Tuple[int, str]] = []

    for plan in plans:
        t0 = plan.t0
        t_end = plan.t_end
        winner = plan.winner
        contenders = plan.contenders
        _, winner_frame, winner_sub = queues[winner][heads[winner]]
        image = bus_image(winner_frame, eof_length)

        contending = set(contenders)
        for index in range(n_nodes):
            if index in contending:
                attempts[index] += 1
                frame = queues[index][heads[index]][1]
                node_events[index].append(
                    Event(
                        time=t0,
                        node=names[index],
                        kind=EventKind.TX_START,
                        data={
                            "frame": str(frame),
                            "attempt": attempts[index],
                            "message_id": frame.message_id,
                        },
                    )
                )
            else:
                node_events[index].append(
                    Event(time=t0, node=names[index], kind=EventKind.RX_START, data={})
                )
        for index in contenders[1:]:
            loser_program = bus_image(queues[index][heads[index]][1], eof_length).program
            position = _arbitration_divergence(
                loser_program.bit_values, image.program.bit_values
            )
            field, field_index = loser_program.positions[position]
            node_events[index].append(
                Event(
                    time=t0 + position,
                    node=names[index],
                    kind=EventKind.ARBITRATION_LOST,
                    data={"field": field, "index": field_index},
                )
            )

        origin = names[winner]
        seq = winner_sub.payload[0] | (winner_sub.payload[1] << 8)
        received = Frame(
            can_id=CanId(winner_sub.identifier), data=winner_sub.payload
        )
        received_str = str(received)
        rx_time = t_end - rx_lag
        for index in range(n_nodes):
            if index == winner:
                continue
            node_events[index].append(
                Event(
                    time=rx_time,
                    node=names[index],
                    kind=EventKind.FRAME_DELIVERED,
                    data={"frame": received_str, "message_id": None, "attempt": None},
                )
            )
            deliveries[index].append((origin, seq, rx_time))
        node_events[winner].append(
            Event(
                time=t_end,
                node=names[winner],
                kind=EventKind.TX_SUCCESS,
                data={
                    "frame": str(winner_frame),
                    "attempt": attempts[winner],
                    "message_id": winner_frame.message_id,
                },
            )
        )
        if config.self_delivery:
            node_events[winner].append(
                Event(
                    time=t_end,
                    node=names[winner],
                    kind=EventKind.FRAME_DELIVERED,
                    data={
                        "frame": str(winner_frame),
                        "message_id": winner_frame.message_id,
                        "attempt": attempts[winner],
                    },
                )
            )
            deliveries[winner].append((origin, seq, t_end))
        completions[winner].append(t_end)
        heads[winner] += 1
        attempts[winner] = 0
        segments.append((t0, image.symbols))

    return node_events, deliveries, completions, segments, attempts


def _evaluate_window(
    spec: TrafficSpec, window: int, submissions: Tuple[Submission, ...]
):
    """Closed-form replay of one clean window (see the module docs)."""
    from repro.tracestore.recorder import event_record
    from repro.traffic.run import WindowResult

    names = spec.node_names
    n_nodes = spec.n_nodes
    queues = _local_queues(spec, window, submissions)
    plans, total_bits = _plan_frames(spec, queues, len(submissions))
    node_events, deliveries, completions, segments, _ = _render_frames(
        spec, queues, plans
    )

    symbols = ["r"] * total_bits
    for start, frame_symbols in segments:
        symbols[start : start + len(frame_symbols)] = frame_symbols
    bus = "".join(symbols)

    merged = list(heapq.merge(*node_events, key=lambda event: event.time))
    event_counts: Dict[str, int] = {}
    for event in merged:
        event_counts[event.kind] = event_counts.get(event.kind, 0) + 1
    events: Optional[Tuple[dict, ...]] = (
        tuple(event_record(event) for event in merged)
        if spec.record_events
        else None
    )

    arrivals = [
        [entry[0] for entry in node_queue] for node_queue in queues
    ]
    return WindowResult(
        window=window,
        bits=total_bits,
        bus=bus,
        deliveries={
            names[index]: tuple(deliveries[index]) for index in range(n_nodes)
        },
        event_counts=event_counts,
        events=events,
        ever_offline=(),
        offline_at_end=(),
        max_backlog=_max_sampled_backlog(arrivals, completions, total_bits),
        busy_bits=_busy_symbols(bus),
        errors_injected=0,
        backend="batch",
    )


def run_window_batch(
    spec: TrafficSpec, window: int, submissions: Tuple[Submission, ...]
):
    """Evaluate one clean window through the memoised batch evaluator.

    The caller (``run_window`` with ``backend="batch"``) is responsible
    for routing only batch-eligible windows here — see
    :func:`window_backend`.
    """
    key = window_cache_key(spec, window, submissions)
    cached = _WINDOW_CACHE.get(key)
    if cached is not None:
        _CACHE_STATS["hits"] += 1
        return replace(
            cached,
            window=window,
            deliveries=dict(cached.deliveries),
            event_counts=dict(cached.event_counts),
        )
    _CACHE_STATS["misses"] += 1
    result = _evaluate_window(spec, window, submissions)
    if len(_WINDOW_CACHE) >= _WINDOW_CACHE_MAX:
        _WINDOW_CACHE.pop(next(iter(_WINDOW_CACHE)))
    _WINDOW_CACHE[key] = result
    return result


def _noise_draw_width(spec: TrafficSpec) -> int:
    """Uniform draws the noise injector consumes per engine tick.

    ``RandomViewErrorInjector`` draws once per ``perturb_view`` call —
    one per node per tick in engine node order — except that nodes
    outside ``only_nodes`` return early *before* the draw.
    """
    if spec.noise_ber <= 0.0:
        return 0
    if spec.noise_nodes is None:
        return spec.n_nodes
    allowed = set(spec.noise_nodes)
    return sum(1 for name in spec.node_names if name in allowed)


def run_window_noisy(
    spec: TrafficSpec,
    window: int,
    submissions: Tuple[Submission, ...],
    noise_seed,
):
    """Vectorised dispatch of one noisy/burst window (ISSUE 10).

    Draws the window's whole noise mask in the engine's stream order
    (one uniform per noise-eligible node per tick over the fault-free
    timeline) and thresholds it against the BER.  A zero-fault window
    *is* the clean window, so it resolves through the memoised batch
    evaluator with no simulation; a window whose mask fires — or whose
    scheduled burst lands inside the clean timeline — commits the
    clean frames that provably finish before the first fault and
    re-enters the engine from the cut point with the generator
    advanced to the same stream position, so error cascades and the
    shifted downstream schedule are exactly the engine's.  Falls back
    to a plain engine run when nothing can be committed (fault at the
    window start) or when even the clean timeline overflows the drain
    budget (only the engine reproduces the exact overflow surface).
    """
    from repro.analysis.noisebatch import first_flip, generator_state, restore_state
    from repro.traffic.run import _run_window_engine

    try:
        clean = run_window_batch(spec, window, submissions)
    except SimulationError:
        return _run_window_engine(spec, window, submissions, noise_seed)
    draw_width = _noise_draw_width(spec)
    rng = None
    fault_tick = None
    if draw_width:
        from repro.parallel.seeds import rng_from

        rng = rng_from(noise_seed)
        state = generator_state(rng)
        flip = first_flip(rng, clean.bits * draw_width, spec.noise_ber)
        restore_state(rng, state)
        if flip is not None:
            fault_tick = flip // draw_width
    for burst in spec.bursts_for_window(window):
        if burst.start < clean.bits and (
            fault_tick is None or burst.start < fault_tick
        ):
            fault_tick = burst.start
    if fault_tick is None:
        return clean
    return _resume_window(
        spec, window, submissions, noise_seed, rng, draw_width, fault_tick
    )


def _resume_window(
    spec: TrafficSpec,
    window: int,
    submissions: Tuple[Submission, ...],
    noise_seed,
    rng,
    draw_width: int,
    fault_tick: int,
):
    """Engine run of a faulted window, resumed from the last safe cut.

    The clean timeline is committed frame by frame while a frame's
    whole extent *including its three intermission bits* ends strictly
    before the first fault tick — so the frame carrying the fault (in
    body or intermission) is never committed, no frame is mid-flight
    at the cut, and every committed tick is provably fault-free.  The
    cut ``s`` is the latest tick with those guarantees: the first
    fault tick itself, clamped below the next uncommitted frame's SOF.
    A fresh engine then replays global ticks ``s..`` at local ``0..``
    with (a) the generator fast-forwarded ``s * draw_width`` draws, (b)
    uncommitted submissions re-queued at ``max(0, arrival - s)``, (c)
    carried arbitration attempt counters restored, and (d) bursts
    shifted by ``s``; the surfaces are spliced (prefix events strictly
    precede tick ``s``, so concatenation is the engine's heap merge).
    """
    from repro.analysis.noisebatch import advance
    from repro.can.events import EventKind
    from repro.faults.scenarios import make_controller
    from repro.simulation.engine import SimulationEngine
    from repro.tracestore.recorder import event_record
    from repro.traffic.run import (
        WindowResult,
        _controller_config,
        _decode_wire_key,
        _run_window_engine,
    )

    queues = _local_queues(spec, window, submissions)
    plans, _ = _plan_frames(spec, queues, len(submissions))
    committed: List[_FramePlan] = []
    for plan in plans:
        if plan.t_end + _TURNAROUND - 1 < fault_tick:
            committed.append(plan)
        else:
            break
    if len(committed) < len(plans):
        cut = min(fault_tick, plans[len(committed)].t0 - 1)
    else:
        cut = fault_tick
    if cut <= 0:
        # Nothing commits: the resume would be a full engine run, so
        # run (and account) it as one.
        return _run_window_engine(spec, window, submissions, noise_seed)

    names = spec.node_names
    n_nodes = spec.n_nodes
    node_events, deliveries, completions, segments, attempts_carry = _render_frames(
        spec, queues, committed
    )
    heads = [0] * n_nodes
    for plan in committed:
        heads[plan.winner] += 1

    # Uncommitted submissions re-enter the resumed engine at shifted
    # times; a stable (time, node) sort preserves each node's queue
    # order, which is all the per-node controllers can observe.
    carried: List[Tuple[int, int, object]] = []
    for index in range(n_nodes):
        for arrival, frame, _ in queues[index][heads[index]:]:
            carried.append((max(0, arrival - cut), index, frame))
    carried.sort(key=lambda item: (item[0], item[1]))

    injectors: List[object] = []
    if rng is not None:
        from repro.faults.bit_errors import RandomViewErrorInjector

        advance(rng, cut * draw_width)
        injectors.append(
            RandomViewErrorInjector(
                spec.noise_ber, seed=rng, only_nodes=spec.noise_nodes
            )
        )
    for burst in spec.bursts_for_window(window):
        from repro.faults.bit_errors import BurstViewErrorInjector

        injectors.append(
            BurstViewErrorInjector(burst.node, burst.start - cut, burst.length)
        )
    if not injectors:
        injector = None
    elif len(injectors) == 1:
        injector = injectors[0]
    else:
        from repro.faults.injector import CompositeInjector

        injector = CompositeInjector(list(injectors))

    config = _controller_config(spec)
    controllers = [
        make_controller(spec.protocol, name, m=spec.m, config=config)
        for name in names
    ]
    engine = SimulationEngine(controllers, injector=injector, record_bits=False)

    cursor = [0]

    def _submit(now: int) -> None:
        index = cursor[0]
        while index < len(carried) and carried[index][0] == now:
            _, node_index, frame = carried[index]
            controllers[node_index].submit(frame)
            index += 1
        cursor[0] = index
        if now == 0:
            # Losers of committed arbitration rounds retry with their
            # attempt counters intact, so resumed TX_START/TX_SUCCESS
            # events number exactly like the engine's.
            for node_index, carry in enumerate(attempts_carry):
                if carry and controllers[node_index].tx_queue:
                    controllers[node_index].tx_queue[0].attempts = carry

    backlog = [0]

    def _sample_backlog(now: int) -> None:
        if (now + cut) & (_BACKLOG_STRIDE - 1) == 0:
            depth = max(c.pending_transmissions for c in controllers)
            if depth > backlog[0]:
                backlog[0] = depth

    engine.add_tick_hook(_submit)
    engine.add_tick_hook(_sample_backlog)

    try:
        if cut < spec.window_bits:
            engine.run(spec.window_bits - cut)
            drain_budget = spec.max_window_bits
        else:
            # The committed prefix already spent part of the drain
            # budget; the resumed engine gets exactly the remainder.
            drain_budget = spec.max_window_bits - (cut - spec.window_bits)
        engine.run_until_idle(max_bits=drain_budget, settle_bits=_SETTLE_BITS)
    except SimulationError as exc:
        if str(exc).startswith("bus did not become idle"):
            raise SimulationError(
                "bus did not become idle within %d bits" % spec.max_window_bits
            )
        raise

    trace = engine.collect_events()
    prefix_events = list(heapq.merge(*node_events, key=lambda event: event.time))
    event_counts: Dict[str, int] = {}
    for event in prefix_events:
        event_counts[event.kind] = event_counts.get(event.kind, 0) + 1
    for event in trace.events:
        event_counts[event.kind] = event_counts.get(event.kind, 0) + 1
    events: Optional[Tuple[dict, ...]] = None
    if spec.record_events:
        records = [event_record(event) for event in prefix_events]
        for event in trace.events:
            record = event_record(event)
            record["t"] += cut
            records.append(record)
        events = tuple(records)

    merged_deliveries: Dict[str, Tuple[Tuple[str, int, int], ...]] = {}
    for index, name in enumerate(names):
        rows = list(deliveries[index])
        for delivery in controllers[index].deliveries:
            key = _decode_wire_key(delivery.frame, n_nodes)
            if key is not None:
                rows.append((key[0], key[1], delivery.time + cut))
        merged_deliveries[name] = tuple(rows)

    prefix_symbols = ["r"] * cut
    for start, frame_symbols in segments:
        prefix_symbols[start : start + len(frame_symbols)] = frame_symbols
    bus = "".join(prefix_symbols) + "".join(
        level.symbol for level in engine.bus.history
    )

    ever_offline = sorted(
        {
            event.node
            for event in trace.events
            if event.kind
            in (EventKind.BUS_OFF, EventKind.CRASHED, EventKind.DISCONNECTED)
        }
        | {c.name for c in controllers if c.offline}
    )
    # Prefix depth only: arrivals at or after the cut are re-submitted
    # into the resumed engine (at ``max(0, arrival - cut)``) and show
    # up through its own sampler, so the closed-form walk stops at the
    # cut — it must never see ticks beyond its ``total_bits`` horizon.
    arrivals = [
        [entry[0] for entry in node_queue if entry[0] < cut] for node_queue in queues
    ]

    return WindowResult(
        window=window,
        bits=cut + engine.time,
        bus=bus,
        deliveries=merged_deliveries,
        event_counts=event_counts,
        events=events,
        ever_offline=tuple(ever_offline),
        offline_at_end=tuple(c.name for c in controllers if c.offline),
        max_backlog=max(
            _max_sampled_backlog(arrivals, completions, cut), backlog[0]
        ),
        busy_bits=_busy_symbols(bus),
        errors_injected=sum(getattr(part, "injected", 0) for part in injectors),
        backend="resume",
    )
