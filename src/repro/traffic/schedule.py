"""Deterministic submission-schedule construction.

The schedule — which node submits which message at which bit time —
is computed serially in the driver *before* any window fans out to a
worker, by running the real ``repro.workload`` generators against stub
controllers that record submissions instead of queueing them.  That
makes jobs-invariance structural: workers receive their window's slice
of a schedule that never depended on the worker count, and the only
per-worker randomness (view-error noise) draws from per-window spawned
child seeds.

Periodic sources are only ticked at their arithmetic candidate times
(``tick`` is a no-op elsewhere), so scheduling costs O(messages), not
O(bits).  Poisson sources consume one uniform draw per bit and are
ticked over every bit of the active windows.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.traffic.spec import ID_BASE, Submission, TrafficSpec


class _ScheduleProbe:
    """Stub controller satisfying the workload sources' interface.

    Records ``(time, frame)`` pairs instead of queueing transmissions;
    ``now`` is set by the scheduler before each tick.
    """

    __slots__ = ("name", "now", "submissions")

    def __init__(self, name: str) -> None:
        self.name = name
        self.now = 0
        self.submissions: List[tuple] = []

    def submit(self, frame) -> None:
        self.submissions.append((self.now, frame))


def traffic_seed_tree(spec: TrafficSpec) -> Tuple[list, list]:
    """(per-source children, per-window noise children) of the root seed.

    One spawn tree per spec: the Poisson sources and the per-window
    noise injectors draw from disjoint children of ``spec.seed``, so
    enabling one never perturbs the other.  Requires numpy (the
    ``repro[fast]`` extra) like every stochastic component.
    """
    from repro.parallel.seeds import spawn_seeds

    top = spawn_seeds(spec.seed, 2)
    return spawn_seeds(top[0], spec.n_nodes), spawn_seeds(top[1], spec.windows)


def build_schedule(spec: TrafficSpec) -> Tuple[Submission, ...]:
    """The complete submission schedule of ``spec``, in time order."""
    from repro.workload.generator import PeriodicSource, PoissonSource

    probes = [_ScheduleProbe(name) for name in spec.node_names]
    total = spec.total_active_bits
    if spec.source == "periodic":
        period = spec.period_bits
        for index, probe in enumerate(probes):
            source = PeriodicSource(
                controller=probe,
                period_bits=period,
                identifier=ID_BASE + index,
                phase=(index * period) // spec.n_nodes,
                max_messages=spec.messages_per_node,
            )
            for time in range(source.phase, total, period):
                probe.now = time
                source.tick(time)
    else:
        from repro.parallel.seeds import rng_from

        source_children, _ = traffic_seed_tree(spec)
        sources = [
            PoissonSource(
                controller=probe,
                rate_per_bit=spec.rate_per_bit,
                identifier=ID_BASE + index,
                rng=rng_from(source_children[index]),
                max_messages=spec.messages_per_node,
            )
            for index, probe in enumerate(probes)
        ]
        for time in range(total):
            for source, probe in zip(sources, probes):
                probe.now = time
                source.tick(time)

    submissions: List[Submission] = []
    for index, probe in enumerate(probes):
        if len(probe.submissions) > spec.seq_cap:
            raise ConfigurationError(
                "node %s schedules %d messages but the %s wire encoding "
                "carries at most %d sequence numbers; raise the period, "
                "cap messages_per_node, or shorten the run"
                % (
                    probe.name,
                    len(probe.submissions),
                    "HLP" if spec.hlp else "payload",
                    spec.seq_cap,
                )
            )
        for seq, (time, frame) in enumerate(probe.submissions):
            submissions.append(
                Submission(
                    time=time,
                    window=time // spec.window_bits,
                    node=probe.name,
                    node_index=index,
                    seq=seq,
                    identifier=frame.can_id.value,
                    payload=frame.data,
                    message_id=frame.message_id,
                )
            )
    submissions.sort(key=lambda sub: (sub.time, sub.node_index))
    return tuple(submissions)
