"""Specification of a steady-state traffic run.

A :class:`TrafficSpec` is the complete experiment identity of a
multi-frame run: the node/protocol matrix, the workload-generator
parameters, the time-window partition used for sharding, and the
sustained fault regime.  Every observable of the run — the submission
schedule, the spliced bus trace, the message ledger, the AB1–AB5
verdicts — is a deterministic function of this spec, which is why the
v2 trace manifest embeds it verbatim: a recording replays bit-
identically from the manifest alone (``repro.traffic.recording``).

The window partition is deliberately part of the spec rather than a
runtime tuning knob: windows are the unit of sharding over
``repro.parallel``, and changing the partition changes where engines
restart from idle, hence the trace.  Keeping it in the experiment
identity is what makes ``--jobs 1`` and ``--jobs N`` bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError, TraceStoreError

#: Schema version of multi-frame *traffic* recordings.  Single-frame
#: recordings stay at ``repro.tracestore.SCHEMA_VERSION`` (1); readers
#: dispatch on the manifest's ``version`` field.
TRAFFIC_SCHEMA_VERSION = 2

#: CAN-identifier base for traffic data frames.  Matches both the
#: workload generator's assignment and the HLP DATA id base, so the
#: origin node index is always ``identifier - ID_BASE``.
ID_BASE = 0x100

_PROTOCOLS = ("can", "minorcan", "majorcan")
_SOURCES = ("periodic", "poisson")
_HLPS = ("edcan", "relcan", "totcan")

#: Wire-encoding sequence-number capacities: the generator payload
#: carries a 16-bit little-endian sequence, the HLP header a mod-256
#: byte.  ``build_schedule`` refuses schedules that would wrap.
CAN_SEQ_CAP = 1 << 16
HLP_SEQ_CAP = 1 << 8


@dataclass(frozen=True)
class BurstSpec:
    """A contiguous view-error burst against one node's received stream.

    ``start``/``length`` are *window-local* bit times; ``window`` names
    the window the burst fires in (``-1`` = every window).  Bursts are
    the deterministic half of the sustained fault regime — long enough
    bursts against a transmitting node ramp its TEC through
    error-passive into bus-off.
    """

    node: str
    start: int
    length: int
    window: int = 0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError("burst start must be non-negative")
        if self.length < 1:
            raise ConfigurationError("burst length must be at least one bit")
        if self.window < -1:
            raise ConfigurationError("burst window must be >= 0, or -1 for all")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "node": self.node,
            "start": self.start,
            "length": self.length,
            "window": self.window,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BurstSpec":
        return cls(
            node=data["node"],
            start=data["start"],
            length=data["length"],
            window=data.get("window", 0),
        )


@dataclass(frozen=True)
class Submission:
    """One scheduled message submission.

    ``time`` is the *global nominal* bit time: the position within the
    concatenated active windows, before drain bits stretch the spliced
    trace.  ``(node, seq)`` is the message key the ledger tracks.
    """

    time: int
    window: int
    node: str
    node_index: int
    seq: int
    identifier: int
    payload: bytes
    message_id: str

    @property
    def key(self) -> Tuple[str, int]:
        return (self.node, self.seq)


@dataclass(frozen=True)
class TrafficSpec:
    """Experiment identity of a sharded steady-state traffic run."""

    name: str = "traffic"
    protocol: str = "can"
    m: int = 5
    n_nodes: int = 4
    windows: int = 1
    window_bits: int = 2000
    source: str = "periodic"
    load: float = 0.5
    frame_bits: int = 110
    rate_per_bit: float = 0.0
    messages_per_node: Optional[int] = None
    seed: int = 0
    hlp: Optional[str] = None
    noise_ber: float = 0.0
    noise_nodes: Optional[Tuple[str, ...]] = None
    bursts: Tuple[BurstSpec, ...] = ()
    bus_off_recovery: bool = False
    fast_path: bool = True
    record_events: bool = True
    max_window_bits: int = 200_000

    def __post_init__(self) -> None:
        object.__setattr__(self, "bursts", tuple(self.bursts))
        if self.noise_nodes is not None:
            object.__setattr__(self, "noise_nodes", tuple(self.noise_nodes))
        if self.protocol not in _PROTOCOLS:
            raise ConfigurationError(
                "unknown protocol %r (choose from %s)"
                % (self.protocol, list(_PROTOCOLS))
            )
        if self.source not in _SOURCES:
            raise ConfigurationError(
                "unknown source %r (choose from %s)" % (self.source, list(_SOURCES))
            )
        if self.hlp is not None and self.hlp not in _HLPS:
            raise ConfigurationError(
                "unknown HLP %r (choose from %s)" % (self.hlp, list(_HLPS))
            )
        if not 2 <= self.n_nodes <= (64 if self.hlp else 256):
            raise ConfigurationError(
                "n_nodes must be 2..%d" % (64 if self.hlp else 256)
            )
        if self.m < 1:
            raise ConfigurationError("m must be at least 1")
        if self.windows < 1:
            raise ConfigurationError("windows must be at least 1")
        if self.window_bits < 64:
            raise ConfigurationError("window_bits must be at least 64")
        if self.max_window_bits <= self.window_bits:
            raise ConfigurationError("max_window_bits must exceed window_bits")
        if not 0.0 < self.load <= 4.0:
            raise ConfigurationError("load must be in (0, 4]")
        if self.frame_bits < 1:
            raise ConfigurationError("frame_bits must be positive")
        if not 0.0 <= self.rate_per_bit <= 1.0:
            raise ConfigurationError("rate_per_bit must be a probability")
        if not 0.0 <= self.noise_ber < 1.0:
            raise ConfigurationError("noise_ber must be in [0, 1)")
        if not isinstance(self.seed, int):
            raise ConfigurationError("seed must be an integer")
        if self.messages_per_node is not None and self.messages_per_node < 0:
            raise ConfigurationError("messages_per_node must be non-negative")
        names = set(self.node_names)
        for burst in self.bursts:
            if burst.node not in names:
                raise ConfigurationError(
                    "burst targets unknown node %r" % burst.node
                )
            if burst.window >= self.windows:
                raise ConfigurationError(
                    "burst window %d out of range (have %d windows)"
                    % (burst.window, self.windows)
                )
        if self.noise_nodes is not None:
            unknown = set(self.noise_nodes) - names
            if unknown:
                raise ConfigurationError(
                    "noise targets unknown nodes %s" % sorted(unknown)
                )

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------

    @property
    def node_names(self) -> Tuple[str, ...]:
        return tuple("n%d" % index for index in range(self.n_nodes))

    @property
    def total_active_bits(self) -> int:
        """Scheduled bus time: the concatenated active windows."""
        return self.windows * self.window_bits

    @property
    def period_bits(self) -> int:
        """Per-node submission period of the periodic workload.

        Same arithmetic as
        :func:`repro.workload.generator.periodic_sources_for_profile`,
        extended to overload factors (``load > 1``) the profile class
        refuses.
        """
        return max(1, int(round(self.n_nodes * self.frame_bits / self.load)))

    @property
    def seq_cap(self) -> int:
        return HLP_SEQ_CAP if self.hlp else CAN_SEQ_CAP

    def bursts_for_window(self, window: int) -> Tuple[BurstSpec, ...]:
        return tuple(
            burst for burst in self.bursts if burst.window in (window, -1)
        )

    # ------------------------------------------------------------------
    # Manifest (schema v2) round trip
    # ------------------------------------------------------------------

    def to_manifest(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        manifest: Dict[str, Any] = {
            "type": "manifest",
            "version": TRAFFIC_SCHEMA_VERSION,
            "kind": "traffic",
            "name": self.name,
            "traffic": {
                "protocol": self.protocol,
                "m": self.m,
                "n_nodes": self.n_nodes,
                "windows": self.windows,
                "window_bits": self.window_bits,
                "source": self.source,
                "load": self.load,
                "frame_bits": self.frame_bits,
                "rate_per_bit": self.rate_per_bit,
                "messages_per_node": self.messages_per_node,
                "seed": self.seed,
                "hlp": self.hlp,
                "noise_ber": self.noise_ber,
                "noise_nodes": (
                    list(self.noise_nodes) if self.noise_nodes is not None else None
                ),
                "bursts": [burst.to_dict() for burst in self.bursts],
                "bus_off_recovery": self.bus_off_recovery,
            },
            "engine": {
                "fast_path": self.fast_path,
                "record_events": self.record_events,
                "max_window_bits": self.max_window_bits,
            },
        }
        if meta:
            manifest["meta"] = meta
        return manifest

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any]) -> "TrafficSpec":
        version = manifest.get("version")
        if version != TRAFFIC_SCHEMA_VERSION:
            raise TraceStoreError(
                "manifest version %r is not a v%d traffic manifest"
                % (version, TRAFFIC_SCHEMA_VERSION)
            )
        if manifest.get("kind") != "traffic":
            raise TraceStoreError(
                "manifest kind %r is not 'traffic'" % manifest.get("kind")
            )
        traffic = manifest.get("traffic", {})
        engine = manifest.get("engine", {})
        noise_nodes = traffic.get("noise_nodes")
        return cls(
            name=manifest.get("name", "traffic"),
            protocol=traffic["protocol"],
            m=traffic["m"],
            n_nodes=traffic["n_nodes"],
            windows=traffic["windows"],
            window_bits=traffic["window_bits"],
            source=traffic["source"],
            load=traffic["load"],
            frame_bits=traffic["frame_bits"],
            rate_per_bit=traffic["rate_per_bit"],
            messages_per_node=traffic.get("messages_per_node"),
            seed=traffic["seed"],
            hlp=traffic.get("hlp"),
            noise_ber=traffic.get("noise_ber", 0.0),
            noise_nodes=tuple(noise_nodes) if noise_nodes is not None else None,
            bursts=tuple(
                BurstSpec.from_dict(burst) for burst in traffic.get("bursts", [])
            ),
            bus_off_recovery=traffic.get("bus_off_recovery", False),
            fast_path=engine.get("fast_path", True),
            record_events=engine.get("record_events", True),
            max_window_bits=engine.get("max_window_bits", 200_000),
        )
