"""Steady-state multi-frame traffic runs (ROADMAP direction 1).

Sharded, deterministic, replayable traffic: a :class:`TrafficSpec`
names the workload (``repro.workload`` generators), the window
partition and the sustained fault regime; :func:`run_traffic` executes
it over ``repro.parallel`` with bit-identical results for any
``--jobs``; ``record_traffic`` serialises the run as a schema-v2 trace
the tracestore replays and diffs like the golden corpus.
"""

from repro.traffic.batch import (
    clear_window_cache,
    run_window_batch,
    run_window_noisy,
    warm_traffic,
    window_backend,
    window_cache_stats,
)
from repro.traffic.recording import (
    frame_verdict_record,
    record_traffic,
    recorded_traffic,
    submission_record,
    traffic_records,
    traffic_verdict_record,
)
from repro.traffic.run import (
    MessageVerdict,
    TrafficOutcome,
    TrafficStats,
    WindowResult,
    run_traffic,
    run_window,
    splice_windows,
)
from repro.traffic.schedule import build_schedule, traffic_seed_tree
from repro.traffic.spec import (
    CAN_SEQ_CAP,
    HLP_SEQ_CAP,
    ID_BASE,
    TRAFFIC_SCHEMA_VERSION,
    BurstSpec,
    Submission,
    TrafficSpec,
)

__all__ = [
    "BurstSpec",
    "CAN_SEQ_CAP",
    "HLP_SEQ_CAP",
    "ID_BASE",
    "MessageVerdict",
    "Submission",
    "TRAFFIC_SCHEMA_VERSION",
    "TrafficOutcome",
    "TrafficSpec",
    "TrafficStats",
    "WindowResult",
    "build_schedule",
    "clear_window_cache",
    "frame_verdict_record",
    "record_traffic",
    "recorded_traffic",
    "run_traffic",
    "run_window",
    "run_window_batch",
    "run_window_noisy",
    "splice_windows",
    "submission_record",
    "traffic_records",
    "traffic_seed_tree",
    "traffic_verdict_record",
    "warm_traffic",
    "window_backend",
    "window_cache_stats",
]
