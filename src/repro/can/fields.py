"""Frame field layout.

This module is the single source of truth for the order and content of
the fields of a CAN frame, shared by the transmitter-side encoder
(:mod:`repro.can.encoding`) and the receiver-side parser
(:mod:`repro.can.parser`), so the two can never disagree.

Classical base-format data frame (CAN 2.0A)::

    SOF | ID(11) RTR | IDE r0 DLC(4) | DATA(0-64) | CRC(15) | CRC_DELIM
        | ACK_SLOT ACK_DELIM | EOF(7)

Extended-format (CAN 2.0B) replaces the arbitration/control prefix::

    SOF | ID_A(11) SRR IDE ID_B(18) RTR | r1 r0 DLC(4) | ...

Bit stuffing covers SOF through the CRC sequence.  The tail (CRC
delimiter, ACK field, EOF) has fixed form and is never stuffed.  The
EOF length is configurable because MajorCAN replaces the 7-bit EOF with
a 2m-bit field (see :mod:`repro.core.majorcan`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.can.bits import bits_from_int
from repro.can.crc import crc15_bits
from repro.can.frame import Frame

# ---------------------------------------------------------------------------
# Field name constants.  These strings appear in traces, parser positions
# and fault-injection triggers, so they are part of the public API.
# ---------------------------------------------------------------------------

SOF = "SOF"
ID_A = "ID_A"
SRR = "SRR"
IDE = "IDE"
ID_B = "ID_B"
RTR = "RTR"
R1 = "R1"
R0 = "R0"
DLC = "DLC"
DATA = "DATA"
CRC = "CRC"
CRC_DELIM = "CRC_DELIM"
ACK_SLOT = "ACK_SLOT"
ACK_DELIM = "ACK_DELIM"
EOF = "EOF"

#: Fields (in on-the-wire order) whose bits participate in arbitration:
#: a transmitter observing dominant while driving recessive in these
#: fields has lost arbitration rather than suffered a bit error.
ARBITRATION_FIELDS = frozenset({ID_A, SRR, IDE, ID_B, RTR})

#: Non-frame positions announced by controllers (used in traces and
#: fault-injection triggers).
INTERMISSION = "INTERMISSION"
ERROR_FLAG = "ERROR_FLAG"
ERROR_WAIT = "ERROR_WAIT"
ERROR_DELIM = "ERROR_DELIM"
OVERLOAD_FLAG = "OVERLOAD_FLAG"
OVERLOAD_WAIT = "OVERLOAD_WAIT"
OVERLOAD_DELIM = "OVERLOAD_DELIM"
EXTENDED_FLAG = "EXTENDED_FLAG"
SAMPLING = "SAMPLING"
SUSPEND = "SUSPEND"
IDLE = "IDLE"
BUS_OFF_POSITION = "BUS_OFF"

#: Standard CAN EOF length (7 recessive bits).
STANDARD_EOF_LENGTH = 7
#: Standard CAN error/overload delimiter length (8 recessive bits,
#: including the first detected recessive bit).
STANDARD_DELIMITER_LENGTH = 8
#: Length of an active error flag / overload flag (6 dominant bits).
FLAG_LENGTH = 6
#: Length of the intermission between frames (3 recessive bits).
INTERMISSION_LENGTH = 3
#: Length of the suspend-transmission window of error-passive nodes.
SUSPEND_LENGTH = 8


@dataclass(frozen=True)
class FieldSegment:
    """One named, contiguous run of unstuffed frame bits."""

    name: str
    bits: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.bits)


def header_segments(frame: Frame) -> List[FieldSegment]:
    """The stuffed-region segments (SOF through CRC) for ``frame``.

    The CRC segment is computed over the concatenation of all previous
    segments, matching the CAN specification.
    """
    segments: List[FieldSegment] = [FieldSegment(SOF, (0,))]
    if frame.can_id.extended:
        segments.append(FieldSegment(ID_A, tuple(frame.can_id.base_part())))
        segments.append(FieldSegment(SRR, (1,)))
        segments.append(FieldSegment(IDE, (1,)))
        segments.append(FieldSegment(ID_B, tuple(frame.can_id.extension_part())))
        segments.append(FieldSegment(RTR, (1 if frame.remote else 0,)))
        segments.append(FieldSegment(R1, (0,)))
        segments.append(FieldSegment(R0, (0,)))
    else:
        segments.append(FieldSegment(ID_A, tuple(frame.can_id.id_bits())))
        segments.append(FieldSegment(RTR, (1 if frame.remote else 0,)))
        segments.append(FieldSegment(IDE, (0,)))
        segments.append(FieldSegment(R0, (0,)))
    segments.append(FieldSegment(DLC, tuple(bits_from_int(frame.dlc, 4))))
    if not frame.remote and frame.effective_data_length:
        data_bits: List[int] = []
        for byte in frame.data:
            data_bits.extend(bits_from_int(byte, 8))
        segments.append(FieldSegment(DATA, tuple(data_bits)))
    covered: List[int] = []
    for segment in segments:
        covered.extend(segment.bits)
    segments.append(FieldSegment(CRC, tuple(crc15_bits(covered))))
    return segments


def tail_segments(eof_length: int = STANDARD_EOF_LENGTH) -> List[FieldSegment]:
    """The fixed-form (unstuffed) tail of every frame.

    The ACK slot is listed recessive because that is what the
    *transmitter* drives; receivers overwrite it with dominant.
    """
    return [
        FieldSegment(CRC_DELIM, (1,)),
        FieldSegment(ACK_SLOT, (1,)),
        FieldSegment(ACK_DELIM, (1,)),
        FieldSegment(EOF, tuple([1] * eof_length)),
    ]


def unstuffed_header_bits(frame: Frame) -> List[int]:
    """All stuffed-region bits of ``frame`` before stuffing, in order."""
    bits: List[int] = []
    for segment in header_segments(frame):
        bits.extend(segment.bits)
    return bits


def nominal_frame_length(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> int:
    """On-the-wire frame length in bits including stuff bits.

    This is the error-free length; it corresponds to the paper's
    per-frame bit count tau_data for a given payload.
    """
    from repro.can.stuffing import stuff  # local import to avoid a cycle

    stuffed = len(stuff(unstuffed_header_bits(frame)))
    tail = sum(len(segment) for segment in tail_segments(eof_length))
    return stuffed + tail
