"""Controller configuration.

A :class:`ControllerConfig` bundles the protocol-variant parameters
(EOF length, delimiter length) with the dependability options studied
in the paper (disconnect-on-warning, self-delivery for Atomic
Broadcast accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.can.fields import STANDARD_DELIMITER_LENGTH, STANDARD_EOF_LENGTH
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ControllerConfig:
    """Static configuration of a CAN-family controller.

    Parameters
    ----------
    eof_length:
        Length of the end-of-frame field (7 in standard CAN and
        MinorCAN; ``2 * m`` in MajorCAN_m).
    delimiter_length:
        Total length of the error/overload delimiter, including the
        first detected recessive bit (8 in standard CAN; ``2 * m + 1``
        in MajorCAN_m, matching the frame tail for synchronisation).
    disconnect_on_warning:
        The paper's §2 recommendation: switch the node off when an
        error counter reaches the warning limit (96), guaranteeing that
        no node ever operates in the error-passive state.
    self_delivery:
        Whether a successful transmission counts as a delivery to the
        transmitting node itself.  The Atomic Broadcast checkers rely
        on this: a transmitter that believes the frame went out while a
        receiver rejected it is precisely an inconsistent omission.
    max_retransmissions:
        Optional bound on automatic retransmission attempts per frame
        (``None`` reproduces the standard unbounded behaviour).
    bus_off_recovery:
        Whether a bus-off node rejoins after monitoring 128 occurrences
        of 11 consecutive recessive bits (the optional ISO 11898
        recovery sequence).  Off by default: the paper treats bus-off
        as a crash within the reference interval.
    fast_path:
        Whether the controller uses the table-driven hot loop
        (precompiled transmit programs and the allocation-free receive
        parser) for the ``transmitting``/``receiving`` states.  The
        behaviour is bit-identical to the reference implementation —
        ``tests/test_controller_fastpath.py`` and ``make corpus-check``
        enforce it — so this stays on by default; set it to ``False``
        to run the branchy reference state machine (differential
        testing, debugging).
    """

    eof_length: int = STANDARD_EOF_LENGTH
    delimiter_length: int = STANDARD_DELIMITER_LENGTH
    disconnect_on_warning: bool = False
    self_delivery: bool = True
    max_retransmissions: Optional[int] = None
    bus_off_recovery: bool = False
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.eof_length < 2:
            raise ConfigurationError("EOF must be at least 2 bits long")
        if self.delimiter_length < 2:
            raise ConfigurationError("delimiter must be at least 2 bits long")
        if self.max_retransmissions is not None and self.max_retransmissions < 0:
            raise ConfigurationError("max_retransmissions must be >= 0")
