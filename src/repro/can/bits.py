"""Bus-level primitives: the dominant/recessive bit values of CAN.

A CAN bus is a wired-AND medium.  The *dominant* level (logical ``0``)
overwrites the *recessive* level (logical ``1``): if any node drives a
dominant bit, every node observes a dominant bus.  This single physical
property underlies arbitration, acknowledgement, and error signalling.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence


class Level(enum.IntEnum):
    """A CAN bus level.

    The integer values follow the CAN convention: ``DOMINANT`` is the
    logical ``0`` and ``RECESSIVE`` the logical ``1``, so a sequence of
    :class:`Level` values can be used directly as a sequence of bits.
    """

    DOMINANT = 0
    RECESSIVE = 1

    @property
    def symbol(self) -> str:
        """One-character symbol used in textual traces: ``d`` or ``r``."""
        return "d" if self is Level.DOMINANT else "r"

    def flipped(self) -> "Level":
        """Return the opposite bus level."""
        return Level.RECESSIVE if self is Level.DOMINANT else Level.DOMINANT


#: Convenient module-level aliases.
DOMINANT = Level.DOMINANT
RECESSIVE = Level.RECESSIVE


def wired_and(levels: Iterable[Level]) -> Level:
    """Combine the levels driven by all nodes into the resulting bus level.

    An idle (empty) bus floats recessive; any dominant driver wins.
    """
    for level in levels:
        if level is Level.DOMINANT:
            return Level.DOMINANT
    return Level.RECESSIVE


def bits_from_int(value: int, width: int) -> List[int]:
    """Return ``value`` as a list of ``width`` bits, most significant first.

    >>> bits_from_int(0b101, 4)
    [0, 1, 0, 1]
    """
    if value < 0:
        raise ValueError("value must be non-negative, got %r" % value)
    if value >= (1 << width):
        raise ValueError(
            "value %d does not fit in %d bits" % (value, width)
        )
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def int_from_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`bits_from_int`: interpret bits MSB-first.

    >>> int_from_bits([0, 1, 0, 1])
    5
    """
    value = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError("bits must be 0 or 1, got %r" % (bit,))
        value = (value << 1) | bit
    return value


def levels_from_bits(bits: Iterable[int]) -> List[Level]:
    """Map logical bits (0/1) to bus levels (dominant/recessive)."""
    return [Level(bit) for bit in bits]


def bits_from_levels(levels: Iterable[Level]) -> List[int]:
    """Map bus levels back to logical bits (dominant=0, recessive=1)."""
    return [int(level) for level in levels]


def levels_to_string(levels: Iterable[Level]) -> str:
    """Render a level sequence as a compact ``d``/``r`` string.

    This matches the notation of the figures in the paper, e.g. the
    active error flag renders as ``"dddddd"``.
    """
    return "".join(level.symbol for level in levels)


def levels_from_string(text: str) -> List[Level]:
    """Parse a ``d``/``r`` string (as used in the paper's figures)."""
    levels = []
    for char in text:
        if char == "d":
            levels.append(Level.DOMINANT)
        elif char == "r":
            levels.append(Level.RECESSIVE)
        elif char in " _|":
            continue
        else:
            raise ValueError("unexpected level character %r" % char)
    return levels
