"""Transmitter-side frame serialisation.

:func:`encode_frame` turns a :class:`~repro.can.frame.Frame` into a
:class:`WireFrame`: the exact sequence of bus levels a transmitter
drives, each annotated with its field name, its index within the field,
whether it is a stuff bit, and whether it belongs to the arbitration
region (where observing dominant while driving recessive means a lost
arbitration instead of a bit error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.can.bits import Level
from repro.can.fields import (
    ACK_SLOT,
    ARBITRATION_FIELDS,
    EOF,
    STANDARD_EOF_LENGTH,
    FieldSegment,
    header_segments,
    tail_segments,
)
from repro.can.frame import Frame
from repro.can.stuffing import STUFF_WIDTH


@dataclass(frozen=True)
class WireBit:
    """One bit of a serialised frame, as driven by the transmitter."""

    level: Level
    field: str
    index: int
    is_stuff: bool
    in_arbitration: bool


@dataclass(frozen=True)
class WireFrame:
    """A fully serialised frame ready for bit-by-bit transmission."""

    frame: Frame
    bits: Tuple[WireBit, ...]
    eof_length: int

    def __len__(self) -> int:
        return len(self.bits)

    @property
    def ack_slot_position(self) -> int:
        """Index of the ACK slot within :attr:`bits`."""
        for position, wire_bit in enumerate(self.bits):
            if wire_bit.field == ACK_SLOT:
                return position
        raise AssertionError("every wire frame has an ACK slot")

    @property
    def eof_start(self) -> int:
        """Index of the first EOF bit within :attr:`bits`."""
        for position, wire_bit in enumerate(self.bits):
            if wire_bit.field == EOF:
                return position
        raise AssertionError("every wire frame has an EOF field")

    def field_positions(self, field: str) -> List[int]:
        """All stream positions whose field name equals ``field``."""
        return [
            position
            for position, wire_bit in enumerate(self.bits)
            if wire_bit.field == field
        ]

    def levels(self) -> List[Level]:
        """The raw level sequence (useful for tests and traces)."""
        return [wire_bit.level for wire_bit in self.bits]


def encode_frame(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> WireFrame:
    """Serialise ``frame`` into the bit sequence driven on the bus.

    Stuffing covers SOF through the CRC sequence, including a trailing
    stuff bit when the final five CRC bits form a run (the encoder and
    the parser agree on this convention; see DESIGN.md).
    """
    wire_bits: List[WireBit] = []
    run_value: Optional[int] = None
    run_length = 0
    for segment in header_segments(frame):
        in_arbitration = segment.name in ARBITRATION_FIELDS
        for index, bit in enumerate(segment.bits):
            wire_bits.append(
                WireBit(
                    level=Level(bit),
                    field=segment.name,
                    index=index,
                    is_stuff=False,
                    in_arbitration=in_arbitration,
                )
            )
            if bit == run_value:
                run_length += 1
            else:
                run_value = bit
                run_length = 1
            if run_length == STUFF_WIDTH:
                stuff_bit = 1 - bit
                wire_bits.append(
                    WireBit(
                        level=Level(stuff_bit),
                        field=segment.name,
                        index=index,
                        is_stuff=True,
                        in_arbitration=in_arbitration,
                    )
                )
                run_value = stuff_bit
                run_length = 1
    for segment in tail_segments(eof_length):
        for index, bit in enumerate(segment.bits):
            wire_bits.append(
                WireBit(
                    level=Level(bit),
                    field=segment.name,
                    index=index,
                    is_stuff=False,
                    in_arbitration=False,
                )
            )
    return WireFrame(frame=frame, bits=tuple(wire_bits), eof_length=eof_length)
