"""Transmitter-side frame serialisation.

:func:`encode_frame` turns a :class:`~repro.can.frame.Frame` into a
:class:`WireFrame`: the exact sequence of bus levels a transmitter
drives, each annotated with its field name, its index within the field,
whether it is a stuff bit, and whether it belongs to the arbitration
region (where observing dominant while driving recessive means a lost
arbitration instead of a bit error).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.can.bits import Level
from repro.can.fields import (
    ACK_SLOT,
    ARBITRATION_FIELDS,
    EOF,
    FLAG_LENGTH,
    INTERMISSION_LENGTH,
    STANDARD_EOF_LENGTH,
    header_segments,
    tail_segments,
)
from repro.can.frame import Frame
from repro.can.stuffing import STUFF_WIDTH


@dataclass(frozen=True)
class WireBit:
    """One bit of a serialised frame, as driven by the transmitter."""

    level: Level
    field: str
    index: int
    is_stuff: bool
    in_arbitration: bool


@dataclass(frozen=True)
class WireFrame:
    """A fully serialised frame ready for bit-by-bit transmission."""

    frame: Frame
    bits: Tuple[WireBit, ...]
    eof_length: int

    def __len__(self) -> int:
        return len(self.bits)

    @property
    def ack_slot_position(self) -> int:
        """Index of the ACK slot within :attr:`bits`."""
        for position, wire_bit in enumerate(self.bits):
            if wire_bit.field == ACK_SLOT:
                return position
        raise AssertionError("every wire frame has an ACK slot")

    @property
    def eof_start(self) -> int:
        """Index of the first EOF bit within :attr:`bits`."""
        for position, wire_bit in enumerate(self.bits):
            if wire_bit.field == EOF:
                return position
        raise AssertionError("every wire frame has an EOF field")

    def field_positions(self, field: str) -> List[int]:
        """All stream positions whose field name equals ``field``."""
        return [
            position
            for position, wire_bit in enumerate(self.bits)
            if wire_bit.field == field
        ]

    def levels(self) -> List[Level]:
        """The raw level sequence (useful for tests and traces)."""
        return [wire_bit.level for wire_bit in self.bits]


def encode_frame(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> WireFrame:
    """Serialise ``frame`` into the bit sequence driven on the bus.

    Stuffing covers SOF through the CRC sequence, including a trailing
    stuff bit when the final five CRC bits form a run (the encoder and
    the parser agree on this convention; see DESIGN.md).
    """
    wire_bits: List[WireBit] = []
    run_value: Optional[int] = None
    run_length = 0
    for segment in header_segments(frame):
        in_arbitration = segment.name in ARBITRATION_FIELDS
        for index, bit in enumerate(segment.bits):
            wire_bits.append(
                WireBit(
                    level=Level(bit),
                    field=segment.name,
                    index=index,
                    is_stuff=False,
                    in_arbitration=in_arbitration,
                )
            )
            if bit == run_value:
                run_length += 1
            else:
                run_value = bit
                run_length = 1
            if run_length == STUFF_WIDTH:
                stuff_bit = 1 - bit
                wire_bits.append(
                    WireBit(
                        level=Level(stuff_bit),
                        field=segment.name,
                        index=index,
                        is_stuff=True,
                        in_arbitration=in_arbitration,
                    )
                )
                run_value = stuff_bit
                run_length = 1
    for segment in tail_segments(eof_length):
        for index, bit in enumerate(segment.bits):
            wire_bits.append(
                WireBit(
                    level=Level(bit),
                    field=segment.name,
                    index=index,
                    is_stuff=False,
                    in_arbitration=False,
                )
            )
    return WireFrame(frame=frame, bits=tuple(wire_bits), eof_length=eof_length)


# ---------------------------------------------------------------------------
# Precompiled transmit programs (the controller fast path)
# ---------------------------------------------------------------------------

#: Per-bit opcodes of a :class:`WireProgram`.  The transmitter's steady
#: state reduces to "compare the observed level against the precompiled
#: one and advance"; the opcode tells the controller which *exception*
#: rule applies on this bit, so the hot loop never inspects field names.
OP_MATCH = 0  #: mismatch is a bit error
OP_ARB = 1  #: recessive non-stuff arbitration bit: mismatch is a lost arbitration
OP_ACK = 2  #: ACK slot: a recessive bus is an ACK error
OP_EOF = 3  #: EOF bit: delegate to the protocol's ``_tx_eof_bit`` policy


@dataclass(frozen=True)
class WireProgram:
    """A :class:`WireFrame` flattened for index-driven transmission.

    ``levels``, ``positions`` and ``ops`` are parallel tuples, one entry
    per on-the-wire bit: the driven :class:`Level`, the prebuilt
    ``(field, index)`` position tuple the controller publishes, and the
    :data:`OP_MATCH`-family opcode consumed by the transmit bit handler.
    ``bit_values`` carries the same levels as plain ints for the lazy
    receive-parser replay after a lost arbitration.
    """

    wire: WireFrame
    levels: Tuple[Level, ...]
    bit_values: Tuple[int, ...]
    positions: Tuple[Tuple[str, int], ...]
    ops: Tuple[int, ...]
    length: int


def compile_wire(wire: WireFrame) -> WireProgram:
    """Flatten ``wire`` into the parallel arrays of a :class:`WireProgram`."""
    levels: List[Level] = []
    bit_values: List[int] = []
    positions: List[Tuple[str, int]] = []
    ops: List[int] = []
    for wire_bit in wire.bits:
        levels.append(wire_bit.level)
        bit_values.append(int(wire_bit.level))
        positions.append((wire_bit.field, wire_bit.index))
        if wire_bit.field == EOF:
            ops.append(OP_EOF)
        elif wire_bit.field == ACK_SLOT:
            ops.append(OP_ACK)
        elif (
            wire_bit.in_arbitration
            and wire_bit.level is Level.RECESSIVE
            and not wire_bit.is_stuff
        ):
            ops.append(OP_ARB)
        else:
            ops.append(OP_MATCH)
    return WireProgram(
        wire=wire,
        levels=tuple(levels),
        bit_values=tuple(bit_values),
        positions=tuple(positions),
        ops=tuple(ops),
        length=len(wire.bits),
    )


@dataclass(frozen=True)
class SignalProgram:
    """Precompiled error-signalling shapes for one controller config.

    Error and overload flags, delimiters and the intermission are fixed
    run-length sequences — all-dominant or all-recessive runs whose
    lengths depend only on the configuration, never on the frame.  This
    is the signalling counterpart of :class:`WireProgram`: replay-style
    consumers (the batch backend, shape probes) read the runs as plain
    lengths instead of stepping the per-bit handlers.

    ``extended_flag_end`` is the last agreement-window position of a
    MajorCAN_m node's extended flag / quiet sampling phase (0 for
    protocols without an agreement window): signalling after an
    EOF-entry error occupies positions up to and including it.
    """

    error_flag: int
    overload_flag: int
    delimiter: int
    intermission: int
    extended_flag_end: int

    @property
    def shapes(self) -> Tuple[Tuple[str, int], ...]:
        """The run table as ``(name, length)`` pairs, in wire order."""
        return (
            ("error_flag", self.error_flag),
            ("overload_flag", self.overload_flag),
            ("delimiter", self.delimiter),
            ("intermission", self.intermission),
            ("extended_flag_end", self.extended_flag_end),
        )


@lru_cache(maxsize=64)
def signal_program(
    delimiter_length: int,
    extended_flag_end: int = 0,
    flag_length: int = FLAG_LENGTH,
    intermission_length: int = INTERMISSION_LENGTH,
) -> SignalProgram:
    """Build (and cache) the signalling shape table for one config."""
    return SignalProgram(
        error_flag=flag_length,
        overload_flag=flag_length,
        delimiter=delimiter_length,
        intermission=intermission_length,
        extended_flag_end=extended_flag_end,
    )


@lru_cache(maxsize=512)
def wire_program(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> WireProgram:
    """Encode ``frame`` and compile it, caching by frame identity.

    Retransmissions re-enter :meth:`CanController._start_transmission`
    once per attempt; the cache makes every attempt after the first —
    and every identical frame in a workload — reuse one encoded and
    compiled program.  :class:`Frame` is frozen and hashable, and the
    compiled arrays are immutable, so sharing across controllers (and
    protocol variants with equal ``eof_length``) is safe.
    """
    return compile_wire(encode_frame(frame, eof_length=eof_length))
