"""Transmitter-side frame serialisation.

:func:`encode_frame` turns a :class:`~repro.can.frame.Frame` into a
:class:`WireFrame`: the exact sequence of bus levels a transmitter
drives, each annotated with its field name, its index within the field,
whether it is a stuff bit, and whether it belongs to the arbitration
region (where observing dominant while driving recessive means a lost
arbitration instead of a bit error).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.can.bits import Level
from repro.can.fields import (
    ACK_SLOT,
    ARBITRATION_FIELDS,
    CRC,
    CRC_DELIM,
    DATA,
    DLC,
    EOF,
    ERROR_DELIM,
    ERROR_FLAG,
    ERROR_WAIT,
    EXTENDED_FLAG,
    FLAG_LENGTH,
    ID_A,
    ID_B,
    IDE,
    INTERMISSION,
    INTERMISSION_LENGTH,
    OVERLOAD_DELIM,
    OVERLOAD_FLAG,
    OVERLOAD_WAIT,
    R0,
    R1,
    RTR,
    SAMPLING,
    SOF,
    SRR,
    STANDARD_EOF_LENGTH,
    SUSPEND,
    SUSPEND_LENGTH,
    header_segments,
    tail_segments,
)
from repro.can.frame import Frame
from repro.can.stuffing import STUFF_WIDTH


@dataclass(frozen=True)
class WireBit:
    """One bit of a serialised frame, as driven by the transmitter."""

    level: Level
    field: str
    index: int
    is_stuff: bool
    in_arbitration: bool


@dataclass(frozen=True)
class WireFrame:
    """A fully serialised frame ready for bit-by-bit transmission."""

    frame: Frame
    bits: Tuple[WireBit, ...]
    eof_length: int

    def __len__(self) -> int:
        return len(self.bits)

    @property
    def ack_slot_position(self) -> int:
        """Index of the ACK slot within :attr:`bits`."""
        for position, wire_bit in enumerate(self.bits):
            if wire_bit.field == ACK_SLOT:
                return position
        raise AssertionError("every wire frame has an ACK slot")

    @property
    def eof_start(self) -> int:
        """Index of the first EOF bit within :attr:`bits`."""
        for position, wire_bit in enumerate(self.bits):
            if wire_bit.field == EOF:
                return position
        raise AssertionError("every wire frame has an EOF field")

    def field_positions(self, field: str) -> List[int]:
        """All stream positions whose field name equals ``field``."""
        return [
            position
            for position, wire_bit in enumerate(self.bits)
            if wire_bit.field == field
        ]

    def levels(self) -> List[Level]:
        """The raw level sequence (useful for tests and traces)."""
        return [wire_bit.level for wire_bit in self.bits]


def encode_frame(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> WireFrame:
    """Serialise ``frame`` into the bit sequence driven on the bus.

    Stuffing covers SOF through the CRC sequence, including a trailing
    stuff bit when the final five CRC bits form a run (the encoder and
    the parser agree on this convention; see DESIGN.md).
    """
    wire_bits: List[WireBit] = []
    run_value: Optional[int] = None
    run_length = 0
    for segment in header_segments(frame):
        in_arbitration = segment.name in ARBITRATION_FIELDS
        for index, bit in enumerate(segment.bits):
            wire_bits.append(
                WireBit(
                    level=Level(bit),
                    field=segment.name,
                    index=index,
                    is_stuff=False,
                    in_arbitration=in_arbitration,
                )
            )
            if bit == run_value:
                run_length += 1
            else:
                run_value = bit
                run_length = 1
            if run_length == STUFF_WIDTH:
                stuff_bit = 1 - bit
                wire_bits.append(
                    WireBit(
                        level=Level(stuff_bit),
                        field=segment.name,
                        index=index,
                        is_stuff=True,
                        in_arbitration=in_arbitration,
                    )
                )
                run_value = stuff_bit
                run_length = 1
    for segment in tail_segments(eof_length):
        for index, bit in enumerate(segment.bits):
            wire_bits.append(
                WireBit(
                    level=Level(bit),
                    field=segment.name,
                    index=index,
                    is_stuff=False,
                    in_arbitration=False,
                )
            )
    return WireFrame(frame=frame, bits=tuple(wire_bits), eof_length=eof_length)


# ---------------------------------------------------------------------------
# Precompiled transmit programs (the controller fast path)
# ---------------------------------------------------------------------------

#: Per-bit opcodes of a :class:`WireProgram`.  The transmitter's steady
#: state reduces to "compare the observed level against the precompiled
#: one and advance"; the opcode tells the controller which *exception*
#: rule applies on this bit, so the hot loop never inspects field names.
OP_MATCH = 0  #: mismatch is a bit error
OP_ARB = 1  #: recessive non-stuff arbitration bit: mismatch is a lost arbitration
OP_ACK = 2  #: ACK slot: a recessive bus is an ACK error
OP_EOF = 3  #: EOF bit: delegate to the protocol's ``_tx_eof_bit`` policy


@dataclass(frozen=True)
class WireProgram:
    """A :class:`WireFrame` flattened for index-driven transmission.

    ``levels``, ``positions`` and ``ops`` are parallel tuples, one entry
    per on-the-wire bit: the driven :class:`Level`, the prebuilt
    ``(field, index)`` position tuple the controller publishes, and the
    :data:`OP_MATCH`-family opcode consumed by the transmit bit handler.
    ``bit_values`` carries the same levels as plain ints for the lazy
    receive-parser replay after a lost arbitration.
    """

    wire: WireFrame
    levels: Tuple[Level, ...]
    bit_values: Tuple[int, ...]
    positions: Tuple[Tuple[str, int], ...]
    ops: Tuple[int, ...]
    length: int


def compile_wire(wire: WireFrame) -> WireProgram:
    """Flatten ``wire`` into the parallel arrays of a :class:`WireProgram`."""
    levels: List[Level] = []
    bit_values: List[int] = []
    positions: List[Tuple[str, int]] = []
    ops: List[int] = []
    for wire_bit in wire.bits:
        levels.append(wire_bit.level)
        bit_values.append(int(wire_bit.level))
        positions.append((wire_bit.field, wire_bit.index))
        if wire_bit.field == EOF:
            ops.append(OP_EOF)
        elif wire_bit.field == ACK_SLOT:
            ops.append(OP_ACK)
        elif (
            wire_bit.in_arbitration
            and wire_bit.level is Level.RECESSIVE
            and not wire_bit.is_stuff
        ):
            ops.append(OP_ARB)
        else:
            ops.append(OP_MATCH)
    return WireProgram(
        wire=wire,
        levels=tuple(levels),
        bit_values=tuple(bit_values),
        positions=tuple(positions),
        ops=tuple(ops),
        length=len(wire.bits),
    )


@dataclass(frozen=True)
class SignalProgram:
    """Precompiled error-signalling shapes for one controller config.

    Error and overload flags, delimiters and the intermission are fixed
    run-length sequences — all-dominant or all-recessive runs whose
    lengths depend only on the configuration, never on the frame.  This
    is the signalling counterpart of :class:`WireProgram`: replay-style
    consumers (the batch backend, shape probes) read the runs as plain
    lengths instead of stepping the per-bit handlers.

    ``extended_flag_end`` is the last agreement-window position of a
    MajorCAN_m node's extended flag / quiet sampling phase (0 for
    protocols without an agreement window): signalling after an
    EOF-entry error occupies positions up to and including it.
    """

    error_flag: int
    overload_flag: int
    delimiter: int
    intermission: int
    extended_flag_end: int

    @property
    def shapes(self) -> Tuple[Tuple[str, int], ...]:
        """The run table as ``(name, length)`` pairs, in wire order."""
        return (
            ("error_flag", self.error_flag),
            ("overload_flag", self.overload_flag),
            ("delimiter", self.delimiter),
            ("intermission", self.intermission),
            ("extended_flag_end", self.extended_flag_end),
        )


@lru_cache(maxsize=64)
def signal_program(
    delimiter_length: int,
    extended_flag_end: int = 0,
    flag_length: int = FLAG_LENGTH,
    intermission_length: int = INTERMISSION_LENGTH,
) -> SignalProgram:
    """Build (and cache) the signalling shape table for one config."""
    return SignalProgram(
        error_flag=flag_length,
        overload_flag=flag_length,
        delimiter=delimiter_length,
        intermission=intermission_length,
        extended_flag_end=extended_flag_end,
    )


@dataclass(frozen=True)
class SignalTable:
    """:class:`SignalProgram` expanded into indexable position tuples.

    The controller's signalling drive handlers publish one ``(field,
    index)`` position per bit.  The reference machine constructs that
    tuple (and, for the shared recessive handler, a whole label dict)
    on every call; the fast path instead walks these precompiled
    tuples, indexing by the state's own run counter — the signalling
    counterpart of :class:`WireProgram`'s per-bit ``positions`` array.
    All entries are interned tuples shared by every controller of the
    same configuration, so published positions compare identically to
    the reference machine's freshly built ones.

    ``sampling`` and ``extended_flag`` cover MajorCAN_m's agreement
    window, indexed by the EOF-relative clock (positions ``0 ..
    extended_flag_end + 1``); they are two-entry stubs for protocols
    without a window.
    """

    error_flag: Tuple[Tuple[str, int], ...]
    overload_flag: Tuple[Tuple[str, int], ...]
    error_wait: Tuple[str, int]
    overload_wait: Tuple[str, int]
    error_delim: Tuple[Tuple[str, int], ...]
    overload_delim: Tuple[Tuple[str, int], ...]
    intermission: Tuple[Tuple[str, int], ...]
    suspend: Tuple[Tuple[str, int], ...]
    sampling: Tuple[Tuple[str, int], ...]
    extended_flag: Tuple[Tuple[str, int], ...]


@lru_cache(maxsize=64)
def signal_table(
    delimiter_length: int,
    extended_flag_end: int = 0,
    flag_length: int = FLAG_LENGTH,
    intermission_length: int = INTERMISSION_LENGTH,
    suspend_length: int = SUSPEND_LENGTH,
) -> SignalTable:
    """Expand (and cache) the signalling position tables for one config."""
    window_span = extended_flag_end + 2
    return SignalTable(
        error_flag=tuple((ERROR_FLAG, i) for i in range(flag_length)),
        overload_flag=tuple((OVERLOAD_FLAG, i) for i in range(flag_length)),
        error_wait=(ERROR_WAIT, 0),
        overload_wait=(OVERLOAD_WAIT, 0),
        error_delim=tuple((ERROR_DELIM, i) for i in range(delimiter_length)),
        overload_delim=tuple(
            (OVERLOAD_DELIM, i) for i in range(delimiter_length)
        ),
        intermission=tuple((INTERMISSION, i) for i in range(intermission_length)),
        suspend=tuple((SUSPEND, i) for i in range(suspend_length)),
        sampling=tuple((SAMPLING, i) for i in range(window_span)),
        extended_flag=tuple((EXTENDED_FLAG, i) for i in range(window_span)),
    )


# ---------------------------------------------------------------------------
# Stuff-aware header site expansion (the batch backend's header view)
# ---------------------------------------------------------------------------

#: Field names whose bits belong to the stuffed frame header (SOF through
#: the CRC sequence).  Error placements on these sites are the F1 desync
#: universe: a single flip can add or remove a stuff condition and shift
#: every receiver's parse of the remaining stream.
HEADER_SITE_FIELDS = frozenset(
    {SOF, ID_A, SRR, IDE, ID_B, RTR, R1, R0, DLC, DATA, CRC}
)

#: Replay verdict kinds for :class:`HeaderSiteRow.kind`.  These are the
#: protocol-independent stop points of a receive parse: all three
#: protocol variants stop consuming the nominal stream at the same bit,
#: they only differ in how they *signal* afterwards.
HEADER_KIND_ACCEPT = "accept"
HEADER_KIND_STUFF = "stuff_violation"
HEADER_KIND_FORM = "form_violation"
HEADER_KIND_CRC = "crc_error"
HEADER_KIND_OVERRUN = "overrun"


@dataclass(frozen=True)
class HeaderSiteRow:
    """One header bit-site of a frame, expanded under a single flip.

    The row materialises what a nominal in-sync receiver would make of
    the transmitted stream with this one bit inverted: the restuffed
    parse trajectory (``signature``), the verdict ``kind`` at the first
    protocol-independent stop point, and the desync window — the wire
    positions over which the flipped parse announces different upcoming
    bits than the nominal parse (``desync_start == -1`` when the flip
    never desynchronises the parser, e.g. a CRC-sequence flip that
    changes no stuff condition).
    """

    field: str
    index: int
    fire_position: int
    level: Level
    op: int
    kind: str
    crc_ok: Optional[bool]
    complete: bool
    stop_position: int
    desync_start: int
    desync_end: int
    signature: Tuple[object, ...]


@dataclass(frozen=True)
class HeaderShape:
    """Per-frame expansion of every announced header bit-site.

    ``announced`` is the set of ``(field, index)`` positions a trigger
    can actually fire on (header sites absent from it are inert: the
    fault never fires and the run is clean).  ``rows`` holds one
    :class:`HeaderSiteRow` per announced header site in wire order;
    ``by_site`` indexes them by ``(field, index)``.
    """

    frame: Frame
    eof_length: int
    tail_offset: int
    announced: frozenset
    rows: Tuple[HeaderSiteRow, ...]
    by_site: Dict[Tuple[str, int], HeaderSiteRow]


def _replay_flipped(
    bit_values: Tuple[int, ...], flip: Optional[int], eof_length: int
):
    """Replay a receive parse of ``bit_values`` with one bit inverted.

    Returns ``(records, kind, crc_ok, complete, reconstructed, stop)``
    where ``records`` is the per-bit ``(field, index, is_stuff, code)``
    trajectory (pre-feed upcoming plus the step code), ``kind`` is the
    verdict at the first stop point, ``reconstructed`` is the parsed
    frame or ``None``, and ``stop`` is the wire position of the last
    consumed bit.  ``flip=None`` replays the nominal stream.
    """
    # Local import: repro.can.parser deliberately does not import this
    # module, so the replay can live next to the encoder it inverts.
    from repro.can.parser import (
        STEP_ACK_DELIM,
        STEP_FORM_VIOLATION,
        STEP_STUFF_VIOLATION,
        FastFrameParser,
    )

    parser = FastFrameParser(eof_length=eof_length)
    records: List[Tuple[str, int, bool, int]] = []
    kind = HEADER_KIND_OVERRUN
    stop = len(bit_values) - 1
    for position, bit in enumerate(bit_values):
        if flip is not None and position == flip:
            bit ^= 1
        pre_field = parser.next_field
        pre_index = parser.next_index
        pre_stuff = parser.next_is_stuff
        code = parser.feed_code(Level(bit))
        records.append((pre_field, pre_index, pre_stuff, code))
        if code == STEP_STUFF_VIOLATION:
            kind = HEADER_KIND_STUFF
            stop = position
            break
        if code == STEP_FORM_VIOLATION:
            kind = HEADER_KIND_FORM
            stop = position
            break
        if code == STEP_ACK_DELIM and parser.crc_ok is False:
            kind = HEADER_KIND_CRC
            stop = position
            break
        if parser.complete:
            kind = HEADER_KIND_ACCEPT
            stop = position
            break
    reconstructed = parser.frame() if parser.header_complete else None
    return records, kind, parser.crc_ok, parser.complete, reconstructed, stop


@lru_cache(maxsize=256)
def header_shape(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> HeaderShape:
    """Expand every announced header bit-site of ``frame`` under a flip.

    For each ``(field, index)`` the transmitter announces before the CRC
    delimiter, the shape replays a full receive parse of the stream with
    that one wire bit inverted (the stuffed region restuffs itself: the
    replay consumes the *transmitted* levels, so an added or removed
    stuff condition shifts the parse exactly as it would on the bus) and
    records the verdict kind, the desync window against the nominal
    parse, and the complete trajectory signature used by the batch
    backend to share classification work between equivalent sites.
    """
    program = wire_program(frame, eof_length=eof_length)
    tail_offset = program.positions.index((CRC_DELIM, 0))
    announced = frozenset(program.positions[:tail_offset])
    nominal_records, _, _, _, _, _ = _replay_flipped(
        program.bit_values, None, eof_length
    )
    rows: List[HeaderSiteRow] = []
    by_site: Dict[Tuple[str, int], HeaderSiteRow] = {}
    for position in range(tail_offset):
        site = program.positions[position]
        if site in by_site or site[0] not in HEADER_SITE_FIELDS:
            continue
        records, kind, crc_ok, complete, reconstructed, stop = _replay_flipped(
            program.bit_values, position, eof_length
        )
        desync_start = -1
        for later in range(position + 1, len(records)):
            nominal = nominal_records[later][:3] if later < len(nominal_records) else None
            if records[later][:3] != nominal:
                desync_start = later
                break
        desync_end = stop if desync_start >= 0 else -1
        row = HeaderSiteRow(
            field=site[0],
            index=site[1],
            fire_position=position,
            level=program.levels[position],
            op=program.ops[position],
            kind=kind,
            crc_ok=crc_ok,
            complete=complete,
            stop_position=stop,
            desync_start=desync_start,
            desync_end=desync_end,
            signature=(kind, crc_ok, complete, reconstructed, tuple(records)),
        )
        rows.append(row)
        by_site[site] = row
    return HeaderShape(
        frame=frame,
        eof_length=eof_length,
        tail_offset=tail_offset,
        announced=announced,
        rows=tuple(rows),
        by_site=by_site,
    )


@dataclass(frozen=True)
class BusImage:
    """The bus-level waveform of an uncontested, acknowledged frame.

    ``symbols`` is the wired-AND bus trace over the frame's span as the
    one-character trace alphabet (``d``/``r``): the transmitter's driven
    levels with the ACK slot forced dominant, because any online
    receiver with a complete, CRC-clean header acknowledges.  On a bus
    free of injected faults this *is* the observed trace even under
    contention — an arbitration loser's dominant prefix coincides with
    the winner's (identical stuffed prefixes up to the first divergent
    identifier bit, where the loser observes dominant and withdraws) —
    which is what lets the traffic batch backend synthesize a window's
    bus history by concatenating images instead of stepping the engine.
    """

    program: WireProgram
    symbols: str
    length: int


@lru_cache(maxsize=512)
def bus_image(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> BusImage:
    """The cached :class:`BusImage` of ``frame`` (see the class docs)."""
    program = wire_program(frame, eof_length=eof_length)
    ack = program.wire.ack_slot_position
    symbols = "".join(
        "d" if (value == 0 or position == ack) else "r"
        for position, value in enumerate(program.bit_values)
    )
    return BusImage(program=program, symbols=symbols, length=program.length)


@lru_cache(maxsize=512)
def wire_program(frame: Frame, eof_length: int = STANDARD_EOF_LENGTH) -> WireProgram:
    """Encode ``frame`` and compile it, caching by frame identity.

    Retransmissions re-enter :meth:`CanController._start_transmission`
    once per attempt; the cache makes every attempt after the first —
    and every identical frame in a workload — reuse one encoded and
    compiled program.  :class:`Frame` is frozen and hashable, and the
    compiled arrays are immutable, so sharing across controllers (and
    protocol variants with equal ``eof_length``) is safe.
    """
    return compile_wire(encode_frame(frame, eof_length=eof_length))
