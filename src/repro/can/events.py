"""Controller event vocabulary.

Controllers log :class:`Event` records for everything observable that
the analysis layers care about: frame deliveries, rejections,
transmission successes, error flags, overload conditions, state
changes.  The property checkers (:mod:`repro.properties`) and the
metrics collectors (:mod:`repro.metrics`) consume these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.can.frame import Frame


class EventKind:
    """String constants naming every controller event."""

    TX_START = "tx_start"
    TX_SUCCESS = "tx_success"
    TX_RETRANSMIT_SCHEDULED = "tx_retransmit_scheduled"
    TX_ABANDONED = "tx_abandoned"
    ARBITRATION_LOST = "arbitration_lost"
    RX_START = "rx_start"
    FRAME_DELIVERED = "frame_delivered"
    FRAME_REJECTED = "frame_rejected"
    ERROR_DETECTED = "error_detected"
    ERROR_FLAG_START = "error_flag_start"
    EXTENDED_FLAG_START = "extended_flag_start"
    OVERLOAD_FLAG_START = "overload_flag_start"
    PRIMARY_ERROR = "primary_error"
    SAMPLING_VERDICT = "sampling_verdict"
    DEFERRED_ACCEPT = "deferred_accept"
    DEFERRED_REJECT = "deferred_reject"
    STATE_CHANGE = "state_change"
    WARNING_RAISED = "warning_raised"
    DISCONNECTED = "disconnected"
    BUS_OFF = "bus_off"
    BUS_OFF_RECOVERED = "bus_off_recovered"
    CRASHED = "crashed"


class ErrorReason:
    """String constants for the cause recorded with error events."""

    BIT = "bit_error"
    STUFF = "stuff_error"
    CRC = "crc_error"
    FORM = "form_error"
    ACK = "ack_error"
    EOF = "eof_error"
    EOF_LAST_BIT = "eof_last_bit"
    DELIMITER = "delimiter_error"


@dataclass
class Event:
    """One timestamped controller event."""

    time: int
    node: str
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = " ".join("%s=%s" % item for item in sorted(self.data.items()))
        return "[%6d] %-12s %s %s" % (self.time, self.node, self.kind, extras)


@dataclass(frozen=True)
class Delivery:
    """One frame delivery to a node's application layer."""

    frame: Frame
    time: int
    node: str
    #: 1-based transmission attempt that produced this delivery, when
    #: known (the transmitter knows; receivers infer from the harness).
    attempt: Optional[int] = None

    def wire_key(self) -> tuple:
        """Identity of the delivered frame as observable on the wire."""
        return (
            self.frame.can_id.value,
            self.frame.can_id.extended,
            self.frame.remote,
            self.frame.dlc,
            self.frame.data,
        )
