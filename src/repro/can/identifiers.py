"""CAN identifiers and their arbitration semantics.

CAN identifiers double as message priorities: during the arbitration
field every transmitter sends its identifier MSB-first while monitoring
the bus.  A node that sends recessive but observes dominant has lost
arbitration and withdraws.  Numerically *lower* identifiers therefore
have *higher* priority.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.can.bits import bits_from_int
from repro.errors import FrameError

#: Highest valid 11-bit (base format) identifier.
MAX_STANDARD_ID = 0x7FF
#: Highest valid 29-bit (extended format) identifier.
MAX_EXTENDED_ID = 0x1FFFFFFF


@dataclass(frozen=True, order=False)
class CanId:
    """A CAN identifier in base (11-bit) or extended (29-bit) format.

    Parameters
    ----------
    value:
        The numeric identifier.
    extended:
        ``True`` for the 29-bit extended format introduced by CAN 2.0B.
    """

    value: int
    extended: bool = False

    def __post_init__(self) -> None:
        limit = MAX_EXTENDED_ID if self.extended else MAX_STANDARD_ID
        if not 0 <= self.value <= limit:
            raise FrameError(
                "identifier %#x out of range for %s format (max %#x)"
                % (self.value, "extended" if self.extended else "base", limit)
            )

    @property
    def width(self) -> int:
        """Number of identifier bits (11 or 29)."""
        return 29 if self.extended else 11

    def id_bits(self) -> List[int]:
        """The identifier bits, most significant first."""
        return bits_from_int(self.value, self.width)

    def base_part(self) -> List[int]:
        """The 11 most significant identifier bits (ID-A / base id)."""
        if self.extended:
            return bits_from_int(self.value >> 18, 11)
        return bits_from_int(self.value, 11)

    def extension_part(self) -> List[int]:
        """The 18 least significant bits of an extended identifier."""
        if not self.extended:
            raise FrameError("base-format identifiers have no extension part")
        return bits_from_int(self.value & 0x3FFFF, 18)

    def outranks(self, other: "CanId") -> bool:
        """Whether this identifier wins CAN arbitration against ``other``.

        The comparison follows the on-the-wire bit order, which means a
        base-format frame outranks an extended-format frame with the
        same leading 11 bits (its SRR/IDE bits are recessive later).
        """
        return arbitration_sort_key(self) < arbitration_sort_key(other)

    def __str__(self) -> str:
        kind = "x" if self.extended else "s"
        return "CanId(%#x/%s)" % (self.value, kind)


def arbitration_sort_key(can_id: CanId) -> tuple:
    """A sort key that orders identifiers by decreasing bus priority.

    CAN arbitration compares the transmitted bit sequences; mapping the
    arbitration field to a tuple of bits gives the exact wire ordering.
    Base frames transmit ``ID(11) RTR`` and extended frames transmit
    ``ID-A(11) SRR(=1) IDE(=1) ID-B(18) RTR``; a data frame's RTR is
    dominant, so data frames beat remote frames with the same id.  The
    key here covers the identifier portion only (RTR handled by caller
    when comparing full frames, see :func:`frame_arbitration_key`).
    """
    if can_id.extended:
        # Base part, then recessive SRR and IDE, then the extension.
        return tuple(can_id.base_part()) + (1, 1) + tuple(can_id.extension_part())
    return tuple(can_id.id_bits())


def highest_priority(ids: List[CanId]) -> CanId:
    """Return the identifier that would win arbitration among ``ids``."""
    if not ids:
        raise FrameError("cannot pick the highest priority of no identifiers")
    return min(ids, key=arbitration_sort_key)
