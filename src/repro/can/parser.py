"""Receiver-side incremental frame parser.

The :class:`FrameParser` consumes one observed bus level per bit time
and tracks the position inside the frame (field name + index), removes
stuff bits, computes the CRC incrementally, validates the fixed-form
delimiter bits and reconstructs the transmitted
:class:`~repro.can.frame.Frame`.

The parser deliberately does *not* decide what an error means: stuff
violations, form violations and CRC mismatches are reported as fields
of the returned :class:`ParserStep`, and the controller maps them to
the protocol's error-signalling behaviour (which is exactly where
standard CAN, MinorCAN and MajorCAN differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import List, Optional, Tuple

from repro.can.bits import Level, int_from_bits
from repro.can.crc import CRC_WIDTH, Crc15Register
from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC,
    CRC_DELIM,
    DATA,
    DLC,
    EOF,
    ID_A,
    ID_B,
    IDE,
    R0,
    R1,
    RTR,
    SOF,
    SRR,
    STANDARD_EOF_LENGTH,
)
from repro.can.frame import Frame
from repro.can.identifiers import CanId
from repro.can.stuffing import Destuffer, StuffResult
from repro.errors import DecodingError


@dataclass(frozen=True)
class ParserStep:
    """Outcome of feeding one bit to the parser."""

    field: str
    index: int
    level: Level
    is_stuff: bool = False
    stuff_violation: bool = False
    form_violation: bool = False
    #: Set once the CRC sequence (and trailing stuff bit, if any) has
    #: been consumed; from then on :attr:`FrameParser.crc_ok` is valid.
    header_complete: bool = False
    #: Set when the final EOF bit has been consumed.
    frame_complete: bool = False


@dataclass
class _FieldCursor:
    """Internal cursor over the dynamically discovered field sequence."""

    name: str
    length: int
    consumed: int = 0
    bits: List[int] = dataclass_field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.consumed >= self.length


class FrameParser:
    """Parse a CAN frame bit by bit from observed bus levels.

    Parameters
    ----------
    eof_length:
        Length of the end-of-frame field; 7 for standard CAN and
        MinorCAN, ``2 * m`` for MajorCAN_m.
    """

    #: Fields covered by bit stuffing (SOF through CRC).
    _STUFFED_FIELDS = frozenset(
        {SOF, ID_A, SRR, IDE, ID_B, RTR, R1, R0, DLC, DATA, CRC}
    )

    def __init__(self, eof_length: int = STANDARD_EOF_LENGTH) -> None:
        if eof_length < 2:
            raise DecodingError("EOF must be at least 2 bits long")
        self.eof_length = eof_length
        self._destuffer = Destuffer()
        self._crc = Crc15Register()
        self._fields: dict = {}
        self._cursor = _FieldCursor(SOF, 1)
        self._extended: Optional[bool] = None
        self._remote: Optional[bool] = None
        self._crc_ok: Optional[bool] = None
        self._header_complete = False
        self._complete = False
        self._failed = False
        self._pending_header_complete = False

    # ------------------------------------------------------------------
    # Public state
    # ------------------------------------------------------------------

    @property
    def crc_ok(self) -> Optional[bool]:
        """CRC verdict; ``None`` until the CRC sequence has arrived."""
        return self._crc_ok

    @property
    def header_complete(self) -> bool:
        """Whether everything up to (and including) the CRC was consumed."""
        return self._header_complete

    @property
    def complete(self) -> bool:
        """Whether the entire frame, including EOF, was consumed."""
        return self._complete

    @property
    def upcoming(self) -> Tuple[str, int, bool]:
        """``(field, index, is_stuff)`` of the *next* bit to be fed.

        Controllers use this to know, one bit ahead, that the ACK slot
        is about to arrive (so they can drive a dominant acknowledgement)
        and to announce their current position to the fault injector.
        """
        if self._complete or self._failed:
            return (EOF, self.eof_length - 1, False)
        if self._in_stuffed_region() and self._destuffer.next_is_stuff:
            if self._cursor.name == CRC_DELIM:
                return (CRC, CRC_WIDTH - 1, True)
            return (self._cursor.name, max(self._cursor.consumed - 1, 0), True)
        return (self._cursor.name, self._cursor.consumed, False)

    def frame(self) -> Frame:
        """Reconstruct the received frame (valid once the header is in)."""
        if not self._header_complete:
            raise DecodingError("frame not yet fully received")
        identifier = self._identifier()
        remote = bool(self._remote)
        dlc = int_from_bits(self._fields[DLC])
        data = bytes(
            int_from_bits(self._fields.get(DATA, [])[position : position + 8])
            for position in range(0, len(self._fields.get(DATA, [])), 8)
        )
        return Frame(can_id=identifier, data=data, remote=remote, dlc=dlc)

    # ------------------------------------------------------------------
    # Bit consumption
    # ------------------------------------------------------------------

    def feed(self, level: Level) -> ParserStep:
        """Consume one observed bus level and report what it was."""
        if self._complete:
            raise DecodingError("parser fed past the end of the frame")
        if self._failed:
            raise DecodingError("parser fed after an unrecoverable violation")
        bit = int(level)
        field_name = self._cursor.name
        index = self._cursor.consumed
        if self._in_stuffed_region():
            result = self._destuffer.feed(bit)
            if result == StuffResult.VIOLATION:
                self._failed = True
                return ParserStep(
                    field=field_name,
                    index=max(index - 1, 0),
                    level=level,
                    is_stuff=True,
                    stuff_violation=True,
                )
            if result == StuffResult.STUFF:
                if field_name == CRC_DELIM:
                    # Trailing stuff bit after the final CRC bit: it
                    # belongs to the CRC sequence, not the delimiter.
                    field_name, index = CRC, CRC_WIDTH
                return ParserStep(
                    field=field_name,
                    index=max(index - 1, 0),
                    level=level,
                    is_stuff=True,
                    header_complete=self._maybe_finish_header(),
                )
            self._consume_data_bit(bit)
            return ParserStep(
                field=field_name,
                index=index,
                level=level,
                header_complete=self._maybe_finish_header(),
            )
        # Fixed-form region: CRC delimiter, ACK field, EOF.
        return self._consume_tail_bit(field_name, index, level)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _in_stuffed_region(self) -> bool:
        if self._cursor.name in self._STUFFED_FIELDS:
            return True
        # A trailing stuff bit may be pending right after the last CRC bit.
        return self._cursor.name == CRC_DELIM and self._destuffer.next_is_stuff

    def _consume_data_bit(self, bit: int) -> None:
        cursor = self._cursor
        cursor.bits.append(bit)
        cursor.consumed += 1
        if cursor.name != CRC:
            self._crc.feed(bit)
        if cursor.done:
            self._fields[cursor.name] = list(cursor.bits)
            self._advance_after(cursor.name)

    def _maybe_finish_header(self) -> bool:
        """Mark the header complete once CRC plus pending stuff is in."""
        if self._pending_header_complete and not self._destuffer.next_is_stuff:
            self._pending_header_complete = False
            self._header_complete = True
            received = int_from_bits(self._fields[CRC])
            self._crc_ok = received == self._crc.value
            return True
        return False

    def _advance_after(self, finished: str) -> None:
        if finished == SOF:
            self._cursor = _FieldCursor(ID_A, 11)
        elif finished == ID_A:
            # The next bit is RTR (base) or SRR (extended); we cannot
            # know which until the IDE bit arrives, so parse it under
            # the provisional name RTR and fix it up if IDE is recessive.
            self._cursor = _FieldCursor(RTR, 1)
        elif finished == RTR and self._extended is None:
            self._cursor = _FieldCursor(IDE, 1)
        elif finished == IDE:
            ide_bit = self._fields[IDE][0]
            if ide_bit == 1:
                # Extended format: the bit parsed as RTR was really SRR.
                self._extended = True
                self._fields[SRR] = self._fields.pop(RTR)
                self._cursor = _FieldCursor(ID_B, 18)
            else:
                self._extended = False
                self._remote = self._fields[RTR][0] == 1
                self._cursor = _FieldCursor(R0, 1)
        elif finished == ID_B:
            self._cursor = _FieldCursor(RTR, 1)
            self._extended = True
        elif finished == RTR and self._extended:
            self._remote = self._fields[RTR][0] == 1
            self._cursor = _FieldCursor(R1, 1)
        elif finished == R1:
            self._cursor = _FieldCursor(R0, 1)
        elif finished == R0:
            self._cursor = _FieldCursor(DLC, 4)
        elif finished == DLC:
            dlc = int_from_bits(self._fields[DLC])
            data_bits = 0 if self._remote else 8 * min(dlc, 8)
            if data_bits:
                self._cursor = _FieldCursor(DATA, data_bits)
            else:
                self._cursor = _FieldCursor(CRC, CRC_WIDTH)
        elif finished == DATA:
            self._cursor = _FieldCursor(CRC, CRC_WIDTH)
        elif finished == CRC:
            self._cursor = _FieldCursor(CRC_DELIM, 1)
            self._pending_header_complete = True
        elif finished == CRC_DELIM:
            self._cursor = _FieldCursor(ACK_SLOT, 1)
        elif finished == ACK_SLOT:
            self._cursor = _FieldCursor(ACK_DELIM, 1)
        elif finished == ACK_DELIM:
            self._cursor = _FieldCursor(EOF, self.eof_length)
        elif finished == EOF:
            self._complete = True
        else:  # pragma: no cover - defensive
            raise DecodingError("parser reached unknown field %r" % finished)

    def _consume_tail_bit(self, field_name: str, index: int, level: Level) -> ParserStep:
        cursor = self._cursor
        cursor.bits.append(int(level))
        cursor.consumed += 1
        header_complete = False
        if field_name == CRC_DELIM and not self._header_complete:
            # No trailing stuff bit was pending; the header finished with
            # the last CRC data bit, so finalise the CRC verdict now.
            self._pending_header_complete = False
            self._header_complete = True
            received = int_from_bits(self._fields[CRC])
            self._crc_ok = received == self._crc.value
            header_complete = True
        form_violation = False
        if field_name in (CRC_DELIM, ACK_DELIM) and level is Level.DOMINANT:
            form_violation = True
        if cursor.done:
            self._fields[field_name] = list(cursor.bits)
            self._advance_after(field_name)
        return ParserStep(
            field=field_name,
            index=index,
            level=level,
            form_violation=form_violation,
            header_complete=header_complete,
            frame_complete=self._complete,
        )

    def _identifier(self) -> CanId:
        base = int_from_bits(self._fields[ID_A])
        if self._extended:
            extension = int_from_bits(self._fields[ID_B])
            return CanId((base << 18) | extension, extended=True)
        return CanId(base, extended=False)
