"""Receiver-side incremental frame parser.

The :class:`FrameParser` consumes one observed bus level per bit time
and tracks the position inside the frame (field name + index), removes
stuff bits, computes the CRC incrementally, validates the fixed-form
delimiter bits and reconstructs the transmitted
:class:`~repro.can.frame.Frame`.

The parser deliberately does *not* decide what an error means: stuff
violations, form violations and CRC mismatches are reported as fields
of the returned :class:`ParserStep`, and the controller maps them to
the protocol's error-signalling behaviour (which is exactly where
standard CAN, MinorCAN and MajorCAN differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.can.bits import Level, int_from_bits
from repro.can.crc import CRC_WIDTH, Crc15Register
from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    CRC,
    CRC_DELIM,
    DATA,
    DLC,
    EOF,
    ID_A,
    ID_B,
    IDE,
    R0,
    R1,
    RTR,
    SOF,
    SRR,
    STANDARD_EOF_LENGTH,
)
from repro.can.frame import Frame
from repro.can.identifiers import CanId
from repro.can.stuffing import STUFF_WIDTH, Destuffer, StuffResult
from repro.errors import DecodingError


@dataclass(frozen=True)
class ParserStep:
    """Outcome of feeding one bit to the parser."""

    field: str
    index: int
    level: Level
    is_stuff: bool = False
    stuff_violation: bool = False
    form_violation: bool = False
    #: Set once the CRC sequence (and trailing stuff bit, if any) has
    #: been consumed; from then on :attr:`FrameParser.crc_ok` is valid.
    header_complete: bool = False
    #: Set when the final EOF bit has been consumed.
    frame_complete: bool = False


@dataclass
class _FieldCursor:
    """Internal cursor over the dynamically discovered field sequence."""

    name: str
    length: int
    consumed: int = 0
    bits: List[int] = dataclass_field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.consumed >= self.length


class FrameParser:
    """Parse a CAN frame bit by bit from observed bus levels.

    Parameters
    ----------
    eof_length:
        Length of the end-of-frame field; 7 for standard CAN and
        MinorCAN, ``2 * m`` for MajorCAN_m.
    """

    #: Fields covered by bit stuffing (SOF through CRC).
    _STUFFED_FIELDS = frozenset(
        {SOF, ID_A, SRR, IDE, ID_B, RTR, R1, R0, DLC, DATA, CRC}
    )

    def __init__(self, eof_length: int = STANDARD_EOF_LENGTH) -> None:
        if eof_length < 2:
            raise DecodingError("EOF must be at least 2 bits long")
        self.eof_length = eof_length
        self._destuffer = Destuffer()
        self._crc = Crc15Register()
        self._fields: dict = {}
        self._cursor = _FieldCursor(SOF, 1)
        self._extended: Optional[bool] = None
        self._remote: Optional[bool] = None
        self._crc_ok: Optional[bool] = None
        self._header_complete = False
        self._complete = False
        self._failed = False
        self._pending_header_complete = False

    # ------------------------------------------------------------------
    # Public state
    # ------------------------------------------------------------------

    @property
    def crc_ok(self) -> Optional[bool]:
        """CRC verdict; ``None`` until the CRC sequence has arrived."""
        return self._crc_ok

    @property
    def header_complete(self) -> bool:
        """Whether everything up to (and including) the CRC was consumed."""
        return self._header_complete

    @property
    def complete(self) -> bool:
        """Whether the entire frame, including EOF, was consumed."""
        return self._complete

    @property
    def upcoming(self) -> Tuple[str, int, bool]:
        """``(field, index, is_stuff)`` of the *next* bit to be fed.

        Controllers use this to know, one bit ahead, that the ACK slot
        is about to arrive (so they can drive a dominant acknowledgement)
        and to announce their current position to the fault injector.
        """
        if self._complete or self._failed:
            return (EOF, self.eof_length - 1, False)
        if self._in_stuffed_region() and self._destuffer.next_is_stuff:
            if self._cursor.name == CRC_DELIM:
                return (CRC, CRC_WIDTH - 1, True)
            return (self._cursor.name, max(self._cursor.consumed - 1, 0), True)
        return (self._cursor.name, self._cursor.consumed, False)

    def frame(self) -> Frame:
        """Reconstruct the received frame (valid once the header is in)."""
        if not self._header_complete:
            raise DecodingError("frame not yet fully received")
        identifier = self._identifier()
        remote = bool(self._remote)
        dlc = int_from_bits(self._fields[DLC])
        data = bytes(
            int_from_bits(self._fields.get(DATA, [])[position : position + 8])
            for position in range(0, len(self._fields.get(DATA, [])), 8)
        )
        return Frame(can_id=identifier, data=data, remote=remote, dlc=dlc)

    # ------------------------------------------------------------------
    # Bit consumption
    # ------------------------------------------------------------------

    def feed(self, level: Level) -> ParserStep:
        """Consume one observed bus level and report what it was."""
        if self._complete:
            raise DecodingError("parser fed past the end of the frame")
        if self._failed:
            raise DecodingError("parser fed after an unrecoverable violation")
        bit = int(level)
        field_name = self._cursor.name
        index = self._cursor.consumed
        if self._in_stuffed_region():
            result = self._destuffer.feed(bit)
            if result == StuffResult.VIOLATION:
                self._failed = True
                return ParserStep(
                    field=field_name,
                    index=max(index - 1, 0),
                    level=level,
                    is_stuff=True,
                    stuff_violation=True,
                )
            if result == StuffResult.STUFF:
                if field_name == CRC_DELIM:
                    # Trailing stuff bit after the final CRC bit: it
                    # belongs to the CRC sequence, not the delimiter.
                    field_name, index = CRC, CRC_WIDTH
                return ParserStep(
                    field=field_name,
                    index=max(index - 1, 0),
                    level=level,
                    is_stuff=True,
                    header_complete=self._maybe_finish_header(),
                )
            self._consume_data_bit(bit)
            return ParserStep(
                field=field_name,
                index=index,
                level=level,
                header_complete=self._maybe_finish_header(),
            )
        # Fixed-form region: CRC delimiter, ACK field, EOF.
        return self._consume_tail_bit(field_name, index, level)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _in_stuffed_region(self) -> bool:
        if self._cursor.name in self._STUFFED_FIELDS:
            return True
        # A trailing stuff bit may be pending right after the last CRC bit.
        return self._cursor.name == CRC_DELIM and self._destuffer.next_is_stuff

    def _consume_data_bit(self, bit: int) -> None:
        cursor = self._cursor
        cursor.bits.append(bit)
        cursor.consumed += 1
        if cursor.name != CRC:
            self._crc.feed(bit)
        if cursor.done:
            self._fields[cursor.name] = list(cursor.bits)
            self._advance_after(cursor.name)

    def _maybe_finish_header(self) -> bool:
        """Mark the header complete once CRC plus pending stuff is in."""
        if self._pending_header_complete and not self._destuffer.next_is_stuff:
            self._pending_header_complete = False
            self._header_complete = True
            received = int_from_bits(self._fields[CRC])
            self._crc_ok = received == self._crc.value
            return True
        return False

    def _advance_after(self, finished: str) -> None:
        if finished == SOF:
            self._cursor = _FieldCursor(ID_A, 11)
        elif finished == ID_A:
            # The next bit is RTR (base) or SRR (extended); we cannot
            # know which until the IDE bit arrives, so parse it under
            # the provisional name RTR and fix it up if IDE is recessive.
            self._cursor = _FieldCursor(RTR, 1)
        elif finished == RTR and self._extended is None:
            self._cursor = _FieldCursor(IDE, 1)
        elif finished == IDE:
            ide_bit = self._fields[IDE][0]
            if ide_bit == 1:
                # Extended format: the bit parsed as RTR was really SRR.
                self._extended = True
                self._fields[SRR] = self._fields.pop(RTR)
                self._cursor = _FieldCursor(ID_B, 18)
            else:
                self._extended = False
                self._remote = self._fields[RTR][0] == 1
                self._cursor = _FieldCursor(R0, 1)
        elif finished == ID_B:
            self._cursor = _FieldCursor(RTR, 1)
            self._extended = True
        elif finished == RTR and self._extended:
            self._remote = self._fields[RTR][0] == 1
            self._cursor = _FieldCursor(R1, 1)
        elif finished == R1:
            self._cursor = _FieldCursor(R0, 1)
        elif finished == R0:
            self._cursor = _FieldCursor(DLC, 4)
        elif finished == DLC:
            dlc = int_from_bits(self._fields[DLC])
            data_bits = 0 if self._remote else 8 * min(dlc, 8)
            if data_bits:
                self._cursor = _FieldCursor(DATA, data_bits)
            else:
                self._cursor = _FieldCursor(CRC, CRC_WIDTH)
        elif finished == DATA:
            self._cursor = _FieldCursor(CRC, CRC_WIDTH)
        elif finished == CRC:
            self._cursor = _FieldCursor(CRC_DELIM, 1)
            self._pending_header_complete = True
        elif finished == CRC_DELIM:
            self._cursor = _FieldCursor(ACK_SLOT, 1)
        elif finished == ACK_SLOT:
            self._cursor = _FieldCursor(ACK_DELIM, 1)
        elif finished == ACK_DELIM:
            self._cursor = _FieldCursor(EOF, self.eof_length)
        elif finished == EOF:
            self._complete = True
        else:  # pragma: no cover - defensive
            raise DecodingError("parser reached unknown field %r" % finished)

    def _consume_tail_bit(self, field_name: str, index: int, level: Level) -> ParserStep:
        cursor = self._cursor
        cursor.bits.append(int(level))
        cursor.consumed += 1
        header_complete = False
        if field_name == CRC_DELIM and not self._header_complete:
            # No trailing stuff bit was pending; the header finished with
            # the last CRC data bit, so finalise the CRC verdict now.
            self._pending_header_complete = False
            self._header_complete = True
            received = int_from_bits(self._fields[CRC])
            self._crc_ok = received == self._crc.value
            header_complete = True
        form_violation = False
        if field_name in (CRC_DELIM, ACK_DELIM) and level is Level.DOMINANT:
            form_violation = True
        if cursor.done:
            self._fields[field_name] = list(cursor.bits)
            self._advance_after(field_name)
        return ParserStep(
            field=field_name,
            index=index,
            level=level,
            form_violation=form_violation,
            header_complete=header_complete,
            frame_complete=self._complete,
        )

    def _identifier(self) -> CanId:
        base = int_from_bits(self._fields[ID_A])
        if self._extended:
            extension = int_from_bits(self._fields[ID_B])
            return CanId((base << 18) | extension, extended=True)
        return CanId(base, extended=False)


# ---------------------------------------------------------------------------
# Table-driven fast parser (the controller fast path)
# ---------------------------------------------------------------------------

#: Integer step codes returned by :meth:`FastFrameParser.feed_code`.
#: They carry exactly the information the controller's receive handler
#: branches on, replacing the per-bit :class:`ParserStep` allocation.
STEP_OK = 0  #: nothing to decide; keep receiving
STEP_STUFF_VIOLATION = 1  #: six identical bits in the stuffed region
STEP_FORM_VIOLATION = 2  #: dominant level at a fixed-form delimiter bit
STEP_ACK_DELIM = 3  #: ACK delimiter consumed; check ``crc_ok`` now
STEP_EOF = 4  #: an EOF bit (its index is in :attr:`FastFrameParser.last_index`)

#: CRC-15 constants inlined into the fast feed loop.
_CRC_POLY = 0x4599
_CRC_TOP_SHIFT = CRC_WIDTH - 1
_CRC_MASK = 0x7FFF


@lru_cache(maxsize=8)
def _tail_positions(eof_length: int) -> Tuple[Tuple[str, int], ...]:
    """Prebuilt ``(field, index)`` tuples for the fixed-form frame tail.

    Indexed by the number of tail bits already consumed, with a final
    sentinel repeating the last EOF position (what ``upcoming`` reports
    once the frame is complete).  Shared by every frame of the same
    ``eof_length``, so steady-state tail bits allocate no tuples.
    """
    positions: List[Tuple[str, int]] = [(CRC_DELIM, 0), (ACK_SLOT, 0), (ACK_DELIM, 0)]
    positions.extend((EOF, index) for index in range(eof_length))
    positions.append((EOF, eof_length - 1))
    return tuple(positions)


class FastFrameParser:
    """Allocation-free equivalent of :class:`FrameParser`.

    Consumes the same observed bus levels and reaches the same verdicts
    (positions, stuff/form violations, CRC verdict, reconstructed
    frame), but reports each bit as an integer :data:`STEP_OK`-family
    code instead of a :class:`ParserStep`, keeps the destuffer and the
    CRC-15 register inlined as plain ints, and walks the field sequence
    with a single cursor over interned field names.  The fixed-form
    tail steps through the precompiled :func:`_tail_positions` table.

    The controller-facing surface mirrors the reference parser:
    ``crc_ok``, ``header_complete``, ``complete``, ``upcoming`` and
    ``frame()`` behave identically, which is what keeps the MinorCAN
    and MajorCAN extension points working unchanged on the fast path.
    ``tests/test_controller_fastpath.py`` enforces the equivalence
    bit-for-bit against the reference implementation.
    """

    __slots__ = (
        "eof_length",
        "complete",
        "header_complete",
        "crc_ok",
        "failed",
        "last_index",
        "next_field",
        "next_index",
        "next_is_stuff",
        "next_position",
        "_field",
        "_length",
        "_consumed",
        "_acc",
        "_run_value",
        "_run_length",
        "_expect_stuff",
        "_stuffed",
        "_crc",
        "_pending_header",
        "_crc_received",
        "_id_a",
        "_id_b",
        "_rtr_bit",
        "_extended",
        "_remote",
        "_dlc",
        "_data_int",
        "_data_bits",
        "_tail_consumed",
        "_tail_table",
    )

    def __init__(self, eof_length: int = STANDARD_EOF_LENGTH) -> None:
        if eof_length < 2:
            raise DecodingError("EOF must be at least 2 bits long")
        self.eof_length = eof_length
        self.complete = False
        self.header_complete = False
        self.crc_ok: Optional[bool] = None
        self.failed = False
        self.last_index = 0
        self.next_field = SOF
        self.next_index = 0
        self.next_is_stuff = False
        self.next_position: Tuple[str, int] = (SOF, 0)
        self._field = SOF
        self._length = 1
        self._consumed = 0
        self._acc = 0
        self._run_value = -1
        self._run_length = 0
        self._expect_stuff = False
        self._stuffed = True
        self._crc = 0
        self._pending_header = False
        self._crc_received = 0
        self._id_a = 0
        self._id_b = 0
        self._rtr_bit = 0
        self._extended: Optional[bool] = None
        self._remote: Optional[bool] = None
        self._dlc = 0
        self._data_int = 0
        self._data_bits = 0
        self._tail_consumed = 0
        self._tail_table = _tail_positions(eof_length)

    # ------------------------------------------------------------------
    # Reference-parser API surface
    # ------------------------------------------------------------------

    @property
    def upcoming(self) -> Tuple[str, int, bool]:
        """``(field, index, is_stuff)`` of the next bit, as the reference."""
        return (self.next_field, self.next_index, self.next_is_stuff)

    def frame(self) -> Frame:
        """Reconstruct the received frame (valid once the header is in)."""
        if not self.header_complete:
            raise DecodingError("frame not yet fully received")
        if self._extended:
            identifier = CanId((self._id_a << 18) | self._id_b, extended=True)
        else:
            identifier = CanId(self._id_a, extended=False)
        nbytes = self._data_bits >> 3
        data = self._data_int.to_bytes(nbytes, "big") if nbytes else b""
        return Frame(
            can_id=identifier, data=data, remote=bool(self._remote), dlc=self._dlc
        )

    def feed(self, level: Level) -> int:
        """Alias of :meth:`feed_code` (for drop-in replay loops)."""
        return self.feed_code(level)

    # ------------------------------------------------------------------
    # Bit consumption
    # ------------------------------------------------------------------

    def feed_code(self, level: Level) -> int:
        """Consume one observed level; return a ``STEP_*`` code."""
        if self.complete:
            raise DecodingError("parser fed past the end of the frame")
        if self.failed:
            raise DecodingError("parser fed after an unrecoverable violation")
        bit = 1 if level else 0
        if self._stuffed or self._expect_stuff:
            if self._expect_stuff:
                self._expect_stuff = False
                if bit == self._run_value:
                    self.failed = True
                    self.next_field = EOF
                    self.next_index = self.eof_length - 1
                    self.next_is_stuff = False
                    self.next_position = self._tail_table[-1]
                    return STEP_STUFF_VIOLATION
                self._run_value = bit
                self._run_length = 1
                if self._pending_header:
                    self._finish_header()
                self._set_next()
                return STEP_OK
            if bit == self._run_value:
                self._run_length += 1
                if self._run_length == STUFF_WIDTH:
                    self._expect_stuff = True
            else:
                self._run_value = bit
                self._run_length = 1
            field = self._field
            if field is not CRC:
                register = self._crc
                if bit ^ (register >> _CRC_TOP_SHIFT):
                    self._crc = ((register << 1) ^ _CRC_POLY) & _CRC_MASK
                else:
                    self._crc = (register << 1) & _CRC_MASK
            self._acc = (self._acc << 1) | bit
            self._consumed += 1
            if self._consumed == self._length:
                self._advance_after(field)
            if self._pending_header and not self._expect_stuff:
                self._finish_header()
            self._set_next()
            return STEP_OK
        # Fixed-form tail: CRC delimiter, ACK field, EOF.
        field = self._field
        index = self._consumed
        self._consumed += 1
        self._tail_consumed += 1
        code = STEP_OK
        if field is EOF:
            self.last_index = index
            code = STEP_EOF
            if self._consumed == self._length:
                self.complete = True
        elif field is ACK_DELIM:
            code = STEP_FORM_VIOLATION if bit == 0 else STEP_ACK_DELIM
            self._field = EOF
            self._length = self.eof_length
            self._consumed = 0
        elif field is ACK_SLOT:
            self._field = ACK_DELIM
            self._length = 1
            self._consumed = 0
        else:  # CRC_DELIM
            if not self.header_complete:  # pragma: no cover - defensive parity
                self._finish_header()
            if bit == 0:
                code = STEP_FORM_VIOLATION
            self._field = ACK_SLOT
            self._length = 1
            self._consumed = 0
        position = self._tail_table[self._tail_consumed]
        self.next_field = position[0]
        self.next_index = position[1]
        self.next_is_stuff = False
        self.next_position = position
        return code

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _finish_header(self) -> None:
        self._pending_header = False
        self.header_complete = True
        self.crc_ok = self._crc_received == self._crc

    def _set_next(self) -> None:
        """Publish the reference parser's ``upcoming`` for the next bit."""
        field = self._field
        if self._expect_stuff:
            if field is CRC_DELIM:
                self.next_field = CRC
                self.next_index = CRC_WIDTH - 1
            else:
                self.next_field = field
                consumed = self._consumed
                self.next_index = consumed - 1 if consumed > 0 else 0
            self.next_is_stuff = True
        else:
            self.next_field = field
            self.next_index = self._consumed
            self.next_is_stuff = False
        self.next_position = (self.next_field, self.next_index)

    def _advance_after(self, finished: str) -> None:
        """Field-walk transitions of the stuffed region (see reference)."""
        acc = self._acc
        self._acc = 0
        self._consumed = 0
        if finished is SOF:
            self._field = ID_A
            self._length = 11
        elif finished is ID_A:
            self._id_a = acc
            self._field = RTR
            self._length = 1
        elif finished is RTR:
            if self._extended:
                self._remote = bool(acc)
                self._field = R1
            else:
                # Provisional slot: RTR (base) or SRR (extended); the IDE
                # bit decides.
                self._rtr_bit = acc
                self._field = IDE
            self._length = 1
        elif finished is IDE:
            if acc:
                self._extended = True
                self._field = ID_B
                self._length = 18
            else:
                self._extended = False
                self._remote = bool(self._rtr_bit)
                self._field = R0
                self._length = 1
        elif finished is ID_B:
            self._id_b = acc
            self._field = RTR
            self._length = 1
        elif finished is R1:
            self._field = R0
            self._length = 1
        elif finished is R0:
            self._field = DLC
            self._length = 4
        elif finished is DLC:
            self._dlc = acc
            data_bits = 0 if self._remote else 8 * min(acc, 8)
            self._data_bits = data_bits
            if data_bits:
                self._field = DATA
                self._length = data_bits
            else:
                self._field = CRC
                self._length = CRC_WIDTH
        elif finished is DATA:
            self._data_int = acc
            self._field = CRC
            self._length = CRC_WIDTH
        else:  # CRC: the stuffed region ends here
            self._crc_received = acc
            self._pending_header = True
            self._stuffed = False
            self._field = CRC_DELIM
            self._length = 1
