"""The standard CAN controller state machine.

:class:`CanController` implements the medium access control sublayer of
ISO 11898 as a bit-synchronous finite-state machine: arbitration,
transmission and reception with on-line destuffing, the five error
detection mechanisms (bit, stuff, CRC, ACK, form), active and passive
error signalling, overload frames, fault confinement, automatic
retransmission — and, crucially for this reproduction, the special
behaviour for errors detected in the **last bit of the end-of-frame
field** that is the root cause of the inconsistencies the paper
studies.

The controller interacts with the simulation engine through a strict
two-phase per-bit protocol:

1. :meth:`drive` — return the level this node puts on the bus for the
   current bit time, and publish :attr:`position` (the frame-relative
   position of that bit) for the fault injector and the trace;
2. :meth:`on_bit` — consume the level this node *observes* on the bus
   (after wired-AND resolution and per-node view faults) and advance
   the state machine.

Protocol variants (MinorCAN, MajorCAN) subclass this machine and
override the dedicated extension points, primarily
:meth:`_rx_eof_bit` / :meth:`_tx_eof_bit` and the error-flag epilogue.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Union

from repro.can.bits import DOMINANT, RECESSIVE, Level
from repro.can.controller_config import ControllerConfig
from repro.can.encoding import (
    OP_ACK,
    OP_EOF,
    OP_MATCH,
    SignalProgram,
    SignalTable,
    WireFrame,
    WireProgram,
    encode_frame,
    signal_program,
    signal_table,
    wire_program,
)
from repro.can.error_counters import ConfinementState, ErrorCounters
from repro.can.events import Delivery, ErrorReason, Event, EventKind
from repro.can.fields import (
    ACK_DELIM,
    ACK_SLOT,
    BUS_OFF_POSITION,
    EOF,
    ERROR_DELIM,
    ERROR_FLAG,
    ERROR_WAIT,
    FLAG_LENGTH,
    IDLE,
    INTERMISSION,
    INTERMISSION_LENGTH,
    OVERLOAD_DELIM,
    OVERLOAD_FLAG,
    OVERLOAD_WAIT,
    SUSPEND,
    SUSPEND_LENGTH,
)
from repro.can.frame import Frame
from repro.can.identifiers import CanId
from repro.can.parser import (
    STEP_ACK_DELIM,
    STEP_EOF,
    STEP_FORM_VIOLATION,
    STEP_OK,
    STEP_STUFF_VIOLATION,
    FastFrameParser,
    FrameParser,
)
from repro.errors import SimulationError

# ---------------------------------------------------------------------------
# MAC states.  Plain strings so protocol subclasses can add their own.
# ---------------------------------------------------------------------------

STATE_IDLE = "idle"
STATE_RECEIVING = "receiving"
STATE_TRANSMITTING = "transmitting"
STATE_ERROR_FLAG = "error_flag"
STATE_PASSIVE_ERROR_FLAG = "passive_error_flag"
STATE_ERROR_WAIT = "error_wait"
STATE_ERROR_DELIM = "error_delim"
STATE_OVERLOAD_FLAG = "overload_flag"
STATE_OVERLOAD_WAIT = "overload_wait"
STATE_OVERLOAD_DELIM = "overload_delim"
STATE_INTERMISSION = "intermission"
STATE_SUSPEND = "suspend"
STATE_BUS_OFF = "bus_off"


@dataclass
class TxJob:
    """A queued frame with its retransmission bookkeeping."""

    frame: Frame
    attempts: int = 0


@dataclass
class _DeferredDecision:
    """Context of a postponed accept/reject decision (MinorCAN-style)."""

    was_transmitter: bool
    frame: Optional[Frame]


class CanController:
    """A bit-accurate standard CAN controller attached to one bus node.

    Parameters
    ----------
    name:
        Node name, used in events, traces and delivery ledgers.
    config:
        Static configuration (see :class:`ControllerConfig`).
    """

    #: Human-readable protocol label (overridden by subclasses).
    protocol_name = "CAN"

    def __init__(self, name: str, config: Optional[ControllerConfig] = None) -> None:
        self.name = name
        self.config = config or ControllerConfig()
        self.counters = ErrorCounters()
        self.now = 0
        self.tx_queue: Deque[TxJob] = deque()
        #: Every frame ever submitted for transmission (broadcast log).
        self.submitted: List[Frame] = []
        #: (bit time, frame) for every successful own transmission.
        self.tx_successes: List[tuple] = []
        self.deliveries: List[Delivery] = []
        self.events: List[Event] = []
        self.is_transmitter = False
        self.crashed = False
        self.disconnected = False
        #: (field, index) of the bit currently on the bus, from this
        #: node's perspective.  Published by :meth:`drive`.
        self.position = (IDLE, 0)

        self._state = STATE_IDLE
        self._wire: Optional[WireFrame] = None
        self._program: Optional[WireProgram] = None
        self._tx_pos = 0
        #: Reference parser or its fast-path equivalent, depending on
        #: ``config.fast_path`` (both expose the same verdict surface).
        self._parser: Optional[Union[FrameParser, FastFrameParser]] = None
        self._parser_failed = False
        self._driven: Level = RECESSIVE
        self._flag_remaining = 0
        self._wait_first_bit = False
        self._wait_dominant_run = 0
        self._delim_remaining = 0
        self._intermission_pos = 0
        self._suspend_remaining = 0
        self._suspend_pending = False
        self._overload_requests = 0
        self._self_overloads_sent = 0
        self._frame_open = False
        self._rx_delivered = False
        self._deferred: Optional[_DeferredDecision] = None
        self._in_overload_epilogue = False
        self._bus_off_recessive_run = 0
        self._bus_off_sequences = 0
        self._remote_responses: Dict[tuple, bytes] = {}

        self._drive_handlers: Dict[str, Callable[[], Level]] = {
            STATE_IDLE: self._drive_idle,
            STATE_RECEIVING: self._drive_receiving,
            STATE_TRANSMITTING: self._drive_transmitting,
            STATE_ERROR_FLAG: self._drive_active_flag,
            STATE_PASSIVE_ERROR_FLAG: self._drive_recessive,
            STATE_ERROR_WAIT: self._drive_recessive,
            STATE_ERROR_DELIM: self._drive_recessive,
            STATE_OVERLOAD_FLAG: self._drive_active_flag,
            STATE_OVERLOAD_WAIT: self._drive_recessive,
            STATE_OVERLOAD_DELIM: self._drive_recessive,
            STATE_INTERMISSION: self._drive_intermission,
            STATE_SUSPEND: self._drive_recessive,
            STATE_BUS_OFF: self._drive_recessive,
        }
        self._bit_handlers: Dict[str, Callable[[Level], None]] = {
            STATE_IDLE: self._bit_idle,
            STATE_RECEIVING: self._bit_receiving,
            STATE_TRANSMITTING: self._bit_transmitting,
            STATE_ERROR_FLAG: self._bit_flag,
            STATE_PASSIVE_ERROR_FLAG: self._bit_flag,
            STATE_ERROR_WAIT: self._bit_error_wait,
            STATE_ERROR_DELIM: self._bit_error_delim,
            STATE_OVERLOAD_FLAG: self._bit_flag,
            STATE_OVERLOAD_WAIT: self._bit_overload_wait,
            STATE_OVERLOAD_DELIM: self._bit_overload_delim,
            STATE_INTERMISSION: self._bit_intermission,
            STATE_SUSPEND: self._bit_suspend,
            STATE_BUS_OFF: self._bit_bus_off,
        }
        #: Precompiled signalling positions for this configuration
        #: (shared across controllers via the ``signal_table`` cache).
        self._signal_table: SignalTable = signal_table(self.config.delimiter_length)
        if self.config.fast_path:
            # Table-driven hot loop: the steady transmit/receive states
            # walk the compiled wire program, and the error/overload
            # signalling states walk the precompiled SignalTable
            # positions instead of rebuilding label tuples (or, in the
            # shared recessive handler, a whole label dict) on every
            # bit.  The bit-phase handlers stay shared with the
            # reference machine — they are pure branch code with no
            # per-bit construction — so every protocol extension point
            # (_after_flag_complete, _resolve_deferred, the counters)
            # is invoked identically.
            self._drive_handlers[STATE_RECEIVING] = self._drive_receiving_fast
            self._drive_handlers[STATE_TRANSMITTING] = self._drive_transmitting_fast
            self._bit_handlers[STATE_RECEIVING] = self._bit_receiving_fast
            self._bit_handlers[STATE_TRANSMITTING] = self._bit_transmitting_fast
            self._drive_handlers[STATE_ERROR_FLAG] = self._drive_error_flag_fast
            self._drive_handlers[STATE_OVERLOAD_FLAG] = self._drive_overload_flag_fast
            self._drive_handlers[STATE_PASSIVE_ERROR_FLAG] = (
                self._drive_passive_error_flag_fast
            )
            self._drive_handlers[STATE_ERROR_WAIT] = self._drive_error_wait_fast
            self._drive_handlers[STATE_OVERLOAD_WAIT] = self._drive_overload_wait_fast
            self._drive_handlers[STATE_ERROR_DELIM] = self._drive_error_delim_fast
            self._drive_handlers[STATE_OVERLOAD_DELIM] = (
                self._drive_overload_delim_fast
            )
            self._drive_handlers[STATE_INTERMISSION] = self._drive_intermission_fast
            self._drive_handlers[STATE_SUSPEND] = self._drive_suspend_fast

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current MAC state (one of the ``STATE_*`` constants)."""
        return self._state

    @property
    def offline(self) -> bool:
        """Whether this node no longer participates in the bus."""
        return self.crashed or self.disconnected or self._state == STATE_BUS_OFF

    @property
    def pending_transmissions(self) -> int:
        """Number of frames queued (including one being transmitted)."""
        return len(self.tx_queue)

    @property
    def received_frames(self) -> List[Frame]:
        """All frames delivered to this node, in delivery order."""
        return [delivery.frame for delivery in self.deliveries]

    def signal_shape(self) -> SignalProgram:
        """The node's precompiled error-signalling run lengths.

        Flags, delimiters and the intermission are configuration-fixed
        runs, so replay-style consumers (shape probes, the batch replay
        backend) read them here instead of stepping the per-bit error
        handlers.  Protocol variants whose signalling occupies more of
        the frame tail (MajorCAN_m's agreement window) override this.
        """
        return signal_program(self.config.delimiter_length)

    def submit(self, frame: Frame) -> None:
        """Queue a frame for transmission."""
        self.submitted.append(frame)
        self.tx_queue.append(TxJob(frame))

    def crash(self) -> None:
        """Fail-silent crash: stop driving and processing immediately."""
        if not self.crashed:
            self.crashed = True
            self._log(EventKind.CRASHED)

    def disconnect(self) -> None:
        """Controlled disconnection (the paper's warning-limit switch-off)."""
        if not self.disconnected:
            self.disconnected = True
            self._log(EventKind.DISCONNECTED)

    def request_overload(self) -> None:
        """Ask for an overload frame to delay the next frame (slow node)."""
        self._overload_requests += 1

    def register_remote_response(self, identifier: "CanId", data: bytes) -> None:
        """Auto-answer remote (RTR) requests for ``identifier``.

        Real CAN controllers can be configured to answer a remote frame
        with a prepared data frame of the same identifier; when a
        remote frame for a registered identifier is delivered, the
        response is queued automatically.
        """
        self._remote_responses[(identifier.value, identifier.extended)] = data

    # ------------------------------------------------------------------
    # Engine interface
    # ------------------------------------------------------------------

    def drive(self) -> Level:
        """Phase 1: return the level driven on the bus this bit time."""
        if self.offline:
            self.position = (BUS_OFF_POSITION if self._state == STATE_BUS_OFF else IDLE, 0)
            return RECESSIVE
        handler = self._drive_handlers.get(self._state)
        if handler is None:  # pragma: no cover - defensive
            raise SimulationError("no drive handler for state %r" % self._state)
        self._driven = handler()
        return self._driven

    def on_bit(self, seen: Level) -> None:
        """Phase 2: consume the level observed on the bus this bit time."""
        if self.crashed or self.disconnected:
            return
        # A bus-off node still monitors the bus when the optional
        # recovery sequence is enabled (see _bit_bus_off).
        handler = self._bit_handlers.get(self._state)
        if handler is None:  # pragma: no cover - defensive
            raise SimulationError("no bit handler for state %r" % self._state)
        handler(seen)

    # ------------------------------------------------------------------
    # Drive handlers
    # ------------------------------------------------------------------

    def _drive_idle(self) -> Level:
        if self.tx_queue:
            return self._start_transmission()
        self.position = (IDLE, 0)
        return RECESSIVE

    def _drive_receiving(self) -> Level:
        assert self._parser is not None
        field, index, is_stuff = self._parser.upcoming
        self.position = (field, index)
        if field == ACK_SLOT and not is_stuff and self._should_ack():
            return DOMINANT
        return RECESSIVE

    def _drive_transmitting(self) -> Level:
        assert self._wire is not None
        wire_bit = self._wire.bits[self._tx_pos]
        self.position = (wire_bit.field, wire_bit.index)
        return wire_bit.level

    def _drive_active_flag(self) -> Level:
        label = ERROR_FLAG if self._state == STATE_ERROR_FLAG else OVERLOAD_FLAG
        self.position = (label, FLAG_LENGTH - self._flag_remaining)
        return DOMINANT

    def _drive_recessive(self) -> Level:
        labels = {
            STATE_PASSIVE_ERROR_FLAG: (ERROR_FLAG, FLAG_LENGTH - self._flag_remaining),
            STATE_ERROR_WAIT: (ERROR_WAIT, 0),
            STATE_ERROR_DELIM: (
                ERROR_DELIM,
                self.config.delimiter_length - self._delim_remaining,
            ),
            STATE_OVERLOAD_WAIT: (OVERLOAD_WAIT, 0),
            STATE_OVERLOAD_DELIM: (
                OVERLOAD_DELIM,
                self.config.delimiter_length - self._delim_remaining,
            ),
            STATE_SUSPEND: (SUSPEND, SUSPEND_LENGTH - self._suspend_remaining),
            STATE_BUS_OFF: (BUS_OFF_POSITION, 0),
        }
        self.position = labels.get(self._state, (self._state, 0))
        return RECESSIVE

    def _drive_intermission(self) -> Level:
        self.position = (INTERMISSION, self._intermission_pos)
        if (
            self._intermission_pos == 0
            and self._overload_requests > 0
            and self._self_overloads_sent < 2
        ):
            # A slow node may delay the next frame with up to two
            # self-initiated overload frames.
            self._overload_requests -= 1
            self._self_overloads_sent += 1
            self._enter_overload(reactive=False)
            return self._drive_active_flag()
        return RECESSIVE

    # ------------------------------------------------------------------
    # Bit handlers
    # ------------------------------------------------------------------

    def _bit_noop(self, seen: Level) -> None:
        return

    def _bit_bus_off(self, seen: Level) -> None:
        """Optionally monitor the recovery sequence while bus-off.

        ISO 11898 lets a bus-off node return to error-active (with
        cleared counters) after it monitors 128 occurrences of 11
        consecutive recessive bits.
        """
        if not self.config.bus_off_recovery:
            return
        if seen is RECESSIVE:
            self._bus_off_recessive_run += 1
            if self._bus_off_recessive_run == 11:
                self._bus_off_recessive_run = 0
                self._bus_off_sequences += 1
                if self._bus_off_sequences >= 128:
                    self._bus_off_sequences = 0
                    self.counters.reset()
                    self._state = STATE_IDLE
                    self._log(EventKind.BUS_OFF_RECOVERED)
        else:
            self._bus_off_recessive_run = 0

    def _bit_idle(self, seen: Level) -> None:
        if seen is DOMINANT:
            self._start_reception(seen)

    def _bit_receiving(self, seen: Level) -> None:
        assert self._parser is not None
        step = self._parser.feed(seen)
        if step.stuff_violation:
            self._enter_error(ErrorReason.STUFF)
            return
        if step.form_violation:
            self._enter_error(ErrorReason.FORM)
            return
        if step.field == ACK_DELIM and self._parser.crc_ok is False:
            # CRC error: by specification the error flag starts at the
            # bit following the ACK delimiter, i.e. the first EOF bit.
            self._enter_error(ErrorReason.CRC)
            return
        if step.field == EOF:
            self._rx_eof_bit(step.index, seen)

    def _bit_transmitting(self, seen: Level) -> None:
        assert self._wire is not None
        wire_bit = self._wire.bits[self._tx_pos]
        self._feed_parser_quietly(seen)
        if wire_bit.field == EOF:
            if self._tx_eof_bit(wire_bit.index, seen):
                return
            self._advance_tx()
            return
        if wire_bit.field == ACK_SLOT:
            if seen is not DOMINANT:
                self._enter_error(ErrorReason.ACK)
                return
            self._advance_tx()
            return
        if seen is not wire_bit.level:
            lost_arbitration = (
                wire_bit.in_arbitration
                and wire_bit.level is RECESSIVE
                and seen is DOMINANT
                and not wire_bit.is_stuff
            )
            if lost_arbitration:
                self._log(
                    EventKind.ARBITRATION_LOST,
                    field=wire_bit.field,
                    index=wire_bit.index,
                )
                self.is_transmitter = False
                self._wire = None
                self._state = STATE_RECEIVING
                return
            self._enter_error(ErrorReason.BIT, field=wire_bit.field)
            return
        self._advance_tx()

    def _bit_flag(self, seen: Level) -> None:
        self._flag_remaining -= 1
        if self._flag_remaining <= 0:
            self._after_flag_complete()

    def _bit_error_wait(self, seen: Level) -> None:
        if self._wait_first_bit:
            self._wait_first_bit = False
            primary = seen is DOMINANT
            if primary:
                self._log(EventKind.PRIMARY_ERROR)
            if self._deferred is not None:
                # MinorCAN semantics: being first to flag means nobody
                # has rejected the frame yet, so accept; otherwise some
                # node already rejected, so reject too.
                self._resolve_deferred(accept=primary)
            elif primary and not self.is_transmitter:
                self.counters.on_receiver_error(primary=True)
                self._confinement_check()
        if seen is DOMINANT:
            self._wait_dominant_run += 1
            if self._wait_dominant_run and self._wait_dominant_run % 8 == 0:
                self.counters.on_stuck_dominant_octet(self.is_transmitter)
                self._confinement_check()
            return
        # First recessive bit: delimiter bit 1.
        self._delim_remaining = self.config.delimiter_length - 1
        self._state = STATE_ERROR_DELIM

    def _bit_error_delim(self, seen: Level) -> None:
        if seen is DOMINANT:
            if self._delim_remaining <= 1:
                # Dominant at the last delimiter bit: overload condition.
                self._enter_overload(reactive=True)
            else:
                self._enter_error(ErrorReason.DELIMITER)
            return
        self._delim_remaining -= 1
        if self._delim_remaining <= 0:
            self._end_frame_slot()

    def _bit_overload_wait(self, seen: Level) -> None:
        if seen is DOMINANT:
            return
        self._delim_remaining = self.config.delimiter_length - 1
        self._state = STATE_OVERLOAD_DELIM

    def _bit_overload_delim(self, seen: Level) -> None:
        if seen is DOMINANT:
            if self._delim_remaining <= 1:
                self._enter_overload(reactive=True)
            else:
                self._enter_error(ErrorReason.DELIMITER)
            return
        self._delim_remaining -= 1
        if self._delim_remaining <= 0:
            self._end_frame_slot()

    def _bit_intermission(self, seen: Level) -> None:
        if seen is DOMINANT:
            if self._intermission_pos < INTERMISSION_LENGTH - 1:
                self._enter_overload(reactive=True)
                return
            # Dominant at the third intermission bit: interpreted as a
            # start of frame.  A waiting transmitter joins without
            # sending its own SOF bit (it starts with the identifier).
            if self.tx_queue and not self._suspend_pending:
                self._start_transmission(skip_sof=True, observed_sof=seen)
            else:
                self._start_reception(seen)
            return
        self._intermission_pos += 1
        if self._intermission_pos >= INTERMISSION_LENGTH:
            self._self_overloads_sent = 0
            if self._suspend_pending:
                self._suspend_pending = False
                self._suspend_remaining = SUSPEND_LENGTH
                self._state = STATE_SUSPEND
            else:
                self._state = STATE_IDLE
            self.is_transmitter = False

    def _bit_suspend(self, seen: Level) -> None:
        if seen is DOMINANT:
            self._start_reception(seen)
            return
        self._suspend_remaining -= 1
        if self._suspend_remaining <= 0:
            self._state = STATE_IDLE

    # ------------------------------------------------------------------
    # Fast-path handlers (table-driven transmit/receive hot loop)
    #
    # These are drop-in replacements for _drive_receiving /
    # _drive_transmitting / _bit_receiving / _bit_transmitting,
    # installed when ``config.fast_path`` is set.  They publish the
    # same positions, raise the same errors at the same bit times and
    # call the same protocol extension points (_rx_eof_bit /
    # _tx_eof_bit), so MinorCAN and MajorCAN run on them unchanged;
    # the differential suite pins the equivalence.
    # ------------------------------------------------------------------

    def _drive_receiving_fast(self) -> Level:
        parser = self._parser
        self.position = parser.next_position
        if (
            parser.next_field is ACK_SLOT
            and not parser.next_is_stuff
            and parser.header_complete
            and parser.crc_ok
        ):
            return DOMINANT
        return RECESSIVE

    def _drive_transmitting_fast(self) -> Level:
        program = self._program
        position = self._tx_pos
        self.position = program.positions[position]
        return program.levels[position]

    def _bit_receiving_fast(self, seen: Level) -> None:
        parser = self._parser
        code = parser.feed_code(seen)
        if code == STEP_OK:
            return
        if code == STEP_EOF:
            self._rx_eof_bit(parser.last_index, seen)
            return
        if code == STEP_STUFF_VIOLATION:
            self._enter_error(ErrorReason.STUFF)
            return
        if code == STEP_FORM_VIOLATION:
            self._enter_error(ErrorReason.FORM)
            return
        if code == STEP_ACK_DELIM and parser.crc_ok is False:
            self._enter_error(ErrorReason.CRC)

    def _bit_transmitting_fast(self, seen: Level) -> None:
        program = self._program
        position = self._tx_pos
        op = program.ops[position]
        if op == OP_MATCH:  # any mismatch is a bit error
            if seen is program.levels[position]:
                self._tx_pos = position + 1
                if position + 1 >= program.length:  # pragma: no cover - EOF ends frames
                    self._tx_success()
                return
            self._enter_error(ErrorReason.BIT, field=program.positions[position][0])
            return
        if op == OP_EOF:
            if self._tx_eof_bit(program.positions[position][1], seen):
                return
            self._tx_pos = position + 1
            if position + 1 >= program.length:
                self._tx_success()
            return
        if op == OP_ACK:
            if seen is not DOMINANT:
                self._enter_error(ErrorReason.ACK)
                return
            self._tx_pos = position + 1
            return
        # OP_ARB: recessive non-stuff arbitration bit; a dominant view
        # means the arbitration is lost and the node turns receiver.
        if seen is program.levels[position]:
            self._tx_pos = position + 1
            return
        self._materialize_rx_parser(position, seen)
        field, index = program.positions[position]
        self._log(EventKind.ARBITRATION_LOST, field=field, index=index)
        self.is_transmitter = False
        self._wire = None
        self._program = None
        self._state = STATE_RECEIVING

    def _materialize_rx_parser(self, upto: int, seen: Level) -> None:
        """Build the receive parser a fast-path transmitter skipped.

        The reference implementation keeps a parallel receive parser in
        sync on every transmitted bit (:meth:`_feed_parser_quietly`) so
        a node that loses arbitration can continue as a receiver.  On
        the fast path that per-bit work is elided: until the first
        divergence the observed levels equal the precompiled wire
        levels exactly (any earlier mismatch would have ended the
        transmission), so the parser state is reconstructed here, once,
        by replaying the first ``upto`` program bits plus the observed
        bit that lost the arbitration.
        """
        parser = FastFrameParser(eof_length=self.config.eof_length)
        feed = parser.feed_code
        for value in self._program.bit_values[:upto]:
            feed(value)
        feed(seen)
        self._parser = parser
        self._parser_failed = False

    # ------------------------------------------------------------------
    # Fast-path signalling drive handlers (table-driven).
    #
    # The reference drive handlers rebuild their position tuples (and,
    # in _drive_recessive, a seven-entry label dict) on every bit.  The
    # fast variants index the precompiled SignalTable instead; they set
    # the identical positions and return the identical levels, and the
    # bit-phase handlers — which carry all the protocol logic — remain
    # the shared reference methods.
    # ------------------------------------------------------------------

    def _drive_error_flag_fast(self) -> Level:
        self.position = self._signal_table.error_flag[
            FLAG_LENGTH - self._flag_remaining
        ]
        return DOMINANT

    def _drive_overload_flag_fast(self) -> Level:
        self.position = self._signal_table.overload_flag[
            FLAG_LENGTH - self._flag_remaining
        ]
        return DOMINANT

    def _drive_passive_error_flag_fast(self) -> Level:
        self.position = self._signal_table.error_flag[
            FLAG_LENGTH - self._flag_remaining
        ]
        return RECESSIVE

    def _drive_error_wait_fast(self) -> Level:
        self.position = self._signal_table.error_wait
        return RECESSIVE

    def _drive_overload_wait_fast(self) -> Level:
        self.position = self._signal_table.overload_wait
        return RECESSIVE

    def _drive_error_delim_fast(self) -> Level:
        table = self._signal_table.error_delim
        self.position = table[len(table) - self._delim_remaining]
        return RECESSIVE

    def _drive_overload_delim_fast(self) -> Level:
        table = self._signal_table.overload_delim
        self.position = table[len(table) - self._delim_remaining]
        return RECESSIVE

    def _drive_suspend_fast(self) -> Level:
        self.position = self._signal_table.suspend[
            SUSPEND_LENGTH - self._suspend_remaining
        ]
        return RECESSIVE

    def _drive_intermission_fast(self) -> Level:
        self.position = self._signal_table.intermission[self._intermission_pos]
        if (
            self._intermission_pos == 0
            and self._overload_requests > 0
            and self._self_overloads_sent < 2
        ):
            # A slow node may delay the next frame with up to two
            # self-initiated overload frames.
            self._overload_requests -= 1
            self._self_overloads_sent += 1
            self._enter_overload(reactive=False)
            return self._drive_overload_flag_fast()
        return RECESSIVE

    # ------------------------------------------------------------------
    # Frame start/stop helpers
    # ------------------------------------------------------------------

    def _start_transmission(
        self, skip_sof: bool = False, observed_sof: Optional[Level] = None
    ) -> Level:
        job = self.tx_queue[0]
        job.attempts += 1
        self._tx_pos = 1 if skip_sof else 0
        if self.config.fast_path:
            # Compiled program; the parallel receive parser stays
            # unmaterialized until an arbitration loss needs it (see
            # _materialize_rx_parser).
            self._program = wire_program(job.frame, self.config.eof_length)
            self._wire = self._program.wire
            self._parser = None
            self._parser_failed = False
        else:
            self._wire = encode_frame(job.frame, eof_length=self.config.eof_length)
            self._parser = FrameParser(eof_length=self.config.eof_length)
            self._parser_failed = False
            if skip_sof and observed_sof is not None:
                self._parser.feed(observed_sof)
        self.is_transmitter = True
        self._frame_open = True
        self._rx_delivered = False
        self._state = STATE_TRANSMITTING
        self._log(
            EventKind.TX_START,
            frame=str(job.frame),
            attempt=job.attempts,
            message_id=job.frame.message_id,
        )
        wire_bit = self._wire.bits[self._tx_pos]
        self.position = (wire_bit.field, wire_bit.index)
        return wire_bit.level

    def _start_reception(self, sof_level: Level) -> None:
        if self.config.fast_path:
            self._parser = FastFrameParser(eof_length=self.config.eof_length)
            self._parser.feed_code(sof_level)
        else:
            self._parser = FrameParser(eof_length=self.config.eof_length)
            self._parser.feed(sof_level)
        self._parser_failed = False
        self.is_transmitter = False
        self._frame_open = True
        self._rx_delivered = False
        self._state = STATE_RECEIVING
        self._log(EventKind.RX_START)

    def _advance_tx(self) -> None:
        assert self._wire is not None
        self._tx_pos += 1
        if self._tx_pos >= len(self._wire.bits):
            self._tx_success()

    def _tx_success(self) -> None:
        job = self.tx_queue.popleft()
        self.tx_successes.append((self.now, job.frame))
        self.counters.on_transmit_success()
        self._frame_open = False
        self._log(
            EventKind.TX_SUCCESS,
            frame=str(job.frame),
            attempt=job.attempts,
            message_id=job.frame.message_id,
        )
        if self.config.self_delivery:
            self._record_delivery(job.frame, attempt=job.attempts)
        self._wire = None
        self._program = None
        self._enter_intermission()

    def _should_ack(self) -> bool:
        assert self._parser is not None
        return bool(self._parser.header_complete and self._parser.crc_ok)

    def _deliver_received_frame(self) -> None:
        """Deliver the frame currently held by the receive parser."""
        assert self._parser is not None
        frame = self._parser.frame()
        self._rx_delivered = True
        self._frame_open = False
        self.counters.on_receive_success()
        self._record_delivery(frame)

    def _record_delivery(self, frame: Frame, attempt: Optional[int] = None) -> None:
        delivery = Delivery(frame=frame, time=self.now, node=self.name, attempt=attempt)
        self.deliveries.append(delivery)
        self._log(
            EventKind.FRAME_DELIVERED,
            frame=str(frame),
            message_id=frame.message_id,
            attempt=attempt,
        )
        if frame.remote and attempt is None:
            key = (frame.can_id.value, frame.can_id.extended)
            data = self._remote_responses.get(key)
            if data is not None:
                self.submit(Frame(can_id=frame.can_id, data=data))

    def _reject_received_frame(self, reason: str) -> None:
        if self._frame_open and not self.is_transmitter:
            self._frame_open = False
            self._log(EventKind.FRAME_REJECTED, reason=reason)

    def _enter_intermission(self) -> None:
        self._intermission_pos = 0
        if (
            self.is_transmitter
            and self.counters.state is ConfinementState.ERROR_PASSIVE
        ):
            self._suspend_pending = True
        self._state = STATE_INTERMISSION

    def _end_frame_slot(self) -> None:
        """Called when an error/overload delimiter completes."""
        self._enter_intermission()

    # ------------------------------------------------------------------
    # Error and overload signalling
    # ------------------------------------------------------------------

    def _enter_error(
        self,
        reason: str,
        deferred: bool = False,
        **extra: object,
    ) -> None:
        """Start error signalling; the flag begins at the next bit time."""
        self._log(
            EventKind.ERROR_DETECTED,
            reason=reason,
            position="%s[%d]" % self.position,
            deferred=deferred,
            **extra,
        )
        if deferred:
            frame = None
            if not self.is_transmitter and self._parser is not None:
                if self._parser.header_complete:
                    frame = self._parser.frame()
            self._deferred = _DeferredDecision(
                was_transmitter=self.is_transmitter, frame=frame
            )
        else:
            if self.is_transmitter:
                self.counters.on_transmitter_error()
                self._schedule_retransmission()
            else:
                self.counters.on_receiver_error(primary=False)
                self._reject_received_frame(reason)
            self._confinement_check()
            if self._state == STATE_BUS_OFF:
                return
        self._flag_remaining = FLAG_LENGTH
        self._wait_first_bit = True
        self._wait_dominant_run = 0
        if self.counters.state is ConfinementState.ERROR_PASSIVE:
            self._state = STATE_PASSIVE_ERROR_FLAG
        else:
            self._state = STATE_ERROR_FLAG
        self._log(
            EventKind.ERROR_FLAG_START,
            passive=self._state == STATE_PASSIVE_ERROR_FLAG,
        )

    def _schedule_retransmission(self) -> None:
        if not self.tx_queue:
            return
        job = self.tx_queue[0]
        limit = self.config.max_retransmissions
        if limit is not None and job.attempts > limit:
            self.tx_queue.popleft()
            self._log(
                EventKind.TX_ABANDONED,
                frame=str(job.frame),
                attempts=job.attempts,
            )
            return
        self._log(
            EventKind.TX_RETRANSMIT_SCHEDULED,
            frame=str(job.frame),
            attempt=job.attempts,
        )

    def _resolve_deferred(self, accept: bool) -> None:
        """Apply a postponed accept/reject decision (MinorCAN-style)."""
        decision = self._deferred
        assert decision is not None
        self._deferred = None
        if accept:
            self._log(EventKind.DEFERRED_ACCEPT)
            if decision.was_transmitter:
                self._tx_success_during_error_frame()
            elif decision.frame is not None:
                self._rx_delivered = True
                self._frame_open = False
                self.counters.on_receive_success()
                self._record_delivery(decision.frame)
        else:
            self._log(EventKind.DEFERRED_REJECT)
            if decision.was_transmitter:
                self.counters.on_transmitter_error()
                self._schedule_retransmission()
            else:
                self.counters.on_receiver_error(primary=False)
                self._reject_received_frame(ErrorReason.EOF_LAST_BIT)
            self._confinement_check()

    def _tx_success_during_error_frame(self) -> None:
        """Count the queued frame as transmitted while signalling ends."""
        job = self.tx_queue.popleft()
        self.tx_successes.append((self.now, job.frame))
        self.counters.on_transmit_success()
        self._frame_open = False
        self._log(
            EventKind.TX_SUCCESS,
            frame=str(job.frame),
            attempt=job.attempts,
            message_id=job.frame.message_id,
            during_error_frame=True,
        )
        if self.config.self_delivery:
            self._record_delivery(job.frame, attempt=job.attempts)
        self._wire = None
        self._program = None

    def _enter_overload(self, reactive: bool) -> None:
        self._log(EventKind.OVERLOAD_FLAG_START, reactive=reactive)
        self._flag_remaining = FLAG_LENGTH
        self._state = STATE_OVERLOAD_FLAG

    def _after_flag_complete(self) -> None:
        """The 6 flag bits are out; move to the wait-for-recessive phase."""
        if self._state in (STATE_ERROR_FLAG, STATE_PASSIVE_ERROR_FLAG):
            self._state = STATE_ERROR_WAIT
        else:
            self._state = STATE_OVERLOAD_WAIT

    # ------------------------------------------------------------------
    # EOF policies (the extension points where the protocols differ)
    # ------------------------------------------------------------------

    def _rx_eof_bit(self, index: int, seen: Level) -> None:
        """Standard CAN receiver EOF rule.

        The frame becomes valid for a receiver once the last-but-one
        EOF bit has been observed without error; a dominant level at
        the *last* EOF bit is treated as an overload condition and the
        frame is kept (the "last bit rule" of ISO 11898, responsible
        for the double receptions and inconsistent omissions that the
        paper analyses).
        """
        last = self.config.eof_length - 1
        if index < last:
            if seen is DOMINANT:
                self._enter_error(ErrorReason.EOF)
                return
            if index == last - 1:
                self._deliver_received_frame()
            return
        # Last EOF bit.
        if seen is DOMINANT:
            self._enter_overload(reactive=True)
        else:
            self._state = STATE_INTERMISSION
            self._intermission_pos = 0
            self.is_transmitter = False

    def _tx_eof_bit(self, index: int, seen: Level) -> bool:
        """Standard CAN transmitter EOF rule.

        Any dominant bit seen anywhere in the EOF — including the last
        bit — is an error: the transmitter signals and retransmits.
        Returns ``True`` when error handling was started (the caller
        must not advance the transmit position).
        """
        if seen is DOMINANT:
            self._enter_error(ErrorReason.EOF, index=index)
            return True
        return False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _feed_parser_quietly(self, seen: Level) -> None:
        """Keep the parallel receive parser in sync while transmitting.

        The parser lets the transmitter continue as a receiver after
        losing arbitration; once it has desynchronised (which can only
        happen in error situations the transmitter detects itself) it
        is simply abandoned.
        """
        if self._parser is None or self._parser_failed:
            return
        if self._parser.complete:
            return
        try:
            step = self._parser.feed(seen)
        except Exception:
            self._parser_failed = True
            return
        if step.stuff_violation:
            self._parser_failed = True

    def _confinement_check(self) -> None:
        if self.counters.state is ConfinementState.BUS_OFF:
            self._state = STATE_BUS_OFF
            self._log(EventKind.BUS_OFF)
            return
        if self.config.disconnect_on_warning and self.counters.warning:
            self._log(EventKind.WARNING_RAISED, tec=self.counters.tec, rec=self.counters.rec)
            self.disconnect()

    def _log(self, kind: str, **data: object) -> None:
        self.events.append(Event(time=self.now, node=self.name, kind=kind, data=data))

    def __repr__(self) -> str:
        return "<%s %r state=%s tec=%d rec=%d>" % (
            type(self).__name__,
            self.name,
            self._state,
            self.counters.tec,
            self.counters.rec,
        )
