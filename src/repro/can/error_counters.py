"""Fault confinement: transmit/receive error counters.

Every CAN node keeps a transmit error counter (TEC) and a receive error
counter (REC).  Crossing 127 moves the node to the *error-passive*
state, in which its error flags are recessive and therefore invisible
to the other nodes — the first Atomic Broadcast impairment discussed in
Section 2 of the paper.  Crossing 255 on the TEC disconnects the node
(*bus-off*).  Reaching 96 on either counter raises the *error warning*
notification, which the paper (following common practice) uses to
switch a node off **before** it can become error-passive, so that
"every node is either helping to achieve data consistency or
disconnected".

The counting rules implemented here are the primary rules of ISO 11898
(receiver +1 on error, +8 when it detects the primary error;
transmitter +8; −1 on successful transmission/reception).  The rarely
exercised exception clauses are deliberately simplified; see DESIGN.md.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: Counter value at which the error warning notification is raised.
WARNING_LIMIT = 96
#: Counter value at which a node becomes error-passive.
PASSIVE_LIMIT = 128
#: TEC value at which a node goes bus-off.
BUS_OFF_LIMIT = 256


class ConfinementState(enum.Enum):
    """Fault-confinement state of a CAN node."""

    ERROR_ACTIVE = "error-active"
    ERROR_PASSIVE = "error-passive"
    BUS_OFF = "bus-off"


@dataclass
class ErrorCounters:
    """TEC/REC pair with the ISO 11898 primary counting rules."""

    tec: int = 0
    rec: int = 0
    #: Number of times the warning threshold was newly crossed.
    warnings_raised: int = field(default=0)
    _warned: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def on_receiver_error(self, primary: bool = False) -> None:
        """A receiver detected an error (+1, or +8 if it was primary).

        ``primary`` means the node observed a dominant bit right after
        sending its own error flag — it was the first to signal.
        """
        self.rec += 8 if primary else 1
        self._check_warning()

    def on_transmitter_error(self) -> None:
        """The transmitter sent an error flag (+8)."""
        self.tec += 8
        self._check_warning()

    def on_transmit_success(self) -> None:
        """A frame was transmitted successfully (TEC −1, floor 0)."""
        if self.tec > 0:
            self.tec -= 1

    def on_receive_success(self) -> None:
        """A frame was received successfully (REC −1, floor 0)."""
        if self.rec > 0:
            self.rec -= 1

    def on_stuck_dominant_octet(self, transmitter: bool) -> None:
        """Eight consecutive dominant bits followed an error flag.

        ISO 11898 increments the relevant counter by 8 for every such
        octet, confining nodes stuck on a jammed bus.
        """
        if transmitter:
            self.tec += 8
        else:
            self.rec += 8
        self._check_warning()

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def state(self) -> ConfinementState:
        """Current fault-confinement state."""
        if self.tec >= BUS_OFF_LIMIT:
            return ConfinementState.BUS_OFF
        if self.tec >= PASSIVE_LIMIT or self.rec >= PASSIVE_LIMIT:
            return ConfinementState.ERROR_PASSIVE
        return ConfinementState.ERROR_ACTIVE

    @property
    def warning(self) -> bool:
        """Whether either counter is at or above the warning limit."""
        return self.tec >= WARNING_LIMIT or self.rec >= WARNING_LIMIT

    def _check_warning(self) -> None:
        if self.warning and not self._warned:
            self._warned = True
            self.warnings_raised += 1
        elif not self.warning:
            self._warned = False

    def reset(self) -> None:
        """Reset both counters (e.g. after a bus-off recovery)."""
        self.tec = 0
        self.rec = 0
        self._warned = False
