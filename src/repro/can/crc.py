"""The CRC-15 used by CAN (ISO 11898).

The generator polynomial is::

    x^15 + x^14 + x^10 + x^8 + x^7 + x^4 + x^3 + 1   (0xC599 / 0x4599)

This code guarantees detection of up to 5 randomly distributed bit
errors and burst errors shorter than 15 bits within a frame — the very
property the paper uses to justify the choice ``m = 5`` for MajorCAN
("standard CAN uses a CRC code that allows the detection of up to 5
randomly distributed bit errors, therefore it makes sense to guarantee
Atomic Broadcast at the same level").
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.can.bits import bits_from_int

#: The CAN CRC-15 polynomial, sans the leading x^15 term.
CRC15_POLYNOMIAL = 0x4599
#: Width of the CRC field in bits.
CRC_WIDTH = 15
#: Maximum number of randomly distributed bit errors the code detects.
GUARANTEED_RANDOM_ERRORS = 5
#: Maximum burst length (in bits) the code is guaranteed to detect.
GUARANTEED_BURST_LENGTH = 14


def crc15(bits: Iterable[int]) -> int:
    """Compute the CAN CRC-15 over a logical bit sequence (MSB first).

    The computation follows the shift-register description of the CAN
    specification: for every input bit, the register is shifted left and
    conditionally XOR-ed with the generator polynomial.
    """
    register = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError("bits must be 0 or 1, got %r" % (bit,))
        crc_next = bit ^ ((register >> (CRC_WIDTH - 1)) & 1)
        register = (register << 1) & 0x7FFF
        if crc_next:
            register ^= CRC15_POLYNOMIAL
    return register


def crc15_bits(bits: Iterable[int]) -> List[int]:
    """The CRC-15 of ``bits`` as a 15-element bit list, MSB first."""
    return bits_from_int(crc15(bits), CRC_WIDTH)


def crc15_check(bits: Sequence[int], received_crc: int) -> bool:
    """Whether ``received_crc`` matches the CRC-15 of ``bits``."""
    return crc15(bits) == received_crc


class Crc15Register:
    """Incremental CRC-15 register for the on-line frame parser.

    Feeding bits one at a time produces the same value as :func:`crc15`
    over the whole sequence, which lets the receiver compute the CRC
    while the frame is still arriving.
    """

    def __init__(self) -> None:
        self._register = 0

    def feed(self, bit: int) -> None:
        """Shift one logical bit (0/1) into the register."""
        crc_next = bit ^ ((self._register >> (CRC_WIDTH - 1)) & 1)
        self._register = (self._register << 1) & 0x7FFF
        if crc_next:
            self._register ^= CRC15_POLYNOMIAL

    @property
    def value(self) -> int:
        """Current register value."""
        return self._register

    def reset(self) -> None:
        """Return the register to its initial (zero) state."""
        self._register = 0
