"""Bit-accurate standard CAN data-link layer.

Public entry points:

* :class:`~repro.can.frame.Frame` / :class:`~repro.can.identifiers.CanId`
  — the application-visible frame model;
* :class:`~repro.can.controller.CanController` — the MAC state machine
  attached to a simulated bus node;
* :class:`~repro.can.controller_config.ControllerConfig` — per-node
  configuration (EOF/delimiter lengths, dependability options);
* :mod:`~repro.can.crc`, :mod:`~repro.can.stuffing`,
  :mod:`~repro.can.encoding`, :mod:`~repro.can.parser` — the wire
  format building blocks.
"""

from repro.can.bits import DOMINANT, RECESSIVE, Level, wired_and
from repro.can.controller import (
    CanController,
    STATE_BUS_OFF,
    STATE_ERROR_DELIM,
    STATE_ERROR_FLAG,
    STATE_ERROR_WAIT,
    STATE_IDLE,
    STATE_INTERMISSION,
    STATE_OVERLOAD_FLAG,
    STATE_RECEIVING,
    STATE_SUSPEND,
    STATE_TRANSMITTING,
    TxJob,
)
from repro.can.controller_config import ControllerConfig
from repro.can.encoding import WireFrame, encode_frame
from repro.can.error_counters import ConfinementState, ErrorCounters
from repro.can.events import Delivery, ErrorReason, Event, EventKind
from repro.can.frame import Frame, data_frame, remote_frame
from repro.can.identifiers import CanId
from repro.can.parser import FrameParser
from repro.can.timing import BitTiming, classic_1mbps, timing_for_bit_rate

__all__ = [
    "BitTiming",
    "CanController",
    "CanId",
    "ConfinementState",
    "ControllerConfig",
    "Delivery",
    "DOMINANT",
    "ErrorCounters",
    "ErrorReason",
    "Event",
    "EventKind",
    "Frame",
    "FrameParser",
    "Level",
    "RECESSIVE",
    "STATE_BUS_OFF",
    "STATE_ERROR_DELIM",
    "STATE_ERROR_FLAG",
    "STATE_ERROR_WAIT",
    "STATE_IDLE",
    "STATE_INTERMISSION",
    "STATE_OVERLOAD_FLAG",
    "STATE_RECEIVING",
    "STATE_SUSPEND",
    "STATE_TRANSMITTING",
    "TxJob",
    "WireFrame",
    "classic_1mbps",
    "data_frame",
    "encode_frame",
    "remote_frame",
    "timing_for_bit_rate",
    "wired_and",
]
