"""CAN frame model.

A :class:`Frame` is the unit the data-link layer transfers.  Following
the paper's terminology, a *message* is the application-level unit; one
message may require several frame (re)transmissions before the protocol
delivers it.  The application tags frames with a ``message_id`` so that
delivery ledgers can reason about duplicates and omissions without
inspecting payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.can.identifiers import CanId
from repro.errors import FrameError

#: Maximum number of payload bytes of a classical CAN data frame.
MAX_DATA_LENGTH = 8


@dataclass(frozen=True)
class Frame:
    """An application-visible CAN frame.

    Parameters
    ----------
    can_id:
        Arbitration identifier.
    data:
        Payload (0-8 bytes).  Must be empty for remote frames.
    remote:
        ``True`` for a remote transmission request (RTR) frame.
    dlc:
        Data length code.  Defaults to ``len(data)``; remote frames may
        request a specific length with an empty payload.  Values 9-15
        are permitted by the standard and mean 8 data bytes.
    message_id:
        Optional application-level message tag used by the Atomic
        Broadcast property checkers.
    origin:
        Optional name of the broadcasting node (application level).
    """

    can_id: CanId
    data: bytes = b""
    remote: bool = False
    dlc: Optional[int] = None
    message_id: Optional[str] = None
    origin: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.data) > MAX_DATA_LENGTH:
            raise FrameError(
                "CAN payloads carry at most %d bytes, got %d"
                % (MAX_DATA_LENGTH, len(self.data))
            )
        if self.remote and self.data:
            raise FrameError("remote frames carry no data bytes")
        if self.dlc is None:
            object.__setattr__(self, "dlc", len(self.data))
        if not 0 <= self.dlc <= 15:
            raise FrameError("DLC must be in [0, 15], got %d" % self.dlc)
        if not self.remote and self.effective_data_length != len(self.data):
            raise FrameError(
                "DLC %d inconsistent with %d payload bytes"
                % (self.dlc, len(self.data))
            )

    @property
    def effective_data_length(self) -> int:
        """Number of data bytes implied by the DLC (DLC > 8 means 8)."""
        return min(self.dlc, MAX_DATA_LENGTH)

    @property
    def payload_bits(self) -> int:
        """Number of data-field bits on the wire."""
        if self.remote:
            return 0
        return 8 * self.effective_data_length

    def identity(self) -> Tuple[int, bool, bool, bytes, Optional[str]]:
        """A wire-equality key: two frames with equal identity are
        indistinguishable to receivers."""
        return (
            self.can_id.value,
            self.can_id.extended,
            self.remote,
            self.data,
            self.message_id,
        )

    def tagged(self, message_id: str, origin: Optional[str] = None) -> "Frame":
        """Copy of this frame carrying application-level tags."""
        return Frame(
            can_id=self.can_id,
            data=self.data,
            remote=self.remote,
            dlc=self.dlc,
            message_id=message_id,
            origin=origin if origin is not None else self.origin,
        )

    def __str__(self) -> str:
        kind = "remote" if self.remote else "data"
        tag = " msg=%s" % self.message_id if self.message_id else ""
        return "Frame(%s %s dlc=%d data=%s%s)" % (
            self.can_id,
            kind,
            self.dlc,
            self.data.hex() or "-",
            tag,
        )


def data_frame(
    identifier: int,
    data: bytes = b"",
    extended: bool = False,
    message_id: Optional[str] = None,
    origin: Optional[str] = None,
) -> Frame:
    """Convenience constructor for a data frame."""
    return Frame(
        can_id=CanId(identifier, extended=extended),
        data=data,
        message_id=message_id,
        origin=origin,
    )


def remote_frame(
    identifier: int,
    dlc: int = 0,
    extended: bool = False,
) -> Frame:
    """Convenience constructor for a remote (RTR) frame."""
    return Frame(can_id=CanId(identifier, extended=extended), remote=True, dlc=dlc)
