"""CAN bit-timing configuration.

The simulator operates at whole-bit granularity (the paper's scenarios
are whole-bit phenomena), but any deployable CAN/MajorCAN stack must
also configure the *intra*-bit timing: a nominal bit time is divided
into time quanta spread over four segments::

    | SYNC_SEG | PROP_SEG | PHASE_SEG1 | PHASE_SEG2 |
                                       ^ sample point

This module validates timing parameter sets against the ISO 11898
constraints, derives the quantities designers care about (bit rate,
sample-point position, resynchronisation limits) and checks a
configuration against a bus length (the propagation segment must cover
the round-trip delay).  It documents the physical envelope in which
the whole-bit simulation model of this reproduction is valid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Speed of signal propagation on a CAN bus line, metres per second
#: (roughly 2/3 of the speed of light; includes transceiver margins).
PROPAGATION_SPEED_M_PER_S = 2.0e8

#: ISO 11898 limit on the number of time quanta per bit.
MIN_QUANTA_PER_BIT = 8
MAX_QUANTA_PER_BIT = 25


@dataclass(frozen=True)
class BitTiming:
    """One CAN bit-timing parameter set.

    Parameters
    ----------
    f_clock_hz:
        Controller clock frequency.
    brp:
        Baud-rate prescaler: one time quantum is ``brp`` clock periods.
    prop_seg, phase_seg1, phase_seg2:
        Segment lengths in time quanta (SYNC_SEG is always 1).
    sjw:
        Synchronisation jump width in quanta.
    """

    f_clock_hz: float
    brp: int
    prop_seg: int
    phase_seg1: int
    phase_seg2: int
    sjw: int = 1

    def __post_init__(self) -> None:
        if self.f_clock_hz <= 0:
            raise ConfigurationError("clock frequency must be positive")
        if self.brp < 1:
            raise ConfigurationError("prescaler must be at least 1")
        for name in ("prop_seg", "phase_seg1", "phase_seg2"):
            if getattr(self, name) < 1:
                raise ConfigurationError("%s must be at least 1 quantum" % name)
        if not MIN_QUANTA_PER_BIT <= self.quanta_per_bit <= MAX_QUANTA_PER_BIT:
            raise ConfigurationError(
                "bit time must span %d..%d quanta, got %d"
                % (MIN_QUANTA_PER_BIT, MAX_QUANTA_PER_BIT, self.quanta_per_bit)
            )
        if self.sjw < 1 or self.sjw > min(4, self.phase_seg1, self.phase_seg2):
            raise ConfigurationError(
                "SJW must be in [1, min(4, phase_seg1, phase_seg2)]"
            )
        if self.phase_seg2 < 2:
            # Information processing time: >= 2 quanta after the sample
            # point are required by typical controller implementations.
            raise ConfigurationError("phase_seg2 must be at least 2 quanta")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def quanta_per_bit(self) -> int:
        """Total quanta per bit, including the 1-quantum SYNC_SEG."""
        return 1 + self.prop_seg + self.phase_seg1 + self.phase_seg2

    @property
    def time_quantum_s(self) -> float:
        """Duration of one time quantum in seconds."""
        return self.brp / self.f_clock_hz

    @property
    def bit_time_s(self) -> float:
        """Nominal bit time in seconds."""
        return self.quanta_per_bit * self.time_quantum_s

    @property
    def bit_rate_bps(self) -> float:
        """Nominal bit rate in bits per second."""
        return 1.0 / self.bit_time_s

    @property
    def sample_point(self) -> float:
        """Sample-point position as a fraction of the bit time.

        Conventional designs target 75-87.5 %.
        """
        return (1 + self.prop_seg + self.phase_seg1) / self.quanta_per_bit

    def max_bus_length_m(self, node_delay_s: float = 200e-9) -> float:
        """Bus length whose round-trip delay the PROP_SEG still covers.

        Arbitration and in-slot acknowledgement require every node to
        see every other node's bit within the propagation segment:
        ``prop_seg * tq >= 2 * (line_delay + node_delay)``.
        """
        budget = self.prop_seg * self.time_quantum_s / 2.0 - node_delay_s
        if budget <= 0:
            return 0.0
        return budget * PROPAGATION_SPEED_M_PER_S


def classic_1mbps(f_clock_hz: float = 16e6) -> BitTiming:
    """The paper's 1 Mbps operating point on a 16 MHz controller clock.

    16 quanta per bit, sample point at 81.25 % — a conventional
    high-speed configuration.
    """
    return BitTiming(
        f_clock_hz=f_clock_hz,
        brp=1,
        prop_seg=7,
        phase_seg1=5,
        phase_seg2=3,
        sjw=1,
    )


def timing_for_bit_rate(
    bit_rate_bps: float,
    f_clock_hz: float = 16e6,
    sample_point_target: float = 0.8,
) -> BitTiming:
    """Find a valid parameter set for a requested bit rate.

    Scans prescaler values and splits the remaining quanta to approach
    the target sample point.  Raises if no exact integer solution
    exists (standard CAN practice: pick a clock that divides evenly).
    """
    if bit_rate_bps <= 0:
        raise ConfigurationError("bit rate must be positive")
    for brp in range(1, 65):
        quanta = f_clock_hz / (brp * bit_rate_bps)
        if abs(quanta - round(quanta)) > 1e-9:
            continue
        quanta = int(round(quanta))
        if not MIN_QUANTA_PER_BIT <= quanta <= MAX_QUANTA_PER_BIT:
            continue
        before_sample = max(2, min(quanta - 2, round(sample_point_target * quanta) - 1))
        phase_seg2 = quanta - 1 - before_sample
        if phase_seg2 < 2:
            continue
        phase_seg1 = max(1, before_sample // 2)
        prop_seg = before_sample - phase_seg1
        if prop_seg < 1:
            continue
        return BitTiming(
            f_clock_hz=f_clock_hz,
            brp=brp,
            prop_seg=prop_seg,
            phase_seg1=phase_seg1,
            phase_seg2=phase_seg2,
            sjw=min(4, phase_seg1, phase_seg2),
        )
    raise ConfigurationError(
        "no valid bit timing for %.0f bps at %.0f Hz" % (bit_rate_bps, f_clock_hz)
    )
