"""Bit stuffing and destuffing.

CAN frames are NRZ-coded; to guarantee enough signal edges for
resynchronisation, the transmitter inserts a complementary *stuff bit*
after every run of five identical bits between the start of frame and
the end of the CRC sequence.  Receivers remove the stuff bits; a sixth
identical consecutive bit in the stuffed region is a *stuff error* —
which is exactly the mechanism by which the six-dominant-bit error flag
is guaranteed to be noticed by every node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import StuffingError

#: Run length after which a complementary stuff bit must be inserted.
STUFF_WIDTH = 5


def stuff(bits: Sequence[int]) -> List[int]:
    """Insert stuff bits into a logical bit sequence.

    After any run of :data:`STUFF_WIDTH` identical bits (runs may include
    previously inserted stuff bits), the complementary bit is inserted.

    >>> stuff([0, 0, 0, 0, 0])
    [0, 0, 0, 0, 0, 1]
    """
    out: List[int] = []
    run_value: Optional[int] = None
    run_length = 0
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError("bits must be 0 or 1, got %r" % (bit,))
        out.append(bit)
        if bit == run_value:
            run_length += 1
        else:
            run_value = bit
            run_length = 1
        if run_length == STUFF_WIDTH:
            stuff_bit = 1 - bit
            out.append(stuff_bit)
            run_value = stuff_bit
            run_length = 1
    return out


def destuff(bits: Sequence[int]) -> List[int]:
    """Remove stuff bits from a stuffed sequence.

    Raises
    ------
    StuffingError
        If a run of six identical bits is found (a stuff violation), or
        if the sequence ends where a stuff bit was expected.
    """
    out: List[int] = []
    destuffer = Destuffer()
    for index, bit in enumerate(bits):
        result = destuffer.feed(bit)
        if result is StuffResult.VIOLATION:
            raise StuffingError("stuff violation at stuffed index %d" % index)
        if result is StuffResult.DATA:
            out.append(bit)
    return out


def stuffed_length(bits: Sequence[int]) -> int:
    """Length of ``bits`` after stuffing, without building the list."""
    return len(stuff(list(bits)))


def worst_case_stuffed_length(unstuffed: int) -> int:
    """Upper bound on the stuffed length of ``unstuffed`` bits.

    The worst case inserts one stuff bit per four payload bits after the
    first run of five: ``unstuffed + floor((unstuffed - 1) / 4)``.
    """
    if unstuffed <= 0:
        return 0
    return unstuffed + (unstuffed - 1) // 4


class StuffResult:
    """Classification of one stuffed bit fed to :class:`Destuffer`."""

    DATA = "data"
    STUFF = "stuff"
    VIOLATION = "violation"


@dataclass
class Destuffer:
    """Incremental destuffer used by the on-line frame parser.

    ``feed`` classifies each incoming bit as payload data, an expected
    stuff bit, or a stuff violation (six identical consecutive bits).
    After a violation, the instance must be reset before reuse.
    """

    _run_value: Optional[int] = None
    _run_length: int = 0
    _expect_stuff: bool = False
    _violated: bool = False

    def feed(self, bit: int) -> str:
        """Classify one bit; returns a :class:`StuffResult` constant."""
        if self._violated:
            raise StuffingError("destuffer used after a stuff violation")
        if bit not in (0, 1):
            raise ValueError("bits must be 0 or 1, got %r" % (bit,))
        if self._expect_stuff:
            self._expect_stuff = False
            if bit == self._run_value:
                self._violated = True
                return StuffResult.VIOLATION
            self._run_value = bit
            self._run_length = 1
            return StuffResult.STUFF
        if bit == self._run_value:
            self._run_length += 1
        else:
            self._run_value = bit
            self._run_length = 1
        if self._run_length == STUFF_WIDTH:
            self._expect_stuff = True
        return StuffResult.DATA

    @property
    def next_is_stuff(self) -> bool:
        """Whether the next fed bit will be interpreted as a stuff bit."""
        return self._expect_stuff

    def reset(self) -> None:
        """Restore the initial state (start of a new frame)."""
        self._run_value = None
        self._run_length = 0
        self._expect_stuff = False
        self._violated = False
