"""The append-only, content-addressed sweep result store.

Layout of a store directory::

    <root>/results.jsonl   append-only log of newly evaluated cells
    <root>/store.jsonl     compacted store: one record per key, sorted
    <root>/index.json      record count + SHA-256 digest of store.jsonl

Every line is emitted with :func:`repro.metrics.export.json_line`
(sorted keys, minimal separators), records compact *sorted by key*, and
duplicate keys collapse to one record — so the compacted store is a
pure function of the set of evaluated cells.  Interrupted runs leave a
valid log (records are flushed line by line); resuming appends only the
missing keys; and a ``--jobs N`` run compacts to the exact bytes of a
``--jobs 1`` run, which CI enforces with ``tools/sweep_resume_check.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Set

from repro.errors import ReproError
from repro.metrics.export import json_line, read_jsonl

LOG_NAME = "results.jsonl"
COMPACT_NAME = "store.jsonl"
INDEX_NAME = "index.json"


@dataclass(frozen=True)
class StoreStatus:
    """Summary of a store directory's contents."""

    records: int  # distinct keys across log + compacted store
    log_records: int  # raw (pre-dedup) lines still in the log
    compacted_records: int  # records in store.jsonl
    digest: str  # SHA-256 of store.jsonl ("" when absent)

    def summary(self) -> str:
        return (
            "%d cells stored (%d compacted, %d pending in log) digest=%s"
            % (
                self.records,
                self.compacted_records,
                self.log_records,
                self.digest[:12] if self.digest else "-",
            )
        )


class ResultStore:
    """Append-only JSONL result store with deterministic compaction."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @property
    def log_path(self) -> str:
        return os.path.join(self.root, LOG_NAME)

    @property
    def compacted_path(self) -> str:
        return os.path.join(self.root, COMPACT_NAME)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_NAME)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _read(self, path: str) -> List[Dict[str, Any]]:
        if not os.path.exists(path):
            return []
        return read_jsonl(path)

    def records(self) -> Dict[str, Dict[str, Any]]:
        """All stored records by key (compacted store first, then log).

        Evaluation is deterministic per key, so a key seen twice maps
        to equal payloads; the first occurrence wins.
        """
        merged: Dict[str, Dict[str, Any]] = {}
        for record in self._read(self.compacted_path) + self._read(self.log_path):
            key = record.get("key")
            if not isinstance(key, str) or not key:
                raise ReproError(
                    "store record without a key in %s" % self.root
                )
            merged.setdefault(key, record)
        return merged

    def keys(self) -> Set[str]:
        """The set of cell keys the store already holds."""
        return set(self.records())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def append(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append records to the log, flushing line by line.

        The flush-per-record discipline is what makes interruption
        safe: a killed run leaves every completed cell on disk as a
        complete JSON line (a torn final line would fail ``read_jsonl``
        loudly rather than corrupt silently).
        """
        count = 0
        with open(self.log_path, "a") as handle:
            for record in records:
                if not record.get("key"):
                    raise ReproError("refusing to append a record without a key")
                handle.write(json_line(record) + "\n")
                handle.flush()
                count += 1
        return count

    def compact(self) -> StoreStatus:
        """Fold the log into the sorted, deduplicated compacted store.

        Writes ``store.jsonl`` atomically (temp file + rename), then
        the index, then truncates the log — in that order, so a crash
        between steps never loses records (the log is only dropped once
        its content is safely in the compacted file).  The output bytes
        depend only on the set of stored keys.
        """
        merged = self.records()
        lines = [json_line(merged[key]) for key in sorted(merged)]
        body = "".join(line + "\n" for line in lines)
        tmp_path = self.compacted_path + ".tmp"
        with open(tmp_path, "w") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.compacted_path)
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        index = {"records": len(merged), "digest": digest}
        index_tmp = self.index_path + ".tmp"
        with open(index_tmp, "w") as handle:
            handle.write(json.dumps(index, sort_keys=True, indent=2) + "\n")
        os.replace(index_tmp, self.index_path)
        if os.path.exists(self.log_path):
            os.remove(self.log_path)
        return StoreStatus(
            records=len(merged),
            log_records=0,
            compacted_records=len(merged),
            digest=digest,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def compacted_bytes(self) -> bytes:
        """Raw bytes of the compacted store (b"" when never compacted)."""
        if not os.path.exists(self.compacted_path):
            return b""
        with open(self.compacted_path, "rb") as handle:
            return handle.read()

    def status(self) -> StoreStatus:
        log = self._read(self.log_path)
        compacted = self._read(self.compacted_path)
        body = self.compacted_bytes()
        return StoreStatus(
            records=len(self.records()),
            log_records=len(log),
            compacted_records=len(compacted),
            digest=hashlib.sha256(body).hexdigest() if body else "",
        )
