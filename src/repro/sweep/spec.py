"""Validated design-space sweep specifications.

A :class:`SweepSpec` names a grid of experiment *cells* over the seven
axes the paper's evaluation samples a handful of points from —
protocol, tolerance ``m``, bit-error rate, bit rate, bus length,
payload size and node count — plus the spec-level constants shared by
every cell (tail window, flip bound, bus load).  The grid is either the
full cartesian product of the axes or an explicit cell list; either
way :func:`expand_cells` produces the cells in one deterministic order,
which is what makes resumable runs and the content-addressed store of
:mod:`repro.sweep.store` line up across processes and worker counts.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Protocols a cell may name (the simulator's registry keys).
PROTOCOLS = ("can", "minorcan", "majorcan")

#: Largest classic-CAN payload, bytes.
MAX_PAYLOAD_BYTES = 8


@dataclass(frozen=True)
class SweepCell:
    """One concrete experiment cell of a design-space sweep."""

    protocol: str
    m: int
    ber: float
    bit_rate: float
    bus_length_m: float
    payload: int  # payload bytes (0..8)
    n_nodes: int

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                "unknown protocol %r (use one of %s)"
                % (self.protocol, ", ".join(PROTOCOLS))
            )
        if self.m < 2:
            raise ConfigurationError("m must be at least 2, got %d" % self.m)
        if not 0.0 < self.ber < 1.0:
            raise ConfigurationError(
                "ber must be a probability in (0, 1), got %r" % self.ber
            )
        if self.bit_rate <= 0:
            raise ConfigurationError("bit rate must be positive")
        if self.bus_length_m < 0:
            raise ConfigurationError("bus length must be non-negative")
        if not 0 <= self.payload <= MAX_PAYLOAD_BYTES:
            raise ConfigurationError(
                "payload must be 0..%d bytes, got %d"
                % (MAX_PAYLOAD_BYTES, self.payload)
            )
        if self.n_nodes < 2:
            raise ConfigurationError(
                "a broadcast network needs >= 2 nodes, got %d" % self.n_nodes
            )

    @property
    def payload_bytes(self) -> bytes:
        """The deterministic payload pattern this cell simulates."""
        return b"\x55" * self.payload

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


#: Workload families a traffic-surface cell may name
#: (:class:`repro.traffic.spec.TrafficSpec` sources).
TRAFFIC_SOURCES = ("periodic", "poisson")


@dataclass(frozen=True)
class TrafficCell:
    """One measured-under-load cell of a traffic-surface sweep.

    Where a :class:`SweepCell` samples the analytic single-frame fault
    universe, a traffic cell runs a whole steady-state
    :class:`repro.traffic.spec.TrafficSpec` — protocol, tolerance,
    node count, target bus load and workload family — and surfaces the
    *measured* ledger statistics (deliveries, bus load, backlog,
    arbitration losses) instead of closed-form probabilities.
    """

    protocol: str
    m: int
    n_nodes: int
    load: float
    source: str
    #: Uniform per-node per-bit view-noise probability (0 = clean).
    noise_ber: float = 0.0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigurationError(
                "unknown protocol %r (use one of %s)"
                % (self.protocol, ", ".join(PROTOCOLS))
            )
        if self.m < 2:
            raise ConfigurationError("m must be at least 2, got %d" % self.m)
        if self.n_nodes < 2:
            raise ConfigurationError(
                "a broadcast network needs >= 2 nodes, got %d" % self.n_nodes
            )
        if not 0.0 < self.load <= 4.0:
            raise ConfigurationError(
                "traffic load must be in (0, 4], got %r" % self.load
            )
        if self.source not in TRAFFIC_SOURCES:
            raise ConfigurationError(
                "unknown traffic source %r (use one of %s)"
                % (self.source, ", ".join(TRAFFIC_SOURCES))
            )
        if not 0.0 <= self.noise_ber < 1.0:
            raise ConfigurationError(
                "noise_ber must be in [0, 1), got %r" % (self.noise_ber,)
            )

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


def _axis(name: str, values: Sequence, kind, allow_empty: bool = False) -> tuple:
    """Validate one axis: typed, non-empty, duplicate-free, ordered."""
    values = tuple(values)
    if not values and not allow_empty:
        raise ConfigurationError("axis %r must not be empty" % name)
    for value in values:
        if not isinstance(value, kind) or isinstance(value, bool):
            raise ConfigurationError(
                "axis %r values must be %s, got %r"
                % (name, getattr(kind, "__name__", kind), value)
            )
    if len(set(values)) != len(values):
        raise ConfigurationError(
            "axis %r contains duplicate values: %r" % (name, values)
        )
    return values


@dataclass(frozen=True)
class SweepSpec:
    """A validated design-space sweep over the seven cell axes.

    ``cells`` non-empty selects the *explicit* mode: exactly those
    cells, in order, and the axis fields are ignored.  Otherwise the
    grid is the cartesian product of the axes, expanded in declaration
    order (protocol outermost, node count innermost).

    ``window``, ``max_flips`` and ``load`` are spec-level constants:
    they shape every cell's fault universe and traffic profile and are
    therefore part of each cell's content-addressed identity (see
    :func:`repro.sweep.cell.cell_key`).

    ``surface`` selects what the cells measure.  The default
    ``"analytic"`` grid is the seven-axis single-frame fault sweep
    above.  ``surface="traffic"`` instead crosses protocol x m x node
    count with the ``loads`` and ``sources`` axes and evaluates each
    cell as a steady-state ``repro.traffic`` run (on the frame-granular
    batch backend) of ``traffic_windows`` windows of
    ``traffic_window_bits`` bits seeded from ``traffic_seed`` — the
    measured-under-load surfaces of ROADMAP direction 2.  Explicit
    ``cells`` lists remain analytic-only.
    """

    name: str = "sweep"
    protocols: Tuple[str, ...] = ("can", "minorcan", "majorcan")
    m_values: Tuple[int, ...] = (5,)
    bers: Tuple[float, ...] = (1e-6, 1e-5, 1e-4)
    bit_rates: Tuple[float, ...] = (1_000_000.0,)
    bus_lengths_m: Tuple[float, ...] = (40.0,)
    payloads: Tuple[int, ...] = (1,)
    node_counts: Tuple[int, ...] = (3,)
    cells: Tuple[SweepCell, ...] = ()
    window: int = 2
    max_flips: int = 2
    load: float = 0.9
    surface: str = "analytic"
    loads: Tuple[float, ...] = (0.9,)
    sources: Tuple[str, ...] = ("periodic",)
    #: View-noise axis of the traffic surface (``(0.0,)`` = clean only).
    noise_bers: Tuple[float, ...] = (0.0,)
    traffic_windows: int = 2
    traffic_window_bits: int = 1200
    traffic_seed: int = 1

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError("the sweep needs a non-empty name")
        explicit = bool(self.cells)
        object.__setattr__(self, "cells", tuple(self.cells))
        for cell in self.cells:
            if not isinstance(cell, SweepCell):
                raise ConfigurationError(
                    "explicit cells must be SweepCell instances, got %r"
                    % (cell,)
                )
        object.__setattr__(
            self,
            "protocols",
            _axis("protocols", self.protocols, str, allow_empty=explicit),
        )
        for cell_protocol in self.protocols:
            if cell_protocol not in PROTOCOLS:
                raise ConfigurationError(
                    "unknown protocol %r (use one of %s)"
                    % (cell_protocol, ", ".join(PROTOCOLS))
                )
        object.__setattr__(
            self, "m_values", _axis("m_values", self.m_values, int, explicit)
        )
        object.__setattr__(
            self, "bers", _axis("bers", self.bers, (int, float), explicit)
        )
        object.__setattr__(
            self,
            "bit_rates",
            _axis("bit_rates", self.bit_rates, (int, float), explicit),
        )
        object.__setattr__(
            self,
            "bus_lengths_m",
            _axis("bus_lengths_m", self.bus_lengths_m, (int, float), explicit),
        )
        object.__setattr__(
            self, "payloads", _axis("payloads", self.payloads, int, explicit)
        )
        object.__setattr__(
            self,
            "node_counts",
            _axis("node_counts", self.node_counts, int, explicit),
        )
        if self.window < 1:
            raise ConfigurationError("window must be at least 1 bit")
        if self.max_flips < 1:
            raise ConfigurationError("max_flips must be at least 1")
        if not 0.0 < self.load <= 1.0:
            raise ConfigurationError("load must be in (0, 1]")
        if self.surface not in ("analytic", "traffic"):
            raise ConfigurationError(
                "surface must be 'analytic' or 'traffic', got %r"
                % (self.surface,)
            )
        object.__setattr__(
            self, "loads", _axis("loads", self.loads, (int, float), True)
        )
        object.__setattr__(
            self, "sources", _axis("sources", self.sources, str, True)
        )
        object.__setattr__(
            self,
            "noise_bers",
            _axis("noise_bers", self.noise_bers, (int, float), True),
        )
        if self.surface == "traffic":
            if explicit:
                raise ConfigurationError(
                    "explicit cell lists are analytic-only; a traffic "
                    "surface expands from its axes"
                )
            if not self.loads or not self.sources or not self.noise_bers:
                raise ConfigurationError(
                    "a traffic surface needs non-empty loads, sources "
                    "and noise_bers"
                )
            for noise_ber in self.noise_bers:
                if not 0.0 <= noise_ber < 1.0:
                    raise ConfigurationError(
                        "noise_ber must be in [0, 1), got %r" % (noise_ber,)
                    )
            for cell_load in self.loads:
                if not 0.0 < cell_load <= 4.0:
                    raise ConfigurationError(
                        "traffic load must be in (0, 4], got %r" % cell_load
                    )
            for cell_source in self.sources:
                if cell_source not in TRAFFIC_SOURCES:
                    raise ConfigurationError(
                        "unknown traffic source %r (use one of %s)"
                        % (cell_source, ", ".join(TRAFFIC_SOURCES))
                    )
            if self.traffic_windows < 1:
                raise ConfigurationError("traffic_windows must be >= 1")
            if self.traffic_window_bits < 64:
                raise ConfigurationError(
                    "traffic_window_bits must be >= 64"
                )
        if not explicit:
            # Validate the axis domains up front instead of mid-grid —
            # expanding a million-cell product just to find a bad value
            # on one axis would be wasteful.
            for m in self.m_values:
                if m < 2:
                    raise ConfigurationError("m must be at least 2, got %d" % m)
            for ber in self.bers:
                if not 0.0 < ber < 1.0:
                    raise ConfigurationError(
                        "ber must be a probability in (0, 1), got %r" % ber
                    )
            for bit_rate in self.bit_rates:
                if bit_rate <= 0:
                    raise ConfigurationError("bit rate must be positive")
            for bus_length in self.bus_lengths_m:
                if bus_length < 0:
                    raise ConfigurationError("bus length must be non-negative")
            for payload in self.payloads:
                if not 0 <= payload <= MAX_PAYLOAD_BYTES:
                    raise ConfigurationError(
                        "payload must be 0..%d bytes, got %d"
                        % (MAX_PAYLOAD_BYTES, payload)
                    )
            for n_nodes in self.node_counts:
                if n_nodes < 2:
                    raise ConfigurationError(
                        "a broadcast network needs >= 2 nodes, got %d" % n_nodes
                    )

    # ------------------------------------------------------------------
    # Serialisation (the CLI's spec-file format)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["cells"] = [cell.as_dict() for cell in self.cells]
        return payload

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepSpec":
        if not isinstance(data, dict):
            raise ConfigurationError("a sweep spec must be a JSON object")
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                "unknown sweep spec fields: %s" % ", ".join(unknown)
            )
        kwargs = dict(data)
        if "cells" in kwargs:
            cells = kwargs["cells"]
            if not isinstance(cells, (list, tuple)):
                raise ConfigurationError("cells must be a list of objects")
            kwargs["cells"] = tuple(
                cell if isinstance(cell, SweepCell) else SweepCell(**cell)
                for cell in cells
            )
        for name in (
            "protocols",
            "m_values",
            "bers",
            "bit_rates",
            "bus_lengths_m",
            "payloads",
            "node_counts",
            "loads",
            "sources",
            "noise_bers",
        ):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ConfigurationError("invalid sweep spec: %s" % exc)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError("sweep spec is not valid JSON: %s" % exc)
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def cell_count(self) -> int:
        """Number of cells the spec expands to (product or explicit)."""
        if self.surface == "traffic":
            return (
                len(self.protocols)
                * len(self.m_values)
                * len(self.node_counts)
                * len(self.loads)
                * len(self.sources)
                * len(self.noise_bers)
            )
        if self.cells:
            return len(self.cells)
        return (
            len(self.protocols)
            * len(self.m_values)
            * len(self.bers)
            * len(self.bit_rates)
            * len(self.bus_lengths_m)
            * len(self.payloads)
            * len(self.node_counts)
        )


def expand_cells(spec: SweepSpec) -> List[SweepCell]:
    """Expand ``spec`` into its cells, in the canonical deterministic order.

    Explicit cell lists are returned as given; product grids iterate
    protocol outermost and node count innermost.  The order never
    affects the persisted store (records compact sorted by key) but
    keeps planning, budget truncation and progress reporting stable.
    """
    if spec.cells:
        return list(spec.cells)
    return [
        SweepCell(
            protocol=protocol,
            m=m,
            ber=ber,
            bit_rate=float(bit_rate),
            bus_length_m=float(bus_length),
            payload=payload,
            n_nodes=n_nodes,
        )
        for protocol in spec.protocols
        for m in spec.m_values
        for ber in spec.bers
        for bit_rate in spec.bit_rates
        for bus_length in spec.bus_lengths_m
        for payload in spec.payloads
        for n_nodes in spec.node_counts
    ]


def expand_traffic_cells(spec: SweepSpec) -> List[TrafficCell]:
    """Expand a traffic-surface spec into its cells, in canonical order.

    Protocol outermost, then m, node count, load, source, noise BER —
    the same declaration-order convention as :func:`expand_cells`.
    """
    if spec.surface != "traffic":
        raise ConfigurationError(
            "expand_traffic_cells needs surface='traffic', got %r"
            % (spec.surface,)
        )
    return [
        TrafficCell(
            protocol=protocol,
            m=m,
            n_nodes=n_nodes,
            load=float(load),
            source=source,
            noise_ber=float(noise_ber),
        )
        for protocol in spec.protocols
        for m in spec.m_values
        for n_nodes in spec.node_counts
        for load in spec.loads
        for source in spec.sources
        for noise_ber in spec.noise_bers
    ]
