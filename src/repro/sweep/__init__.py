"""Resumable design-space sweeps with a content-addressed result store.

The paper's evaluation samples a handful of (protocol, m, BER) points;
this package turns that sample into a *service*: a validated
:class:`SweepSpec` names a grid over seven axes (protocol, tolerance
``m``, bit-error rate, bit rate, bus length, payload, node count), each
cell gets a content-addressed key (SHA-256 of its parameters plus the
code-relevant constants — backend, fault universe, chunk partition),
and results land in an append-only JSONL store whose compacted form is
byte-identical for any worker count or interrupt/resume history.
Re-running a completed sweep evaluates nothing; resuming an interrupted
one evaluates exactly the missing cells.

* :mod:`repro.sweep.spec` — the validated spec and its expansion;
* :mod:`repro.sweep.cell` — cell identity and per-cell evaluation;
* :mod:`repro.sweep.store` — the append-only, compacting result store;
* :mod:`repro.sweep.run` — the resumable driver over
  :mod:`repro.parallel`, with warmed universes broadcast to workers
  once per fork.

CLI: ``repro sweep plan|run|status|export``; integrity gate:
``tools/sweep_resume_check.py``.
"""

from repro.sweep.cell import (
    cell_constants,
    cell_key,
    cell_record,
    evaluate_cell,
    evaluate_traffic_cell,
    traffic_cell_constants,
    traffic_cell_record,
    traffic_cell_spec,
)
from repro.sweep.run import SweepRunReport, pending_cells, run_sweep, surface_rows
from repro.sweep.spec import (
    PROTOCOLS,
    SweepCell,
    SweepSpec,
    TrafficCell,
    expand_cells,
    expand_traffic_cells,
)
from repro.sweep.store import ResultStore, StoreStatus

__all__ = [
    "PROTOCOLS",
    "ResultStore",
    "StoreStatus",
    "SweepCell",
    "SweepRunReport",
    "SweepSpec",
    "TrafficCell",
    "cell_constants",
    "cell_key",
    "cell_record",
    "evaluate_cell",
    "evaluate_traffic_cell",
    "expand_cells",
    "expand_traffic_cells",
    "pending_cells",
    "run_sweep",
    "surface_rows",
    "traffic_cell_constants",
    "traffic_cell_record",
    "traffic_cell_spec",
]
