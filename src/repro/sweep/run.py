"""The resumable sweep driver: plan, skip, chunk, fan out, persist.

``run_sweep`` is the heart of the service.  Its pipeline:

1. expand the spec into cells (deterministic order),
2. derive each cell's content-addressed key,
3. skip every key the store already holds (the *incremental* half of
   the contract: re-running a completed sweep evaluates nothing),
4. optionally truncate the pending list to a cell budget (how the CI
   integrity check models a run killed mid-grid),
5. group the survivors into chunks sized by each cell's adaptive
   ``chunk_cells`` constant,
6. broadcast the distinct frame universes to pool workers once per
   fork (:func:`repro.parallel.set_worker_context` →
   :func:`repro.analysis.batchreplay.warm_universe`),
7. stream chunk results through :func:`repro.parallel.imap_tasks`,
   appending each chunk to the store the moment it completes — an
   interrupted run keeps everything finished so far,
8. compact the store (sorted by key, deduplicated) so the persisted
   bytes are a pure function of the evaluated cell set — identical for
   any ``jobs``, any backend-induced chunking, any interrupt/resume
   history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.parallel import imap_tasks, set_worker_context
from repro.parallel.tasks import SweepCellChunk, TrafficCellChunk
from repro.sweep.cell import (
    cell_constants,
    cell_key,
    stats_of,
    traffic_cell_constants,
    traffic_cell_spec,
)
from repro.sweep.spec import (
    SweepCell,
    SweepSpec,
    expand_cells,
    expand_traffic_cells,
)
from repro.sweep.store import ResultStore


@dataclass
class SweepRunReport:
    """What one ``run_sweep`` call planned, skipped and evaluated."""

    name: str
    backend: str
    jobs: int
    total_cells: int  # cells the spec expands to
    skipped: int  # keys already in the store (plus in-spec duplicates)
    evaluated: int  # cells actually evaluated this run
    deferred: int  # pending cells cut off by the cell budget
    stored: int  # distinct records in the store after compaction
    digest: str  # compacted-store digest after this run
    #: Merged batch-backend provenance counters of this run's cells.
    backend_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when no pending cell was left behind by the budget."""
        return self.deferred == 0

    def summary(self) -> str:
        return (
            "sweep %r [%s, jobs=%d]: %d cells, %d evaluated, "
            "%d skipped, %d deferred, %d stored"
            % (
                self.name,
                self.backend,
                self.jobs,
                self.total_cells,
                self.evaluated,
                self.skipped,
                self.deferred,
                self.stored,
            )
        )


def _keyed_cells(
    spec: SweepSpec, backend: str
) -> List[Tuple[Any, Dict[str, Any], str]]:
    """Expand the spec and attach each cell's constants and key."""
    keyed = []
    if spec.surface == "traffic":
        for cell in expand_traffic_cells(spec):
            constants = traffic_cell_constants(
                cell,
                windows=spec.traffic_windows,
                window_bits=spec.traffic_window_bits,
                seed=spec.traffic_seed,
                backend=backend,
            )
            keyed.append((cell, constants, cell_key(cell, constants)))
        return keyed
    for cell in expand_cells(spec):
        constants = cell_constants(
            cell,
            window=spec.window,
            max_flips=spec.max_flips,
            load=spec.load,
            backend=backend,
        )
        keyed.append((cell, constants, cell_key(cell, constants)))
    return keyed


def pending_cells(
    spec: SweepSpec, store: ResultStore, backend: str = "batch"
) -> Tuple[List[Tuple[SweepCell, Dict[str, Any], str]], int]:
    """The cells still missing from the store, plus the skipped count.

    Preserves the canonical expansion order and drops in-spec
    duplicates (explicit cell lists may repeat a point) along with the
    keys the store already holds.
    """
    existing = store.keys()
    seen = set(existing)
    pending = []
    skipped = 0
    for cell, constants, key in _keyed_cells(spec, backend):
        if key in seen:
            skipped += 1
            continue
        seen.add(key)
        pending.append((cell, constants, key))
    return pending, skipped


def _chunk_tasks(
    pending: List[Tuple[Any, Dict[str, Any], str]],
    spec: SweepSpec,
    backend: str,
) -> List[Any]:
    """Chunk pending cells into tasks, honouring each cell's partition.

    Walks the pending list in order and closes a chunk when it reaches
    its leading cell's ``chunk_cells`` size or the next cell resolves a
    different partition — a pure function of the pending list, so the
    chunking (and the submission order) is identical for any ``jobs``.
    """
    if spec.surface == "traffic":

        def values(cell):
            return (
                cell.protocol,
                cell.m,
                cell.n_nodes,
                cell.load,
                cell.source,
                cell.noise_ber,
            )

        def make(cells):
            return TrafficCellChunk(
                cells=cells,
                windows=spec.traffic_windows,
                window_bits=spec.traffic_window_bits,
                seed=spec.traffic_seed,
                backend=backend,
            )

    else:

        def values(cell):
            return (
                cell.protocol,
                cell.m,
                cell.ber,
                cell.bit_rate,
                cell.bus_length_m,
                cell.payload,
                cell.n_nodes,
            )

        def make(cells):
            return SweepCellChunk(
                cells=cells,
                window=spec.window,
                max_flips=spec.max_flips,
                load=spec.load,
                backend=backend,
            )

    tasks: List[Any] = []
    current: List[Tuple] = []
    current_size = 0
    for cell, constants, _ in pending:
        chunk_cells = int(constants["chunk_cells"])
        if current and (chunk_cells != current_size or len(current) >= current_size):
            tasks.append(make(tuple(current)))
            current = []
        if not current:
            current_size = chunk_cells
        current.append(values(cell))
    if current:
        tasks.append(make(tuple(current)))
    return tasks


def _universe_context(
    pending: List[Tuple[Any, Dict[str, Any], str]],
    spec: SweepSpec,
) -> List[Tuple[str, str, Tuple]]:
    """The worker-context entries warming this run's frame universes.

    Analytic cells broadcast their distinct (protocol, m, payload)
    universes to :func:`repro.analysis.batchreplay.warm_universe`;
    traffic cells broadcast their distinct traffic specs to
    :func:`repro.traffic.batch.warm_traffic`, which pre-compiles the
    wire images the batch windows concatenate.
    """
    if spec.surface == "traffic":
        specs = []
        seen = set()
        for cell, _, _ in pending:
            traffic_spec = traffic_cell_spec(
                cell,
                windows=spec.traffic_windows,
                window_bits=spec.traffic_window_bits,
                seed=spec.traffic_seed,
            )
            if traffic_spec not in seen:
                seen.add(traffic_spec)
                specs.append(traffic_spec)
        if not specs:
            return []
        return [("repro.traffic.batch", "warm_traffic", (tuple(specs),))]
    universes = []
    seen = set()
    for cell, _, _ in pending:
        entry = (cell.protocol, cell.m, cell.payload_bytes.hex())
        if entry not in seen:
            seen.add(entry)
            universes.append(entry)
    if not universes:
        return []
    return [("repro.analysis.batchreplay", "warm_universe", (tuple(universes),))]


def run_sweep(
    spec: SweepSpec,
    store: ResultStore,
    jobs: Optional[int] = None,
    backend: str = "batch",
    cell_budget: Optional[int] = None,
    progress=None,
) -> SweepRunReport:
    """Run (or resume) ``spec`` against ``store``; returns the report.

    ``cell_budget`` caps how many cells this call evaluates — the rest
    stay pending for the next call, which is both the integrity
    check's interruption model and a way to drip a huge grid through
    short CI slots.  ``progress`` is an optional callable receiving
    ``(evaluated_so_far, planned)`` after each persisted chunk.
    """
    from repro.parallel.pool import effective_jobs

    pending, skipped = pending_cells(spec, store, backend=backend)
    total = spec.cell_count()
    deferred = 0
    if cell_budget is not None:
        if cell_budget < 0:
            cell_budget = 0
        deferred = max(0, len(pending) - cell_budget)
        pending = pending[:cell_budget]
    tasks = _chunk_tasks(pending, spec, backend)
    set_worker_context(_universe_context(pending, spec))
    try:
        evaluated = 0
        stats: Dict[str, int] = {}
        for records in imap_tasks(tasks, jobs=jobs):
            store.append(records)
            evaluated += len(records)
            for record in records:
                for key, value in (stats_of(record) or {}).items():
                    stats[key] = stats.get(key, 0) + int(value)
            if progress is not None:
                progress(evaluated, len(pending))
    finally:
        # The broadcast universe is this run's; never leak it into the
        # next caller's pool.
        set_worker_context(())
    status = store.compact()
    return SweepRunReport(
        name=spec.name,
        backend=backend,
        jobs=effective_jobs(jobs),
        total_cells=total,
        skipped=skipped,
        evaluated=evaluated,
        deferred=deferred,
        stored=status.records,
        digest=status.digest,
        backend_stats=stats,
    )


#: Result fields lifted into a surface row, in column order.
_SURFACE_FIELDS = (
    "tau_data",
    "ber_star",
    "patterns",
    "p_imo",
    "p_double",
    "p_inconsistent",
    "frames_per_hour",
    "imo_per_hour",
    "double_per_hour",
    "eq4_per_frame",
    "eq5_per_frame",
    "eq4_per_hour",
)

#: Result fields of a measured-under-load (traffic-surface) row.
_TRAFFIC_SURFACE_FIELDS = (
    "frames_submitted",
    "delivered",
    "omitted",
    "duplicated",
    "lost",
    "total_bits",
    "bus_load",
    "max_backlog",
    "arbitration_lost",
    "atomic",
)


def surface_rows(store: ResultStore) -> List[Dict[str, Any]]:
    """Flatten the store into probability-surface rows, sorted by key.

    One row per stored cell: the cell coordinates plus either the
    analytic headline probabilities (and the bus feasibility verdict)
    or, for ``surface="traffic"`` records, the measured ledger
    statistics of the steady-state run — the shape plotting scripts
    and the CLI ``export`` action want.
    """
    rows = []
    records = store.records()
    for key in sorted(records):
        record = records[key]
        cell = record.get("cell", {})
        result = record.get("result", {})
        constants = record.get("constants", {})
        row: Dict[str, Any] = {"key": key}
        row.update(cell)
        row["backend"] = constants.get("backend")
        if constants.get("surface") == "traffic":
            row["surface"] = "traffic"
            for name in _TRAFFIC_SURFACE_FIELDS:
                row[name] = result.get(name)
            rows.append(row)
            continue
        row["surface"] = "analytic"
        for name in _SURFACE_FIELDS:
            row[name] = result.get(name)
        bus = result.get("bus") or {}
        row["bus_feasible"] = bus.get("feasible")
        row["max_bus_length_m"] = bus.get("max_bus_length_m")
        rows.append(row)
    return rows
