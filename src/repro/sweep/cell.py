"""Content-addressed cell identity and per-cell evaluation.

A cell's *key* is the SHA-256 of its canonical JSON description: the
cell parameters plus every code-relevant constant that shapes what the
evaluation computes — the spec-level fault universe (tail window, flip
bound, bus load), the classification backend, the resolved chunk
partition and the key schema version.  Two processes (or two machines)
that would compute the same result therefore derive the same key, which
is what makes the result store incremental: a re-run skips every key it
already holds, and a key changes exactly when the result could.

Evaluation reuses the repository's existing pipeline end to end: the
exact tail-pattern enumeration of :mod:`repro.analysis.enumeration`
(engine or vectorised batch backend) for the simulated probabilities,
equations 4/5 for the analytic surface, and the ISO 11898 bit-timing
model for the physical feasibility of the (bit rate, bus length) point.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Dict, Optional

from repro.errors import AnalysisError, ConfigurationError
from repro.metrics.export import json_line
from repro.parallel.seeds import adaptive_chunk
from repro.sweep.spec import SweepCell

#: Version of the key schema.  Bump whenever the evaluation semantics
#: change in a way that invalidates stored results (new result fields
#: are fine; different numbers are not).
KEY_VERSION = 1

#: Baseline cells per task chunk, tuned for the canonical cell (three
#: nodes, two-bit window, <= 2 flips) on the engine backend.  The
#: adaptive resolution scales this by the cell's pattern count and the
#: batch backend's per-placement discount; the resolved value is part
#: of the cell identity (see :func:`cell_constants`).
CHUNK_CELLS = 8

#: Per-placement cost discount of the batch backend relative to the
#: engine (matches ``repro.analysis.verification._BATCH_DISCOUNT``).
_BATCH_DISCOUNT = 16.0

#: Pattern count of the baseline cell: C(6, 0) + C(6, 1) + C(6, 2).
_BASELINE_PATTERNS = 22


def _pattern_count(n_nodes: int, window: int, max_flips: int) -> int:
    """Number of enumerated fault patterns of one cell."""
    sites = n_nodes * window
    return sum(math.comb(sites, flips) for flips in range(0, max_flips + 1))


def cell_constants(
    cell: SweepCell,
    *,
    window: int,
    max_flips: int,
    load: float,
    backend: str = "batch",
) -> Dict[str, Any]:
    """The code-relevant constants folded into a cell's identity."""
    if backend not in ("engine", "batch"):
        raise ConfigurationError(
            "unknown backend %r (use 'engine' or 'batch')" % (backend,)
        )
    cost_units = _pattern_count(cell.n_nodes, window, max_flips) / float(
        _BASELINE_PATTERNS
    )
    if backend == "batch":
        cost_units /= _BATCH_DISCOUNT
    return {
        "key_version": KEY_VERSION,
        "backend": backend,
        "window": window,
        "max_flips": max_flips,
        "load": load,
        "chunk_cells": adaptive_chunk(CHUNK_CELLS, cost_units),
    }


def cell_key(cell: SweepCell, constants: Dict[str, Any]) -> str:
    """Content-addressed key of one cell: SHA-256 over canonical JSON.

    The canonical form is :func:`repro.metrics.export.json_line` —
    sorted keys, minimal separators, deterministic float repr — so the
    key is stable across processes, machines and Python hash seeds.
    """
    payload = json_line({"cell": cell.as_dict(), "constants": constants})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _bus_feasibility(cell: SweepCell) -> Dict[str, Any]:
    """ISO 11898 feasibility of the cell's (bit rate, bus length) point."""
    from repro.can.timing import PROPAGATION_SPEED_M_PER_S, timing_for_bit_rate

    propagation_delay_s = cell.bus_length_m / PROPAGATION_SPEED_M_PER_S
    try:
        timing = timing_for_bit_rate(cell.bit_rate)
    except ConfigurationError as exc:
        return {
            "feasible": False,
            "reason": str(exc),
            "propagation_delay_s": propagation_delay_s,
            "max_bus_length_m": None,
            "sample_point": None,
            "quanta_per_bit": None,
        }
    max_length = timing.max_bus_length_m()
    return {
        "feasible": cell.bus_length_m <= max_length,
        "reason": None
        if cell.bus_length_m <= max_length
        else "bus longer than the propagation-segment budget",
        "propagation_delay_s": propagation_delay_s,
        "max_bus_length_m": max_length,
        "sample_point": timing.sample_point,
        "quanta_per_bit": timing.quanta_per_bit,
    }


def cell_tau_data(cell: SweepCell) -> int:
    """Frame length (bits on the wire) of the cell's payload/protocol.

    The base length comes from the actual encoded frame — identifier,
    stuffing and all — and MajorCAN adds its best-case ``2m - 7``
    overhead bits.  Using the real wire length (rather than the paper's
    nominal 110 bits) keeps the per-frame probabilities and the frame
    rate of the traffic profile consistent with the simulated frame.
    """
    from repro.analysis.overhead import best_case_overhead_bits
    from repro.can.encoding import wire_program
    from repro.can.frame import data_frame

    frame = data_frame(0x123, cell.payload_bytes, message_id="m")
    tau = len(wire_program(frame).levels)
    if cell.protocol == "majorcan":
        tau += max(0, best_case_overhead_bits(cell.m))
    return tau


def evaluate_cell(
    cell: SweepCell,
    window: int,
    max_flips: int,
    load: float,
    backend: str = "batch",
) -> Dict[str, Any]:
    """Evaluate one cell; returns the plain-JSON result payload.

    The result is a pure function of the arguments — no randomness, no
    ambient state — which is the property the content-addressed store
    relies on: any process evaluating the same key writes the same
    bytes.
    """
    from repro.analysis.enumeration import enumerate_tail_patterns
    from repro.analysis.probability import (
        p_new_scenario_per_frame,
        p_old_scenario_per_frame,
    )
    from repro.analysis.rates import incidents_per_hour
    from repro.faults.models import ber_star
    from repro.workload.profiles import NetworkProfile

    tau = cell_tau_data(cell)
    profile = NetworkProfile(
        bit_rate=cell.bit_rate,
        n_nodes=cell.n_nodes,
        load=load,
        frame_bits=tau,
    )
    star = ber_star(cell.ber, cell.n_nodes)
    enumerated = enumerate_tail_patterns(
        protocol=cell.protocol,
        n_nodes=cell.n_nodes,
        window=window,
        ber_star=star,
        tau_data=tau,
        m=cell.m,
        max_flips=max_flips,
        backend=backend,
        payload=cell.payload_bytes,
    )
    p_imo = enumerated.p_inconsistent_omission
    p_double = enumerated.p_double_reception
    result: Dict[str, Any] = {
        "tau_data": tau,
        "ber_star": star,
        "patterns": len(enumerated.outcomes),
        "imo_patterns": len(enumerated.imo_patterns()),
        "p_imo": p_imo,
        "p_double": p_double,
        "p_inconsistent": enumerated.p_inconsistent,
        "frames_per_hour": profile.frames_per_hour,
        "imo_per_hour": incidents_per_hour(p_imo, profile),
        "double_per_hour": incidents_per_hour(p_double, profile),
        "bus": _bus_feasibility(cell),
    }
    # The closed-form surface needs a transmitter plus two receivers;
    # two-node cells record the simulated surface only.
    if cell.n_nodes >= 3:
        try:
            eq4 = p_new_scenario_per_frame(cell.ber, cell.n_nodes, tau)
            eq5 = p_old_scenario_per_frame(cell.ber, cell.n_nodes, tau)
        except AnalysisError:
            eq4 = eq5 = None
    else:
        eq4 = eq5 = None
    result["eq4_per_frame"] = eq4
    result["eq5_per_frame"] = eq5
    result["eq4_per_hour"] = (
        incidents_per_hour(eq4, profile) if eq4 is not None else None
    )
    result["backend_stats"] = (
        dict(enumerated.backend_stats) if enumerated.backend_stats else None
    )
    return result


def cell_record(
    cell: SweepCell,
    *,
    window: int,
    max_flips: int,
    load: float,
    backend: str = "batch",
) -> Dict[str, Any]:
    """Evaluate ``cell`` and wrap it as one complete store record."""
    constants = cell_constants(
        cell, window=window, max_flips=max_flips, load=load, backend=backend
    )
    return {
        "key": cell_key(cell, constants),
        "cell": cell.as_dict(),
        "constants": constants,
        "result": evaluate_cell(
            cell,
            window=window,
            max_flips=max_flips,
            load=load,
            backend=backend,
        ),
    }


def stats_of(record: Dict[str, Any]) -> Optional[Dict[str, int]]:
    """The backend provenance counters of one store record, if any."""
    result = record.get("result") or {}
    stats = result.get("backend_stats")
    return dict(stats) if stats else None


# ---------------------------------------------------------------------------
# Measured-under-load traffic cells (surface="traffic")
# ---------------------------------------------------------------------------

#: Baseline cells per traffic chunk.  A traffic cell runs whole
#: steady-state windows rather than one enumerated pattern set, so the
#: baseline is far coarser than the analytic ``CHUNK_CELLS`` and the
#: adaptive floor drops to one cell per task.
TRAFFIC_CHUNK_CELLS = 2

#: Window count x window bits of the chunk-size baseline cell.
_BASELINE_TRAFFIC_BITS = 2 * 1200.0


def traffic_cell_constants(
    cell: "TrafficCell",
    *,
    windows: int,
    window_bits: int,
    seed: int,
    backend: str = "batch",
) -> Dict[str, Any]:
    """The code-relevant constants folded into a traffic cell's identity.

    The ``"surface": "traffic"`` marker keeps these keys disjoint from
    every analytic key even if the parameter names were ever to
    collide.
    """
    if backend not in ("engine", "batch"):
        raise ConfigurationError(
            "unknown backend %r (use 'engine' or 'batch')" % (backend,)
        )
    cost_units = (windows * window_bits) / _BASELINE_TRAFFIC_BITS
    return {
        "key_version": KEY_VERSION,
        "surface": "traffic",
        "backend": backend,
        "windows": windows,
        "window_bits": window_bits,
        "seed": seed,
        "chunk_cells": adaptive_chunk(
            TRAFFIC_CHUNK_CELLS, cost_units, floor=1
        ),
    }


def traffic_cell_spec(
    cell: "TrafficCell", *, windows: int, window_bits: int, seed: int
):
    """The :class:`repro.traffic.spec.TrafficSpec` a traffic cell runs.

    Events stay off — the surface keeps headline statistics and
    verdict tallies, not per-bit traces — which also keeps the window
    results small on the wire between pool workers.
    """
    from repro.traffic.spec import TrafficSpec

    return TrafficSpec(
        name="sweep-traffic",
        protocol=cell.protocol,
        m=cell.m,
        n_nodes=cell.n_nodes,
        windows=windows,
        window_bits=window_bits,
        source=cell.source,
        load=cell.load,
        seed=seed,
        noise_ber=cell.noise_ber,
        record_events=False,
    )


def evaluate_traffic_cell(
    cell: "TrafficCell",
    windows: int,
    window_bits: int,
    seed: int,
    backend: str = "batch",
) -> Dict[str, Any]:
    """Run one traffic cell; returns the plain-JSON result payload.

    Like :func:`evaluate_cell` this is a pure function of its
    arguments: the schedule is precomputed from the seed and both
    backends produce bit-identical ledgers, so any process evaluating
    the same key writes the same bytes.
    """
    from repro.traffic.run import run_traffic

    spec = traffic_cell_spec(
        cell, windows=windows, window_bits=window_bits, seed=seed
    )
    outcome = run_traffic(spec, jobs=1, backend=backend)
    stats = outcome.stats
    return {
        "frames_submitted": stats.frames_submitted,
        "delivered": stats.delivered,
        "duplicated": stats.duplicated,
        "omitted": stats.omitted,
        "lost": stats.lost,
        "total_bits": stats.total_bits,
        "bus_load": stats.bus_load,
        "max_backlog": stats.max_backlog,
        "arbitration_lost": stats.arbitration_lost,
        "properties": {
            name: bool(result) for name, result in outcome.properties.items()
        },
        "atomic": outcome.atomic,
        "backend_stats": (
            dict(outcome.backend_stats) if outcome.backend_stats else None
        ),
    }


def traffic_cell_record(
    cell: "TrafficCell",
    *,
    windows: int,
    window_bits: int,
    seed: int,
    backend: str = "batch",
) -> Dict[str, Any]:
    """Evaluate a traffic ``cell`` and wrap it as one store record."""
    constants = traffic_cell_constants(
        cell,
        windows=windows,
        window_bits=window_bits,
        seed=seed,
        backend=backend,
    )
    return {
        "key": cell_key(cell, constants),
        "cell": cell.as_dict(),
        "constants": constants,
        "result": evaluate_traffic_cell(
            cell,
            windows=windows,
            window_bits=window_bits,
            seed=seed,
            backend=backend,
        ),
    }
