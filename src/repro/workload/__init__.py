"""Workload generation and the paper's evaluation profile."""

from repro.workload.generator import (
    PeriodicSource,
    PoissonSource,
    attach_sources,
    measured_bus_load,
    periodic_sources_for_profile,
)
from repro.workload.profiles import PAPER_PROFILE, NetworkProfile

__all__ = [
    "NetworkProfile",
    "PAPER_PROFILE",
    "PeriodicSource",
    "PoissonSource",
    "attach_sources",
    "measured_bus_load",
    "periodic_sources_for_profile",
]
