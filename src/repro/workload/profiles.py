"""Network/workload profiles, including the paper's evaluation profile.

Table 1 is computed for "a network at 1 Mbps, with 32 nodes, an overall
load of 90% and frames with a length of tau_data = 110 bits", using the
same data as Rufino et al. for comparability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class NetworkProfile:
    """Static description of a CAN network and its traffic load."""

    bit_rate: float
    n_nodes: int
    load: float
    frame_bits: int

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ConfigurationError("bit rate must be positive")
        if self.n_nodes < 2:
            raise ConfigurationError("a broadcast network needs >= 2 nodes")
        if not 0.0 < self.load <= 1.0:
            raise ConfigurationError("load must be in (0, 1]")
        if self.frame_bits < 1:
            raise ConfigurationError("frames have at least one bit")

    @property
    def frames_per_second(self) -> float:
        """Average number of frames transferred per second."""
        return self.bit_rate * self.load / self.frame_bits

    @property
    def frames_per_hour(self) -> float:
        """Average number of frames transferred per hour."""
        return self.frames_per_second * 3600.0

    def scaled(self, **changes: object) -> "NetworkProfile":
        """Copy of the profile with some fields replaced."""
        fields = {
            "bit_rate": self.bit_rate,
            "n_nodes": self.n_nodes,
            "load": self.load,
            "frame_bits": self.frame_bits,
        }
        fields.update(changes)  # type: ignore[arg-type]
        return NetworkProfile(**fields)  # type: ignore[arg-type]


#: The evaluation profile of the paper (Section 4, Table 1).
PAPER_PROFILE = NetworkProfile(
    bit_rate=1_000_000.0,
    n_nodes=32,
    load=0.9,
    frame_bits=110,
)
