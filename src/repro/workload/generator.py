"""Traffic generation for multi-frame simulations.

The paper's evaluation profile is a 90 %-loaded 1 Mbps bus with 110-bit
frames shared by 32 nodes.  The generators here produce frame
submissions that approximate a target load so long-running fault
injection campaigns exercise realistic traffic (arbitration under
contention, back-to-back frames, queue buildup after error frames).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.can.controller import CanController
from repro.can.frame import data_frame
from repro.errors import ConfigurationError
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import make_rng
from repro.workload.profiles import NetworkProfile

PayloadFn = Callable[[int], bytes]


def _default_payload(sequence: int) -> bytes:
    return bytes([sequence & 0xFF, (sequence >> 8) & 0xFF])


@dataclass
class PeriodicSource:
    """Submit a frame on a node every ``period_bits`` bit times.

    Frames are tagged with increasing message ids so ledgers can track
    every individual broadcast.
    """

    controller: CanController
    period_bits: int
    identifier: int
    phase: int = 0
    payload_fn: PayloadFn = _default_payload
    max_messages: Optional[int] = None
    sent: int = 0

    def __post_init__(self) -> None:
        if self.period_bits < 1:
            raise ConfigurationError("period must be at least one bit time")

    def tick(self, time: int) -> None:
        """Engine tick hook: submit when the period elapses."""
        if self.max_messages is not None and self.sent >= self.max_messages:
            return
        if time >= self.phase and (time - self.phase) % self.period_bits == 0:
            frame = data_frame(
                self.identifier,
                self.payload_fn(self.sent),
                message_id="%s#%d" % (self.controller.name, self.sent),
                origin=self.controller.name,
            )
            self.controller.submit(frame)
            self.sent += 1


@dataclass
class PoissonSource:
    """Submit frames as a Bernoulli-per-bit (Poisson-like) process."""

    controller: CanController
    rate_per_bit: float
    identifier: int
    rng: object = None
    payload_fn: PayloadFn = _default_payload
    max_messages: Optional[int] = None
    sent: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate_per_bit <= 1.0:
            raise ConfigurationError("rate_per_bit must be a probability")
        self.rng = make_rng(self.rng)

    def tick(self, time: int) -> None:
        if self.max_messages is not None and self.sent >= self.max_messages:
            return
        if self.rng.random() < self.rate_per_bit:
            frame = data_frame(
                self.identifier,
                self.payload_fn(self.sent),
                message_id="%s#%d" % (self.controller.name, self.sent),
                origin=self.controller.name,
            )
            self.controller.submit(frame)
            self.sent += 1


def periodic_sources_for_profile(
    controllers: Sequence[CanController],
    profile: NetworkProfile,
    messages_per_node: Optional[int] = None,
) -> List[PeriodicSource]:
    """Periodic sources approximating the profile's bus load.

    The aggregate frame rate is ``load * bit_rate / frame_bits``;
    divided evenly over the nodes and phase-staggered so submissions
    do not align.  Identifiers are assigned by node order (lower index
    = higher priority).
    """
    n = len(controllers)
    if n == 0:
        raise ConfigurationError("no controllers to generate traffic for")
    period = int(round(n * profile.frame_bits / profile.load))
    sources = []
    for index, controller in enumerate(controllers):
        sources.append(
            PeriodicSource(
                controller=controller,
                period_bits=period,
                identifier=0x100 + index,
                phase=(index * period) // n,
                max_messages=messages_per_node,
            )
        )
    return sources


def attach_sources(engine: SimulationEngine, sources: Sequence[object]) -> None:
    """Register source tick hooks with the engine."""
    for source in sources:
        engine.add_tick_hook(source.tick)


def measured_bus_load(engine: SimulationEngine, start: int = 0) -> float:
    """Fraction of bus bit times that were dominant-or-frame traffic.

    Approximates the utilisation as 1 - (fraction of idle recessive
    tail bits); exact accounting of interframe gaps is unnecessary for
    the tests that sanity-check the generators.
    """
    history = engine.bus.history[start:]
    if not history:
        return 0.0
    busy = 0
    idle_run = 0
    for level in history:
        if level.value == 0:
            busy += 1
            idle_run = 0
        else:
            idle_run += 1
            if idle_run <= 12:
                busy += 1
    return busy / len(history)
