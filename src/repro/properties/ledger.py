"""Delivery ledgers: the ground truth the property checkers inspect.

A :class:`SystemLedger` snapshots, for every node, which messages it
broadcast and the ordered sequence of messages it delivered, plus
whether the node is *correct* (did not crash, disconnect or go
bus-off).  Atomic Broadcast properties quantify over correct nodes
only, so the distinction matters: in the Fig. 1c scenario the crashed
transmitter is exempt from the Agreement check while the surviving
receivers are not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence

from repro.can.controller import CanController
from repro.can.events import Delivery
from repro.can.frame import Frame

MessageKey = Hashable
KeyFunction = Callable[[Frame], MessageKey]


def wire_key(frame: Frame) -> MessageKey:
    """Default message identity: what receivers can observe on the wire.

    When the application tags frames with ``message_id`` the tag wins
    (the transmitter knows it; receivers reconstruct untagged frames,
    so for them the remaining wire fields are used).  Scenario
    harnesses use distinct payloads per message, making the two
    representations equivalent.
    """
    return (
        frame.can_id.value,
        frame.can_id.extended,
        frame.remote,
        frame.dlc,
        frame.data,
    )


@dataclass
class NodeLedger:
    """Broadcast and delivery history of one node."""

    name: str
    correct: bool
    broadcasts: List[MessageKey] = field(default_factory=list)
    deliveries: List[MessageKey] = field(default_factory=list)
    delivery_times: List[int] = field(default_factory=list)

    def delivery_count(self, key: MessageKey) -> int:
        """How many times ``key`` was delivered to this node."""
        return self.deliveries.count(key)


@dataclass
class SystemLedger:
    """Broadcast/delivery snapshot of the whole system."""

    nodes: Dict[str, NodeLedger] = field(default_factory=dict)

    @classmethod
    def from_controllers(
        cls,
        controllers: Sequence[CanController],
        key: KeyFunction = wire_key,
        correct: Optional[Dict[str, bool]] = None,
    ) -> "SystemLedger":
        """Snapshot the ledgers of a set of controllers.

        ``correct`` may override the per-node correctness verdict; by
        default a node is correct iff it is still online.
        """
        ledger = cls()
        for controller in controllers:
            is_correct = (
                correct[controller.name]
                if correct is not None and controller.name in correct
                else not controller.offline
            )
            node = NodeLedger(name=controller.name, correct=is_correct)
            node.broadcasts = [key(frame) for frame in controller.submitted]
            node.deliveries = [key(d.frame) for d in controller.deliveries]
            node.delivery_times = [d.time for d in controller.deliveries]
            ledger.nodes[controller.name] = node
        return ledger

    @classmethod
    def from_deliveries(
        cls,
        deliveries: Dict[str, Sequence[Delivery]],
        broadcasts: Dict[str, Sequence[Frame]],
        correct: Dict[str, bool],
        key: KeyFunction = wire_key,
    ) -> "SystemLedger":
        """Build a ledger from raw delivery/broadcast mappings.

        Higher-level protocol layers (EDCAN/RELCAN/TOTCAN) deliver at
        the application level rather than the controller level; they
        use this constructor with their own delivery records.
        """
        ledger = cls()
        names = set(deliveries) | set(broadcasts) | set(correct)
        for name in sorted(names):
            node = NodeLedger(name=name, correct=correct.get(name, True))
            node.broadcasts = [key(frame) for frame in broadcasts.get(name, [])]
            for delivery in deliveries.get(name, []):
                node.deliveries.append(key(delivery.frame))
                node.delivery_times.append(delivery.time)
            ledger.nodes[name] = node
        return ledger

    # ------------------------------------------------------------------
    # Queries used by the property checkers
    # ------------------------------------------------------------------

    @property
    def correct_nodes(self) -> List[NodeLedger]:
        """Ledgers of the nodes that remained correct."""
        return [node for node in self.nodes.values() if node.correct]

    def all_broadcast_keys(self) -> List[MessageKey]:
        """Every message key any node ever broadcast."""
        keys: List[MessageKey] = []
        for node in self.nodes.values():
            keys.extend(node.broadcasts)
        return keys

    def broadcasts_by_correct_nodes(self) -> List[MessageKey]:
        """Message keys broadcast by nodes that remained correct."""
        keys: List[MessageKey] = []
        for node in self.correct_nodes:
            keys.extend(node.broadcasts)
        return keys

    def delivered_anywhere_correct(self) -> List[MessageKey]:
        """Keys delivered to at least one correct node (deduplicated)."""
        seen: List[MessageKey] = []
        for node in self.correct_nodes:
            for key in node.deliveries:
                if key not in seen:
                    seen.append(key)
        return seen
