"""The property matrix experiment (E-PROP in DESIGN.md).

Runs every protocol — the link-layer variants (CAN, MinorCAN,
MajorCAN) and the FTCS'98 higher-level protocols (EDCAN, RELCAN,
TOTCAN) — through the paper's scenarios and records which Atomic
Broadcast properties each one preserves.  The paper's qualitative
claims become a checkable table:

* standard CAN: double reception (AB3) in Fig. 1b, omission (AB2) in
  Fig. 1c and in the new Fig. 3a scenario, order violations (AB5);
* MinorCAN: fixes Fig. 1, fails Fig. 3;
* MajorCAN: consistent in every scenario with <= m errors;
* EDCAN: keeps Agreement even in Fig. 3 (diffusion), but no total
  order; RELCAN/TOTCAN: recovery armed only by transmitter failure,
  so Fig. 3 defeats them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.controller import STATE_ERROR_FLAG
from repro.can.fields import EOF
from repro.faults.injector import (
    CrashFault,
    ScriptedInjector,
    Trigger,
    ViewFault,
)
from repro.faults.scenarios import SCENARIOS, make_controller
from repro.properties.broadcast import check_atomic_broadcast
from repro.properties.ledger import SystemLedger
from repro.protocols.base import app_ledger, build_protocol_network
from repro.protocols import PROTOCOL_FACTORIES

#: Scenario labels accepted by the matrix runners.
CORE_SCENARIOS = ("clean", "fig1a", "fig1b", "fig1c", "fig3")
HLP_SCENARIOS = ("clean", "fig1c", "fig3")


@dataclass
class MatrixCell:
    """Verdicts of one (protocol, scenario) run."""

    protocol: str
    scenario: str
    properties: Dict[str, bool] = field(default_factory=dict)
    deliveries: Dict[str, List] = field(default_factory=dict)

    @property
    def atomic_broadcast(self) -> bool:
        return all(self.properties.values())

    def failed_properties(self) -> List[str]:
        return [name for name, holds in self.properties.items() if not holds]


def _ledger_properties(ledger: SystemLedger) -> Dict[str, bool]:
    return {
        name: result.holds
        for name, result in check_atomic_broadcast(ledger).items()
    }


# ---------------------------------------------------------------------------
# Link-layer protocols
# ---------------------------------------------------------------------------


def run_core_cell(protocol: str, scenario: str, m: int = 5) -> MatrixCell:
    """Run one (link-layer protocol, scenario) cell.

    The ``fig3`` label uses the two-disturbance pattern of Fig. 3a/3b;
    ``clean`` runs the same network without faults as a control.
    """
    if scenario == "clean":
        transmitter = make_controller(protocol, "tx", m=m)
        nodes = [
            transmitter,
            make_controller(protocol, "x", m=m),
            make_controller(protocol, "y", m=m),
        ]
        from repro.faults.scenarios import run_single_frame_scenario

        outcome = run_single_frame_scenario("clean", nodes, ScriptedInjector())
    elif scenario == "fig3":
        from repro.faults.scenarios import fig3

        outcome = fig3(protocol, m=m)
    else:
        outcome = SCENARIOS[scenario](protocol, m=m)
    controllers = outcome.engine.nodes
    ledger = SystemLedger.from_controllers(controllers)
    cell = MatrixCell(
        protocol=outcome.protocol,
        scenario=scenario,
        properties=_ledger_properties(ledger),
        deliveries={name: count for name, count in outcome.deliveries.items()},
    )
    return cell


def core_matrix(
    protocols: Sequence[str] = ("can", "minorcan", "majorcan"),
    scenarios: Sequence[str] = CORE_SCENARIOS,
    m: int = 5,
) -> List[MatrixCell]:
    """The full link-layer property matrix."""
    return [
        run_core_cell(protocol, scenario, m=m)
        for protocol in protocols
        for scenario in scenarios
    ]


# ---------------------------------------------------------------------------
# Higher-level protocols
# ---------------------------------------------------------------------------


def _hlp_injector(scenario: str, eof_length: int) -> ScriptedInjector:
    """Faults for the higher-level runs, targeting the first data frame.

    ``n0`` transmits the affected message, ``n1`` plays the X set and
    ``n2`` the Y set.
    """
    last = eof_length - 1
    if scenario == "clean":
        return ScriptedInjector()
    if scenario == "fig1c":
        return ScriptedInjector(
            view_faults=[
                ViewFault("n1", Trigger(field=EOF, index=last - 1), force=DOMINANT)
            ],
            crash_faults=[CrashFault("n0", Trigger(state=STATE_ERROR_FLAG))],
        )
    if scenario == "fig3":
        return ScriptedInjector(
            view_faults=[
                ViewFault("n1", Trigger(field=EOF, index=last - 1), force=DOMINANT),
                ViewFault("n0", Trigger(field=EOF, index=last), force=RECESSIVE),
            ]
        )
    raise KeyError("unknown higher-level scenario %r" % scenario)


def run_hlp_cell(
    protocol: str,
    scenario: str,
    n_nodes: int = 4,
    second_broadcast: bool = True,
    run_bits: int = 4000,
) -> MatrixCell:
    """Run one (higher-level protocol, scenario) cell.

    ``second_broadcast`` has node ``n3`` broadcast a second message
    immediately, which exposes total-order violations: a node that
    missed the first message's original transmission may deliver the
    recovery copy after the second message.
    """
    factory = PROTOCOL_FACTORIES[protocol.lower()]
    probe = make_controller("can", "probe")
    injector = _hlp_injector(scenario, probe.config.eof_length)
    engine, nodes = build_protocol_network(
        factory, n_nodes, engine_kwargs={"injector": injector, "record_bits": False}
    )
    nodes[0].broadcast(b"\xaa")
    if second_broadcast and n_nodes > 3:
        nodes[3].broadcast(b"\xbb")
    engine.run(run_bits)
    engine.run_until_idle(60000)
    ledger = app_ledger(nodes)
    return MatrixCell(
        protocol=factory.name,
        scenario=scenario,
        properties=_ledger_properties(ledger),
        deliveries={node.name: node.delivered_keys for node in nodes},
    )


def hlp_matrix(
    protocols: Sequence[str] = ("edcan", "relcan", "totcan"),
    scenarios: Sequence[str] = HLP_SCENARIOS,
) -> List[MatrixCell]:
    """The full higher-level-protocol property matrix."""
    return [
        run_hlp_cell(protocol, scenario)
        for protocol in protocols
        for scenario in scenarios
    ]


def render_matrix(cells: Sequence[MatrixCell]) -> str:
    """Format matrix cells as an aligned text table."""
    if not cells:
        return "(empty matrix)"
    property_names = list(cells[0].properties)
    short = {name: name.split("-")[0] for name in property_names}
    header = "%-10s %-8s " % ("protocol", "scenario") + " ".join(
        "%-5s" % short[name] for name in property_names
    )
    lines = [header, "-" * len(header)]
    for cell in cells:
        marks = " ".join(
            "%-5s" % ("ok" if cell.properties[name] else "FAIL")
            for name in property_names
        )
        lines.append("%-10s %-8s %s" % (cell.protocol, cell.scenario, marks))
    return "\n".join(lines)
