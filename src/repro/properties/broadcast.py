"""Executable checkers for the Atomic Broadcast properties AB1-AB5.

The definitions follow Section 2 of the paper (the adaptation of
Hadzilacos & Toueg used by Rufino et al.):

* **AB1 Validity** — if a correct node broadcasts a message, then the
  message is eventually delivered to a correct node;
* **AB2 Agreement** — if a message is delivered to a correct node,
  then it is eventually delivered to all correct nodes;
* **AB3 At-most-once delivery** — any message delivered to a correct
  node is delivered to it at most once;
* **AB4 Non-triviality** — any message delivered to a correct node was
  broadcast by some node;
* **AB5 Total order** — any two messages delivered to any two correct
  nodes are delivered in the same order to both.

Each checker returns a :class:`PropertyResult` carrying the violations
found, so test failures and experiment reports can show *which*
message and nodes broke the property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.properties.ledger import MessageKey, SystemLedger

AB1 = "AB1-validity"
AB2 = "AB2-agreement"
AB3 = "AB3-at-most-once"
AB4 = "AB4-non-triviality"
AB5 = "AB5-total-order"

ALL_PROPERTIES = (AB1, AB2, AB3, AB4, AB5)


@dataclass
class PropertyResult:
    """Outcome of checking one property over a ledger."""

    name: str
    holds: bool
    violations: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.holds

    def __str__(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        detail = ("\n  " + "\n  ".join(self.violations)) if self.violations else ""
        return "%s: %s%s" % (self.name, status, detail)


def check_validity(ledger: SystemLedger) -> PropertyResult:
    """AB1: every broadcast of a correct node reaches a correct node."""
    violations = []
    delivered = set(ledger.delivered_anywhere_correct())
    for node in ledger.correct_nodes:
        for key in node.broadcasts:
            if key not in delivered:
                violations.append(
                    "message %r broadcast by correct node %r was never "
                    "delivered to any correct node" % (key, node.name)
                )
    return PropertyResult(AB1, not violations, violations)


def check_agreement(ledger: SystemLedger) -> PropertyResult:
    """AB2: a message delivered to one correct node reaches them all."""
    violations = []
    for key in ledger.delivered_anywhere_correct():
        for node in ledger.correct_nodes:
            if node.delivery_count(key) == 0:
                violations.append(
                    "message %r delivered to some correct node but not to %r"
                    % (key, node.name)
                )
    return PropertyResult(AB2, not violations, violations)


def check_at_most_once(ledger: SystemLedger) -> PropertyResult:
    """AB3: no correct node delivers the same message twice."""
    violations = []
    for node in ledger.correct_nodes:
        seen: Dict[MessageKey, int] = {}
        for key in node.deliveries:
            seen[key] = seen.get(key, 0) + 1
        for key, count in seen.items():
            if count > 1:
                violations.append(
                    "node %r delivered message %r %d times" % (node.name, key, count)
                )
    return PropertyResult(AB3, not violations, violations)


def check_non_triviality(ledger: SystemLedger) -> PropertyResult:
    """AB4: every delivered message was broadcast by some node."""
    violations = []
    broadcast = set(ledger.all_broadcast_keys())
    for node in ledger.correct_nodes:
        for key in node.deliveries:
            if key not in broadcast:
                violations.append(
                    "node %r delivered message %r that nobody broadcast"
                    % (node.name, key)
                )
    return PropertyResult(AB4, not violations, violations)


def check_total_order(ledger: SystemLedger) -> PropertyResult:
    """AB5: commonly delivered messages appear in the same order.

    For every pair of correct nodes and every pair of messages both of
    them delivered, the relative delivery order must agree.  The check
    uses the position of the *first* delivery of each message, which is
    the standard interpretation when AB3 already flags duplicates.
    """
    violations = []
    correct = ledger.correct_nodes
    for i, node_a in enumerate(correct):
        pos_a = _first_positions(node_a.deliveries)
        for node_b in correct[i + 1 :]:
            pos_b = _first_positions(node_b.deliveries)
            common = [key for key in pos_a if key in pos_b]
            for j, key1 in enumerate(common):
                for key2 in common[j + 1 :]:
                    order_a = pos_a[key1] < pos_a[key2]
                    order_b = pos_b[key1] < pos_b[key2]
                    if order_a != order_b:
                        violations.append(
                            "nodes %r and %r deliver %r and %r in different "
                            "orders" % (node_a.name, node_b.name, key1, key2)
                        )
    return PropertyResult(AB5, not violations, violations)


def _first_positions(deliveries: List[MessageKey]) -> Dict[MessageKey, int]:
    positions: Dict[MessageKey, int] = {}
    for index, key in enumerate(deliveries):
        if key not in positions:
            positions[key] = index
    return positions


def check_atomic_broadcast(ledger: SystemLedger) -> Dict[str, PropertyResult]:
    """Run all five checkers; returns a property-name -> result map."""
    return {
        AB1: check_validity(ledger),
        AB2: check_agreement(ledger),
        AB3: check_at_most_once(ledger),
        AB4: check_non_triviality(ledger),
        AB5: check_total_order(ledger),
    }


def is_atomic_broadcast(ledger: SystemLedger) -> bool:
    """Whether the execution satisfied all of AB1-AB5."""
    return all(result.holds for result in check_atomic_broadcast(ledger).values())


def is_reliable_broadcast(ledger: SystemLedger) -> bool:
    """Reliable Broadcast = AB1-AB4 without total order (EDCAN's level)."""
    results = check_atomic_broadcast(ledger)
    return all(results[name].holds for name in (AB1, AB2, AB3, AB4))
