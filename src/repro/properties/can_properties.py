"""The CAN-level properties of Sections 2.2 and 4.

Rufino et al. characterised what unmodified CAN actually guarantees
(CAN1-CAN6); the paper's new scenarios weaken two of them (CAN2',
CAN6').  These checkers classify executions rather than assert
correctness: an execution of standard CAN is *expected* to sometimes
exhibit inconsistent omissions, and the experiment harness counts how
often.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.properties.broadcast import (
    PropertyResult,
    check_non_triviality,
    check_validity,
)
from repro.properties.ledger import MessageKey, SystemLedger

CAN1 = "CAN1-validity"
CAN2 = "CAN2-best-effort-agreement"
CAN2_PRIME = "CAN2'-agreement-not-guaranteed"
CAN3 = "CAN3-at-least-once"
CAN4 = "CAN4-non-triviality"
CAN6 = "CAN6-bounded-inconsistent-omission-degree"


@dataclass
class OmissionClassification:
    """Per-message consistency classification of one execution."""

    consistent: List[MessageKey] = field(default_factory=list)
    inconsistent_omissions: List[MessageKey] = field(default_factory=list)
    duplicates: List[MessageKey] = field(default_factory=list)
    never_delivered: List[MessageKey] = field(default_factory=list)

    @property
    def imo_count(self) -> int:
        """Number of messages suffering an inconsistent omission."""
        return len(self.inconsistent_omissions)


def classify_omissions(ledger: SystemLedger) -> OmissionClassification:
    """Classify each broadcast message of an execution.

    A message suffers an *inconsistent message omission* when some
    correct node delivered it and another correct node never did —
    the phenomenon whose per-hour probability Table 1 quantifies.
    """
    result = OmissionClassification()
    seen: List[MessageKey] = []
    for key in ledger.all_broadcast_keys():
        if key in seen:
            continue
        seen.append(key)
        counts = [node.delivery_count(key) for node in ledger.correct_nodes]
        if not counts:
            continue
        if any(count > 1 for count in counts):
            result.duplicates.append(key)
        if all(count == 0 for count in counts):
            result.never_delivered.append(key)
        elif any(count == 0 for count in counts):
            result.inconsistent_omissions.append(key)
        else:
            result.consistent.append(key)
    return result


def check_can1_validity(ledger: SystemLedger) -> PropertyResult:
    """CAN1 is the same validity statement as AB1."""
    result = check_validity(ledger)
    return PropertyResult(CAN1, result.holds, result.violations)


def check_can2_best_effort_agreement(ledger: SystemLedger) -> PropertyResult:
    """CAN2: agreement holds *provided the transmitter remains correct*.

    A violation of this (an omission with a correct transmitter) is
    exactly what the paper's new scenarios produce, motivating CAN2'.
    """
    violations = []
    for node in ledger.correct_nodes:
        for key in node.broadcasts:
            delivered = [
                other.delivery_count(key) > 0 for other in ledger.correct_nodes
            ]
            if any(delivered) and not all(delivered):
                violations.append(
                    "message %r from correct transmitter %r reached only part "
                    "of the correct nodes" % (key, node.name)
                )
    return PropertyResult(CAN2, not violations, violations)


def check_can3_at_least_once(ledger: SystemLedger) -> PropertyResult:
    """CAN3: delivered messages are delivered at least once.

    This is trivially true of any ledger (a delivery count cannot be
    positive and zero at once); the checker exists to document that,
    unlike AB3, CAN makes no at-most-once promise — duplicates are
    reported as informational violations of *AB3*, not CAN3.
    """
    return PropertyResult(CAN3, True, [])


def check_can4_non_triviality(ledger: SystemLedger) -> PropertyResult:
    """CAN4 is the same non-triviality statement as AB4."""
    result = check_non_triviality(ledger)
    return PropertyResult(CAN4, result.holds, result.violations)


@dataclass
class OmissionDegree:
    """CAN6/CAN6': inconsistent omission degree over an interval.

    ``j`` is the maximum number of transmissions suffering inconsistent
    omission failures within the reference interval ``T_rd``.  The
    paper's point is that the *new* scenarios make the observed degree
    (j') larger than the previously assumed one (j).
    """

    transmissions: int
    omissions: int

    @property
    def degree(self) -> int:
        return self.omissions

    @property
    def rate(self) -> float:
        """Empirical omission probability per transmission."""
        if self.transmissions == 0:
            return 0.0
        return self.omissions / self.transmissions


def omission_degree(ledgers: Sequence[SystemLedger]) -> OmissionDegree:
    """Aggregate CAN6 statistics over many executions."""
    transmissions = 0
    omissions = 0
    for ledger in ledgers:
        classification = classify_omissions(ledger)
        transmissions += (
            len(classification.consistent)
            + len(classification.inconsistent_omissions)
            + len(classification.never_delivered)
        )
        omissions += classification.imo_count
    return OmissionDegree(transmissions=transmissions, omissions=omissions)


def check_can_properties(ledger: SystemLedger) -> Dict[str, PropertyResult]:
    """Run all single-execution CAN property checkers."""
    return {
        CAN1: check_can1_validity(ledger),
        CAN2: check_can2_best_effort_agreement(ledger),
        CAN3: check_can3_at_least_once(ledger),
        CAN4: check_can4_non_triviality(ledger),
    }
