"""Reproduction of *MajorCAN: A Modification to the Controller Area Network
Protocol to Achieve Atomic Broadcast* (Proenza & Miro-Julia, ICDCS 2000).

The package is organised in layers:

``repro.simulation``
    A bit-synchronous, discrete-event bus simulator with per-node bus
    views (the paper's error model perturbs the *view* each node has of
    a bus bit, not the bus itself).

``repro.can``
    A bit-accurate implementation of the standard CAN data-link layer:
    frames, CRC-15, bit stuffing, arbitration, error detection and
    signalling, fault confinement, and the (in)famous last-bit-of-EOF
    rule that causes the inconsistencies studied by the paper.

``repro.core``
    The paper's contributions: the :class:`~repro.core.MinorCanController`
    and the parametric :class:`~repro.core.MajorCanController`.

``repro.faults``
    Fault injection: random spatial bit-error model (``ber* = ber / N``)
    and deterministic builders for every scenario figure in the paper.

``repro.protocols``
    The higher-level baseline protocols from Rufino et al. (FTCS'98):
    EDCAN, RELCAN and TOTCAN.

``repro.properties``
    Executable checkers for the Atomic Broadcast properties AB1-AB5 and
    the CAN properties CAN1-CAN6 / CAN2' / CAN6'.

``repro.analysis``
    The analytical probability model (equations 1-5), the Table 1
    generator, exact pattern enumeration, and the overhead formulas.

``repro.workload`` / ``repro.metrics``
    Traffic generation matching the paper's evaluation profile, and
    result collection/reporting.

``repro.tracestore``
    Persistent trace capture (versioned JSONL), deterministic replay
    with structured diffing, and the golden-scenario regression corpus.

``repro.traffic``
    Steady-state multi-frame traffic runs: workload generators feeding
    a multi-node bus, a per-frame message ledger with
    delivered/omitted/duplicated verdicts, window-sharded parallel
    execution, and schema-v2 replayable recordings.

``repro.sweep``
    Resumable design-space sweeps: validated specs over seven axes,
    content-addressed cell keys, an append-only JSONL result store
    with byte-deterministic compaction, and a driver that skips stored
    cells and streams the rest over the worker pool.
"""

from repro._version import __version__
from repro.can import (
    CanController,
    CanId,
    ControllerConfig,
    Frame,
)
from repro.core import MajorCanController, MinorCanController
from repro.simulation import Bus, SimulationEngine, Trace
from repro.tracestore import (
    RecordedTrace,
    Replayer,
    ScenarioSpec,
    TraceDiff,
    TraceRecorder,
    check_corpus,
    diff_traces,
    load_trace,
    record_outcome,
    replay_trace,
    update_corpus,
)
from repro.sweep import ResultStore, SweepCell, SweepSpec, run_sweep
from repro.traffic import (
    BurstSpec,
    TrafficOutcome,
    TrafficSpec,
    record_traffic,
    run_traffic,
)

__all__ = [
    "__version__",
    "BurstSpec",
    "Bus",
    "CanController",
    "CanId",
    "ControllerConfig",
    "Frame",
    "MajorCanController",
    "MinorCanController",
    "RecordedTrace",
    "Replayer",
    "ResultStore",
    "ScenarioSpec",
    "SimulationEngine",
    "SweepCell",
    "SweepSpec",
    "Trace",
    "TraceDiff",
    "TraceRecorder",
    "TrafficOutcome",
    "TrafficSpec",
    "check_corpus",
    "diff_traces",
    "load_trace",
    "record_outcome",
    "record_traffic",
    "replay_trace",
    "run_sweep",
    "run_traffic",
    "update_corpus",
]
