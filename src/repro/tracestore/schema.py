"""The versioned on-disk trace schema (JSON Lines).

A recording is one ``.jsonl`` file.  Every line is a JSON object with a
``type`` field; the line order is fixed:

1. exactly one ``manifest`` line (first line of the file) — everything
   needed to *rebuild* the run: schema version, scenario name, per-node
   protocol parameters, the transmitted frame, the serialized injector
   script, and the engine configuration;
2. exactly one ``bus`` line — the resolved bus level stream as a
   compact ``d``/``r`` string (present in every recording, including
   fast-path ones where per-bit records are off);
3. zero or more ``bit`` lines — full per-bit observability (drives,
   views, positions, MAC states per node), present only when the run
   recorded bits;
4. zero or more ``event`` lines — the merged controller event stream;
5. exactly one ``verdict`` line (last line) — per-node delivery counts
   and the consistency classification.

The schema is versioned with :data:`SCHEMA_VERSION`; readers refuse
files from a different major version rather than guessing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.errors import TraceStoreError

#: Version stamp written into (and required from) every manifest.
SCHEMA_VERSION = 1

#: Version stamp of multi-frame *traffic* recordings (see
#: ``repro.traffic``).  v2 is a sibling schema, not a replacement:
#: single-frame recordings keep writing v1 and the 13 golden corpus
#: entries stay byte-identical.  Readers dispatch on the manifest's
#: ``version`` field.
TRAFFIC_SCHEMA_VERSION = 2

#: Line types, in their mandatory file order.
MANIFEST = "manifest"
BUS = "bus"
BIT = "bit"
EVENT = "event"
VERDICT = "verdict"

#: Additional v2 (traffic) line types.  v2 order: manifest,
#: submissions, bus, events, frame verdicts, verdict — and never any
#: ``bit`` lines (steady-state runs always use the fast path).
SUBMISSION = "submission"
FRAME_VERDICT = "frame_verdict"

#: Keys a manifest line must carry.
MANIFEST_KEYS = frozenset(
    {"type", "version", "name", "nodes", "frame", "injector", "engine"}
)

#: Keys every per-node entry of ``manifest["nodes"]`` must carry.
NODE_KEYS = frozenset({"name", "protocol", "m"})

#: Keys a verdict line must carry.
VERDICT_KEYS = frozenset(
    {
        "type",
        "deliveries",
        "crashed",
        "attempts",
        "errors_injected",
        "consistent",
        "inconsistent_omission",
        "double_reception",
    }
)

#: Keys a v2 (traffic) manifest line must carry.
TRAFFIC_MANIFEST_KEYS = frozenset(
    {"type", "version", "kind", "name", "traffic", "engine"}
)

#: Keys a v2 submission line must carry.
SUBMISSION_KEYS = frozenset(
    {"type", "t", "window", "node", "seq", "id", "payload", "message_id"}
)

#: Keys a v2 frame-verdict line must carry.
FRAME_VERDICT_KEYS = frozenset(
    {"type", "origin", "seq", "window", "t", "status", "counts",
     "first_delivered"}
)

#: Keys a v2 aggregate-verdict line must carry.
TRAFFIC_VERDICT_KEYS = frozenset(
    {
        "type",
        "frames",
        "delivered",
        "duplicated",
        "omitted",
        "lost",
        "total_bits",
        "bus_load",
        "max_backlog",
        "errors_injected",
        "window_bits",
        "properties",
        "deliveries",
    }
)

#: Allowed per-message statuses in frame-verdict lines.
FRAME_STATUSES = frozenset({"delivered", "duplicated", "omitted", "lost"})


def _problem(problems: List[str], line_number: int, message: str) -> None:
    problems.append("line %d: %s" % (line_number, message))


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Check a parsed recording against the schema; return the problems.

    An empty list means the recording is well-formed.  The check covers
    structure only (line order, required keys, value shapes) — replaying
    is how behavioural fidelity is checked.
    """
    problems: List[str] = []
    records = list(records)
    if not records:
        return ["file is empty (expected a manifest line)"]

    if records[0].get("version") == TRAFFIC_SCHEMA_VERSION:
        return _validate_traffic(records)

    if records[0].get("compression") is not None:
        # Compressed bit lines omit carried-forward fields by design;
        # validate the expanded stream the readers actually consume.
        from repro.tracestore.rle import expand_records, require_known_compression

        try:
            require_known_compression(records[0])
            records = expand_records(records)
        except TraceStoreError as exc:
            return [str(exc)]

    manifest = records[0]
    if manifest.get("type") != MANIFEST:
        _problem(problems, 1, "first line must be the manifest")
    else:
        missing = MANIFEST_KEYS - set(manifest)
        if missing:
            _problem(problems, 1, "manifest missing keys %s" % sorted(missing))
        version = manifest.get("version")
        if version != SCHEMA_VERSION:
            _problem(
                problems,
                1,
                "unsupported schema version %r (expected %d)"
                % (version, SCHEMA_VERSION),
            )
        for node in manifest.get("nodes", ()):
            if not isinstance(node, dict) or NODE_KEYS - set(node):
                _problem(problems, 1, "malformed node entry %r" % (node,))

    seen_bus = 0
    seen_verdict = 0
    last_bit_time: Optional[int] = None
    stage = 0  # 0 manifest, 1 bus, 2 bits, 3 events, 4 verdict
    order = {MANIFEST: 0, BUS: 1, BIT: 2, EVENT: 3, VERDICT: 4}
    for number, record in enumerate(records[1:], 2):
        kind = record.get("type")
        if kind not in order:
            _problem(problems, number, "unknown record type %r" % kind)
            continue
        if order[kind] < stage:
            _problem(
                problems,
                number,
                "%r record out of order (manifest, bus, bits, events, verdict)"
                % kind,
            )
        stage = max(stage, order[kind])
        if kind == MANIFEST:
            _problem(problems, number, "duplicate manifest")
        elif kind == BUS:
            seen_bus += 1
            levels = record.get("levels")
            if not isinstance(levels, str) or set(levels) - {"d", "r"}:
                _problem(problems, number, "bus levels must be a d/r string")
        elif kind == BIT:
            time = record.get("t")
            if not isinstance(time, int):
                _problem(problems, number, "bit record needs an integer 't'")
            elif last_bit_time is not None and time <= last_bit_time:
                _problem(problems, number, "bit times must increase strictly")
            else:
                last_bit_time = time
            for field_name in ("bus", "drives", "views", "pos", "state"):
                if field_name not in record:
                    _problem(problems, number, "bit record missing %r" % field_name)
        elif kind == EVENT:
            for field_name in ("t", "node", "kind"):
                if field_name not in record:
                    _problem(problems, number, "event missing %r" % field_name)
        elif kind == VERDICT:
            seen_verdict += 1
            missing = VERDICT_KEYS - set(record)
            if missing:
                _problem(problems, number, "verdict missing keys %s" % sorted(missing))
    if seen_bus != 1:
        problems.append("expected exactly one bus line, found %d" % seen_bus)
    if seen_verdict != 1:
        problems.append("expected exactly one verdict line, found %d" % seen_verdict)
    return problems


def _validate_traffic(records: List[Dict[str, Any]]) -> List[str]:
    """Validate a v2 (traffic) recording's structure."""
    problems: List[str] = []
    manifest = records[0]
    if manifest.get("type") != MANIFEST:
        _problem(problems, 1, "first line must be the manifest")
    else:
        missing = TRAFFIC_MANIFEST_KEYS - set(manifest)
        if missing:
            _problem(problems, 1, "manifest missing keys %s" % sorted(missing))
        if manifest.get("kind") != "traffic":
            _problem(
                problems, 1, "v2 manifest kind must be 'traffic', got %r"
                % manifest.get("kind")
            )

    seen_bus = 0
    seen_verdict = 0
    last_submission: Optional[int] = None
    stage = 0
    order = {MANIFEST: 0, SUBMISSION: 1, BUS: 2, EVENT: 3, FRAME_VERDICT: 4,
             VERDICT: 5}
    for number, record in enumerate(records[1:], 2):
        kind = record.get("type")
        if kind not in order:
            _problem(problems, number, "unknown record type %r" % kind)
            continue
        if order[kind] < stage:
            _problem(
                problems,
                number,
                "%r record out of order (manifest, submissions, bus, events, "
                "frame verdicts, verdict)" % kind,
            )
        stage = max(stage, order[kind])
        if kind == MANIFEST:
            _problem(problems, number, "duplicate manifest")
        elif kind == SUBMISSION:
            missing = SUBMISSION_KEYS - set(record)
            if missing:
                _problem(
                    problems, number, "submission missing keys %s" % sorted(missing)
                )
            time = record.get("t")
            if not isinstance(time, int):
                _problem(problems, number, "submission needs an integer 't'")
            elif last_submission is not None and time < last_submission:
                _problem(problems, number, "submission times must not decrease")
            else:
                last_submission = time
        elif kind == BUS:
            seen_bus += 1
            levels = record.get("levels")
            if not isinstance(levels, str) or set(levels) - {"d", "r"}:
                _problem(problems, number, "bus levels must be a d/r string")
        elif kind == EVENT:
            for field_name in ("t", "node", "kind"):
                if field_name not in record:
                    _problem(problems, number, "event missing %r" % field_name)
        elif kind == FRAME_VERDICT:
            missing = FRAME_VERDICT_KEYS - set(record)
            if missing:
                _problem(
                    problems,
                    number,
                    "frame verdict missing keys %s" % sorted(missing),
                )
            if record.get("status") not in FRAME_STATUSES:
                _problem(
                    problems, number,
                    "unknown frame status %r" % record.get("status"),
                )
        elif kind == VERDICT:
            seen_verdict += 1
            missing = TRAFFIC_VERDICT_KEYS - set(record)
            if missing:
                _problem(
                    problems, number, "verdict missing keys %s" % sorted(missing)
                )
    if seen_bus != 1:
        problems.append("expected exactly one bus line, found %d" % seen_bus)
    if seen_verdict != 1:
        problems.append("expected exactly one verdict line, found %d" % seen_verdict)
    return problems


def require_valid(records: Iterable[Dict[str, Any]], source: str = "<trace>") -> None:
    """Raise :class:`TraceStoreError` if ``records`` violate the schema."""
    records = list(records)
    problems = validate_records(records)
    if problems:
        version = records[0].get("version") if records else None
        if version not in (SCHEMA_VERSION, TRAFFIC_SCHEMA_VERSION):
            version = SCHEMA_VERSION
        raise TraceStoreError(
            "%s is not a valid v%d recording:\n  %s"
            % (source, version, "\n  ".join(problems))
        )
