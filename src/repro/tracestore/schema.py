"""The versioned on-disk trace schema (JSON Lines).

A recording is one ``.jsonl`` file.  Every line is a JSON object with a
``type`` field; the line order is fixed:

1. exactly one ``manifest`` line (first line of the file) — everything
   needed to *rebuild* the run: schema version, scenario name, per-node
   protocol parameters, the transmitted frame, the serialized injector
   script, and the engine configuration;
2. exactly one ``bus`` line — the resolved bus level stream as a
   compact ``d``/``r`` string (present in every recording, including
   fast-path ones where per-bit records are off);
3. zero or more ``bit`` lines — full per-bit observability (drives,
   views, positions, MAC states per node), present only when the run
   recorded bits;
4. zero or more ``event`` lines — the merged controller event stream;
5. exactly one ``verdict`` line (last line) — per-node delivery counts
   and the consistency classification.

The schema is versioned with :data:`SCHEMA_VERSION`; readers refuse
files from a different major version rather than guessing.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.errors import TraceStoreError

#: Version stamp written into (and required from) every manifest.
SCHEMA_VERSION = 1

#: Line types, in their mandatory file order.
MANIFEST = "manifest"
BUS = "bus"
BIT = "bit"
EVENT = "event"
VERDICT = "verdict"

#: Keys a manifest line must carry.
MANIFEST_KEYS = frozenset(
    {"type", "version", "name", "nodes", "frame", "injector", "engine"}
)

#: Keys every per-node entry of ``manifest["nodes"]`` must carry.
NODE_KEYS = frozenset({"name", "protocol", "m"})

#: Keys a verdict line must carry.
VERDICT_KEYS = frozenset(
    {
        "type",
        "deliveries",
        "crashed",
        "attempts",
        "errors_injected",
        "consistent",
        "inconsistent_omission",
        "double_reception",
    }
)


def _problem(problems: List[str], line_number: int, message: str) -> None:
    problems.append("line %d: %s" % (line_number, message))


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Check a parsed recording against the schema; return the problems.

    An empty list means the recording is well-formed.  The check covers
    structure only (line order, required keys, value shapes) — replaying
    is how behavioural fidelity is checked.
    """
    problems: List[str] = []
    records = list(records)
    if not records:
        return ["file is empty (expected a manifest line)"]

    manifest = records[0]
    if manifest.get("type") != MANIFEST:
        _problem(problems, 1, "first line must be the manifest")
    else:
        missing = MANIFEST_KEYS - set(manifest)
        if missing:
            _problem(problems, 1, "manifest missing keys %s" % sorted(missing))
        version = manifest.get("version")
        if version != SCHEMA_VERSION:
            _problem(
                problems,
                1,
                "unsupported schema version %r (expected %d)"
                % (version, SCHEMA_VERSION),
            )
        for node in manifest.get("nodes", ()):
            if not isinstance(node, dict) or NODE_KEYS - set(node):
                _problem(problems, 1, "malformed node entry %r" % (node,))

    seen_bus = 0
    seen_verdict = 0
    last_bit_time: Optional[int] = None
    stage = 0  # 0 manifest, 1 bus, 2 bits, 3 events, 4 verdict
    order = {MANIFEST: 0, BUS: 1, BIT: 2, EVENT: 3, VERDICT: 4}
    for number, record in enumerate(records[1:], 2):
        kind = record.get("type")
        if kind not in order:
            _problem(problems, number, "unknown record type %r" % kind)
            continue
        if order[kind] < stage:
            _problem(
                problems,
                number,
                "%r record out of order (manifest, bus, bits, events, verdict)"
                % kind,
            )
        stage = max(stage, order[kind])
        if kind == MANIFEST:
            _problem(problems, number, "duplicate manifest")
        elif kind == BUS:
            seen_bus += 1
            levels = record.get("levels")
            if not isinstance(levels, str) or set(levels) - {"d", "r"}:
                _problem(problems, number, "bus levels must be a d/r string")
        elif kind == BIT:
            time = record.get("t")
            if not isinstance(time, int):
                _problem(problems, number, "bit record needs an integer 't'")
            elif last_bit_time is not None and time <= last_bit_time:
                _problem(problems, number, "bit times must increase strictly")
            else:
                last_bit_time = time
            for field_name in ("bus", "drives", "views", "pos", "state"):
                if field_name not in record:
                    _problem(problems, number, "bit record missing %r" % field_name)
        elif kind == EVENT:
            for field_name in ("t", "node", "kind"):
                if field_name not in record:
                    _problem(problems, number, "event missing %r" % field_name)
        elif kind == VERDICT:
            seen_verdict += 1
            missing = VERDICT_KEYS - set(record)
            if missing:
                _problem(problems, number, "verdict missing keys %s" % sorted(missing))
    if seen_bus != 1:
        problems.append("expected exactly one bus line, found %d" % seen_bus)
    if seen_verdict != 1:
        problems.append("expected exactly one verdict line, found %d" % seen_verdict)
    return problems


def require_valid(records: Iterable[Dict[str, Any]], source: str = "<trace>") -> None:
    """Raise :class:`TraceStoreError` if ``records`` violate the schema."""
    problems = validate_records(records)
    if problems:
        raise TraceStoreError(
            "%s is not a valid v%d recording:\n  %s"
            % (source, SCHEMA_VERSION, "\n  ".join(problems))
        )
