"""The golden-scenario regression corpus.

A corpus directory holds one recording per canonical scenario — the
paper's Fig. 1b/1c (double reception, inconsistent omission) and the
new Fig. 3 scenario for each of standard CAN, MinorCAN and MajorCAN_m,
plus EOF/overload edge cases that pin exact wire patterns (the MinorCAN
primary-error overload choreography and the MajorCAN extended error
flag).

Two operations maintain it:

* :func:`update_corpus` re-records every entry from the live scenario
  builders (run after an *intended* behaviour change, then review the
  diff in version control);
* :func:`check_corpus` replays every checked-in recording and diffs it
  against the recording itself — any mismatch is a behavioural
  regression.  Checking fans out over :mod:`repro.parallel`, one task
  per entry, and is deterministic for any ``jobs`` value.
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import TraceStoreError

#: Default corpus directory (repo-root relative).
DEFAULT_CORPUS_DIR = "corpus"


# ---------------------------------------------------------------------------
# Golden entry builders
# ---------------------------------------------------------------------------


def _scenario(name: str, protocol: str):
    from repro.faults.scenarios import SCENARIOS, fig3, fig5

    if name == "fig3":
        return fig3(protocol)
    if name == "fig5":
        return fig5(protocol=protocol)
    return SCENARIOS[name](protocol)


def _eof_extended_flag():
    """MajorCAN_5 extended-flag wire pattern (was an inline golden test)."""
    from repro.can.bits import DOMINANT
    from repro.can.fields import EOF
    from repro.can.frame import data_frame
    from repro.core.majorcan import MajorCanController
    from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
    from repro.faults.scenarios import run_single_frame_scenario

    m = 5
    nodes = [MajorCanController(name, m=m) for name in ("tx", "x", "y")]
    injector = ScriptedInjector(
        view_faults=[ViewFault("x", Trigger(field=EOF, index=m), force=DOMINANT)]
    )
    return run_single_frame_scenario(
        "eof-extended-flag",
        nodes,
        injector,
        frame=data_frame(0x123, b"\x55", message_id="m"),
    )


def _overload_primary():
    """MinorCAN primary-error overload choreography (was an inline golden test)."""
    from repro.can.bits import DOMINANT
    from repro.can.fields import EOF
    from repro.can.frame import data_frame
    from repro.core.minorcan import MinorCanController
    from repro.faults.injector import ScriptedInjector, Trigger, ViewFault
    from repro.faults.scenarios import run_single_frame_scenario

    nodes = [MinorCanController(name) for name in ("tx", "x", "y")]
    injector = ScriptedInjector(
        view_faults=[ViewFault("x", Trigger(field=EOF, index=6), force=DOMINANT)]
    )
    return run_single_frame_scenario(
        "overload-primary",
        nodes,
        injector,
        frame=data_frame(0x123, b"\x55", message_id="m"),
    )


def _golden_builders() -> Dict[str, Callable[[], object]]:
    builders: Dict[str, Callable[[], object]] = {}
    for scenario in ("fig1b", "fig1c"):
        for protocol in ("can", "minorcan", "majorcan"):
            name = "%s-%s" % (scenario, protocol)
            builders[name] = (
                lambda scenario=scenario, protocol=protocol: _scenario(
                    scenario, protocol
                )
            )
    # The Fig. 3 scenario family: the paper labels the standard-CAN run
    # Fig. 3a and the MinorCAN run Fig. 3b; the MajorCAN run of the same
    # fault script has no figure letter of its own.
    builders["fig3a-can"] = lambda: _scenario("fig3", "can")
    builders["fig3b-minorcan"] = lambda: _scenario("fig3", "minorcan")
    builders["fig3-majorcan"] = lambda: _scenario("fig3", "majorcan")
    # EOF / overload edge cases beyond the core figure set.
    builders["fig1a-can"] = lambda: _scenario("fig1a", "can")
    builders["fig5-majorcan"] = lambda: _scenario("fig5", "majorcan")
    builders["eof-extended-flag-majorcan"] = _eof_extended_flag
    builders["overload-primary-minorcan"] = _overload_primary
    return builders


#: Entry name -> builder returning a fresh ``ScenarioOutcome``.
GOLDEN_BUILDERS = _golden_builders()


def _traffic_spec(name: str):
    """The frozen :class:`TrafficSpec` of one multi-frame golden entry.

    Specs, not outcomes: ``update_corpus`` runs them through
    ``run_traffic`` and records the v2 trace; ``check_corpus`` replays
    the recording from its own manifest, so the spec here only matters
    when re-recording.
    """
    from repro.traffic import BurstSpec, TrafficSpec

    specs = {
        # Four nodes at the paper's 90% load factor: sustained
        # arbitration under contention across two spliced windows.
        "traffic-contended-majorcan": TrafficSpec(
            name="traffic-contended-majorcan",
            protocol="majorcan",
            m=5,
            n_nodes=4,
            windows=2,
            window_bits=900,
            load=0.9,
            seed=11,
        ),
        # An error-burst storm: two bursts corrupt a receiver's view
        # mid-frame, forcing error signalling and retransmissions.
        "traffic-burst-storm-can": TrafficSpec(
            name="traffic-burst-storm-can",
            protocol="can",
            n_nodes=3,
            windows=2,
            window_bits=1100,
            load=0.7,
            seed=7,
            bursts=(
                BurstSpec(node="n1", window=0, start=140, length=24),
                BurstSpec(node="n2", window=1, start=400, length=18),
            ),
        ),
        # TEC ramp into bus-off and ISO 11898 recovery: a long burst on
        # the transmitter's own view drives its TEC past 255; low load
        # leaves enough idle recessive bits to rejoin within the window
        # and flush the queued backlog.
        "traffic-busoff-recovery-majorcan": TrafficSpec(
            name="traffic-busoff-recovery-majorcan",
            protocol="majorcan",
            m=5,
            n_nodes=3,
            windows=1,
            window_bits=6000,
            load=0.3,
            seed=3,
            bursts=(BurstSpec(node="n0", window=0, start=10, length=700),),
            bus_off_recovery=True,
        ),
        # An HLP stream: EDCAN riding standard CAN, application-level
        # (origin, seq) ledger keys across two windows.
        "traffic-hlp-edcan": TrafficSpec(
            name="traffic-hlp-edcan",
            protocol="can",
            hlp="edcan",
            n_nodes=3,
            windows=2,
            window_bits=900,
            load=0.3,
            seed=5,
        ),
        # TOTCAN under sustained contention: vector-clock causal order
        # over MajorCAN while three nodes keep the bus busy — the
        # total-order HLP exercised beyond single-frame scenarios.
        "traffic-hlp-totcan-contended": TrafficSpec(
            name="traffic-hlp-totcan-contended",
            protocol="majorcan",
            m=5,
            hlp="totcan",
            n_nodes=3,
            windows=2,
            window_bits=1100,
            load=0.6,
            seed=17,
        ),
        # Random per-bit noise under an HLP: the direction-1 residual
        # channel model (seeded BER flips on one receiver's view) riding
        # the EDCAN ledger.  HLP windows classify to the engine even
        # with the noise evaluator available, so this entry pins the
        # noisy engine path while the batch scan handles raw CAN.
        "traffic-noisy-hlp-edcan": TrafficSpec(
            name="traffic-noisy-hlp-edcan",
            protocol="can",
            hlp="edcan",
            n_nodes=3,
            windows=2,
            window_bits=900,
            load=0.4,
            seed=23,
            noise_ber=0.001,
            noise_nodes=("n1",),
        ),
        # A deterministic burst under the RELCAN relay HLP: the burst
        # forces error signalling mid-window, exercising the relay
        # retransmission ledger across the splice.
        "traffic-burst-relcan": TrafficSpec(
            name="traffic-burst-relcan",
            protocol="can",
            hlp="relcan",
            n_nodes=3,
            windows=2,
            window_bits=1000,
            load=0.5,
            seed=13,
            bursts=(BurstSpec(node="n1", window=0, start=180, length=20),),
        ),
    }
    return specs[name]


#: Multi-frame (schema v2) golden entry names.
GOLDEN_TRAFFIC_ENTRIES = (
    "traffic-burst-relcan",
    "traffic-burst-storm-can",
    "traffic-busoff-recovery-majorcan",
    "traffic-contended-majorcan",
    "traffic-hlp-edcan",
    "traffic-hlp-totcan-contended",
    "traffic-noisy-hlp-edcan",
)


def corpus_entries() -> List[str]:
    """The canonical golden entry names, sorted."""
    return sorted(list(GOLDEN_BUILDERS) + list(GOLDEN_TRAFFIC_ENTRIES))


def entry_path(directory: str, name: str) -> str:
    """Path of one corpus entry file."""
    return os.path.join(directory, name + ".jsonl")


# ---------------------------------------------------------------------------
# update
# ---------------------------------------------------------------------------


def update_corpus(
    directory: str = DEFAULT_CORPUS_DIR,
    names: Optional[Sequence[str]] = None,
) -> List[str]:
    """(Re-)record the golden entries into ``directory``.

    Returns the paths written.  Entries are recorded serially — each is
    a sub-second single-frame run — in sorted name order, so the output
    is deterministic file by file.
    """
    from repro.tracestore.recorder import record_outcome
    from repro.tracestore.spec import spec_from_outcome

    selected = corpus_entries() if names is None else list(names)
    unknown = [
        name
        for name in selected
        if name not in GOLDEN_BUILDERS and name not in GOLDEN_TRAFFIC_ENTRIES
    ]
    if unknown:
        raise TraceStoreError(
            "unknown corpus entries %s (known: %s)" % (unknown, corpus_entries())
        )
    os.makedirs(directory, exist_ok=True)
    written: List[str] = []
    for name in selected:
        path = entry_path(directory, name)
        if name in GOLDEN_TRAFFIC_ENTRIES:
            from repro.traffic import record_traffic, run_traffic

            record_traffic(
                path,
                run_traffic(_traffic_spec(name), jobs=1),
                meta={"entry": name},
            )
            written.append(path)
            continue
        outcome = GOLDEN_BUILDERS[name]()
        spec = spec_from_outcome(outcome)
        written.append(
            record_outcome(path, outcome, spec=spec, meta={"entry": name})
        )
    return written


# ---------------------------------------------------------------------------
# check
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CorpusCheckResult:
    """Replay verdict for one corpus entry (picklable)."""

    entry: str
    path: str
    ok: bool
    detail: str = "identical"


@dataclass
class CorpusReport:
    """Aggregate result of one corpus check."""

    results: List[CorpusCheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every entry replayed bit-identically."""
        return all(result.ok for result in self.results)

    @property
    def failures(self) -> List[CorpusCheckResult]:
        """The entries that failed."""
        return [result for result in self.results if not result.ok]

    def summary(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            "%-4s %-32s %s"
            % ("ok" if result.ok else "FAIL", result.entry, result.detail.splitlines()[0])
            for result in self.results
        ]
        lines.append(
            "%d/%d entries bit-identical"
            % (len(self.results) - len(self.failures), len(self.results))
        )
        return "\n".join(lines)


def check_recording(path: str) -> CorpusCheckResult:
    """Validate and replay one recording; compare against itself."""
    entry = os.path.splitext(os.path.basename(path))[0]
    try:
        from repro.tracestore.replay import replay_trace

        result = replay_trace(path)
    except TraceStoreError as exc:
        return CorpusCheckResult(entry=entry, path=path, ok=False, detail=str(exc))
    if result.bit_identical:
        return CorpusCheckResult(entry=entry, path=path, ok=True)
    return CorpusCheckResult(
        entry=entry, path=path, ok=False, detail=result.diff.summary()
    )


def check_corpus(
    directory: str = DEFAULT_CORPUS_DIR,
    jobs: Optional[int] = None,
    require_golden: bool = True,
) -> CorpusReport:
    """Replay every ``.jsonl`` recording under ``directory``.

    One :class:`repro.parallel.tasks.CorpusCheckTask` per entry is
    fanned out over the worker pool; results keep sorted-path order, so
    the report is identical for any ``jobs`` value.  With
    ``require_golden`` (the default) a missing canonical entry is
    reported as a failure.
    """
    from repro.parallel.pool import run_tasks
    from repro.parallel.tasks import CorpusCheckTask

    if not os.path.isdir(directory):
        raise TraceStoreError("corpus directory %r does not exist" % directory)
    paths = sorted(glob.glob(os.path.join(directory, "*.jsonl")))
    tasks = [CorpusCheckTask(path=path) for path in paths]
    report = CorpusReport(results=list(run_tasks(tasks, jobs=jobs)))
    if require_golden:
        present = {result.entry for result in report.results}
        for name in corpus_entries():
            if name not in present:
                report.results.append(
                    CorpusCheckResult(
                        entry=name,
                        path=entry_path(directory, name),
                        ok=False,
                        detail="golden entry missing (run corpus update)",
                    )
                )
    return report
