"""Deterministic replay of recorded traces, with structured diffing.

:func:`load_trace` parses and validates a recording;
:class:`Replayer` rebuilds the scenario from the manifest (fresh
controllers, a fresh injector script, the recorded frame), re-runs it,
and produces a :class:`TraceDiff` against the recording.  Replay is
fully deterministic — the scripted scenarios contain no randomness and
the engine is single-threaded — so any non-empty diff is a behavioural
change in the simulator or protocol code, which is exactly what the
golden corpus exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.errors import TraceStoreError
from repro.metrics.export import json_line, read_jsonl
from repro.tracestore.recorder import outcome_records
from repro.tracestore.schema import require_valid
from repro.tracestore.spec import ScenarioSpec


@dataclass
class RecordedTrace:
    """A parsed, schema-valid recording, split by record type."""

    manifest: Dict[str, Any]
    bus: str
    bits: List[Dict[str, Any]]
    events: List[Dict[str, Any]]
    verdict: Dict[str, Any]
    source: str = "<memory>"
    #: v2 (traffic) sections; empty on v1 recordings.
    submissions: List[Dict[str, Any]] = field(default_factory=list)
    frame_verdicts: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_records(
        cls, records: List[Dict[str, Any]], source: str = "<memory>"
    ) -> "RecordedTrace":
        """Partition a validated record stream into its sections.

        Compressed recordings (manifest ``compression="rle"``) are
        expanded here, so every consumer downstream — diffing, replay,
        the corpus checks — sees full per-bit records regardless of
        how the file was written.
        """
        require_valid(records, source=source)
        if records and records[0].get("compression") is not None:
            from repro.tracestore.rle import expand_records

            records = expand_records(records)
        manifest = records[0]
        bus = ""
        bits: List[Dict[str, Any]] = []
        events: List[Dict[str, Any]] = []
        verdict: Dict[str, Any] = {}
        submissions: List[Dict[str, Any]] = []
        frame_verdicts: List[Dict[str, Any]] = []
        for record in records[1:]:
            kind = record["type"]
            if kind == "bus":
                bus = record["levels"]
            elif kind == "bit":
                bits.append(record)
            elif kind == "event":
                events.append(record)
            elif kind == "submission":
                submissions.append(record)
            elif kind == "frame_verdict":
                frame_verdicts.append(record)
            elif kind == "verdict":
                verdict = record
        return cls(
            manifest=manifest,
            bus=bus,
            bits=bits,
            events=events,
            verdict=verdict,
            source=source,
            submissions=submissions,
            frame_verdicts=frame_verdicts,
        )

    @property
    def version(self) -> int:
        """The recording's schema version (1 single-frame, 2 traffic)."""
        return self.manifest.get("version", 1)

    def spec(self) -> ScenarioSpec:
        """The rebuildable scenario spec stored in the manifest."""
        return ScenarioSpec.from_manifest(self.manifest)

    def traffic_spec(self):
        """The rebuildable traffic spec of a v2 recording."""
        from repro.traffic import TrafficSpec

        return TrafficSpec.from_manifest(self.manifest)

    @property
    def name(self) -> str:
        """The recorded scenario's name."""
        return self.manifest.get("name", "<unnamed>")


def load_trace(path) -> RecordedTrace:
    """Load and validate one ``.jsonl`` recording from disk."""
    try:
        records = read_jsonl(path)
    except OSError as exc:
        raise TraceStoreError("cannot read recording %s: %s" % (path, exc))
    return RecordedTrace.from_records(records, source=str(path))


def recorded_from_outcome(outcome, spec: Optional[ScenarioSpec] = None) -> RecordedTrace:
    """Capture a completed run as an in-memory :class:`RecordedTrace`."""
    return RecordedTrace.from_records(
        list(outcome_records(outcome, spec=spec)), source="<replay>"
    )


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------

#: Context radius (bits) shown around a bus divergence.
_BUS_CONTEXT = 12
#: Maximum per-section mismatch lines before truncating.
_MAX_REPORTED = 5


@dataclass
class TraceDiff:
    """Structured difference between two recordings.

    Each section lists human-readable mismatch descriptions; an empty
    diff (``identical`` true) means the two recordings are
    byte-equivalent in every section.
    """

    manifest: List[str] = field(default_factory=list)
    bus: List[str] = field(default_factory=list)
    bits: List[str] = field(default_factory=list)
    events: List[str] = field(default_factory=list)
    verdict: List[str] = field(default_factory=list)
    #: v2 (traffic) sections; always empty when diffing v1 recordings.
    submissions: List[str] = field(default_factory=list)
    frame_verdicts: List[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """Whether no section differs."""
        return not (
            self.manifest
            or self.bus
            or self.bits
            or self.events
            or self.verdict
            or self.submissions
            or self.frame_verdicts
        )

    def problems(self) -> List[str]:
        """All mismatches, prefixed with their section."""
        out: List[str] = []
        for section, entries in (
            ("manifest", self.manifest),
            ("submissions", self.submissions),
            ("bus", self.bus),
            ("bits", self.bits),
            ("events", self.events),
            ("frame_verdicts", self.frame_verdicts),
            ("verdict", self.verdict),
        ):
            out.extend("%s: %s" % (section, entry) for entry in entries)
        return out

    def summary(self) -> str:
        """One human-readable block: 'identical' or the mismatch list."""
        if self.identical:
            return "identical"
        return "\n".join(self.problems())


def _diff_record_lists(
    expected: List[Dict[str, Any]],
    actual: List[Dict[str, Any]],
    label: str,
) -> List[str]:
    problems: List[str] = []
    for index, (want, got) in enumerate(zip(expected, actual)):
        if json_line(want) != json_line(got):
            problems.append(
                "%s %d differs: expected %s, got %s"
                % (label, index, json_line(want), json_line(got))
            )
            if len(problems) >= _MAX_REPORTED:
                problems.append("... (further %s diffs suppressed)" % label)
                break
    if len(expected) != len(actual):
        problems.append(
            "%s count differs: expected %d, got %d"
            % (label, len(expected), len(actual))
        )
    return problems


def _diff_bus(expected: str, actual: str) -> List[str]:
    if expected == actual:
        return []
    divergence = next(
        (i for i, (a, b) in enumerate(zip(expected, actual)) if a != b),
        min(len(expected), len(actual)),
    )
    start = max(0, divergence - _BUS_CONTEXT)
    end = divergence + _BUS_CONTEXT
    problems = [
        "first divergence at bit %d" % divergence,
        "expected ...%s..." % expected[start:end],
        "actual   ...%s..." % actual[start:end],
    ]
    if len(expected) != len(actual):
        problems.append(
            "length differs: expected %d bits, got %d" % (len(expected), len(actual))
        )
    return problems


def diff_traces(expected: RecordedTrace, actual: RecordedTrace) -> TraceDiff:
    """Compare two recordings section by section.

    ``expected`` is the reference (e.g. the checked-in corpus entry),
    ``actual`` the candidate (e.g. a fresh replay).
    """
    diff = TraceDiff()
    if json_line(expected.manifest) != json_line(actual.manifest):
        for key in sorted(set(expected.manifest) | set(actual.manifest)):
            want = expected.manifest.get(key)
            got = actual.manifest.get(key)
            if json_line(want) != json_line(got):
                diff.manifest.append(
                    "%r: expected %s, got %s" % (key, json_line(want), json_line(got))
                )
    diff.bus = _diff_bus(expected.bus, actual.bus)
    diff.bits = _diff_record_lists(expected.bits, actual.bits, "bit")
    diff.events = _diff_record_lists(expected.events, actual.events, "event")
    diff.submissions = _diff_record_lists(
        expected.submissions, actual.submissions, "submission"
    )
    diff.frame_verdicts = _diff_record_lists(
        expected.frame_verdicts, actual.frame_verdicts, "frame verdict"
    )
    if json_line(expected.verdict) != json_line(actual.verdict):
        for key in sorted(set(expected.verdict) | set(actual.verdict)):
            want = expected.verdict.get(key)
            got = actual.verdict.get(key)
            if json_line(want) != json_line(got):
                diff.verdict.append(
                    "%r: expected %s, got %s" % (key, json_line(want), json_line(got))
                )
    return diff


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of replaying one recording."""

    recorded: RecordedTrace
    replayed: RecordedTrace
    diff: TraceDiff
    outcome: Any = field(repr=False, default=None)

    @property
    def bit_identical(self) -> bool:
        """Whether the replay reproduced the recording exactly."""
        return self.diff.identical


class Replayer:
    """Rebuild and re-run a recorded scenario, diffing against it.

    Accepts a path to a ``.jsonl`` recording or an already-loaded
    :class:`RecordedTrace`.
    """

    def __init__(self, recording: Union[str, RecordedTrace]) -> None:
        if isinstance(recording, RecordedTrace):
            self.recorded = recording
        else:
            self.recorded = load_trace(recording)

    def spec(self) -> ScenarioSpec:
        """The scenario spec the replay will run."""
        return self.recorded.spec()

    def replay(self) -> ReplayResult:
        """Re-run the recorded scenario and diff it against the recording."""
        if self.recorded.version == 2:
            return self._replay_traffic()
        spec = self.spec()
        outcome = spec.run()
        replayed = recorded_from_outcome(outcome, spec=spec)
        # The recorded manifest may carry free-form metadata or a
        # compression stamp; replays compare scenario substance (the
        # replayed sections are already expanded), so mirror both
        # before diffing.
        for passthrough in ("meta", "compression"):
            if passthrough in self.recorded.manifest:
                replayed.manifest = dict(replayed.manifest)
                replayed.manifest[passthrough] = self.recorded.manifest[
                    passthrough
                ]
        return ReplayResult(
            recorded=self.recorded,
            replayed=replayed,
            diff=diff_traces(self.recorded, replayed),
            outcome=outcome,
        )

    def _replay_traffic(self) -> ReplayResult:
        """Re-run a v2 (traffic) recording from its manifest spec.

        Replays always run ``jobs=1``; the run is jobs-invariant, so a
        recording made with any worker count diffs empty against it.
        """
        from repro.traffic import recorded_traffic, run_traffic

        spec = self.recorded.traffic_spec()
        outcome = run_traffic(spec, jobs=1)
        replayed = recorded_traffic(
            outcome, meta=self.recorded.manifest.get("meta")
        )
        replayed.source = "<replay>"
        return ReplayResult(
            recorded=self.recorded,
            replayed=replayed,
            diff=diff_traces(self.recorded, replayed),
            outcome=outcome,
        )


def replay_trace(path) -> ReplayResult:
    """Convenience: load ``path``, replay it, return the result."""
    return Replayer(path).replay()
