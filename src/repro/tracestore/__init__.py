"""Persistent trace capture, deterministic replay, and the golden corpus.

The trace store turns in-memory simulation runs into durable,
replayable artifacts:

``repro.tracestore.schema``
    The versioned JSONL recording format (manifest, bus stream,
    optional per-bit records, events, verdict) and its validator.

``repro.tracestore.spec``
    :class:`ScenarioSpec` — the plain-data description of a scenario
    (nodes, frame, injector script, engine config) that a manifest
    stores and a replay rebuilds.

``repro.tracestore.recorder``
    :class:`TraceRecorder` — a streaming JSONL writer that captures a
    completed run.  Capture reads the structures the engine already
    maintains, so the ``record_bits=False`` fast path is untouched.

``repro.tracestore.replay``
    :class:`Replayer` — rebuild the scenario from a manifest, re-run
    it, and produce a structured :class:`TraceDiff` (bus divergence,
    per-bit, event and verdict mismatches).

``repro.tracestore.rle``
    Opt-in run-length compression of per-bit records
    (``compression="rle"`` in the manifest), expanded transparently by
    every reader.

``repro.tracestore.corpus``
    The checked-in golden corpus (Fig. 1b/1c and Fig. 3 across CAN,
    MinorCAN and MajorCAN_m, plus EOF/overload edge cases, plus the
    schema-v2 multi-frame traffic entries) with ``update`` and
    parallel ``check`` operations.

Two schema versions coexist: v1 single-frame recordings
(:data:`SCHEMA_VERSION`) and v2 multi-frame traffic recordings
(:data:`TRAFFIC_SCHEMA_VERSION`, written by ``repro.traffic``); the
validator and replayer dispatch on the manifest's ``version``.

CLI: ``majorcan-repro record | replay | diff | corpus | traffic``.
"""

from repro.tracestore.corpus import (
    DEFAULT_CORPUS_DIR,
    CorpusCheckResult,
    CorpusReport,
    GOLDEN_BUILDERS,
    GOLDEN_TRAFFIC_ENTRIES,
    check_corpus,
    check_recording,
    corpus_entries,
    update_corpus,
)
from repro.tracestore.recorder import TraceRecorder, outcome_records, record_outcome
from repro.tracestore.rle import (
    COMPRESSIONS,
    compress_bit_records,
    compress_records,
    expand_bit_records,
    expand_records,
)
from repro.tracestore.replay import (
    RecordedTrace,
    Replayer,
    ReplayResult,
    TraceDiff,
    diff_traces,
    load_trace,
    recorded_from_outcome,
    replay_trace,
)
from repro.tracestore.schema import (
    SCHEMA_VERSION,
    TRAFFIC_SCHEMA_VERSION,
    require_valid,
    validate_records,
)
from repro.tracestore.spec import (
    ScenarioSpec,
    frame_from_dict,
    frame_to_dict,
    spec_from_outcome,
)

__all__ = [
    "COMPRESSIONS",
    "CorpusCheckResult",
    "CorpusReport",
    "DEFAULT_CORPUS_DIR",
    "GOLDEN_BUILDERS",
    "GOLDEN_TRAFFIC_ENTRIES",
    "RecordedTrace",
    "Replayer",
    "ReplayResult",
    "SCHEMA_VERSION",
    "ScenarioSpec",
    "TRAFFIC_SCHEMA_VERSION",
    "TraceDiff",
    "TraceRecorder",
    "check_corpus",
    "check_recording",
    "compress_bit_records",
    "compress_records",
    "corpus_entries",
    "diff_traces",
    "expand_bit_records",
    "expand_records",
    "frame_from_dict",
    "frame_to_dict",
    "load_trace",
    "outcome_records",
    "record_outcome",
    "recorded_from_outcome",
    "replay_trace",
    "require_valid",
    "spec_from_outcome",
    "update_corpus",
    "validate_records",
]
