"""Rebuildable scenario specifications.

A :class:`ScenarioSpec` is the plain-data description of one
single-frame scenario run: the node set (per-node protocol variant and
``m``), the transmitted frame, the serialized fault-injection script,
and the engine configuration.  It is exactly what a recording's
manifest stores, and :meth:`ScenarioSpec.run` is how the replayer turns
a manifest back into live behaviour.

The heavy domain modules (controllers, the scenario harness) are
imported lazily inside the methods, keeping ``import repro.tracestore``
cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.can.frame import Frame
from repro.errors import TraceStoreError
from repro.tracestore.schema import SCHEMA_VERSION


def frame_to_dict(frame: Frame) -> Dict[str, Any]:
    """Serialize a frame to the manifest's plain-dict form."""
    return {
        "id": frame.can_id.value,
        "extended": frame.can_id.extended,
        "remote": frame.remote,
        "dlc": frame.dlc,
        "data": frame.data.hex(),
        "message_id": frame.message_id,
        "origin": frame.origin,
    }


def frame_from_dict(data: Dict[str, Any]) -> Frame:
    """Rebuild a frame from :func:`frame_to_dict` output."""
    from repro.can.identifiers import CanId

    return Frame(
        can_id=CanId(data["id"], extended=bool(data.get("extended", False))),
        data=bytes.fromhex(data.get("data", "")),
        remote=bool(data.get("remote", False)),
        dlc=data.get("dlc"),
        message_id=data.get("message_id"),
        origin=data.get("origin"),
    )


#: One attached controller: (name, protocol registry key, m or None).
NodeSpec = Tuple[str, str, Optional[int]]


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to re-run one recorded single-frame scenario."""

    name: str
    nodes: Tuple[NodeSpec, ...]
    frame: Frame
    injector: Dict[str, Any] = field(default_factory=dict)
    max_bits: int = 20000
    record_bits: bool = True

    # ------------------------------------------------------------------
    # Manifest round-trip
    # ------------------------------------------------------------------

    def to_manifest(self, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The manifest line for this spec (see :mod:`..schema`)."""
        manifest: Dict[str, Any] = {
            "type": "manifest",
            "version": SCHEMA_VERSION,
            "name": self.name,
            "nodes": [
                {"name": name, "protocol": protocol, "m": m}
                for name, protocol, m in self.nodes
            ],
            "frame": frame_to_dict(self.frame),
            "injector": dict(self.injector),
            "engine": {"max_bits": self.max_bits, "record_bits": self.record_bits},
        }
        if meta:
            manifest["meta"] = dict(meta)
        return manifest

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild the spec from a recording's manifest line."""
        version = manifest.get("version")
        if version != SCHEMA_VERSION:
            raise TraceStoreError(
                "cannot rebuild a scenario from schema version %r (supported: %d)"
                % (version, SCHEMA_VERSION)
            )
        try:
            nodes = tuple(
                (node["name"], node["protocol"], node.get("m"))
                for node in manifest["nodes"]
            )
            frame = frame_from_dict(manifest["frame"])
            engine = manifest.get("engine", {})
            return cls(
                name=manifest["name"],
                nodes=nodes,
                frame=frame,
                injector=dict(manifest.get("injector", {})),
                max_bits=int(engine.get("max_bits", 20000)),
                record_bits=bool(engine.get("record_bits", True)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceStoreError("malformed manifest: %s" % exc)

    # ------------------------------------------------------------------
    # Rebuilding live objects
    # ------------------------------------------------------------------

    def build_nodes(self):
        """Instantiate fresh controllers (first entry is the transmitter)."""
        from repro.core.majorcan import DEFAULT_M
        from repro.faults import scenarios

        return [
            scenarios.make_controller(
                protocol, name, m=m if m is not None else DEFAULT_M
            )
            for name, protocol, m in self.nodes
        ]

    def build_injector(self):
        """Instantiate a fresh (unfired) injector from the stored script."""
        from repro.faults.injector import injector_from_dict

        if not self.injector:
            from repro.faults.injector import ScriptedInjector

            return ScriptedInjector()
        return injector_from_dict(self.injector)

    def run(self):
        """Re-run the scenario; returns a fresh ``ScenarioOutcome``."""
        from repro.faults.scenarios import run_single_frame_scenario

        return run_single_frame_scenario(
            self.name,
            self.build_nodes(),
            self.build_injector(),
            frame=self.frame,
            max_bits=self.max_bits,
            record_bits=self.record_bits,
        )


def spec_from_outcome(outcome, max_bits: int = 20000) -> ScenarioSpec:
    """Derive the rebuildable spec of a completed scenario run.

    Works for any outcome produced by ``run_single_frame_scenario``
    whose injector serializes (a :class:`ScriptedInjector` script); the
    random injectors are out of scope for the trace store — record the
    seeded workload parameters instead.
    """
    engine = outcome.engine
    if engine is None:
        raise TraceStoreError("outcome %r carries no engine" % outcome.name)
    if outcome.frame is None:
        raise TraceStoreError("outcome %r carries no frame" % outcome.name)
    injector = engine.injector
    to_dict = getattr(injector, "to_dict", None)
    if to_dict is None:
        raise TraceStoreError(
            "injector %s does not serialize; only scripted scenarios are "
            "recordable" % type(injector).__name__
        )
    nodes = tuple(
        (node.name, type(node).protocol_name.lower(), getattr(node, "m", None))
        for node in engine.nodes
    )
    return ScenarioSpec(
        name=outcome.name,
        nodes=nodes,
        frame=outcome.frame,
        injector=to_dict(),
        max_bits=max_bits,
        record_bits=outcome.trace.record_bits,
    )
