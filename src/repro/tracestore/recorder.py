"""Recording completed simulation runs to the JSONL trace schema.

:class:`TraceRecorder` streams one record (JSON line) at a time to its
sink — it never materialises the whole document — using the shared
deterministic emitter :func:`repro.metrics.export.json_line`.

The recorder deliberately does **not** hook the engine's per-bit loop:
the engine already maintains everything a recording needs (the resolved
bus history in both paths, per-bit :class:`BitRecord` objects when
``record_bits=True``, and the controller event streams), so capture
happens once, after the run, from those structures.  That is what keeps
the ``record_bits=False`` fast path untouched — recording a fast-path
run costs one post-run serialization pass and zero per-bit work.
"""

from __future__ import annotations

import io
from typing import Any, Dict, Iterable, Iterator, Optional

from repro.errors import TraceStoreError
from repro.metrics.export import json_line, normalise_value
from repro.tracestore.spec import ScenarioSpec, spec_from_outcome


def event_record(event) -> Dict[str, Any]:
    """The JSONL record of one controller :class:`Event`."""
    return {
        "type": "event",
        "t": event.time,
        "node": event.node,
        "kind": event.kind,
        "data": normalise_value(event.data),
    }


def bit_record(record) -> Dict[str, Any]:
    """The JSONL record of one per-bit :class:`BitRecord`."""
    return {
        "type": "bit",
        "t": record.time,
        "bus": record.bus.symbol,
        "drives": {name: level.symbol for name, level in record.drives.items()},
        "views": {name: level.symbol for name, level in record.views.items()},
        "pos": {name: list(pos) for name, pos in record.positions.items()},
        "state": dict(record.states),
    }


def verdict_record(outcome) -> Dict[str, Any]:
    """The JSONL verdict line of a completed scenario outcome."""
    return {
        "type": "verdict",
        "deliveries": dict(outcome.deliveries),
        "crashed": list(outcome.crashed),
        "attempts": outcome.attempts,
        "errors_injected": outcome.errors_injected,
        "consistent": outcome.consistent,
        "inconsistent_omission": outcome.inconsistent_omission,
        "double_reception": outcome.double_reception,
    }


def outcome_records(
    outcome,
    spec: Optional[ScenarioSpec] = None,
    meta: Optional[Dict[str, Any]] = None,
    compression: Optional[str] = None,
) -> Iterator[Dict[str, Any]]:
    """Yield the full recording of ``outcome``, line by line, in order.

    ``spec`` defaults to :func:`spec_from_outcome`, i.e. the manifest is
    derived from the very engine that ran.  Supply it explicitly when
    the outcome was produced by :meth:`ScenarioSpec.run` and you want
    the original manifest round-tripped untouched.

    ``compression="rle"`` run-length-encodes the per-bit records (see
    :mod:`repro.tracestore.rle`) and stamps the scheme into the
    manifest so readers expand transparently.
    """
    from repro.tracestore.rle import COMPRESSIONS, compress_bit_records

    if compression is not None and compression not in COMPRESSIONS:
        raise TraceStoreError(
            "unknown trace compression %r (supported: %s)"
            % (compression, ", ".join(COMPRESSIONS))
        )
    if spec is None:
        spec = spec_from_outcome(outcome)
    manifest = spec.to_manifest(meta=meta)
    if compression is not None:
        manifest = dict(manifest)
        manifest["compression"] = compression
    yield manifest
    engine = outcome.engine
    if engine is None:
        raise TraceStoreError("outcome %r carries no engine" % outcome.name)
    yield {
        "type": "bus",
        "levels": "".join(level.symbol for level in engine.bus.history),
    }
    bits = (bit_record(record) for record in outcome.trace.bits)
    if compression is not None:
        for record in compress_bit_records(bits):
            yield record
    else:
        for record in bits:
            yield record
    for event in outcome.trace.events:
        yield event_record(event)
    yield verdict_record(outcome)


class TraceRecorder:
    """Streaming JSONL writer for simulation recordings.

    Usable as a context manager around a path or an open text handle::

        with TraceRecorder("fig1b-can.jsonl") as recorder:
            recorder.write_outcome(outcome)
    """

    def __init__(self, sink) -> None:
        if hasattr(sink, "write"):
            self._handle = sink
            self._owns_handle = False
            self.path: Optional[str] = getattr(sink, "name", None)
        else:
            self._handle = open(sink, "w")
            self._owns_handle = True
            self.path = str(sink)
        self.lines_written = 0

    # ------------------------------------------------------------------
    # Streaming primitives
    # ------------------------------------------------------------------

    def write_record(self, record: Dict[str, Any]) -> None:
        """Emit one schema record as a deterministic JSON line."""
        self._handle.write(json_line(record) + "\n")
        self.lines_written += 1

    def write_records(self, records: Iterable[Dict[str, Any]]) -> int:
        """Emit a stream of schema records; returns the count written."""
        before = self.lines_written
        for record in records:
            self.write_record(record)
        return self.lines_written - before

    # ------------------------------------------------------------------
    # High-level capture
    # ------------------------------------------------------------------

    def write_outcome(
        self,
        outcome,
        spec: Optional[ScenarioSpec] = None,
        meta: Optional[Dict[str, Any]] = None,
        compression: Optional[str] = None,
    ) -> int:
        """Record a completed scenario run (manifest through verdict)."""
        return self.write_records(
            outcome_records(
                outcome, spec=spec, meta=meta, compression=compression
            )
        )

    def close(self) -> None:
        """Flush and, if the recorder opened the sink, close it."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def record_outcome(
    path,
    outcome,
    spec: Optional[ScenarioSpec] = None,
    meta: Optional[Dict[str, Any]] = None,
    compression: Optional[str] = None,
) -> str:
    """Record ``outcome`` to ``path``; returns the path written."""
    with TraceRecorder(path) as recorder:
        recorder.write_outcome(
            outcome, spec=spec, meta=meta, compression=compression
        )
    return str(path)


def records_to_text(records: Iterable[Dict[str, Any]]) -> str:
    """Render a record stream as in-memory JSONL (replay comparisons)."""
    buffer = io.StringIO()
    with TraceRecorder(buffer) as recorder:
        recorder.write_records(records)
    return buffer.getvalue()
