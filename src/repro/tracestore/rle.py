"""Run-length (carry-forward) compression of per-bit trace records.

A ``bit`` line carries five observability fields — ``bus``, ``drives``,
``views``, ``pos``, ``state`` — sampled every bus bit.  Most of them
run for long stretches unchanged (a node's MAC state persists across a
whole field; all views equal the bus level whenever no fault fires), so
a recording with per-bit observability is dominated by repeated values.

The ``"rle"`` scheme run-length-encodes each field's value stream by
omission: the first ``bit`` record of a run is written in full, and
every subsequent record keeps only ``type``, ``t`` and the fields whose
value *changed* since the previous bit — an omitted field means "the
run continues".  Expansion carries the previous value forward, so
``expand_records(compress_records(records)) == records`` exactly (the
round-trip property the tests pin down).

Opt-in via ``compression="rle"`` on the recorder, which stamps the
manifest; readers (:mod:`repro.tracestore.replay`, the schema
validator) expand transparently, so a compressed recording replays and
diffs byte-identically to its uncompressed twin.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.errors import TraceStoreError

#: The manifest value naming this scheme.
RLE = "rle"

#: Compression schemes a manifest may name.
COMPRESSIONS = (RLE,)

#: The bit-record fields subject to carry-forward omission (everything
#: except ``type`` and the strictly-increasing ``t``).
_BIT_FIELDS = ("bus", "drives", "views", "pos", "state")


def _frozen(value: Any) -> str:
    """A hashable, order-insensitive identity for run comparison."""
    return json.dumps(value, sort_keys=True)


def compress_bit_records(
    bits: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Run-length-compress a stream of full ``bit`` records."""
    compressed: List[Dict[str, Any]] = []
    previous: Dict[str, str] = {}
    for record in bits:
        missing = [name for name in _BIT_FIELDS if name not in record]
        if missing:
            raise TraceStoreError(
                "cannot compress bit record at t=%r: missing %s"
                % (record.get("t"), ", ".join(missing))
            )
        line: Dict[str, Any] = {"type": "bit", "t": record["t"]}
        for name in _BIT_FIELDS:
            identity = _frozen(record[name])
            if previous.get(name) != identity:
                line[name] = record[name]
                previous[name] = identity
        compressed.append(line)
    return compressed


def expand_bit_records(
    bits: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Invert :func:`compress_bit_records` by carrying values forward."""
    expanded: List[Dict[str, Any]] = []
    carried: Dict[str, Any] = {}
    for record in bits:
        line: Dict[str, Any] = {"type": "bit", "t": record.get("t")}
        for name in _BIT_FIELDS:
            if name in record:
                carried[name] = record[name]
            elif name not in carried:
                raise TraceStoreError(
                    "compressed bit record at t=%r omits %r before any "
                    "run started" % (record.get("t"), name)
                )
            # Re-parse the carried identity so expanded records never
            # alias each other's mutable field values.
            line[name] = json.loads(_frozen(carried[name]))
        expanded.append(line)
    return expanded


def compress_records(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Compress the ``bit`` lines of a whole record stream in place.

    Non-``bit`` lines pass through untouched; the caller is responsible
    for stamping ``compression="rle"`` into the manifest.
    """
    out: List[Dict[str, Any]] = []
    run: List[Dict[str, Any]] = []
    for record in records:
        if record.get("type") == "bit":
            run.append(record)
            continue
        if run:
            out.extend(compress_bit_records(run))
            run = []
        out.append(record)
    if run:
        out.extend(compress_bit_records(run))
    return out


def expand_records(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Expand the ``bit`` lines of a compressed record stream."""
    out: List[Dict[str, Any]] = []
    run: List[Dict[str, Any]] = []
    for record in records:
        if record.get("type") == "bit":
            run.append(record)
            continue
        if run:
            out.extend(expand_bit_records(run))
            run = []
        out.append(record)
    if run:
        out.extend(expand_bit_records(run))
    return out


def require_known_compression(manifest: Dict[str, Any]) -> None:
    """Reject manifests naming a compression this reader cannot expand."""
    compression = manifest.get("compression")
    if compression is not None and compression not in COMPRESSIONS:
        raise TraceStoreError(
            "unknown trace compression %r (supported: %s)"
            % (compression, ", ".join(COMPRESSIONS))
        )
