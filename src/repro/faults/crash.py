"""Crash-failure injection helpers.

The paper's failure model allows *benign* node failures; the relevant
one for the Fig. 1c scenario is a transmitter crash that impedes the
retransmission of a rejected frame.  The generic machinery lives in
:class:`repro.faults.injector.CrashFault`; this module adds convenience
constructors and an exponential crash process used by the analytical
comparison (the ``1 - exp(-lambda * dt)`` factor in equation 5).
"""

from __future__ import annotations

import math

from repro.can.controller import STATE_ERROR_FLAG
from repro.errors import AnalysisError
from repro.faults.injector import CrashFault, Trigger

#: The transmitter failure rate used in the paper's Table 1:
#: lambda = 1e-3 failures/hour (the maximum considered in [10]).
PAPER_LAMBDA_PER_HOUR = 1e-3

#: The vulnerability window used in the paper's Table 1: dt = 5 ms.
PAPER_DELTA_T_HOURS = 5e-3 / 3600.0


def crash_at_time(node: str, time: int) -> CrashFault:
    """Crash ``node`` at an absolute bit time."""
    return CrashFault(node, Trigger(time=time))


def crash_on_error_flag(node: str) -> CrashFault:
    """Crash ``node`` when it starts signalling an error.

    For a transmitter this is exactly the Fig. 1c failure: the error
    was detected (the frame is scheduled for retransmission) but the
    node dies before the retransmission can happen.
    """
    return CrashFault(node, Trigger(state=STATE_ERROR_FLAG))


def crash_probability(lambda_per_hour: float, delta_t_hours: float) -> float:
    """``1 - exp(-lambda * dt)``: probability of a crash within a window.

    This is the transmitter-failure factor of equation 5, evaluated in
    the paper with ``lambda = 1e-3 /h`` and ``dt = 5 ms``.
    """
    if lambda_per_hour < 0 or delta_t_hours < 0:
        raise AnalysisError("rates and windows must be non-negative")
    return 1.0 - math.exp(-lambda_per_hour * delta_t_hours)
