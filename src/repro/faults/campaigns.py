"""Structured fault-injection campaigns.

A campaign runs many independent *rounds*: in each round a critical
message is broadcast over background traffic while a configurable mix
of disturbances strikes — the paper's deterministic tail patterns
(with some probability per round) and uniform random view noise.  The
automotive example in ``examples/automotive_network.py`` is a thin
wrapper over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.errors import ConfigurationError
from repro.faults.bit_errors import RandomViewErrorInjector
from repro.faults.injector import (
    CompositeInjector,
    ScriptedInjector,
    Trigger,
    ViewFault,
)
from repro.faults.scenarios import make_controller
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import SeedLike, make_rng


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of a consistency campaign."""

    protocol: str = "can"
    m: int = 5
    n_nodes: int = 4
    rounds: int = 50
    #: Probability that a round suffers the Fig. 3a tail pattern.
    attack_probability: float = 0.3
    #: Uniform per-node per-bit view noise (0 disables).
    noise_ber_star: float = 0.0
    #: Background frames per non-critical node per round.
    background_frames: int = 1
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.n_nodes < 3:
            raise ConfigurationError("campaigns need at least 3 nodes")
        if not 0.0 <= self.attack_probability <= 1.0:
            raise ConfigurationError("attack_probability is a probability")
        if self.rounds < 1:
            raise ConfigurationError("at least one round required")


@dataclass
class CampaignOutcome:
    """Aggregated round classifications."""

    spec: CampaignSpec
    rounds: int = 0
    attacked_rounds: int = 0
    consistent: int = 0
    omissions: int = 0
    duplications: int = 0
    errors_injected: int = 0
    omission_rounds: List[int] = field(default_factory=list)

    @property
    def omission_rate(self) -> float:
        """Fraction of rounds ending in an inconsistent omission."""
        return self.omissions / self.rounds if self.rounds else 0.0

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.spec.protocol,
            "rounds": self.rounds,
            "attacked": self.attacked_rounds,
            "consistent": self.consistent,
            "imo": self.omissions,
            "double": self.duplications,
            "errors": self.errors_injected,
        }


def run_campaign(spec: CampaignSpec) -> CampaignOutcome:
    """Run the campaign described by ``spec``."""
    rng = make_rng(spec.seed)
    outcome = CampaignOutcome(spec=spec)
    node_names = ["critical"] + ["bg%d" % i for i in range(1, spec.n_nodes)]
    for round_index in range(spec.rounds):
        attacked = bool(rng.random() < spec.attack_probability)
        victim = node_names[1 + int(rng.integers(0, spec.n_nodes - 1))]
        counts, injected = _run_round(spec, node_names, attacked, victim, rng)
        outcome.rounds += 1
        outcome.attacked_rounds += int(attacked)
        outcome.errors_injected += injected
        if any(count == 0 for count in counts) and any(count > 0 for count in counts):
            outcome.omissions += 1
            outcome.omission_rounds.append(round_index)
        elif any(count > 1 for count in counts):
            outcome.duplications += 1
        else:
            outcome.consistent += 1
    return outcome


def _run_round(
    spec: CampaignSpec,
    node_names: Sequence[str],
    attacked: bool,
    victim: str,
    rng,
):
    controllers = [
        make_controller(spec.protocol, name, m=spec.m) for name in node_names
    ]
    eof_last = controllers[0].config.eof_length - 1
    faults = []
    if attacked:
        faults = [
            ViewFault(victim, Trigger(field=EOF, index=eof_last - 1), force=DOMINANT),
            ViewFault(
                "critical", Trigger(field=EOF, index=eof_last), force=RECESSIVE
            ),
        ]
    scripted = ScriptedInjector(view_faults=faults)
    injector = scripted
    noise: Optional[RandomViewErrorInjector] = None
    if spec.noise_ber_star > 0.0:
        noise = RandomViewErrorInjector(spec.noise_ber_star, seed=rng)
        injector = CompositeInjector([scripted, noise])
    engine = SimulationEngine(controllers, injector=injector, record_bits=False)
    command = data_frame(0x010, b"\xc0\x01", message_id="critical")
    controllers[0].submit(command)
    for index, controller in enumerate(controllers[1:], start=1):
        for seq in range(spec.background_frames):
            controller.submit(
                data_frame(0x100 + index, bytes([index, seq]))
            )
    try:
        engine.run_until_idle(120000)
    except Exception:
        pass  # extreme noise may keep a node retrying; classify anyway
    key = (
        command.can_id.value,
        command.can_id.extended,
        command.remote,
        command.dlc,
        command.data,
    )
    counts = [
        sum(1 for d in controller.deliveries if d.wire_key() == key)
        for controller in controllers
        if not controller.offline
    ]
    injected = scripted.total_fired + (noise.injected if noise else 0)
    return counts, injected


def compare_protocols(
    protocols: Sequence[str] = ("can", "minorcan", "majorcan"),
    **spec_kwargs: object,
) -> List[CampaignOutcome]:
    """Run the same campaign (same seed) for several protocols."""
    return [
        run_campaign(CampaignSpec(protocol=protocol, **spec_kwargs))  # type: ignore[arg-type]
        for protocol in protocols
    ]
