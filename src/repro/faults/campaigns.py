"""Structured fault-injection campaigns.

A campaign runs many independent *rounds*: in each round a critical
message is broadcast over background traffic while a configurable mix
of disturbances strikes — the paper's deterministic tail patterns
(with some probability per round) and uniform random view noise.  The
automotive example in ``examples/automotive_network.py`` is a thin
wrapper over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.can.bits import DOMINANT, RECESSIVE
from repro.can.fields import EOF
from repro.can.frame import data_frame
from repro.errors import ConfigurationError
from repro.faults.bit_errors import RandomViewErrorInjector
from repro.faults.injector import (
    CompositeInjector,
    ScriptedInjector,
    Trigger,
    ViewFault,
)
from repro.faults.scenarios import make_controller
from repro.parallel.pool import run_tasks
from repro.parallel.seeds import chunk_sizes, spawn_seeds
from repro.parallel.tasks import CampaignRoundsChunk
from repro.simulation.engine import SimulationEngine
from repro.simulation.rng import SeedLike

#: Rounds per task chunk (fixed regardless of ``jobs``; see
#: :mod:`repro.parallel`).
CHUNK_ROUNDS = 8


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of a consistency campaign."""

    protocol: str = "can"
    m: int = 5
    n_nodes: int = 4
    rounds: int = 50
    #: Probability that a round suffers the Fig. 3a tail pattern.
    attack_probability: float = 0.3
    #: Uniform per-node per-bit view noise (0 disables).
    noise_ber_star: float = 0.0
    #: Background frames per non-critical node per round.
    background_frames: int = 1
    seed: SeedLike = None

    def __post_init__(self) -> None:
        if self.n_nodes < 3:
            raise ConfigurationError("campaigns need at least 3 nodes")
        if not 0.0 <= self.attack_probability <= 1.0:
            raise ConfigurationError("attack_probability is a probability")
        if self.rounds < 1:
            raise ConfigurationError("at least one round required")


@dataclass
class CampaignOutcome:
    """Aggregated round classifications."""

    spec: CampaignSpec
    rounds: int = 0
    attacked_rounds: int = 0
    consistent: int = 0
    omissions: int = 0
    duplications: int = 0
    errors_injected: int = 0
    omission_rounds: List[int] = field(default_factory=list)
    #: Batch-backend provenance counters, summed over all round chunks
    #: (empty on the engine backend).
    backend_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def omission_rate(self) -> float:
        """Fraction of rounds ending in an inconsistent omission."""
        return self.omissions / self.rounds if self.rounds else 0.0

    def as_row(self) -> Dict[str, object]:
        return {
            "protocol": self.spec.protocol,
            "rounds": self.rounds,
            "attacked": self.attacked_rounds,
            "consistent": self.consistent,
            "imo": self.omissions,
            "double": self.duplications,
            "errors": self.errors_injected,
        }


def run_campaign(
    spec: CampaignSpec,
    jobs: Optional[int] = 1,
    chunk_rounds: int = CHUNK_ROUNDS,
    backend: str = "engine",
) -> CampaignOutcome:
    """Run the campaign described by ``spec``.

    Every round gets its own child seed spawned from ``spec.seed``, so
    the attack schedule (and each round's noise stream) depends only on
    the seed and the round index — never on the protocol under test or
    on how many workers executed the rounds.  ``jobs > 1`` fans chunks
    of rounds out over the worker pool with identical results.

    ``backend="batch"`` classifies noise-free rounds with the vectorised
    tail replay of :mod:`repro.analysis.batchreplay`, and noisy rounds
    with the draw-order-preserving scan of
    :mod:`repro.analysis.noisebatch` — a round whose noise mask never
    fires resolves through the same tail replay; a round whose mask
    fires reruns on the engine from the rewound generator.  Round rows
    are identical either way; provenance lands in
    ``CampaignOutcome.backend_stats``.
    """
    if backend not in ("engine", "batch"):
        raise ConfigurationError(
            "unknown backend %r (use 'engine' or 'batch')" % (backend,)
        )
    outcome = CampaignOutcome(spec=spec)
    children = spawn_seeds(spec.seed, spec.rounds)
    tasks = []
    start = 0
    for size in chunk_sizes(spec.rounds, chunk_rounds):
        tasks.append(
            CampaignRoundsChunk(
                protocol=spec.protocol,
                m=spec.m,
                n_nodes=spec.n_nodes,
                attack_probability=spec.attack_probability,
                noise_ber_star=spec.noise_ber_star,
                background_frames=spec.background_frames,
                rounds=tuple(
                    (index, children[index])
                    for index in range(start, start + size)
                ),
                backend=backend,
            )
        )
        start += size
    if backend == "batch" and spec.noise_ber_star > 0.0:
        # Forked workers prime the reference-round cache once (there
        # are only n_nodes distinct noise-free rounds per spec) instead
        # of once per chunk.
        from repro.parallel.pool import set_worker_context

        node_names = ["critical"] + [
            "bg%d" % i for i in range(1, spec.n_nodes)
        ]
        entries = [
            (spec.protocol, spec.m, tuple(node_names),
             spec.background_frames, False, None)
        ] + [
            (spec.protocol, spec.m, tuple(node_names),
             spec.background_frames, True, victim)
            for victim in node_names[1:]
        ]
        set_worker_context(
            (("repro.faults.campaigns", "warm_campaign", (tuple(entries),)),)
        )
        try:
            chunks = run_tasks(tasks, jobs)
        finally:
            set_worker_context(())
    else:
        chunks = run_tasks(tasks, jobs)
    for chunk in chunks:
        for key, value in chunk.stats.items():
            outcome.backend_stats[key] = outcome.backend_stats.get(key, 0) + value
        for round_index, attacked, category, injected in chunk.rounds:
            outcome.rounds += 1
            outcome.attacked_rounds += int(attacked)
            outcome.errors_injected += injected
            if category == "imo":
                outcome.omissions += 1
                outcome.omission_rounds.append(round_index)
            elif category == "double":
                outcome.duplications += 1
            else:
                outcome.consistent += 1
    return outcome


def classify_counts(counts: Sequence[int]) -> str:
    """Classify one round's delivery counts: imo, double or consistent."""
    if any(count == 0 for count in counts) and any(count > 0 for count in counts):
        return "imo"
    if any(count > 1 for count in counts):
        return "double"
    return "consistent"


def _round_network(
    protocol: str,
    m: int,
    node_names: Sequence[str],
    attacked: bool,
    victim: str,
):
    """Fresh controllers + scripted injector for one round (no frames yet)."""
    controllers = [make_controller(protocol, name, m=m) for name in node_names]
    eof_last = controllers[0].config.eof_length - 1
    faults = []
    if attacked:
        faults = [
            ViewFault(victim, Trigger(field=EOF, index=eof_last - 1), force=DOMINANT),
            ViewFault(
                "critical", Trigger(field=EOF, index=eof_last), force=RECESSIVE
            ),
        ]
    return controllers, ScriptedInjector(view_faults=faults)


def _submit_round(controllers, background_frames: int):
    """Queue the critical command + background traffic; returns the command."""
    command = data_frame(0x010, b"\xc0\x01", message_id="critical")
    controllers[0].submit(command)
    for index, controller in enumerate(controllers[1:], start=1):
        for seq in range(background_frames):
            controller.submit(
                data_frame(0x100 + index, bytes([index, seq]))
            )
    return command


#: Per-process cache of noise-free reference round lengths, keyed by
#: everything a round's timeline depends on besides the noise stream.
_ROUND_REFERENCE: Dict[tuple, int] = {}


def round_reference_bits(
    protocol: str,
    m: int,
    node_names: Sequence[str],
    background_frames: int,
    attacked: bool,
    victim: Optional[str],
) -> int:
    """Bus bits of the noise-free (scripted-faults-only) round.

    A noisy round whose per-bit noise mask never fires *is* this
    reference round, so its bit count bounds the draws the engine's
    noise injector would consume: exactly ``bits * n_nodes`` uniforms
    (one per node per tick).  The vectorised campaign scan thresholds
    that prefix to decide whether a round needs the engine at all.
    Cached per process — there are only ``n_nodes`` distinct rounds
    (not attacked, or attacked per victim) for a given spec.
    """
    key = (
        protocol,
        m,
        tuple(node_names),
        background_frames,
        victim if attacked else None,
    )
    cached = _ROUND_REFERENCE.get(key)
    if cached is not None:
        return cached
    controllers, scripted = _round_network(protocol, m, node_names, attacked, victim)
    engine = SimulationEngine(controllers, injector=scripted, record_bits=False)
    _submit_round(controllers, background_frames)
    try:
        engine.run_until_idle(120000)
    except Exception:
        pass  # the noisy zero-flip round would stop at the same tick
    _ROUND_REFERENCE[key] = engine.time
    return engine.time


def warm_campaign(entries) -> None:
    """Worker warm hook: prime the reference-round cache at fork time.

    ``entries`` are ``round_reference_bits`` argument tuples broadcast
    via :func:`repro.parallel.set_worker_context`.  Purely a cache
    fill — failures are swallowed, chunks rebuild on demand.
    """
    for entry in entries:
        try:
            round_reference_bits(*entry)
        except Exception:  # pragma: no cover - warm-up must never kill a worker
            continue


def run_round(
    protocol: str,
    m: int,
    node_names: Sequence[str],
    background_frames: int,
    noise_ber_star: float,
    attacked: bool,
    victim: str,
    rng,
):
    """Execute one campaign round; returns (delivery counts, injected).

    Pure function of its arguments (including the generator state) so
    :class:`repro.parallel.tasks.CampaignRoundsChunk` can run rounds in
    worker processes.
    """
    controllers, scripted = _round_network(protocol, m, node_names, attacked, victim)
    injector = scripted
    noise: Optional[RandomViewErrorInjector] = None
    if noise_ber_star > 0.0:
        noise = RandomViewErrorInjector(noise_ber_star, seed=rng)
        injector = CompositeInjector([scripted, noise])
    engine = SimulationEngine(controllers, injector=injector, record_bits=False)
    command = _submit_round(controllers, background_frames)
    try:
        engine.run_until_idle(120000)
    except Exception:
        pass  # extreme noise may keep a node retrying; classify anyway
    key = (
        command.can_id.value,
        command.can_id.extended,
        command.remote,
        command.dlc,
        command.data,
    )
    counts = [
        sum(1 for d in controller.deliveries if d.wire_key() == key)
        for controller in controllers
        if not controller.offline
    ]
    injected = scripted.total_fired + (noise.injected if noise else 0)
    return counts, injected


def compare_protocols(
    protocols: Sequence[str] = ("can", "minorcan", "majorcan"),
    jobs: Optional[int] = 1,
    backend: str = "engine",
    **spec_kwargs: object,
) -> List[CampaignOutcome]:
    """Run the same campaign (same seed) for several protocols."""
    return [
        run_campaign(
            CampaignSpec(protocol=protocol, **spec_kwargs),  # type: ignore[arg-type]
            jobs=jobs,
            backend=backend,
        )
        for protocol in protocols
    ]
