"""The spatial bit-error model of Section 4 (equations 1-3).

Rufino et al. model channel errors with a network-wide *bit error
rate* (``ber``).  The paper refines this with Charzinski's spatial
distribution: ``p_eff`` is the probability that a bit error occurring
somewhere in the network is effective at (affects the view of) a given
node.  With errors randomly distributed over the nodes,
``p_eff = 1 / N`` and the per-node, per-bit error probability is::

    ber* = ber / N                                            (eq. 3)
"""

from __future__ import annotations

from repro.errors import AnalysisError

#: The ber values tabulated in Table 1 of the paper.
TABLE1_BER_VALUES = (1e-4, 1e-5, 1e-6)

#: The aerospace (and, increasingly, automotive) dependability target
#: the paper compares against: 1e-9 incidents per hour.
REFERENCE_INCIDENT_RATE = 1e-9


def p_eff(n_nodes: int) -> float:
    """Charzinski's effectivity: P{error affects node | error occurred}.

    Errors are assumed randomly distributed over the ``n_nodes`` nodes.
    """
    if n_nodes < 1:
        raise AnalysisError("the network needs at least one node")
    return 1.0 / n_nodes


def ber_star(ber: float, n_nodes: int) -> float:
    """Equation 3: per-node effective bit error rate ``ber / N``."""
    if not 0.0 <= ber <= 1.0:
        raise AnalysisError("ber must be a probability, got %r" % ber)
    return ber * p_eff(n_nodes)
