"""Random bit-error injection following the paper's spatial model.

Every node's view of every bus bit is flipped independently with
probability ``ber*`` (:func:`repro.faults.models.ber_star`).  This is
the stochastic counterpart of the deterministic scenario scripts and
drives the Monte-Carlo validation of the analytical model (experiment
E-MC in DESIGN.md).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence, Tuple

from repro.can.bits import Level
from repro.can.controller import CanController
from repro.errors import ConfigurationError
from repro.simulation.engine import FaultInjector
from repro.simulation.rng import SeedLike, make_rng


class RandomViewErrorInjector(FaultInjector):
    """Flip each node's view of each bit with probability ``ber_star``.

    Parameters
    ----------
    ber_star:
        Per-node, per-bit flip probability (``ber / N`` in the paper's
        model).
    seed:
        Seed or generator for reproducibility.
    only_nodes:
        Optional restriction of the fault universe to some node names
        (useful to keep a reference observer fault-free).
    """

    def __init__(
        self,
        ber_star: float,
        seed: SeedLike = None,
        only_nodes: Optional[Sequence[str]] = None,
    ) -> None:
        if not 0.0 <= ber_star <= 1.0:
            raise ConfigurationError("ber_star must be a probability")
        self.ber_star = ber_star
        self.rng = make_rng(seed)
        self.only_nodes = set(only_nodes) if only_nodes is not None else None
        self.injected = 0
        self.injected_by_node: Counter = Counter()
        self.injections: list = []

    def perturb_view(self, node: CanController, time: int, bus_level: Level) -> Level:
        if self.only_nodes is not None and node.name not in self.only_nodes:
            return bus_level
        if self.rng.random() >= self.ber_star:
            return bus_level
        self.injected += 1
        self.injected_by_node[node.name] += 1
        self.injections.append((time, node.name, node.position))
        return bus_level.flipped()


class BurstViewErrorInjector(FaultInjector):
    """Flip a contiguous burst of one node's view bits.

    Used by the CRC robustness tests: CAN's CRC-15 detects any burst
    shorter than 15 bits, so a burst injector exercises exactly that
    guarantee.
    """

    def __init__(self, node: str, start_time: int, length: int) -> None:
        if length < 1:
            raise ConfigurationError("burst length must be positive")
        self.node = node
        self.start_time = start_time
        self.length = length
        self.injected = 0

    def perturb_view(self, node: CanController, time: int, bus_level: Level) -> Level:
        if node.name != self.node:
            return bus_level
        if self.start_time <= time < self.start_time + self.length:
            self.injected += 1
            return bus_level.flipped()
        return bus_level


class ErrorBudgetInjector(FaultInjector):
    """Flip an exact set of (time, node) view bits.

    The property-based MajorCAN consistency tests use this to place a
    bounded number of random errors (``<= m``) at arbitrary positions
    relative to the frame end.
    """

    def __init__(self, flips: Sequence[Tuple[int, str]]) -> None:
        self._flips: Dict[Tuple[int, str], bool] = {
            (int(time), name): False for time, name in flips
        }

    def perturb_view(self, node: CanController, time: int, bus_level: Level) -> Level:
        key = (time, node.name)
        if key in self._flips:
            self._flips[key] = True
            return bus_level.flipped()
        return bus_level

    @property
    def applied(self) -> int:
        """Number of scheduled flips that actually happened."""
        return sum(1 for fired in self._flips.values() if fired)
