"""Deterministic, scriptable fault injection.

The paper's error model perturbs *a node's particular view of a bit*.
:class:`ScriptedInjector` applies a list of :class:`ViewFault` /
:class:`DriveFault` / :class:`CrashFault` records, each guarded by a
:class:`Trigger` that can match a bit time, a node's frame-relative
position (e.g. "the 6th bit of this node's EOF") or a MAC state.
Position triggers are the natural language of the paper's figures:
"a disturbance corrupts the last but one bit of the EOF of the nodes
belonging to X" becomes ``ViewFault("x", Trigger(field=EOF, index=5),
force=DOMINANT)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.can.bits import Level
from repro.can.controller import CanController
from repro.errors import ConfigurationError
from repro.simulation.engine import FaultInjector


def _level_to_symbol(level: Optional[Level]) -> Optional[str]:
    return None if level is None else level.symbol


def _level_from_symbol(symbol: Optional[str]) -> Optional[Level]:
    if symbol is None:
        return None
    if symbol == "d":
        return Level.DOMINANT
    if symbol == "r":
        return Level.RECESSIVE
    raise ConfigurationError("unknown level symbol %r (expected 'd'/'r')" % symbol)


@dataclass
class Trigger:
    """Condition deciding when a fault fires.

    All provided criteria must hold simultaneously.  ``occurrence``
    selects the n-th match (1-based); a fault with ``repeat=True``
    fires on every match from that occurrence onwards.
    """

    field: Optional[str] = None
    index: Optional[int] = None
    time: Optional[int] = None
    state: Optional[str] = None
    occurrence: int = 1
    repeat: bool = False
    _matches: int = 0

    def __post_init__(self) -> None:
        if self.field is None and self.time is None and self.state is None:
            raise ConfigurationError("a trigger needs a field, time or state")
        if self.occurrence < 1:
            raise ConfigurationError("occurrence is 1-based")

    def fires(self, node: CanController, time: int) -> bool:
        """Whether the fault guarded by this trigger fires now."""
        if self.time is not None and time != self.time:
            return False
        if self.field is not None and node.position[0] != self.field:
            return False
        if self.index is not None and node.position[1] != self.index:
            return False
        if self.state is not None and node.state != self.state:
            return False
        self._matches += 1
        if self.repeat:
            return self._matches >= self.occurrence
        return self._matches == self.occurrence

    def reset(self) -> None:
        """Forget past matches (for reusing a scenario definition)."""
        self._matches = 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of the trigger *condition* (no runtime state).

        Round-trips through :meth:`from_dict`; used by the trace store
        manifests and campaign logs.
        """
        return {
            "field": self.field,
            "index": self.index,
            "time": self.time,
            "state": self.state,
            "occurrence": self.occurrence,
            "repeat": self.repeat,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Trigger":
        """Rebuild a fresh (unfired) trigger from :meth:`to_dict` output."""
        return cls(
            field=data.get("field"),
            index=data.get("index"),
            time=data.get("time"),
            state=data.get("state"),
            occurrence=data.get("occurrence", 1),
            repeat=bool(data.get("repeat", False)),
        )


@dataclass
class ViewFault:
    """Corrupt the level a node observes.

    ``force`` fixes the observed level; ``force=None`` flips it.
    """

    node: str
    trigger: Trigger
    force: Optional[Level] = None
    fired_at: List[int] = field(default_factory=list)

    def apply(self, level: Level) -> Level:
        return self.force if self.force is not None else level.flipped()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of the fault script (no runtime state)."""
        return {
            "node": self.node,
            "trigger": self.trigger.to_dict(),
            "force": _level_to_symbol(self.force),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ViewFault":
        """Rebuild a fresh (unfired) fault from :meth:`to_dict` output."""
        return cls(
            node=data["node"],
            trigger=Trigger.from_dict(data["trigger"]),
            force=_level_from_symbol(data.get("force")),
        )


@dataclass
class DriveFault:
    """Corrupt the level a node physically drives (transmit-side fault)."""

    node: str
    trigger: Trigger
    force: Optional[Level] = None
    fired_at: List[int] = field(default_factory=list)

    def apply(self, level: Level) -> Level:
        return self.force if self.force is not None else level.flipped()

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of the fault script (no runtime state)."""
        return {
            "node": self.node,
            "trigger": self.trigger.to_dict(),
            "force": _level_to_symbol(self.force),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DriveFault":
        """Rebuild a fresh (unfired) fault from :meth:`to_dict` output."""
        return cls(
            node=data["node"],
            trigger=Trigger.from_dict(data["trigger"]),
            force=_level_from_symbol(data.get("force")),
        )


@dataclass
class CrashFault:
    """Fail-silent crash of a node (used by the Fig. 1c scenario)."""

    node: str
    trigger: Trigger
    fired_at: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of the fault script (no runtime state)."""
        return {"node": self.node, "trigger": self.trigger.to_dict()}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CrashFault":
        """Rebuild a fresh (unfired) fault from :meth:`to_dict` output."""
        return cls(node=data["node"], trigger=Trigger.from_dict(data["trigger"]))


class ScriptedInjector(FaultInjector):
    """Apply a fixed script of deterministic faults."""

    def __init__(
        self,
        view_faults: Sequence[ViewFault] = (),
        drive_faults: Sequence[DriveFault] = (),
        crash_faults: Sequence[CrashFault] = (),
    ) -> None:
        self.view_faults = list(view_faults)
        self.drive_faults = list(drive_faults)
        self.crash_faults = list(crash_faults)

    # ------------------------------------------------------------------
    # FaultInjector interface
    # ------------------------------------------------------------------

    def on_bit_start(self, time: int, nodes: Sequence[CanController]) -> None:
        if not self.crash_faults:
            return
        by_name: Dict[str, CanController] = {node.name: node for node in nodes}
        for fault in self.crash_faults:
            node = by_name.get(fault.node)
            if node is None or node.crashed:
                continue
            if fault.trigger.fires(node, time):
                fault.fired_at.append(time)
                node.crash()

    def perturb_drive(self, node: CanController, time: int, level: Level) -> Level:
        for fault in self.drive_faults:
            if fault.node == node.name and fault.trigger.fires(node, time):
                fault.fired_at.append(time)
                level = fault.apply(level)
        return level

    def perturb_view(self, node: CanController, time: int, bus_level: Level) -> Level:
        level = bus_level
        for fault in self.view_faults:
            if fault.node == node.name and fault.trigger.fires(node, time):
                fault.fired_at.append(time)
                level = fault.apply(level)
        return level

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    @property
    def total_fired(self) -> int:
        """Number of fault activations so far (all kinds)."""
        faults = self.view_faults + self.drive_faults + self.crash_faults
        return sum(len(fault.fired_at) for fault in faults)

    def all_fired(self) -> bool:
        """Whether every scripted fault has fired at least once."""
        faults = self.view_faults + self.drive_faults + self.crash_faults
        return all(fault.fired_at for fault in faults)

    # ------------------------------------------------------------------
    # Serialization (trace store manifests, campaign logs)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form of the whole fault script.

        Only the *configuration* is serialized — trigger match counts
        and ``fired_at`` logs are runtime state and deliberately
        dropped, so a deserialized injector is always fresh.
        """
        return {
            "kind": "scripted",
            "view_faults": [fault.to_dict() for fault in self.view_faults],
            "drive_faults": [fault.to_dict() for fault in self.drive_faults],
            "crash_faults": [fault.to_dict() for fault in self.crash_faults],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScriptedInjector":
        """Rebuild a fresh injector from :meth:`to_dict` output."""
        kind = data.get("kind", "scripted")
        if kind != "scripted":
            raise ConfigurationError(
                "cannot rebuild a ScriptedInjector from kind %r" % kind
            )
        return cls(
            view_faults=[ViewFault.from_dict(f) for f in data.get("view_faults", ())],
            drive_faults=[DriveFault.from_dict(f) for f in data.get("drive_faults", ())],
            crash_faults=[CrashFault.from_dict(f) for f in data.get("crash_faults", ())],
        )


def injector_from_dict(data: Dict[str, Any]) -> "ScriptedInjector":
    """Rebuild an injector from its serialized form.

    Currently only ``kind == "scripted"`` scripts round-trip; the random
    injectors are reconstructed from their seeds by the workloads that
    own them, not by the trace store.
    """
    kind = data.get("kind")
    if kind == "scripted":
        return ScriptedInjector.from_dict(data)
    raise ConfigurationError("unknown serialized injector kind %r" % kind)


class CompositeInjector(FaultInjector):
    """Chain several injectors (e.g. a scripted scenario plus noise)."""

    def __init__(self, injectors: Sequence[FaultInjector]) -> None:
        self.injectors = list(injectors)

    def on_bit_start(self, time: int, nodes: Sequence[CanController]) -> None:
        for injector in self.injectors:
            injector.on_bit_start(time, nodes)

    def perturb_drive(self, node: CanController, time: int, level: Level) -> Level:
        for injector in self.injectors:
            level = injector.perturb_drive(node, time, level)
        return level

    def perturb_view(self, node: CanController, time: int, bus_level: Level) -> Level:
        for injector in self.injectors:
            bus_level = injector.perturb_view(node, time, bus_level)
        return bus_level
